#!/usr/bin/env python3
"""Dynamic memory management during NDP (paper Section 4.1.1).

Modern GPUs migrate pages between host and device memory at runtime.  The
paper's rule: before a newly swapped-in page on stack H becomes writable,
all in-flight WTA packets to H must drain (tracked by per-HMC counters
decremented as invalidation messages return), while accesses to every
other stack continue unimpeded.  The multi-microsecond external fetch
usually hides the drain entirely.

This example runs an NDP workload, injects page swap-ins against a busy
stack mid-run, and reports how long each swap waited on WTA drain vs. the
external fetch.

Run:  python examples/page_migration.py
"""

from repro.config import ci_config
from repro.core.coherence import PageMigrationGuard
from repro.sim.runner import make_config
from repro.sim.system import System
from repro.workloads import get_workload


def main() -> None:
    cfg = make_config("NaiveNDP", ci_config())
    system = System(cfg, config_name="NaiveNDP")
    inst = get_workload("VADD").build(cfg, "ci")
    system.set_code_layout(inst.blocks)
    system.load_workload(inst.name, inst.traces)
    guard = PageMigrationGuard(system.engine, system.ndp)

    completions: list[tuple[int, int, int]] = []   # (hmc, requested, ready)

    def schedule_swaps() -> None:
        # Fire one swap-in per stack at staggered points of the run.
        for hmc in range(cfg.num_hmcs):
            at = 50 + 40 * hmc
            system.engine.at(at, lambda h=hmc, t=at: guard.swap_in_page(
                h,
                lambda: completions.append((h, t, system.engine.now)),
                fetch_latency=200))

    schedule_swaps()
    result = system.run()

    print(f"run finished in {result.cycles:,d} cycles with "
          f"{result.offloads_issued} offloaded blocks\n")
    print(f"{'stack':>5s} {'requested':>10s} {'ready':>7s} "
          f"{'latency':>8s} {'note'}")
    for hmc, t0, t1 in sorted(completions):
        lat = t1 - t0
        note = ("fetch-bound (drain hidden)" if lat == 200
                else f"waited {lat - 200} cycles extra for WTA drain")
        print(f"{hmc:5d} {t0:10d} {t1:7d} {lat:8d} {note}")
    print(f"\nswaps observed in-flight WTA packets on arrival: "
          f"{guard.stalled_swaps}/{guard.swaps}")
    print("Reads and writes to all other stacks proceeded throughout --")
    print("the counters gate only the migrated page's home stack.")


if __name__ == "__main__":
    main()
