#!/usr/bin/env python3
"""Bring your own kernel: author a new workload against the public API.

Defines SAXPY (y = a*x + y) from scratch -- kernel IR, array layout,
address streams -- and runs it through the analyzer and the simulator.
This is the path a user takes to evaluate the NDP architecture on their
own application.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro.config import WORD_SIZE, ci_config
from repro.isa import BasicBlock, Kernel, alu, ld, st
from repro.sim.runner import run_workload
from repro.workloads import ArrayLayout, Scale, WorkloadModel
from repro.workloads.patterns import streaming


class SAXPY(WorkloadModel):
    """y[i] = a * x[i] + y[i]: two loads, FMA, one store per element."""

    name = "SAXPY"
    table1_nsu_counts = (4,)   # LD, LD, FMA, ST

    def kernel(self) -> Kernel:
        body = BasicBlock([
            ld(4, 0, "x"),
            ld(5, 1, "y"),
            alu(6, 4, 5, tag="a*x + y (a in a constant reg)"),
            alu(10, 2, tag="addr y (write-back)"),
            st(6, 10, "y_out"),
        ])
        return Kernel("saxpy", [body])

    def layout(self, scale: Scale) -> ArrayLayout:
        arrays = ArrayLayout()
        n = scale.num_warps * scale.iters * 32 * WORD_SIZE
        for name in ("x", "y", "y_out"):
            arrays.add(name, n)
        return arrays

    def mem_addrs(self, instr, arrays, ctx) -> np.ndarray:
        return streaming(arrays, instr.array, ctx)


def main() -> None:
    cfg = ci_config()
    saxpy = SAXPY()
    instance = saxpy.build(cfg, "ci")

    print("analyzer found offload blocks:",
          instance.analyzed.nsu_body_lengths)
    print(instance.blocks[0].listing())
    print()

    base = run_workload(saxpy, "Baseline", base=cfg, scale="ci")
    for config in ("NDP(0.4)", "NDP(Dyn)"):
        r = run_workload(saxpy, config, base=cfg, scale="ci")
        print(f"{config:10s}: speedup {r.speedup_over(base):.2f}x, "
              f"GPU traffic {r.traffic.gpu_link:,d} B "
              f"(baseline {base.traffic.gpu_link:,d} B)")


if __name__ == "__main__":
    main()
