#!/usr/bin/env python3
"""Design-space exploration with the simulator (paper Sections 7.1/7.6).

Sweeps (a) the static offload ratio and (b) the NSU clock frequency for a
chosen workload, printing speedup-over-baseline tables like the paper's
sensitivity studies.

Run:  python examples/design_space.py [WORKLOAD]
"""

import sys

from repro.config import ci_config
from repro.energy import compute_energy
from repro.sim.runner import make_config, run_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "KMN"
    cfg = ci_config()
    base = run_workload(workload, "Baseline", base=cfg, scale="ci")
    base_energy = compute_energy(base, make_config("Baseline", cfg))

    print("=" * 72)
    print(f"Static offload-ratio sweep for {workload} (Section 7.1)")
    print("=" * 72)
    print(f"{'config':14s} {'cycles':>9s} {'speedup':>8s} "
          f"{'GPU-link B':>12s} {'energy':>8s}")
    for name in ("Baseline", "NDP(0.2)", "NDP(0.4)", "NDP(0.6)",
                 "NDP(0.8)", "NDP(1.0)", "NDP(Dyn)", "NDP(Dyn)_Cache"):
        r = run_workload(workload, name, base=cfg, scale="ci")
        e = compute_energy(r, make_config(name, cfg))
        print(f"{name:14s} {r.cycles:9d} {r.speedup_over(base):7.2f}x "
              f"{r.traffic.gpu_link:12,d} "
              f"{e.total / base_energy.total:7.2f}x")

    print()
    print("=" * 72)
    print(f"NSU frequency sensitivity for {workload} (Section 7.6)")
    print("=" * 72)
    for mhz in (700, 350, 175, 88):
        slow = cfg.with_nsu_clock(float(mhz))
        r = run_workload(workload, "NDP(Dyn)_Cache", base=slow, scale="ci")
        print(f"NSU @ {mhz:4d} MHz: {r.cycles:8d} cycles, "
              f"speedup {r.speedup_over(base):5.2f}x")
    print()
    print("A low-frequency NSU retains most of the benefit because the")
    print("offloaded segments are memory-bound (paper Section 7.6).")


if __name__ == "__main__":
    main()
