#!/usr/bin/env python3
"""Author a kernel in assembly text and run it under NDP.

The library accepts kernels written in a PTX-flavoured assembly format
(``repro.isa.asm``): write the kernel as text, let the static analyzer
extract offload blocks, attach address streams, and simulate.  This
example implements a streaming triad with a divergent gather
(``out[i] = a[i] + table[idx[i]]``) entirely from text.

Run:  python examples/asm_kernel.py
"""

import numpy as np

from repro.config import WORD_SIZE, ci_config
from repro.isa.asm import assemble, disassemble
from repro.sim.runner import run_workload
from repro.workloads import ArrayLayout, Scale, WorkloadModel
from repro.workloads.patterns import indirect_divergent, streaming

TRIAD_ASM = """
.kernel gather_triad
.block load_index
    ld   r4, [idx + r0]        # streaming index load
    add  r10, r4               # addr table[idx] (GPU-side addr calc)
    ld.ind r5, [table + r10]   # divergent gather
    bra
.block combine
    ld   r6, [a + r1]          # streaming operand
    add  r7, r5, r6
    add  r11, r2               # addr out
    st   [out + r11], r7
"""


class GatherTriad(WorkloadModel):
    name = "GatherTriad"

    def kernel(self):
        return assemble(TRIAD_ASM)

    def layout(self, scale: Scale) -> ArrayLayout:
        arrays = ArrayLayout()
        n = scale.num_warps * scale.iters * 32 * WORD_SIZE
        arrays.add("idx", n)
        arrays.add("table", max(1 << 20, 8 * n))
        arrays.add("a", n)
        arrays.add("out", n)
        return arrays

    def mem_addrs(self, instr, arrays, ctx) -> np.ndarray:
        if instr.array == "table":
            return indirect_divergent(arrays, "table", ctx)
        return streaming(arrays, instr.array, ctx)


def main() -> None:
    cfg = ci_config()
    triad = GatherTriad()
    kernel = triad.kernel()
    print("parsed kernel (round-tripped through the disassembler):")
    print(disassemble(kernel))
    print()

    instance = triad.build(cfg, "ci")
    print("analyzer extracted NSU block bodies:",
          instance.analyzed.nsu_body_lengths)
    for blk in instance.blocks:
        kind = "single indirect gather" if blk.has_indirect_load else \
               "regular block"
        print(f"  block {blk.block_id}: {blk.nsu_body_len} NSU instrs "
              f"({kind}, reason={blk.candidate.reason})")
    print()

    base = run_workload(triad, "Baseline", base=cfg, scale="ci")
    ndp = run_workload(triad, "NDP(0.6)", base=cfg, scale="ci")
    print(f"Baseline : {base.cycles:7d} cycles, "
          f"GPU off-chip {base.traffic.gpu_link:9,d} B")
    print(f"NDP(0.6) : {ndp.cycles:7d} cycles, "
          f"GPU off-chip {ndp.traffic.gpu_link:9,d} B")
    print(f"speedup {ndp.speedup_over(base):.2f}x")


if __name__ == "__main__":
    main()
