#!/usr/bin/env python3
"""Divergent memory access on graph workloads (paper Section 4.4).

BFS gathers neighbours through data-dependent indices: a warp touches up
to 32 different cache lines and uses one word from each.  The baseline GPU
fetches full 128-byte lines; the NDP system offloads each gather as a
single-instruction block whose RDF responses carry only the touched words.

This example quantifies the bandwidth waste and the single-indirect-load
offload blocks the analyzer extracts for BFS.

Run:  python examples/graph_analytics.py
"""

from repro.config import LINE_SIZE, WORD_SIZE, ci_config
from repro.sim.runner import run_workload
from repro.workloads import get_workload


def main() -> None:
    cfg = ci_config()
    bfs = get_workload("BFS")
    instance = bfs.build(cfg, "ci")

    print("=" * 72)
    print("BFS offload blocks (Table 1: 1,1,16)")
    print("=" * 72)
    for block in instance.blocks:
        kind = ("single indirect load (Section 4.4)"
                if block.has_indirect_load and block.nsu_body_len == 1
                else "regular offload block")
        print(f"block {block.block_id}: {block.nsu_body_len:2d} NSU instrs "
              f"-- {kind} [reason: {block.candidate.reason}]")

    # How divergent are the gathers?  Count useful words per fetched line.
    lines = words = 0
    for trace in instance.traces[:32]:
        for item in trace:
            accesses = getattr(item, "accesses", None)
            if accesses is None:
                for group in item.mem_accesses:
                    for a in group:
                        lines += 1
                        words += a.words
    print(f"\nwarp-level divergence: {words / lines:.1f} useful words per "
          f"{LINE_SIZE // WORD_SIZE}-word line fetched")
    print(f"baseline fetch efficiency: {words * WORD_SIZE / (lines * LINE_SIZE):.0%}")

    print()
    print("=" * 72)
    print("Baseline vs. NDP")
    print("=" * 72)
    base = run_workload("BFS", "Baseline", base=cfg, scale="ci")
    ndp = run_workload("BFS", "NDP(0.4)", base=cfg, scale="ci")
    print(f"Baseline : {base.cycles:7d} cycles, "
          f"GPU off-chip {base.traffic.gpu_link:9,d} B")
    print(f"NDP(0.4) : {ndp.cycles:7d} cycles, "
          f"GPU off-chip {ndp.traffic.gpu_link:9,d} B "
          f"(+ {ndp.traffic.mem_net:,d} B on the memory network)")
    print(f"speedup {ndp.speedup_over(base):.2f}x, GPU traffic "
          f"{1 - ndp.traffic.gpu_link / base.traffic.gpu_link:.0%} lower")


if __name__ == "__main__":
    main()
