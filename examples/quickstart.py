#!/usr/bin/env python3
"""Quickstart: the paper's Figure 2/3 walk-through on vector addition.

Shows the full pipeline of the library:

1. author a kernel in the IR,
2. extract offload blocks with the static analyzer (Eq. 1 scores),
3. look at the partitioned GPU/NSU code (Figure 3),
4. simulate Baseline vs. NaiveNDP vs. NDP(Dyn) and compare.

Run:  python examples/quickstart.py
"""

from repro.config import ci_config
from repro.sim.runner import run_workload
from repro.workloads import get_workload


def main() -> None:
    cfg = ci_config()
    vadd = get_workload("VADD")
    instance = vadd.build(cfg, "ci")

    print("=" * 72)
    print("Offload block extraction (paper Section 3, Figure 3)")
    print("=" * 72)
    for block in instance.blocks:
        print(block.listing())
        print(f" -> NSU body: {block.nsu_body_len} instructions "
              f"(Table 1 says {vadd.table1_nsu_counts})")
    print()

    print("=" * 72)
    print("Simulation (paper Figure 2: baseline vs. partitioned execution)")
    print("=" * 72)
    results = {}
    for config in ("Baseline", "NaiveNDP", "NDP(Dyn)"):
        r = run_workload("VADD", config, base=cfg, scale="ci")
        results[config] = r
        print(f"{config:10s}: {r.cycles:7d} cycles | "
              f"GPU off-chip {r.traffic.gpu_link:9,d} B | "
              f"memory network {r.traffic.mem_net:9,d} B | "
              f"offloads {r.offloads_issued}")
    base = results["Baseline"]
    for config in ("NaiveNDP", "NDP(Dyn)"):
        s = results[config].speedup_over(base)
        print(f"  speedup of {config} over Baseline: {s:.2f}x")
    saved = 1 - results["NDP(Dyn)"].traffic.gpu_link / base.traffic.gpu_link
    print(f"  GPU off-chip traffic saved by NDP(Dyn): {saved:.0%}")

    print()
    print("=" * 72)
    print("Message timeline of one offloaded block (Figures 2(b) and 6)")
    print("=" * 72)
    from repro.sim.runner import make_config
    from repro.sim.system import System
    from repro.sim.tracing import MessageTrace

    traced_cfg = make_config("NaiveNDP", cfg)
    system = System(traced_cfg, config_name="NaiveNDP")
    traced_inst = vadd.build(traced_cfg, "ci")
    system.set_code_layout(traced_inst.blocks)
    system.load_workload(traced_inst.name, traced_inst.traces)
    system.ndp.trace = MessageTrace()
    system.run()
    print(system.ndp.trace.timeline(system.ndp.trace.instances()[0]))
    print()
    print("The data flows DRAM -> memory network -> NSU instead of")
    print("DRAM -> GPU -> DRAM: the offload command and ACK are the only")
    print("overhead the mechanism adds, amortized over the whole warp.")


if __name__ == "__main__":
    main()
