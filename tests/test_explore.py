"""Tests for the design-space exploration engine (``repro explore``).

Covers the three contracts docs/design-space.md promises: the space
(validity, materialization, fingerprints), the agents (seeded streams,
propose semantics), and the driver (store-backed dedup, byte-identical
seeded reruns, resume-by-replay).
"""

import json
import math

import numpy as np
import pytest

from repro.config import paper_config
from repro.explore.agents import (AGENTS, Agent, Evaluation, History,
                                  best_of, make_agent)
from repro.explore.driver import FITNESS, explore
from repro.explore.report import (best_bench_cell, load_best_configs,
                                  write_best_configs)
from repro.explore.space import (SearchSpace, default_space, resolve_space,
                                 tiny_space)

# Mirrors the CI explore smoke: small enough to finish in seconds at ci
# scale, big enough to exercise multiple generations.
RUN_KW = dict(workload="VADD", space="tiny", agent="hillclimb",
              generations=2, population=4, seed=1, scale="ci",
              max_cycles=2_000_000)


def run_explore(tmp_path, out_name, **overrides):
    kw = dict(RUN_KW, out=str(tmp_path / out_name),
              store=str(tmp_path / "store"))
    kw.update(overrides)
    return explore(**kw)


# ---------------------------------------------------------------------------
# SearchSpace
# ---------------------------------------------------------------------------

class TestSearchSpace:
    def test_shapes(self):
        sp = tiny_space()
        assert sp.size == 16
        assert default_space().size == 5832
        assert sp.names == ("offload", "nsu_mhz", "nsu_read_buf",
                            "gpu_link_gbps")

    def test_point_round_trip(self):
        sp = tiny_space()
        p = sp.point_from_indices((1, 0, 1, 0))
        assert sp.indices(p) == (1, 0, 1, 0)
        assert sp.point_key(p) == ("NDP(0.8)", 350.0, 256, 20.0)

    def test_violations_named(self):
        sp = tiny_space()
        good = {"offload": "NDP(Dyn)", "nsu_mhz": 350.0,
                "nsu_read_buf": 256, "gpu_link_gbps": 20.0}
        assert sp.violations(good) == []
        assert sp.valid(good)

        missing = {k: v for k, v in good.items() if k != "nsu_mhz"}
        assert "missing:nsu_mhz" in sp.violations(missing)

        off_menu = dict(good, nsu_mhz=123.0)
        assert "off-menu:nsu_mhz" in sp.violations(off_menu)

        unknown = dict(good, bogus=1)
        assert sp.violations(unknown) == ["unknown:bogus"]

        # The tiny space's constraint: 40 GB/s links need the 256 buffer.
        broken = dict(good, gpu_link_gbps=40.0, nsu_read_buf=128)
        assert sp.violations(broken) == ["constraint:fast-links-need-buffers"]
        assert not sp.valid(broken)

    def test_neighbors_are_valid_single_steps(self):
        sp = tiny_space()
        p = {"offload": "NDP(Dyn)", "nsu_mhz": 350.0,
             "nsu_read_buf": 256, "gpu_link_gbps": 20.0}
        for n in sp.neighbors(p):
            assert sp.valid(n)
            diffs = [k for k in sp.names if n[k] != p[k]]
            assert len(diffs) == 1

    def test_materialize(self):
        sp = tiny_space()
        p = {"offload": "NDP(0.8)", "nsu_mhz": 700.0,
             "nsu_read_buf": 128, "gpu_link_gbps": 20.0}
        config_name, cfg = sp.materialize(p)
        assert config_name == "NDP(0.8)"
        assert cfg.nsu.clock_mhz == 700.0
        assert cfg.nsu.read_data_entries == 128
        assert cfg.nsu.write_addr_entries == 128
        assert cfg.gpu.link_gbps_per_dir == 20.0

    def test_materialize_rejects_invalid(self):
        sp = tiny_space()
        with pytest.raises(ValueError, match="invalid point"):
            sp.materialize({"offload": "NDP(Dyn)"})

    def test_fingerprint_tracks_spec(self):
        assert tiny_space().fingerprint() == tiny_space().fingerprint()
        assert tiny_space().fingerprint() != default_space().fingerprint()
        rescaled = tiny_space(paper_config().scaled_gpu(num_sms=128))
        assert rescaled.fingerprint() != tiny_space().fingerprint()

    def test_random_point_is_valid_and_seeded(self):
        sp = tiny_space()
        a = sp.random_point(np.random.default_rng(7))
        b = sp.random_point(np.random.default_rng(7))
        assert a == b
        assert sp.valid(a)

    def test_resolve_space(self):
        assert resolve_space("tiny").name == "tiny"
        assert resolve_space(None).name == "default"
        sp = tiny_space()
        assert resolve_space(sp) is sp
        with pytest.raises(KeyError, match="unknown search space"):
            resolve_space("nope")

    def test_duplicate_knobs_rejected(self):
        k = tiny_space().knobs[1]
        with pytest.raises(ValueError, match="duplicate knob"):
            SearchSpace(knobs=(k, k))


# ---------------------------------------------------------------------------
# Agents
# ---------------------------------------------------------------------------

def _fake_history(sp, points, fitnesses):
    h = History()
    for p, f in zip(points, fitnesses):
        h.add(Evaluation(gen=0, point=dict(p), key=sp.point_key(p),
                         config_name=p["offload"], fitness=f))
    return h


class TestAgents:
    @pytest.mark.parametrize("name", sorted(AGENTS))
    def test_seeded_streams_reproduce(self, name):
        sp = tiny_space()
        a = make_agent(name, sp, seed=3, population=4)
        b = make_agent(name, sp, seed=3, population=4)
        assert a.propose(History()) == b.propose(History())

    def test_different_agents_different_streams(self):
        sp = tiny_space()
        r = make_agent("random", sp, seed=0, population=4)
        g = make_agent("genetic", sp, seed=0, population=4)
        # Cold-start genetic falls back to random sampling, but from its
        # own crc32-salted stream -- the sequences must differ.
        assert r.propose(History()) != g.propose(History())

    def test_proposals_fresh_and_valid(self):
        sp = tiny_space()
        ag = make_agent("random", sp, seed=1, population=6)
        h = History()
        seen = set()
        for _ in range(3):
            batch = ag.propose(h)
            for p in batch:
                assert sp.valid(p)
                k = sp.point_key(p)
                assert k not in seen
                seen.add(k)
                h.add(Evaluation(gen=0, point=p, key=k,
                                 config_name=p["offload"],
                                 fitness=float(len(seen))))
        # 16-point space: the agent must eventually run dry, not loop.
        for _ in range(8):
            for p in ag.propose(h):
                k = sp.point_key(p)
                h.add(Evaluation(gen=0, point=p, key=k,
                                 config_name=p["offload"], fitness=1.0))
        assert ag.propose(h) == []

    def test_hillclimb_proposes_neighbors_of_best(self):
        sp = tiny_space()
        ag = make_agent("hillclimb", sp, seed=0, population=8)
        start = {"offload": "NDP(Dyn)", "nsu_mhz": 350.0,
                 "nsu_read_buf": 256, "gpu_link_gbps": 20.0}
        h = _fake_history(sp, [start], [100.0])
        batch = ag.propose(h)
        neighbor_keys = {sp.point_key(n) for n in sp.neighbors(start)}
        assert batch
        for p in batch:
            assert sp.point_key(p) in neighbor_keys

    def test_genetic_children_unseen_and_valid(self):
        sp = tiny_space()
        ag = make_agent("genetic", sp, seed=2, population=4)
        pts = [sp.point_from_indices(ix)
               for ix in ((0, 0, 0, 0), (1, 1, 1, 0), (0, 1, 1, 1))]
        h = _fake_history(sp, pts, [3.0, 1.0, 2.0])
        for p in ag.propose(h):
            assert sp.valid(p)
            assert sp.point_key(p) not in h

    def test_make_agent_unknown(self):
        with pytest.raises(KeyError, match="unknown search agent"):
            make_agent("anneal", tiny_space())

    def test_best_ignores_fatal_and_breaks_ties_on_key(self):
        sp = tiny_space()
        pts = [sp.point_from_indices(ix)
               for ix in ((1, 1, 1, 1), (0, 0, 0, 0), (1, 0, 0, 0))]
        h = _fake_history(sp, pts, [5.0, 5.0, math.inf])
        h.evaluations[2].outcome = "fatal"
        # Equal fitness: the smaller point key wins, order-independently
        # ("NDP(0.8)" sorts before "NDP(Dyn)").
        assert h.best().key == sp.point_key(pts[0])
        top = best_of(h.evaluations, top_k=5)
        assert [ev.key for ev in top] == [sp.point_key(pts[0]),
                                          sp.point_key(pts[1])]


# ---------------------------------------------------------------------------
# Driver end-to-end (ci scale, tiny space)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def first_run(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("explore")
    return tmp, run_explore(tmp, "run1")


class TestDriver:
    def test_first_run_simulates(self, first_run):
        _tmp, out = first_run
        assert out.stats.evaluated > 0
        assert out.stats.fresh == out.stats.evaluated
        assert out.stats.cache_hits == 0
        assert out.best and out.best[0].ok
        assert out.best[0].fitness == out.best[0].cycles  # cycles fitness

    def test_seeded_rerun_is_byte_identical_and_store_served(self, first_run):
        tmp, out1 = first_run
        out2 = run_explore(tmp, "run2")
        t1 = (tmp / "run1" / "trajectory.jsonl").read_bytes()
        t2 = (tmp / "run2" / "trajectory.jsonl").read_bytes()
        assert t1 == t2
        b1 = (tmp / "run1" / "best_configs.json").read_bytes()
        b2 = (tmp / "run2" / "best_configs.json").read_bytes()
        assert b1 == b2
        # Every cell served from the persistent store: zero simulations.
        assert out2.stats.evaluated == out1.stats.evaluated
        assert out2.stats.fresh == 0
        assert out2.stats.cache_hits == out2.stats.evaluated
        assert out2.stats.hit_pct == 100.0

    def test_cross_agent_store_reuse(self, first_run):
        tmp, _out = first_run
        out = run_explore(tmp, "run-random", agent="random")
        # Different proposal stream, same store: any point hillclimb
        # already visited must not simulate again.
        assert out.stats.cache_hits > 0
        assert out.stats.fresh + out.stats.cache_hits == out.stats.evaluated

    def test_resume_truncated_trajectory_bit_identical(self, first_run):
        tmp, _out = first_run
        full = (tmp / "run1" / "trajectory.jsonl").read_text()
        lines = full.splitlines()
        # Keep meta + first generation's records, then tear the tail
        # mid-record, as a killed run would.
        trunc = tmp / "trunc.jsonl"
        trunc.write_text("\n".join(lines[:4]) + "\n" + lines[4][:17])
        out = run_explore(tmp, "resumed", resume=str(trunc),
                          store=None, use_store=False)
        assert out.stats.replayed == 3
        assert (tmp / "resumed" / "trajectory.jsonl").read_text() == full

    def test_resume_refuses_identity_mismatch(self, first_run):
        tmp, _out = first_run
        with pytest.raises(ValueError, match="seed"):
            run_explore(tmp, "bad-resume", seed=2,
                        resume=str(tmp / "run1" / "trajectory.jsonl"))

    def test_trajectory_schema(self, first_run):
        tmp, out = first_run
        recs = [json.loads(line) for line in
                (tmp / "run1" / "trajectory.jsonl").read_text().splitlines()]
        assert recs[0]["kind"] == "explore-meta"
        assert recs[0]["space"]["name"] == "tiny"
        assert recs[0]["space"]["fingerprint"] == tiny_space().fingerprint()
        kinds = {r["kind"] for r in recs[1:]}
        assert kinds == {"evaluation", "generation"}
        evs = [r for r in recs if r["kind"] == "evaluation"]
        assert len(evs) == out.stats.evaluated
        for r in evs:
            assert r["outcome"] in ("ok", "fatal")
            assert (r["fitness"] is None) == (r["outcome"] == "fatal")
        gens = [r for r in recs if r["kind"] == "generation"]
        assert len(gens) == out.stats.generations

    def test_rejected_proposals_counted_not_evaluated(self, first_run,
                                                      monkeypatch):
        tmp, _out = first_run

        class BrokenAgent(Agent):
            name = "broken"

            def propose(self, history):
                if history.evaluations:
                    return []
                good = self.space.point_from_indices((0, 0, 0, 0))
                bad = dict(good, nsu_mhz=999.0)      # off-menu
                dupe = dict(good)                    # in-batch revisit
                return [bad, good, dupe]

        monkeypatch.setitem(AGENTS, "broken", BrokenAgent)
        out = run_explore(tmp, "broken", agent="broken", generations=3)
        assert out.stats.rejected == 1
        assert out.stats.revisits == 1
        assert out.stats.evaluated == 1

    def test_unknown_fitness_and_metrics(self, first_run):
        tmp, _out = first_run
        with pytest.raises(KeyError, match="unknown fitness"):
            run_explore(tmp, "bad-fitness", fitness="ipc")
        assert set(FITNESS) == {"cycles", "energy", "edp"}

        from repro.sim.metrics import MetricsRegistry
        registry = MetricsRegistry()
        out = run_explore(tmp, "metered", metrics=registry)
        counters = {n: c.value for n, c in registry.counters.items()}
        assert counters["explore.evaluated"] == out.stats.evaluated
        assert counters["explore.cache_hits"] == out.stats.cache_hits
        assert counters["explore.best_fitness"] == out.best[0].fitness
        assert registry.meta["explore_agent"] == "hillclimb"


# ---------------------------------------------------------------------------
# Artifacts
# ---------------------------------------------------------------------------

class TestReport:
    def test_best_configs_round_trip(self, first_run, tmp_path):
        tmp, out = first_run
        payload = load_best_configs(str(tmp / "run1" / "best_configs.json"))
        assert payload["kind"] == "repro-explore-best"
        assert payload["entries"][0]["rank"] == 1
        assert payload["entries"][0]["fitness"] == out.best[0].fitness
        # Rewriting the same outcome reproduces the bytes exactly.
        again = tmp_path / "again.json"
        write_best_configs(out, str(again))
        assert (again.read_bytes()
                == (tmp / "run1" / "best_configs.json").read_bytes())

    def test_best_bench_cell(self, first_run):
        tmp, out = first_run
        workload, config, base, label = best_bench_cell(
            str(tmp / "run1" / "best_configs.json"))
        assert workload == "VADD"
        assert config == out.best[0].config_name
        assert label == f"explore[cycles]:{config}"
        assert base is not None

    def test_best_bench_cell_refuses_stale_space(self, first_run, tmp_path):
        tmp, _out = first_run
        payload = json.loads(
            (tmp / "run1" / "best_configs.json").read_text())
        payload["space"]["fingerprint"] = "0" * 64
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="fingerprint"):
            best_bench_cell(str(stale))

    def test_load_rejects_other_json(self, tmp_path):
        p = tmp_path / "other.json"
        p.write_text(json.dumps({"kind": "repro-bench"}))
        with pytest.raises(ValueError):
            load_best_configs(str(p))
