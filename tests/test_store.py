"""Tests for the persistent result store and hardened parallel prefetch."""

import concurrent.futures as cf
import json
import os
import subprocess
import sys
import time

import pytest

from repro.analysis import figures
from repro.analysis.figures import ExperimentRunner
from repro.config import ci_config
from repro.sim.runner import run_workload
from repro.sim.store import (CODE_VERSION_SALT, STORE_FORMAT, ResultStore,
                             cell_key)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def tiny_result():
    return run_workload("VADD", "Baseline", base=ci_config(), scale="ci")


class TestCellKey:
    def test_deterministic(self):
        a = cell_key("VADD", "Baseline", ci_config(), "ci", 1000)
        b = cell_key("VADD", "Baseline", ci_config(), "ci", 1000)
        assert a == b
        assert len(a) == 64

    def test_each_input_changes_key(self):
        base = ci_config()
        ref = cell_key("VADD", "Baseline", base, "ci", 1000)
        assert cell_key("KMN", "Baseline", base, "ci", 1000) != ref
        assert cell_key("VADD", "NDP(Dyn)", base, "ci", 1000) != ref
        assert cell_key("VADD", "Baseline", base, "bench", 1000) != ref
        assert cell_key("VADD", "Baseline", base, "ci", 2000) != ref
        assert cell_key("VADD", "Baseline", base, "ci", 1000,
                        salt="other") != ref

    def test_config_override_changes_key(self):
        base = ci_config()
        ref = cell_key("VADD", "Baseline", base, "ci", 1000)
        more_sms = base.scaled_gpu(num_sms=base.gpu.num_sms + 8)
        assert cell_key("VADD", "Baseline", more_sms, "ci", 1000) != ref

    def test_stable_across_processes(self):
        """The key must not depend on hash randomization or process state."""
        here = cell_key("VADD", "NDP(Dyn)", ci_config(), "ci", 1000)
        code = ("from repro.config import ci_config;"
                "from repro.sim.store import cell_key;"
                "print(cell_key('VADD', 'NDP(Dyn)', ci_config(), 'ci',"
                " 1000))")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        env["PYTHONHASHSEED"] = "12345"
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == here


class TestResultStore:
    def test_round_trip(self, tmp_path, tiny_result):
        store = ResultStore(tmp_path)
        key = cell_key("VADD", "Baseline", ci_config(), "ci", 20_000_000)
        assert store.get(key) is None
        store.put(key, tiny_result, meta={"scale": "ci"})
        loaded = store.get(key)
        assert loaded is not None
        assert loaded.cycles == tiny_result.cycles
        assert loaded.stalls.as_dict() == tiny_result.stalls.as_dict()
        assert store.hits == 1 and store.misses == 1

    def test_corrupted_entry_is_miss_and_removed(self, tmp_path,
                                                 tiny_result):
        store = ResultStore(tmp_path)
        key = cell_key("VADD", "Baseline", ci_config(), "ci", 1)
        path = store.put(key, tiny_result)
        with open(path, "w") as f:
            f.write('{"format": 1, "key": "truncat')
        assert store.get(key) is None
        assert store.corrupt == 1
        assert not os.path.exists(path)

    def test_stale_format_is_miss(self, tmp_path, tiny_result):
        store = ResultStore(tmp_path)
        key = cell_key("VADD", "Baseline", ci_config(), "ci", 1)
        path = store.put(key, tiny_result)
        with open(path) as f:
            payload = json.load(f)
        payload["format"] = STORE_FORMAT + 1
        with open(path, "w") as f:
            json.dump(payload, f)
        assert store.get(key) is None
        assert store.corrupt == 1

    def test_ls_and_clear(self, tmp_path, tiny_result):
        store = ResultStore(tmp_path)
        k1 = cell_key("VADD", "Baseline", ci_config(), "ci", 1)
        k2 = cell_key("VADD", "NDP(Dyn)", ci_config(), "ci", 1)
        store.put(k1, tiny_result)
        store.put(k2, tiny_result)
        entries = store.ls()
        assert len(entries) == len(store) == 2
        assert {e["key"] for e in entries} == {k1, k2}
        assert all(e["workload"] == "VADD" for e in entries)
        assert all(e["salt"] == CODE_VERSION_SALT for e in entries)
        assert store.clear() == 2
        assert len(store) == 0


class TestRunnerStoreIntegration:
    def _runner(self, tmp_path, **kw):
        kw.setdefault("base", ci_config())
        kw.setdefault("scale", "ci")
        kw.setdefault("workloads", ["VADD"])
        return ExperimentRunner(store=str(tmp_path), **kw)

    def test_second_runner_hits_store(self, tmp_path):
        r1 = self._runner(tmp_path)
        a = r1.result("VADD", "Baseline")
        assert r1.stats.sim_runs == 1

        r2 = self._runner(tmp_path)
        b = r2.result("VADD", "Baseline")
        assert r2.stats.sim_runs == 0
        assert r2.stats.store_hits == 1
        assert b.cycles == a.cycles

    def test_memory_cache_preferred(self, tmp_path):
        r = self._runner(tmp_path)
        r.result("VADD", "Baseline")
        r.result("VADD", "Baseline")
        assert r.stats.sim_runs == 1
        assert r.stats.memory_hits == 1

    def test_config_change_invalidates(self, tmp_path):
        r1 = self._runner(tmp_path)
        r1.result("VADD", "Baseline")

        other = ci_config().scaled_gpu(num_sms=ci_config().gpu.num_sms + 4)
        r2 = self._runner(tmp_path, base=other)
        r2.result("VADD", "Baseline")
        assert r2.stats.store_hits == 0
        assert r2.stats.sim_runs == 1

    def test_prefetch_serves_from_store(self, tmp_path):
        r1 = self._runner(tmp_path)
        r1.prefetch(["Baseline", "NDP(Dyn)"], workloads=["VADD"])
        assert r1.stats.sim_runs == 2

        r2 = self._runner(tmp_path)
        r2.prefetch(["Baseline", "NDP(Dyn)"], workloads=["VADD"])
        assert r2.stats.sim_runs == 0
        assert r2.stats.store_hits == 2


class TestParallelPrefetchHardening:
    """The timeout/crash recovery paths, driven through the test seams
    (a thread-pool factory + a controllable worker function)."""

    def _runner(self, **kw):
        kw.setdefault("base", ci_config())
        kw.setdefault("scale", "ci")
        kw.setdefault("workloads", ["VADD"])
        kw.setdefault("parallel", 2)
        return ExperimentRunner(**kw)

    def test_crash_then_retry_succeeds(self, tiny_result):
        r = self._runner()
        calls = {}

        def worker(arg):
            w, c, *_ = arg
            calls[(w, c)] = calls.get((w, c), 0) + 1
            if calls[(w, c)] == 1:
                raise RuntimeError("simulated worker crash")
            return tiny_result

        r._executor_factory = cf.ThreadPoolExecutor
        r._worker = worker
        with pytest.warns(RuntimeWarning, match="retrying"):
            r.prefetch(["Baseline", "NDP(Dyn)"], workloads=["VADD"])
        assert r.stats.worker_failures == 2
        assert r.stats.worker_retries == 2
        assert r.stats.serial_fallbacks == 0
        assert r.stats.sim_runs == 2   # worker simulations count too
        assert ("VADD", "Baseline") in r._cache
        assert ("VADD", "NDP(Dyn)") in r._cache

    def test_repeated_crash_falls_back_to_serial(self, monkeypatch,
                                                 tiny_result):
        r = self._runner()

        def always_crash(arg):
            raise RuntimeError("boom")

        monkeypatch.setattr(figures, "run_workload",
                            lambda *a, **k: tiny_result)
        r._executor_factory = cf.ThreadPoolExecutor
        r._worker = always_crash
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            r.prefetch(["Baseline"], workloads=["VADD"])
        assert r.stats.serial_fallbacks == 1
        assert r.stats.sim_runs == 1
        assert ("VADD", "Baseline") in r._cache

    def test_worker_timeout_is_a_failure(self, monkeypatch, tiny_result):
        r = self._runner(worker_timeout=0.05)

        def slow(arg):
            time.sleep(0.4)
            return tiny_result

        monkeypatch.setattr(figures, "run_workload",
                            lambda *a, **k: tiny_result)
        r._executor_factory = cf.ThreadPoolExecutor
        r._worker = slow
        with pytest.warns(RuntimeWarning):
            r.prefetch(["Baseline"], workloads=["VADD"])
        assert r.stats.worker_failures >= 1
        assert ("VADD", "Baseline") in r._cache

    def test_serial_prefetch_unaffected(self):
        r = self._runner(parallel=1)
        r.prefetch(["Baseline"], workloads=["VADD"])
        assert r.stats.sim_runs == 1
        assert r.stats.worker_failures == 0


# -- cross-process key reservation (the serve shard-worker protocol) --------

def _hammer_one_key(args):
    """Module-level worker (must be picklable): run the reserve -> re-check
    -> simulate -> put -> release protocol on one shared key.  Returns
    ("simulated"|"waited"|"cached", cycles)."""
    root, key = args
    store = ResultStore(root)
    cached = store.get(key)
    if cached is not None:
        return "cached", cached.cycles
    with store.reserve(key) as claim:
        if claim.acquired:
            # Double-check: the prior holder may have published between
            # our miss and our acquisition.
            cached = store.get(key)
            if cached is not None:
                return "cached", cached.cycles
            result = run_workload("VADD", "Baseline", base=ci_config(),
                                  scale="ci", max_cycles=5_000_000)
            store.put(key, result)
            return "simulated", result.cycles
    got = store.wait(key, timeout=120.0)
    assert got is not None, "reservation holder never published"
    return "waited", got.cycles


class TestStoreReservation:
    def test_single_process_acquire_release(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = cell_key("VADD", "Baseline", ci_config(), "ci", 1000)
        with store.reserve(key) as claim:
            assert claim.acquired
            with store.reserve(key) as second:
                assert not second.acquired
        # released: a fresh reservation wins again
        with store.reserve(key) as third:
            assert third.acquired
        assert not os.path.exists(store._path(key) + ".lock")

    def test_stale_lock_is_stolen(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = cell_key("VADD", "Baseline", ci_config(), "ci", 1000)
        lock = store._path(key) + ".lock"
        os.makedirs(os.path.dirname(lock), exist_ok=True)
        with open(lock, "w") as f:
            f.write("99999")
        old = time.time() - 7200
        os.utime(lock, (old, old))
        with store.reserve(key) as claim:
            assert claim.acquired  # stale holder presumed dead

    def test_fresh_lock_is_respected(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = cell_key("VADD", "Baseline", ci_config(), "ci", 1000)
        lock = store._path(key) + ".lock"
        os.makedirs(os.path.dirname(lock), exist_ok=True)
        with open(lock, "w") as f:
            f.write("99999")
        with store.reserve(key) as claim:
            assert not claim.acquired

    def test_wait_times_out_without_publisher(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = cell_key("VADD", "Baseline", ci_config(), "ci", 1000)
        assert store.wait(key, timeout=0.2, poll=0.01) is None

    def test_cross_process_hammer_simulates_exactly_once(self, tmp_path):
        """Eight processes race one key; the reservation protocol must
        yield exactly one simulation, identical cycles everywhere, and a
        clean (untorn) store entry."""
        key = cell_key("VADD", "Baseline", ci_config(), "ci", 5_000_000)
        args = [(str(tmp_path), key)] * 8
        with cf.ProcessPoolExecutor(max_workers=4) as pool:
            outcomes = list(pool.map(_hammer_one_key, args))
        sources = [s for s, _ in outcomes]
        assert sources.count("simulated") == 1
        assert len({c for _, c in outcomes}) == 1
        # The published entry is complete and parses.
        store = ResultStore(str(tmp_path))
        entry = store.get(key)
        assert entry is not None
        assert entry.cycles == outcomes[0][1]
        assert len(store) == 1
