"""The ``repro.api`` facade: RunRequest/run, sweep, chaos, and the
shared resolution helpers that subsume the old private CLI plumbing."""

import dataclasses

import pytest

from repro import api
from repro.config import ci_config
from repro.faults import RecoveryPolicy, get_scenario
from repro.sim.store import ResultStore


def _request(tmp_path=None, **overrides):
    kw = dict(workload="VADD", config="Baseline", scale="ci",
              base=ci_config(), max_cycles=5_000_000)
    if tmp_path is not None:
        kw.update(store=str(tmp_path), use_store=True)
    else:
        kw.update(use_store=False)
    kw.update(overrides)
    return api.RunRequest(**kw)


class TestRunRequest:
    def test_keyword_only_and_frozen(self):
        with pytest.raises(TypeError):
            api.RunRequest("VADD")  # positional args rejected
        req = _request()
        with pytest.raises(dataclasses.FrozenInstanceError):
            req.workload = "KMN"

    def test_defaults(self):
        req = api.RunRequest(workload="VADD")
        assert req.config == "NDP(Dyn)"
        assert req.scale == "bench"
        assert req.faults is None
        assert req.use_store is True

    def test_resolved_plan_from_scenario_name(self):
        req = _request(faults="rdf-drop", fault_rate=0.2, fault_seed=7)
        plan = req.resolved_plan()
        assert plan.name == "rdf-drop@0.2"
        assert plan.seed == 7

    def test_unknown_scenario_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown fault scenario"):
            _request(faults="bogus-scenario").resolved_plan()

    def test_recovery_override_threads_through(self):
        policy = RecoveryPolicy(ack_timeout=1234)
        req = _request(faults="rdf-drop", recovery=policy)
        assert req.resolved_plan().recovery.ack_timeout == 1234


class TestRun:
    def test_clean_run(self):
        out = api.run(_request())
        assert out.outcome == "clean"
        assert out.ok
        assert not out.from_store
        assert out.result.cycles > 0
        assert out.system is not None

    def test_store_round_trip(self, tmp_path):
        first = api.run(_request(tmp_path))
        second = api.run(_request(tmp_path))
        assert not first.from_store
        assert second.from_store
        assert second.system is None
        assert second.result.cycles == first.result.cycles
        assert second.store_key == first.store_key

    def test_faulted_run_skips_store(self, tmp_path):
        req = _request(tmp_path, config="NDP(Dyn)", faults="rdf-drop",
                       fault_rate=0.05)
        out = api.run(req)
        assert out.outcome in ("clean", "recovered")
        # the plain store must not have been populated by the faulted run
        store = ResultStore(str(tmp_path))
        assert store.get(out.store_key) is None

    def test_fatal_outcome(self):
        policy = RecoveryPolicy(mshr_max_retries=0)
        plan = get_scenario("vault-read-loss", rate=0.05, seed=1,
                            recovery=policy)
        out = api.run(_request(faults=plan))
        assert out.outcome == "fatal"
        assert not out.ok
        assert out.result is None
        assert out.error
        assert out.system is not None  # post-mortem inspection

    def test_run_kwargs_shorthand(self):
        out = api.run(workload="VADD", config="Baseline", scale="ci",
                      base=ci_config(), use_store=False,
                      max_cycles=5_000_000)
        assert out.ok


class TestSweep:
    def test_sweep_speedups(self):
        out = api.sweep("VADD", configs=("Baseline", "NDP(Dyn)"),
                        base=ci_config(), scale="ci", use_store=False,
                        max_cycles=5_000_000)
        assert set(out.results) == {"Baseline", "NDP(Dyn)"}
        assert out.speedups["NDP(Dyn)"] > 0
        assert out.stats.sim_runs == 2

    def test_sweep_without_baseline_has_no_speedups(self):
        out = api.sweep("VADD", configs=("NDP(Dyn)",), base=ci_config(),
                        scale="ci", use_store=False, max_cycles=5_000_000)
        assert out.speedups == {}


class TestChaos:
    def test_default_grid_zero_fatal(self, tmp_path):
        report = api.chaos(scenario="rdf-drop", rates=(0.0, 0.05),
                           configs=("NDP(Dyn)",), workloads=("VADD",),
                           base=ci_config(), scale="ci",
                           store=str(tmp_path), max_cycles=5_000_000)
        assert report.fatal_cells == []
        assert report.cells[("VADD", "NDP(Dyn)", 0.0)].outcome == "clean"
        fired = report.cells[("VADD", "NDP(Dyn)", 0.05)]
        assert fired.outcome == "recovered"
        assert fired.slowdown > 1.0
        counts = report.outcome_counts()
        assert counts.get("fatal", 0) == 0

    def test_salted_cache_reuse(self, tmp_path):
        kw = dict(scenario="rdf-drop", rates=(0.05,), configs=("NDP(Dyn)",),
                  workloads=("VADD",), base=ci_config(), scale="ci",
                  store=str(tmp_path), max_cycles=5_000_000)
        first = api.chaos(**kw)
        second = api.chaos(**kw)
        assert second.stats.sim_runs == 0  # both cells served from store
        assert (second.cells[("VADD", "NDP(Dyn)", 0.05)].cycles
                == first.cells[("VADD", "NDP(Dyn)", 0.05)].cycles)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown fault scenario"):
            api.chaos(scenario="nope", base=ci_config(), scale="ci",
                      use_store=False)

    def test_baseline_config_recovers(self):
        report = api.chaos(scenario="vault-read-loss", rates=(0.05,),
                           configs=("Baseline",), workloads=("VADD",),
                           base=ci_config(), scale="ci", use_store=False,
                           max_cycles=5_000_000)
        assert report.cells[("VADD", "Baseline", 0.05)].outcome == "recovered"


class TestHelpers:
    def test_base_config_overrides(self):
        cfg = api.base_config(base=ci_config(), sms=4)
        assert cfg.gpu.num_sms == 4

    def test_resolve_store(self, tmp_path):
        assert api.resolve_store(use_store=False) is None
        store = api.resolve_store(str(tmp_path))
        assert isinstance(store, ResultStore)
        assert api.resolve_store(store) is store

    def test_package_level_reexports(self):
        import repro
        assert repro.api is api
        assert repro.RunRequest is api.RunRequest
        assert repro.run is api.run
        assert repro.sweep is api.sweep
        assert repro.chaos is api.chaos
        assert repro.make_runner is api.make_runner


class TestAuditFacade:
    """``audit=True`` on sweep/chaos gives grid cells the same post-run
    audit that ``api.run`` performs (ROADMAP open item)."""

    def test_sweep_audit_clean(self):
        out = api.sweep("VADD", configs=("NDP(Dyn)",), base=ci_config(),
                        scale="ci", use_store=False, audit=True)
        assert out.audit_failures == {}

    def test_sweep_audit_failures_surface(self, monkeypatch):
        import repro.sim.validate as validate
        monkeypatch.setattr(validate, "audit_system",
                            lambda system, result: ["synthetic violation"])
        out = api.sweep("VADD", configs=("NDP(Dyn)",), base=ci_config(),
                        scale="ci", use_store=False, audit=True)
        assert out.audit_failures == {"NDP(Dyn)": ["synthetic violation"]}

    def test_sweep_audit_failures_never_persisted(self, tmp_path,
                                                  monkeypatch):
        import repro.sim.validate as validate
        monkeypatch.setattr(validate, "audit_system",
                            lambda system, result: ["synthetic violation"])
        out = api.sweep("VADD", configs=("NDP(Dyn)",), base=ci_config(),
                        scale="ci", store=str(tmp_path), use_store=True,
                        audit=True)
        assert out.audit_failures
        assert len(ResultStore(str(tmp_path))) == 0

    def test_sweep_audit_off_by_default(self):
        out = api.sweep("VADD", configs=("NDP(Dyn)",), base=ci_config(),
                        scale="ci", use_store=False)
        assert out.audit_failures == {}

    def test_chaos_reference_audit(self):
        report = api.chaos(scenario="rdf-drop", rates=(0.0,),
                           configs=("NDP(Dyn)",), base=ci_config(),
                           scale="ci", use_store=False, audit=True,
                           max_cycles=5_000_000)
        assert report.ref_audit_failures == {}

    def test_chaos_reference_audit_failures_surface(self, monkeypatch):
        import repro.sim.validate as validate
        monkeypatch.setattr(validate, "audit_system",
                            lambda system, result: ["synthetic violation"])
        report = api.chaos(scenario="rdf-drop", rates=(0.0,),
                           configs=("NDP(Dyn)",), base=ci_config(),
                           scale="ci", use_store=False, audit=True,
                           max_cycles=5_000_000)
        assert report.ref_audit_failures == {
            "VADD/NDP(Dyn)": ["synthetic violation"]}


class TestValidation:
    """``run()`` fails fast with *typed* errors before building any
    simulation state, so the CLI can map them to exit codes and the
    serve daemon to 4xx/5xx statuses."""

    def test_unknown_workload_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown workload 'NOPE'"):
            api.run(_request(workload="NOPE"))

    def test_unknown_config_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown config"):
            api.run(_request(config="NDP(Imaginary)"))

    def test_unknown_sched_raises_valueerror(self):
        with pytest.raises(ValueError, match="unknown scheduler 'bogus'"):
            api.run(_request(sched="bogus"))

    def test_unknown_scale_raises_valueerror(self):
        with pytest.raises(ValueError, match="unknown scale 'huge'"):
            api.run(_request(scale="huge"))

    def test_nonpositive_max_cycles_raises_valueerror(self):
        with pytest.raises(ValueError, match="max_cycles must be positive"):
            api.run(_request(max_cycles=0))

    def test_error_message_lists_choices(self):
        with pytest.raises(KeyError) as exc:
            api.run(_request(workload="NOPE"))
        assert "VADD" in str(exc.value)

    def test_unusable_store_dir_raises_structured_oserror(self, tmp_path):
        # A path nested *under a regular file* cannot be a directory on
        # any platform (tests run as root, so permission bits are moot).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        bad = str(blocker / "store")
        with pytest.raises(OSError, match="cannot use result store at"):
            api.resolve_store(bad)
        with pytest.raises(OSError, match=r"cannot use result store at"):
            api.run(_request(store=bad, use_store=True))

    def test_validation_runs_before_store_side_effects(self, tmp_path):
        with pytest.raises(KeyError):
            api.run(_request(tmp_path, workload="NOPE"))
        assert len(ResultStore(str(tmp_path))) == 0
