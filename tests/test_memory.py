"""Unit tests for the HMC memory substrate: address map, DRAM timing,
FR-FCFS vault scheduling."""

import numpy as np
import pytest

from repro.config import LINE_SIZE, PAGE_SIZE, SystemConfig, ci_config
from repro.memory import (
    AddressMap,
    DRAMRequest,
    DRAMStats,
    DRAMTimingSM,
    HMCStack,
    VaultController,
)
from repro.memory.dram import BankState
from repro.sim.engine import Engine, LinkCounters


@pytest.fixture
def cfg():
    return SystemConfig(num_hmcs=8)


@pytest.fixture
def amap(cfg):
    return AddressMap(cfg)


class TestAddressMap:
    def test_hmc_mapping_is_page_granular(self, amap):
        base = 17 * PAGE_SIZE
        hmcs = {amap.hmc_of(base + off) for off in range(0, PAGE_SIZE, 256)}
        assert len(hmcs) == 1

    def test_hmc_mapping_spreads_pages(self, amap):
        hmcs = {amap.hmc_of(p * PAGE_SIZE) for p in range(256)}
        assert hmcs == set(range(8))

    def test_mapping_depends_on_seed(self, cfg):
        a = AddressMap(cfg)
        import dataclasses
        b = AddressMap(dataclasses.replace(cfg, seed=99))
        pages = list(range(200))
        pa = [a.hmc_of(p * PAGE_SIZE) for p in pages]
        pb = [b.hmc_of(p * PAGE_SIZE) for p in pages]
        assert pa != pb

    def test_vectorized_matches_scalar(self, amap):
        lines = np.arange(0, 4096, 7, dtype=np.int64)
        vec = amap.hmc_of_lines(lines)
        scalar = [amap.hmc_of(int(l) * LINE_SIZE) for l in lines]
        assert vec.tolist() == scalar

    def test_consecutive_lines_interleave_vaults(self, amap):
        vaults = [amap.vault_of_line(l) for l in range(16)]
        assert vaults == list(range(16))

    def test_row_groups_lines(self, amap):
        # Lines of the same (vault, bank) 4KB row share a row number.
        loc0 = amap.decode_line(0)
        loc_same_row = amap.decode_line(16 * 16)  # same vault0/bank0, col 1
        assert (loc0.vault, loc0.bank, loc0.row) == (
            loc_same_row.vault, loc_same_row.bank, loc_same_row.row)

    def test_decode_matches_components(self, amap):
        line = 0xABCDE
        loc = amap.decode_line(line)
        assert loc.vault == amap.vault_of_line(line)
        assert (loc.bank, loc.row) == amap.bank_row_of_line(line)

    def test_bad_geometry_rejected(self, cfg):
        import dataclasses
        hmc = dataclasses.replace(cfg.hmc, num_vaults=12)
        bad = dataclasses.replace(cfg, hmc=hmc)
        with pytest.raises(ValueError):
            AddressMap(bad)


class TestDRAMTiming:
    def test_conversion_to_sm_cycles(self):
        cfg = SystemConfig()
        t = DRAMTimingSM.from_config(cfg.hmc.timing, cfg.gpu.sm_clock_mhz,
                                     cfg.hmc.vault_bus_bytes_per_dram_cycle)
        # 9 DRAM cycles * 1.5ns = 13.5ns = 9.45 SM cycles -> ceil 10
        assert t.tCL == 10
        assert t.tRP == 10
        assert t.tRAS == 26
        assert t.burst == 5   # 128B / 32B-per-cycle = 4 DRAM cyc -> 4.2 -> 5

    def test_row_hit_faster_than_miss(self):
        cfg = SystemConfig()
        t = DRAMTimingSM.from_config(cfg.hmc.timing, cfg.gpu.sm_clock_mhz, 32)
        bank = BankState()
        ready1, act1 = bank.access(row=5, is_write=False, now=0, t=t)
        assert act1
        bank.busy_until = 0  # isolate latency effects
        ready2, act2 = bank.access(row=5, is_write=False, now=100, t=t)
        assert not act2
        assert (ready2 - 100) < ready1

    def test_row_conflict_pays_precharge(self):
        cfg = SystemConfig()
        t = DRAMTimingSM.from_config(cfg.hmc.timing, cfg.gpu.sm_clock_mhz, 32)
        bank = BankState()
        bank.access(row=1, is_write=False, now=0, t=t)
        now = 1000
        ready, act = bank.access(row=2, is_write=False, now=now, t=t)
        assert act
        assert ready - now >= t.tRP + t.tRCD + t.tCL

    def test_write_recovery_holds_bank(self):
        cfg = SystemConfig()
        t = DRAMTimingSM.from_config(cfg.hmc.timing, cfg.gpu.sm_clock_mhz, 32)
        bank = BankState()
        ready, _ = bank.access(row=1, is_write=True, now=0, t=t)
        assert bank.busy_until == ready + t.tWR


def _mk_vault(engine):
    cfg = SystemConfig()
    t = DRAMTimingSM.from_config(cfg.hmc.timing, cfg.gpu.sm_clock_mhz, 32)
    stats = DRAMStats()
    return VaultController(engine, t, num_banks=16, stats=stats), stats, t


class TestVaultController:
    def test_single_request_completes(self):
        e = Engine()
        vault, stats, t = _mk_vault(e)
        done = []
        vault.submit(DRAMRequest(0, False, lambda r: done.append(e.now),
                                 bank=0, row=0))
        e.drain()
        assert len(done) == 1
        assert stats.reads == 1
        assert stats.activations == 1

    def test_fr_fcfs_prefers_row_hits(self):
        e = Engine()
        vault, stats, t = _mk_vault(e)
        order = []
        # Open row 1 on bank 0 with a first access, then queue a row-2 and
        # a row-1 request; the row-1 (hit) must be served first even though
        # the row-2 request is older.
        vault.submit(DRAMRequest(0, False, lambda r: order.append("warm"),
                                 bank=0, row=1))
        e.drain()
        vault.submit(DRAMRequest(1, False, lambda r: order.append("miss"),
                                 bank=0, row=2))
        vault.submit(DRAMRequest(2, False, lambda r: order.append("hit"),
                                 bank=0, row=1))
        e.drain()
        assert order == ["warm", "hit", "miss"]

    def test_banks_overlap(self):
        e = Engine()
        vault, stats, t = _mk_vault(e)
        done = []
        for b in range(4):
            vault.submit(DRAMRequest(b, False,
                                     lambda r: done.append(e.now),
                                     bank=b, row=0))
        e.drain()
        # Four independent banks: completion should be spaced by the data
        # bus (tCCD/burst), not by full access latency.
        spacing = max(done) - min(done)
        assert spacing <= 4 * max(t.tCCD, t.burst) + 2

    def test_row_hit_rate_stat(self):
        e = Engine()
        vault, stats, t = _mk_vault(e)
        for i in range(8):
            vault.submit(DRAMRequest(i, False, lambda r: None, bank=0, row=0))
        e.drain()
        assert stats.row_hits == 7
        assert stats.row_misses == 1
        assert stats.row_hit_rate == pytest.approx(7 / 8)

    def test_queue_peak_tracked(self):
        e = Engine()
        vault, stats, t = _mk_vault(e)
        for i in range(20):
            vault.submit(DRAMRequest(i, False, lambda r: None,
                                     bank=i % 16, row=i))
        assert stats.queue_peak == 20
        e.drain()


class TestHMCStack:
    def test_access_routes_to_owner_only(self):
        e = Engine()
        cfg = ci_config()
        amap = AddressMap(cfg)
        c = LinkCounters()
        stack = HMCStack(e, cfg, hmc_id=0, amap=amap, counters=c)
        # find a line owned by HMC 0
        line = next(l for l in range(10000)
                    if amap.hmc_of(l * LINE_SIZE) == 0)
        wrong = next(l for l in range(10000)
                     if amap.hmc_of(l * LINE_SIZE) != 0)
        done = []
        stack.access_line(line, False, lambda r: done.append(r.line_addr))
        with pytest.raises(ValueError):
            stack.access_line(wrong, False, lambda r: None)
        e.drain()
        assert done == [line]
        assert c.get("intra_hmc") == LINE_SIZE

    def test_peak_bandwidth_near_spec(self):
        e = Engine()
        cfg = SystemConfig()
        amap = AddressMap(cfg)
        stack = HMCStack(e, cfg, 0, amap, LinkCounters())
        bw = stack.peak_bandwidth_bytes_per_cycle()
        gbps = bw * cfg.gpu.sm_clock_mhz * 1e6 / 1e9
        # HMC spec: ~320 GB/s peak DRAM bandwidth per stack.
        assert 200 <= gbps <= 400
