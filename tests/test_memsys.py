"""Unit tests for the GPU memory hierarchy glue (repro.sim.memsys)."""


from repro.config import LINE_SIZE, ci_config
from repro.gpu.coalescer import MemAccess
from repro.memory.address import AddressMap
from repro.memory.hmc import HMCStack
from repro.network.fabric import GPULinks
from repro.sim.engine import Engine, LinkCounters
from repro.sim.memsys import GPUMemSystem


class FakeSM:
    def __init__(self, sm_id=0):
        self.sm_id = sm_id


def mk_memsys():
    e = Engine()
    cfg = ci_config()
    counters = LinkCounters()
    amap = AddressMap(cfg)
    links = GPULinks(e, cfg, counters)
    hmcs = [HMCStack(e, cfg, i, amap, counters)
            for i in range(cfg.num_hmcs)]
    return e, GPUMemSystem(e, cfg, amap=amap, gpu_links=links, hmcs=hmcs)


def acc(line, words=32):
    return MemAccess(line, words, False)


class TestLoadPath:
    def test_cold_load_goes_to_dram_and_fills(self):
        e, mem = mk_memsys()
        done = []
        assert mem.load(FakeSM(), acc(100), lambda: done.append(e.now))
        e.drain()
        assert len(done) == 1
        assert done[0] > 50                    # full DRAM round trip
        assert mem.l1[0].contains(100)
        part = mem.amap.hmc_of(100 * LINE_SIZE)
        assert mem.l2[part].contains(100)

    def test_l1_hit_is_fast(self):
        e, mem = mk_memsys()
        mem.load(FakeSM(), acc(5), lambda: None)
        e.drain()
        t0 = e.now
        done = []
        mem.load(FakeSM(), acc(5), lambda: done.append(e.now - t0))
        e.drain()
        assert done == [mem.l1_latency]

    def test_l2_hit_skips_dram(self):
        e, mem = mk_memsys()
        # SM 0 fetches; SM 1 then hits in the shared L2.
        mem.load(FakeSM(0), acc(9), lambda: None)
        e.drain()
        reads_before = sum(h.stats.reads for h in mem.hmcs)
        done = []
        mem.load(FakeSM(1), acc(9), lambda: done.append(1))
        e.drain()
        assert done
        assert sum(h.stats.reads for h in mem.hmcs) == reads_before

    def test_l1_mshr_merge_single_dram_access(self):
        e, mem = mk_memsys()
        done = []
        for _ in range(4):
            mem.load(FakeSM(), acc(7), lambda: done.append(1))
        e.drain()
        assert len(done) == 4
        assert sum(h.stats.reads for h in mem.hmcs) == 1

    def test_l1_mshr_full_rejects(self):
        e, mem = mk_memsys()
        cap = mem.l1_mshr[0].num_entries
        for i in range(cap):
            assert mem.load(FakeSM(), acc(1000 + i), lambda: None)
        assert not mem.load(FakeSM(), acc(5000), lambda: None)

    def test_l2_mshr_full_parks_and_drains(self):
        e, mem = mk_memsys()
        # Flood one slice beyond its MSHR capacity from several SMs.
        part = mem.amap.hmc_of(0)
        lines = [l for l in range(4000)
                 if mem.amap.hmc_of(l * LINE_SIZE) == part]
        done = []
        n = mem.l2_mshr[part].num_entries + 20
        for i, l in enumerate(lines[:n]):
            ok = mem.load(FakeSM(i % len(mem.l1)), acc(l),
                          lambda: done.append(1))
            assert ok   # L1 MSHRs spread across SMs; L2 parks overflow
        e.drain()
        assert len(done) == n
        assert all(len(wq) == 0 for wq in mem._l2_waiters)


class TestStorePath:
    def test_write_through_reaches_dram(self):
        e, mem = mk_memsys()
        assert mem.store(FakeSM(), acc(42, words=8))
        e.drain()
        assert sum(h.stats.writes for h in mem.hmcs) == 1

    def test_store_does_not_allocate(self):
        e, mem = mk_memsys()
        mem.store(FakeSM(), acc(42))
        e.drain()
        assert not mem.l1[0].contains(42)


class TestNDPHooks:
    def test_rdf_probe_checks_l1_then_l2(self):
        e, mem = mk_memsys()
        assert not mem.rdf_probe(0, 77)
        part = mem.amap.hmc_of(77 * LINE_SIZE)
        mem.l2[part].insert(77)
        assert mem.rdf_probe(0, 77)
        mem.l1[0].insert(78)
        assert mem.rdf_probe(0, 78)

    def test_rdf_probe_does_not_fill(self):
        e, mem = mk_memsys()
        mem.rdf_probe(0, 99)
        assert not mem.l1[0].contains(99)

    def test_invalidate_everywhere(self):
        e, mem = mk_memsys()
        part = mem.amap.hmc_of(7 * LINE_SIZE)
        mem.l2[part].insert(7)
        for l1 in mem.l1:
            l1.insert(7)
        mem.invalidate(7)
        assert not mem.l2[part].contains(7)
        assert all(not l1.contains(7) for l1 in mem.l1)
