"""The ``repro serve`` subsystem: token bucket, fair queue, coalescer,
shard pool, HTTP daemon admission/error mapping, and the loadtest
acceptance criteria (coalesced duplicates, exactly-once per unique cell,
bit-identical results, structured 429 rejections).

Daemon tests run in ``mode="thread"`` on an ephemeral port so they stay
in-process and deterministic; the worker seam (``ServeDaemon(...,
worker=...)``) swaps in gated/flaky stubs where wall-clock or failure
injection matters.
"""

import contextlib
import http.client
import json
import threading
import time

import pytest

from repro import api
from repro.serve import (
    Coalescer,
    Job,
    JobQueue,
    QueueClosed,
    ServeClient,
    ServeConfig,
    ServeDaemon,
    ServeError,
    ShardPool,
    TokenBucket,
    execute_job,
    run_loadtest,
)
from repro.serve.daemon import _HotSet
from repro.serve.loadtest import build_schedule
from repro.sim.serialize import result_to_dict

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def stub_worker(kind, payload):
    """Instant worker: echoes enough shape for the daemon/loadtest."""
    return {"kind": kind, "ok": True, "source": "stub",
            "store_key": f"stub-{payload.get('max_cycles')}", "result": None}


class GatedWorker:
    """Blocks every call on a gate; records call payloads."""

    def __init__(self):
        self.gate = threading.Event()
        self.calls = []
        self._lock = threading.Lock()

    def __call__(self, kind, payload):
        with self._lock:
            self.calls.append(payload.get("max_cycles"))
        assert self.gate.wait(30.0), "test gate never opened"
        return {"kind": kind, "ok": True, "source": "stub",
                "store_key": f"stub-{payload.get('max_cycles')}",
                "result": None}


class FlakyWorker:
    """First ``hang_calls`` calls hang past the job timeout, then OK."""

    def __init__(self, hang_calls=1, hang_seconds=5.0):
        self.hang_calls = hang_calls
        self.hang_seconds = hang_seconds
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, kind, payload):
        with self._lock:
            self.calls += 1
            attempt = self.calls
        if attempt <= self.hang_calls:
            time.sleep(self.hang_seconds)
        return {"ok": True, "attempt": attempt}


@contextlib.contextmanager
def serve_daemon(worker=None, **kw):
    kw.setdefault("mode", "thread")
    kw.setdefault("port", 0)
    kw.setdefault("shards", 2)
    kw.setdefault("job_timeout", 60.0)
    kw.setdefault("request_timeout", 60.0)
    daemon = ServeDaemon(ServeConfig(**kw), worker=worker)
    daemon.start()
    try:
        yield daemon, ServeClient(daemon.address, client_id="test")
    finally:
        daemon.stop()


def run_payload(max_cycles=5_000_000, **overrides):
    payload = {"workload": "VADD", "config": "Baseline", "scale": "ci",
               "max_cycles": max_cycles}
    payload.update(overrides)
    return payload


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def make_job(client="c", key="00000000aa", kind="run", payload=None):
    return Job(kind=kind, key=key, payload=payload or {}, client=client)


# ---------------------------------------------------------------------------
# unit: token bucket
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_disabled_when_rate_nonpositive(self):
        tb = TokenBucket(0.0)
        assert not tb.enabled
        for _ in range(100):
            assert tb.allow("anyone") == (True, 0.0)
        assert tb.rejections == 0

    def test_burst_then_reject_with_retry_after(self):
        clock = FakeClock()
        tb = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert tb.allow("c") == (True, 0.0)
        assert tb.allow("c") == (True, 0.0)
        ok, retry = tb.allow("c")
        assert not ok
        assert retry == pytest.approx(1.0)
        assert tb.rejections == 1

    def test_refill_over_time(self):
        clock = FakeClock()
        tb = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        tb.allow("c"), tb.allow("c")
        clock.t = 0.5                       # half a token: still rejected
        ok, retry = tb.allow("c")
        assert not ok
        assert retry == pytest.approx(0.5)
        clock.t = 1.5                       # a full token accrued
        assert tb.allow("c") == (True, 0.0)

    def test_buckets_are_per_client(self):
        clock = FakeClock()
        tb = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert tb.allow("a")[0]
        assert not tb.allow("a")[0]
        assert tb.allow("b")[0]             # fresh client, fresh burst


# ---------------------------------------------------------------------------
# unit: fair queue + coalescer
# ---------------------------------------------------------------------------


class TestJobQueue:
    def test_round_robin_fairness(self):
        q = JobQueue(max_depth=8)
        for key in ("k1", "k2", "k3"):
            q.push(make_job("a", key))
        q.push(make_job("b", "k4"))
        order = [q.pop(timeout=0) for _ in range(4)]
        assert [j.client for j in order] == ["a", "b", "a", "a"]
        # FIFO within a lane is preserved.
        assert [j.key for j in order if j.client == "a"] == ["k1", "k2", "k3"]

    def test_overflow_raises(self):
        q = JobQueue(max_depth=2)
        q.push(make_job("a", "k1"))
        q.push(make_job("b", "k2"))
        with pytest.raises(OverflowError, match="full"):
            q.push(make_job("c", "k3"))

    def test_close_rejects_push_and_unblocks_pop(self):
        q = JobQueue()
        q.push(make_job("a", "k1"))
        q.close()
        with pytest.raises(QueueClosed):
            q.push(make_job("a", "k2"))
        # Queued work is still served before the closed signal.
        assert q.pop(timeout=0).key == "k1"
        with pytest.raises(QueueClosed):
            q.pop(timeout=0)

    def test_drain_empties_every_lane(self):
        q = JobQueue()
        q.push(make_job("a", "k1"))
        q.push(make_job("b", "k2"))
        drained = q.drain()
        assert {j.key for j in drained} == {"k1", "k2"}
        assert q.depth == 0

    def test_pop_timeout_returns_none(self):
        assert JobQueue().pop(timeout=0.01) is None


class TestCoalescer:
    def test_duplicate_key_attaches_to_inflight_job(self):
        co = Coalescer()
        first, coalesced = co.admit(make_job("a", "k"))
        assert not coalesced
        second, coalesced = co.admit(make_job("b", "k"))
        assert coalesced
        assert second is first
        assert first.waiters == 2
        assert co.hits == 1
        assert co.inflight() == 1

    def test_resolve_retires_key_and_publishes_value(self):
        co = Coalescer()
        job, _ = co.admit(make_job("a", "k"))
        co.resolve(job, value={"ok": True})
        assert job.future.result(timeout=1) == {"ok": True}
        assert co.inflight() == 0
        # A fresh request for the same key is a new job, not a coalesce.
        _, coalesced = co.admit(make_job("a", "k"))
        assert not coalesced

    def test_resolve_error_raises_for_every_waiter(self):
        co = Coalescer()
        job, _ = co.admit(make_job("a", "k"))
        co.admit(make_job("b", "k"))
        co.resolve(job, error=TimeoutError("deadline"))
        with pytest.raises(TimeoutError):
            job.future.result(timeout=1)


# ---------------------------------------------------------------------------
# unit: shard pool
# ---------------------------------------------------------------------------


def _pool_run(pool, job):
    done = threading.Event()
    box = {}

    def on_done(j, value, error):
        box["value"], box["error"] = value, error
        done.set()

    pool.submit(job, on_done)
    assert done.wait(30.0), "job never completed"
    return box["value"], box["error"]


class TestShardPool:
    def test_shard_routing_is_stable_and_hashless(self):
        pool = ShardPool(shards=4, mode="thread", worker=stub_worker)
        try:
            assert pool.shard_of("00000000" + "f" * 56) == 0
            assert pool.shard_of("00000007" + "f" * 56) == 3
            # Same key, same shard, every time (no per-process hash salt).
            key = "deadbeef" + "0" * 56
            assert pool.shard_of(key) == pool.shard_of(key)
            # Non-hex keys fall back to a byte sum, still in range.
            assert 0 <= pool.shard_of("not-hex!") < 4
        finally:
            pool.shutdown()

    def test_timeout_replaces_worker_and_retries_once(self):
        counts = {}

        def on_counter(name, n=1):
            counts[name] = counts.get(name, 0) + n

        flaky = FlakyWorker(hang_calls=1, hang_seconds=3.0)
        pool = ShardPool(shards=1, mode="thread", job_timeout=0.2,
                         worker=flaky, on_counter=on_counter)
        try:
            value, error = _pool_run(pool, make_job())
            assert error is None
            assert value["attempt"] == 2
            assert pool.restarts == 1
            assert counts["serve.worker.restarts"] == 1
            assert counts["serve.worker.retries"] == 1
        finally:
            pool.shutdown()

    def test_timeout_on_both_attempts_fails_the_job(self):
        flaky = FlakyWorker(hang_calls=2, hang_seconds=3.0)
        pool = ShardPool(shards=1, mode="thread", job_timeout=0.2,
                         worker=flaky)
        try:
            value, error = _pool_run(pool, make_job())
            assert value is None
            assert isinstance(error, TimeoutError)
            assert "worker deadline" in str(error)
            assert pool.restarts == 2
        finally:
            pool.shutdown()

    def test_application_error_returned_without_worker_restart(self):
        calls = []

        def bad_request(kind, payload):
            calls.append(kind)
            raise KeyError("unknown workload 'NOPE'")

        pool = ShardPool(shards=1, mode="thread", worker=bad_request)
        try:
            value, error = _pool_run(pool, make_job())
            assert value is None
            assert isinstance(error, KeyError)
            assert len(calls) == 1              # no retry
            assert pool.restarts == 0           # worker kept
        finally:
            pool.shutdown()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown pool mode"):
            ShardPool(mode="fiber")

    def test_execute_job_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            execute_job("frobnicate", {})


class TestHotSet:
    def test_lru_eviction(self):
        hot = _HotSet(2)
        hot.put("a", {"v": 1})
        hot.put("b", {"v": 2})
        assert hot.get("a") == {"v": 1}     # refresh 'a'
        hot.put("c", {"v": 3})              # evicts 'b', the LRU entry
        assert len(hot) == 2
        assert hot.get("b") is None
        assert hot.get("a") == {"v": 1}

    def test_zero_capacity_disables(self):
        hot = _HotSet(0)
        hot.put("a", {"v": 1})
        assert len(hot) == 0
        assert hot.get("a") is None


# ---------------------------------------------------------------------------
# unit: loadtest schedule
# ---------------------------------------------------------------------------


class TestBuildSchedule:
    KW = dict(clients=4, requests=4, duplicates=0.5, seed=7,
              workload="VADD", config="Baseline", scale="ci",
              max_cycles=2_000_000)

    def test_deterministic_per_seed(self):
        assert build_schedule(**self.KW) == build_schedule(**self.KW)
        other = build_schedule(**dict(self.KW, seed=8))
        assert other != build_schedule(**self.KW)

    def test_shared_prefix_is_identical_across_clients(self):
        schedules = build_schedule(**self.KW)
        assert len(schedules) == 4
        assert all(len(plan) == 4 for plan in schedules)
        shared = [plan[:2] for plan in schedules]
        assert all(s == shared[0] for s in shared)
        # Unique tails are disjoint across clients.
        tails = [frozenset(p["max_cycles"] for p in plan[2:])
                 for plan in schedules]
        for i, a in enumerate(tails):
            for b in tails[i + 1:]:
                assert not (a & b)

    def test_mix_substitutes_grid_kinds_round_robin(self):
        schedules = build_schedule(
            **dict(self.KW, mix="run,sweep,chaos,bench,explore"))
        kinds = [p["kind"] for plan in schedules for p in plan]
        for kind in ("sweep", "chaos", "bench", "explore"):
            assert kinds.count(kind) == 1
        assert kinds.count("run") == 12


# ---------------------------------------------------------------------------
# daemon: admission, errors, coalescing (thread mode, stub workers)
# ---------------------------------------------------------------------------


class TestDaemonErrors:
    def test_unknown_workload_is_structured_400(self):
        with serve_daemon() as (_, client):
            with pytest.raises(ServeError) as exc:
                client.run(**run_payload(workload="NOPE"))
            assert exc.value.status == 400
            assert exc.value.body["error"] == "KeyError"
            assert "NOPE" in exc.value.body["detail"]

    def test_unknown_config_is_structured_400(self):
        with serve_daemon() as (_, client):
            with pytest.raises(ServeError) as exc:
                client.run(**run_payload(config="NDP(Imaginary)"))
            assert exc.value.status == 400
            assert exc.value.body["error"] == "KeyError"

    def test_bad_sched_is_structured_400(self):
        with serve_daemon() as (_, client):
            with pytest.raises(ServeError) as exc:
                client.run(**run_payload(sched="bogus"))
            assert exc.value.status == 400
            assert exc.value.body["error"] == "ValueError"

    def test_unknown_run_field_is_structured_400(self):
        with serve_daemon(worker=stub_worker) as (_, client):
            with pytest.raises(ServeError) as exc:
                client.run(**run_payload(frobnicate=1))
            assert exc.value.status == 400
            assert exc.value.body["error"] == "TypeError"
            assert "frobnicate" in exc.value.body["detail"]

    def test_unknown_endpoint_is_404(self):
        with serve_daemon(worker=stub_worker) as (_, client):
            with pytest.raises(ServeError) as exc:
                client.request("POST", "/v1/frobnicate", {})
            assert exc.value.status == 404

    def test_invalid_json_body_is_400(self):
        with serve_daemon(worker=stub_worker) as (daemon, _):
            conn = http.client.HTTPConnection("127.0.0.1", daemon.port,
                                              timeout=10)
            try:
                conn.request("POST", "/v1/run", body=b"not json",
                             headers={"Content-Type": "application/json"})
                resp = conn.getresponse()
                body = json.loads(resp.read())
            finally:
                conn.close()
            assert resp.status == 400
            assert body["error"] == "bad-json"

    def test_rate_limited_is_429_with_retry_after(self):
        with serve_daemon(worker=stub_worker, rate=0.001,
                          burst=1.0) as (daemon, client):
            assert client.run(**run_payload())["ok"]
            with pytest.raises(ServeError) as exc:
                client.run(**run_payload(max_cycles=5_000_001))
            assert exc.value.status == 429
            assert exc.value.body["error"] == "rate-limited"
            assert exc.value.retry_after > 0
            assert daemon.stats()["rate_limited"] == 1

    def test_queue_full_is_503(self, monkeypatch):
        # The dispatcher drains the queue into the shard FIFOs as fast
        # as requests arrive, so force the overflow at the push seam and
        # assert the daemon's 503 mapping + coalescer cleanup.
        with serve_daemon(worker=stub_worker) as (daemon, client):
            def full(job):
                raise OverflowError("job queue full (forced)")

            monkeypatch.setattr(daemon.queue, "push", full)
            with pytest.raises(ServeError) as exc:
                client.run(**run_payload())
            assert exc.value.status == 503
            assert exc.value.body["error"] == "OverflowError"
            assert daemon.coalescer.inflight() == 0  # job was retired

    def test_requests_after_queue_close_are_503(self):
        with serve_daemon(worker=stub_worker) as (daemon, client):
            daemon.queue.close()
            with pytest.raises(ServeError) as exc:
                client.run(**run_payload())
            assert exc.value.status == 503
            assert exc.value.body["error"] == "QueueClosed"


class TestDaemonCoalescing:
    def test_identical_inflight_requests_simulate_once(self):
        gated = GatedWorker()
        with serve_daemon(worker=gated) as (daemon, client):
            responses = []
            lock = threading.Lock()

            def post():
                resp = client.run(**run_payload())
                with lock:
                    responses.append(resp)

            first = threading.Thread(target=post, daemon=True)
            first.start()
            assert wait_until(lambda: len(gated.calls) == 1)
            rest = [threading.Thread(target=post, daemon=True)
                    for _ in range(5)]
            for t in rest:
                t.start()
            assert wait_until(
                lambda: daemon.stats()["coalesce_hits"] == 5)
            gated.gate.set()
            for t in [first] + rest:
                t.join(timeout=30)
            assert len(responses) == 6
            assert len(gated.calls) == 1            # exactly one execution
            flags = sorted(r["coalesced"] for r in responses)
            assert flags == [False] + [True] * 5
            assert daemon.stats()["coalesce_hits"] == 5

    def test_distinct_cells_do_not_coalesce(self):
        with serve_daemon(worker=stub_worker) as (daemon, client):
            client.run(**run_payload(max_cycles=5_000_000))
            client.run(**run_payload(max_cycles=5_000_123))
            assert daemon.stats()["coalesce_hits"] == 0

    def test_shutdown_endpoint_stops_the_daemon(self):
        with serve_daemon(worker=stub_worker) as (daemon, client):
            assert client.healthz()["ok"]
            assert client.shutdown()["ok"]
            assert wait_until(lambda: daemon._stopped.is_set(), timeout=15)


class TestDaemonBatch:
    def test_batch_runs_all_jobs_and_preserves_order(self):
        with serve_daemon(worker=stub_worker) as (daemon, client):
            resp = client.batch([
                {"kind": "run", **run_payload(max_cycles=5_000_000)},
                {"kind": "run", **run_payload(max_cycles=5_000_111)},
                {"kind": "run", **run_payload(max_cycles=5_000_222)},
            ])
            assert resp["count"] == 3 and resp["ok"] == 3
            keys = [r["body"]["store_key"] for r in resp["results"]]
            assert keys == ["stub-5000000", "stub-5000111", "stub-5000222"]
            assert all(r["status"] == 200 for r in resp["results"])
            stats = daemon.stats()
            assert stats["counters"]["serve.batch.requests"] == 1
            assert stats["counters"]["serve.batch.jobs"] == 3

    def test_duplicate_jobs_inside_a_batch_coalesce(self):
        with serve_daemon(worker=stub_worker) as (daemon, client):
            resp = client.batch([
                {"kind": "run", **run_payload()},
                {"kind": "run", **run_payload()},
            ])
            assert resp["ok"] == 2
            flags = sorted(r["body"]["coalesced"] for r in resp["results"])
            assert flags == [False, True]
            assert daemon.stats()["coalesce_hits"] == 1

    def test_malformed_envelope_is_400(self):
        with serve_daemon(worker=stub_worker) as (_, client):
            with pytest.raises(ServeError) as e:
                client.request("POST", "/v1/batch", {"jobs": "nope"})
            assert e.value.status == 400
            with pytest.raises(ServeError) as e:
                client.request("POST", "/v1/batch", {"jobs": []})
            assert e.value.status == 400

    def test_per_item_failures_ride_their_slot(self):
        with serve_daemon(worker=stub_worker) as (_, client):
            resp = client.batch([
                {"kind": "run", **run_payload()},
                {"no_kind": True},
                {"kind": "teleport"},
            ])
            assert resp["count"] == 3 and resp["ok"] == 1
            statuses = [r["status"] for r in resp["results"]]
            assert statuses == [200, 400, 404]

    def test_batch_items_are_rate_limited_individually(self):
        with serve_daemon(worker=stub_worker, rate=0.001,
                          burst=2) as (_, client):
            resp = client.batch([
                {"kind": "run", **run_payload(max_cycles=5_000_000 + i)}
                for i in range(4)
            ])
            statuses = [r["status"] for r in resp["results"]]
            assert statuses.count(200) == 2      # burst allowance
            assert statuses.count(429) == 2      # charged per item
            assert resp["ok"] == 2

    def test_stats_exposes_shard_queue_depths(self):
        gated = GatedWorker()
        with serve_daemon(worker=gated, shards=2) as (daemon, client):
            t = threading.Thread(target=lambda: client.run(**run_payload()),
                                 daemon=True)
            t.start()
            assert wait_until(lambda: len(gated.calls) == 1)
            depths = daemon.stats()["shard_queue_depths"]
            assert depths == [0, 0]              # popped, now in-flight
            assert len(depths) == 2
            gated.gate.set()
            t.join(timeout=30)


# ---------------------------------------------------------------------------
# daemon: real simulations (thread mode, default worker)
# ---------------------------------------------------------------------------


class TestDaemonSimulation:
    def test_run_bit_identical_to_direct_api_and_hot_on_repeat(self):
        direct = api.run(api.RunRequest(workload="VADD", config="Baseline",
                                        scale="ci", max_cycles=5_000_000,
                                        use_store=False))
        with serve_daemon() as (daemon, client):
            served = client.run(**run_payload())
            assert served["ok"] and served["outcome"] == "clean"
            assert served["source"] == "simulated"
            assert not served["coalesced"]
            assert (json.dumps(served["result"], sort_keys=True)
                    == json.dumps(result_to_dict(direct.result),
                                  sort_keys=True))
            again = client.run(**run_payload())
            assert again["source"] == "hot"
            assert not again["coalesced"]
            assert (json.dumps(again["result"], sort_keys=True)
                    == json.dumps(served["result"], sort_keys=True))
            assert daemon.stats()["counters"]["serve.hot.hits"] == 1

    def test_warm_store_survives_daemon_restart(self, tmp_path):
        store = str(tmp_path / "store")
        with serve_daemon(store=store) as (_, client):
            first = client.run(**run_payload())
            assert first["source"] == "simulated"
        with serve_daemon(store=store) as (daemon, client):
            warm = client.run(**run_payload())
            assert warm["source"] == "store"
            assert warm["store_key"] == first["store_key"]
            assert (json.dumps(warm["result"], sort_keys=True)
                    == json.dumps(first["result"], sort_keys=True))
            assert daemon.stats()["counters"]["serve.warm.hits"] == 1

    def test_metrics_endpoint_and_jsonl_export(self, tmp_path):
        out = str(tmp_path / "serve-metrics.jsonl")
        with serve_daemon(worker=stub_worker,
                          metrics_out=out) as (daemon, client):
            client.run(**run_payload())
            records = client.metrics()
            summary = next(r for r in records if r.get("kind") == "summary")
            assert summary["counters"]["serve.requests"] == 1
            assert "serve.latency.ms" in summary["histograms"]
        with open(out) as f:
            exported = [json.loads(line) for line in f if line.strip()]
        final = next(r for r in exported if r.get("kind") == "summary")
        assert final["counters"]["serve.jobs.done"] == 1
        meta = next(r for r in exported if r.get("kind") == "meta")
        assert meta["role"] == "serve"


# ---------------------------------------------------------------------------
# loadtest acceptance
# ---------------------------------------------------------------------------


class TestLoadtest:
    def test_acceptance_coalesced_duplicates_exactly_once(self, tmp_path):
        """The ISSUE acceptance bar: >=8 concurrent clients, 50%
        duplicate cells, cold store -> every request completes, the
        coalesce-hit metric accounts for every duplicate, and each
        unique cell simulates exactly once."""
        clients, requests = 8, 4
        with serve_daemon(store=str(tmp_path / "store")) as (daemon, _):
            report = run_loadtest(url=daemon.address, clients=clients,
                                  requests=requests, duplicates=0.5,
                                  seed=3, scale="ci",
                                  max_cycles=2_000_000,
                                  out=str(tmp_path / "loadtest.json"))
        assert report["total_requests"] == clients * requests
        assert report["completed"] == report["total_requests"]
        assert report["rejected"] == {}
        assert report["shared_cells"] == 2
        assert report["expected_duplicates"] == 2 * (clients - 1)
        assert report["coalesce_hits"] >= report["expected_duplicates"]
        # Exactly-once: one fresh simulation per distinct cell, no more.
        distinct = 2 + clients * (requests - 2)
        assert report["distinct_cells"] == distinct
        assert report["simulated_cells"] == distinct
        for pct in ("p50", "p90", "p99"):
            assert report["latency_ms"][pct] >= 0
        saved = json.loads((tmp_path / "loadtest.json").read_text())
        assert saved["coalesce_hits"] == report["coalesce_hits"]

    def test_mixed_kinds_reach_every_endpoint(self):
        with serve_daemon(worker=stub_worker) as (daemon, _):
            report = run_loadtest(url=daemon.address, clients=5,
                                  requests=2, duplicates=0.5, seed=0,
                                  scale="ci", max_cycles=2_000_000,
                                  mix="run,sweep,chaos,bench,explore")
        assert report["completed"] == report["total_requests"]
        kinds = {r["kind"] for r in report["records"]}
        assert kinds == {"run", "sweep", "chaos", "bench", "explore"}

    def test_rate_limited_clients_get_structured_429s(self):
        with serve_daemon(worker=stub_worker, rate=0.001,
                          burst=1.0) as (daemon, _):
            report = run_loadtest(url=daemon.address, clients=4,
                                  requests=3, duplicates=0.0, seed=1,
                                  scale="ci", max_cycles=2_000_000)
        assert report["rejected"].get("429", 0) > 0
        assert report["rate_limited"] == report["rejected"]["429"]
        limited = [r for r in report["records"] if r.get("status") == 429]
        assert limited
        assert all(r["error"] == "rate-limited" for r in limited)
        assert all(r["retry_after"] > 0 for r in limited)
        # Admitted + rejected must still account for every request.
        assert (report["completed"] + sum(report["rejected"].values())
                == report["total_requests"])
