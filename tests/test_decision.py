"""Unit tests for the offload decision policies (Sections 6, 7.1-7.3)."""

import pytest

from repro.config import NDPConfig, OffloadMode
from repro.core.decision import (
    AlwaysOffload,
    CacheLocalityTracker,
    DynamicDecider,
    HillClimbingController,
    NeverOffload,
    StaticRatioDecider,
    make_decider,
)
from repro.isa import BasicBlock, Kernel, alu, analyze_kernel, ld, st


def sample_block():
    k = Kernel("k", [BasicBlock([
        ld(4, 0, "A"), ld(5, 1, "B"), alu(6, 4, 5), st(6, 2, "C"),
    ])])
    return analyze_kernel(k).blocks[0]


class FakeDynBlock:
    def __init__(self, block):
        self.block = block


class TestBasicDeciders:
    def test_never(self):
        assert not NeverOffload().decide(0, None)

    def test_always(self):
        assert AlwaysOffload().decide(0, None)

    def test_static_extremes(self):
        assert StaticRatioDecider(1.0).decide(0, None)
        assert not StaticRatioDecider(0.0).decide(0, None)

    def test_static_ratio_statistics(self):
        d = StaticRatioDecider(0.3, seed=2)
        n = sum(d.decide(0, None) for _ in range(10_000))
        assert 0.27 <= n / 10_000 <= 0.33

    def test_static_validates_range(self):
        with pytest.raises(ValueError):
            StaticRatioDecider(1.5)

    def test_factory(self):
        assert isinstance(make_decider(NDPConfig(mode=OffloadMode.OFF)),
                          NeverOffload)
        assert isinstance(make_decider(NDPConfig(mode=OffloadMode.NAIVE)),
                          AlwaysOffload)
        d = make_decider(NDPConfig(mode=OffloadMode.STATIC, static_ratio=0.4))
        assert isinstance(d, StaticRatioDecider) and d.ratio == 0.4
        assert isinstance(make_decider(NDPConfig(mode=OffloadMode.DYNAMIC)),
                          DynamicDecider)
        dc = make_decider(NDPConfig(mode=OffloadMode.DYNAMIC_CACHE))
        assert isinstance(dc, DynamicDecider) and dc.cache_aware


class TestHillClimbing:
    def cfg(self):
        return NDPConfig(mode=OffloadMode.DYNAMIC)

    def test_first_epoch_keeps_ratio(self):
        c = HillClimbingController(self.cfg())
        r0 = c.ratio
        c.end_epoch(1.0)
        assert c.ratio == r0

    def test_warmup_epochs_ignored(self):
        # The first (warmup) epoch's IPC blends cold caches and warp
        # launch; it must not feed a comparison.
        c = HillClimbingController(self.cfg())
        c.end_epoch(100.0)          # warmup, discarded
        c.end_epoch(1.0)            # first recorded sample
        assert c.direction == +1    # no "got worse" flip from warmup
        c.end_epoch(0.5)
        assert c.direction == -1

    def test_climbs_towards_optimum(self):
        # Concave performance curve with optimum at 0.6.
        c = HillClimbingController(self.cfg())
        perf = lambda r: 1.0 - (r - 0.6) ** 2
        for _ in range(60):
            c.end_epoch(perf(c.ratio))
        assert abs(c.ratio - 0.6) <= 0.2

    def test_reverses_direction_on_decline(self):
        c = HillClimbingController(self.cfg())
        c.end_epoch(1.0)   # warmup
        c.end_epoch(1.0)
        d0 = c.direction
        c.end_epoch(0.5)   # got worse -> reverse
        assert c.direction == -d0

    def test_step_shrinks_under_oscillation(self):
        c = HillClimbingController(self.cfg())
        # Monotonically declining IPC: every epoch is worse than the last,
        # so the direction flips every epoch -- sustained oscillation.
        # Algorithm 1 shrinks the step to its minimum; note the published
        # else-branch regrows it by one unit the epoch after hitting the
        # floor, so the step then bounces between min and min+unit.
        steps = []
        for v in (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3):
            c.end_epoch(v)
            steps.append(c.step)
        assert min(steps) == pytest.approx(c.cfg.step_min)
        assert steps[-1] <= c.cfg.step_min + c.cfg.step_unit + 1e-9
        assert max(steps[4:]) < c.cfg.step_max

    def test_step_grows_when_climbing(self):
        c = HillClimbingController(self.cfg())
        c.step = c.cfg.step_min
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            c.end_epoch(v)
        assert c.step == c.cfg.step_max

    def test_ratio_stays_in_bounds(self):
        c = HillClimbingController(self.cfg())
        for i in range(200):
            c.end_epoch(float(i))   # monotone improvement -> keeps pushing
            assert 0.0 <= c.ratio <= 1.0

    def test_never_stuck_at_boundary(self):
        # Parked at a boundary, the controller must step back inside the
        # legal band (and aim inward) instead of freezing forever.
        for boundary, inward in ((1.0, -1), (0.0, +1)):
            c = HillClimbingController(self.cfg())
            c.end_epoch(1.0)        # warmup
            c.end_epoch(1.0)        # first sample
            c.ratio = boundary
            c.end_epoch(2.0)        # improving: would normally keep going
            assert c.ratio != boundary
            assert 0.0 <= c.ratio <= 1.0
            assert c.direction == inward


class TestCacheLocalityTracker:
    def test_no_data_not_suppressed(self):
        t = CacheLocalityTracker()
        assert not t.suppressed(sample_block())

    def test_high_hit_rate_suppresses(self):
        t = CacheLocalityTracker(min_instances=4)
        b = sample_block()
        for _ in range(10):
            t.record_instance(b.block_id, rdf_packets=4, rdf_hits=4)
        assert t.suppressed(b)

    def test_low_hit_rate_not_suppressed(self):
        t = CacheLocalityTracker(min_instances=4)
        b = sample_block()
        for _ in range(10):
            t.record_instance(b.block_id, rdf_packets=4, rdf_hits=0)
        assert not t.suppressed(b)

    def test_paper_benefit_formula(self):
        t = CacheLocalityTracker()
        b = sample_block()
        t.record_instance(b.block_id, rdf_packets=4, rdf_hits=2)
        # ceil(4 * 0.5) * 128 * 32 + 1 store * 4 * 32
        assert t.paper_benefit(b) == 2 * 128 * 32 + 128

    def test_min_instances_gate(self):
        t = CacheLocalityTracker(min_instances=8)
        b = sample_block()
        for _ in range(7):
            t.record_instance(b.block_id, rdf_packets=2, rdf_hits=2)
        assert not t.suppressed(b)
        t.record_instance(b.block_id, rdf_packets=2, rdf_hits=2)
        assert t.suppressed(b)


class TestDynamicDecider:
    def test_cache_aware_suppression_path(self):
        cfg = NDPConfig(mode=OffloadMode.DYNAMIC_CACHE)
        d = DynamicDecider(cfg, cache_aware=True, seed=1)
        b = sample_block()
        for _ in range(10):
            d.record_instance(b.block_id, rdf_packets=4, rdf_hits=4)
        assert not d.decide(0, FakeDynBlock(b))
        assert d.suppressed_count == 1

    def test_non_cache_aware_ignores_stats(self):
        cfg = NDPConfig(mode=OffloadMode.DYNAMIC)
        d = DynamicDecider(cfg, cache_aware=False, seed=1)
        d.controller.ratio = 1.0
        b = sample_block()
        for _ in range(10):
            d.record_instance(b.block_id, rdf_packets=4, rdf_hits=4)
        assert d.decide(0, FakeDynBlock(b))
