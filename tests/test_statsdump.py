"""Tests for the hierarchical statistics dump."""


from repro.analysis.statsdump import dump_stats
from repro.config import ci_config
from repro.sim.runner import make_config
from repro.sim.system import System
from repro.workloads import get_workload


def run_system(config):
    cfg = make_config(config, ci_config())
    system = System(cfg, config_name=config)
    inst = get_workload("VADD").build(cfg, "ci")
    system.set_code_layout(inst.blocks)
    system.load_workload(inst.name, inst.traces)
    return system, system.run()


class TestDumpStats:
    def test_baseline_sections(self):
        system, r = run_system("Baseline")
        text = dump_stats(system, r)
        for section in ("cycles", "stalls:", "gpu.caches:", "gpu.links:",
                        "dram:", "traffic:"):
            assert section in text
        assert "ndp:" not in text          # no NDP in the baseline

    def test_ndp_sections(self):
        system, r = run_system("NaiveNDP")
        text = dump_stats(system, r)
        assert "ndp:" in text and "nsu:" in text
        assert "offloads" in text
        assert "nsu0.instructions" in text

    def test_values_match_result(self):
        system, r = run_system("NaiveNDP")
        text = dump_stats(system, r)
        assert str(r.cycles) in text
        assert str(r.warps_completed) in text

    def test_network_bytes_listed(self):
        system, r = run_system("NaiveNDP")
        text = dump_stats(system, r)
        assert "memory_network:" in text
        assert "total_bytes" in text
