"""Unit tests for invalidation coherence and the page-migration guard
(Sections 4.2 and 4.1.1)."""


from repro.config import ci_config
from repro.core.coherence import PageMigrationGuard
from repro.sim.engine import Engine
from repro.sim.runner import make_config
from repro.sim.system import System
from repro.workloads import get_workload


class FakeController:
    """Controller stub exposing only the WTA-drain interface."""

    def __init__(self, inflight):
        self.inflight = dict(inflight)
        self._waiters = {}

    def can_swap_page_now(self, hmc):
        return self.inflight.get(hmc, 0) == 0

    def wait_for_wta_drain(self, hmc, cb):
        if self.can_swap_page_now(hmc):
            cb()
        else:
            self._waiters.setdefault(hmc, []).append(cb)

    def drain(self, hmc):
        self.inflight[hmc] = 0
        for cb in self._waiters.pop(hmc, []):
            cb()


class TestPageMigrationGuard:
    def test_swap_without_inflight_waits_only_for_fetch(self):
        e = Engine()
        guard = PageMigrationGuard(e, FakeController({0: 0}))
        ready = []
        guard.swap_in_page(0, lambda: ready.append(e.now),
                           fetch_latency=100)
        e.drain()
        assert ready == [100]
        assert guard.stalled_swaps == 0

    def test_swap_blocks_until_wta_drain(self):
        e = Engine()
        ctrl = FakeController({1: 3})
        guard = PageMigrationGuard(e, ctrl)
        ready = []
        guard.swap_in_page(1, lambda: ready.append(e.now),
                           fetch_latency=50)
        e.drain()
        assert ready == []            # still waiting on WTA drain
        assert guard.stalled_swaps == 1
        ctrl.drain(1)
        assert ready == [e.now]

    def test_drain_hidden_under_fetch(self):
        # If the WTA packets drain before the external fetch finishes,
        # the swap costs nothing extra (the paper's overlap argument).
        e = Engine()
        ctrl = FakeController({2: 1})
        guard = PageMigrationGuard(e, ctrl)
        ready = []
        guard.swap_in_page(2, lambda: ready.append(e.now),
                           fetch_latency=500)
        e.at(10, lambda: ctrl.drain(2))
        e.drain()
        assert ready == [500]

    def test_other_stacks_unaffected(self):
        e = Engine()
        ctrl = FakeController({0: 5, 1: 0})
        guard = PageMigrationGuard(e, ctrl)
        ready = []
        guard.swap_in_page(1, lambda: ready.append("ok"), fetch_latency=1)
        e.drain()
        assert ready == ["ok"]


class TestInvalidationEndToEnd:
    def test_ndp_writes_invalidate_cached_lines(self):
        # Run an NDP workload; every line written by an NSU must not
        # remain valid in any GPU cache at the end.
        cfg = make_config("NaiveNDP", ci_config())
        system = System(cfg, config_name="NaiveNDP")
        inst = get_workload("VADD").build(cfg, "ci")
        system.set_code_layout(inst.blocks)
        system.load_workload(inst.name, inst.traces)

        written = set()
        orig = system.ndp.ndp_write

        def spy(nsu, warp, acc):
            written.add(acc.line_addr)
            orig(nsu, warp, acc)

        system.ndp.ndp_write = spy
        system.run()
        assert written
        for line in written:
            part = system.amap.hmc_of(line * 128)
            assert not system.memsys.l2[part].contains(line)
            for l1 in system.memsys.l1:
                assert not l1.contains(line)

    def test_invalidation_counters_consistent(self):
        cfg = make_config("NaiveNDP", ci_config())
        system = System(cfg, config_name="NaiveNDP")
        inst = get_workload("VADD").build(cfg, "ci")
        system.set_code_layout(inst.blocks)
        system.load_workload(inst.name, inst.traces)
        system.run()
        s = system.ndp.stats
        assert s.invalidations_sent == s.ndp_writes
        assert system.memsys.invalidation_bytes == 16 * s.invalidations_sent

    def test_guard_with_real_controller(self):
        cfg = make_config("NaiveNDP", ci_config())
        system = System(cfg, config_name="NaiveNDP")
        inst = get_workload("VADD").build(cfg, "ci")
        system.set_code_layout(inst.blocks)
        system.load_workload(inst.name, inst.traces)
        guard = PageMigrationGuard(system.engine, system.ndp)
        ready = []
        guard.swap_in_page(0, lambda: ready.append(system.engine.now),
                           fetch_latency=10)
        system.run()
        assert len(ready) == 1   # drained during the run
