"""Unit tests for warp state (repro.gpu.warp) and the run helpers
(repro.sim.runner), plus the ACK-before-OFLD.END ordering corner."""

import pytest

from repro.config import OffloadMode, ci_config, paper_config
from repro.gpu.trace import DynInstr
from repro.gpu.warp import INFLIGHT, Warp, WarpState
from repro.isa import alu
from repro.sim.runner import (
    EPOCH_BY_SCALE,
    config_variants,
    make_config,
)


class FakeSM:
    sm_id = 0

    def __init__(self):
        self.woken = []

    def wake_warp(self, warp):
        self.woken.append(warp)


class TestWarpState:
    def mk(self, n=3):
        return Warp(FakeSM(), 0, [DynInstr(alu(1, 0)) for _ in range(n)])

    def test_initial_state(self):
        w = self.mk()
        assert w.state is WarpState.READY
        assert w.pc == 0
        assert w.current_item() is not None

    def test_advance_and_exhaustion(self):
        w = self.mk(2)
        w.advance()
        w.advance()
        assert w.current_item() is None

    def test_srcs_ready_at_defaults_zero(self):
        w = self.mk()
        assert w.srcs_ready_at((5, 6, 7)) == 0

    def test_srcs_ready_at_takes_worst(self):
        w = self.mk()
        w.set_reg_ready(5, 100)
        w.set_reg_ready(6, 50)
        assert w.srcs_ready_at((5, 6)) == 100

    def test_inflight_sentinel(self):
        w = self.mk()
        w.mark_inflight(4)
        assert w.srcs_ready_at((4,)) == INFLIGHT

    def test_resolve_wakes_blocked_warp(self):
        w = self.mk()
        w.block_on_reg(4)
        assert w.state is WarpState.DEP
        w.resolve_reg(4, 10)
        assert w.sm.woken == [w]

    def test_resolve_other_reg_does_not_wake(self):
        w = self.mk()
        w.block_on_reg(4)
        w.resolve_reg(9, 10)
        assert w.sm.woken == []

    def test_block_enter_exit(self):
        w = self.mk()
        w.enter_block("offload")
        assert w.mode == "offload"
        w.sub_pc = 3
        w.mem_seq = 2
        w.exit_block()
        assert w.mode is None
        assert w.sub_pc == 0 and w.mem_seq == 0
        assert w.pc == 1


class TestRunnerHelpers:
    def test_config_variants_complete(self):
        v = config_variants(paper_config())
        assert set(v) == {
            "Baseline", "Baseline_MoreCore", "NaiveNDP",
            "NDP(0.2)", "NDP(0.4)", "NDP(0.6)", "NDP(0.8)", "NDP(1.0)",
            "NDP(Dyn)", "NDP(Dyn)_Cache"}

    def test_fig9_configs_are_known_variants(self):
        from repro.analysis.figures import FIG9_CONFIGS

        v = config_variants(paper_config())
        assert set(FIG9_CONFIGS) <= set(v)

    def test_make_config_modes(self):
        assert make_config("NaiveNDP").ndp.mode == OffloadMode.NAIVE
        assert make_config("NDP(0.6)").ndp.static_ratio == 0.6
        assert make_config("NDP(Dyn)_Cache").ndp.mode == \
            OffloadMode.DYNAMIC_CACHE

    def test_unknown_config_raises(self):
        with pytest.raises(KeyError):
            make_config("NDP(9000)")

    def test_epoch_scaled_per_preset(self):
        assert EPOCH_BY_SCALE["ci"] < EPOCH_BY_SCALE["bench"] <= \
            EPOCH_BY_SCALE["paper"]

    def test_run_sweep_shim_is_gone(self):
        # The deprecated pre-facade shim was removed; repro.api.sweep is
        # the one sweep entry point.
        import repro.sim.runner as runner

        assert not hasattr(runner, "run_sweep")
        assert not hasattr(runner, "Sweep")

    def test_api_sweep_collects_all(self):
        from repro import api

        out = api.sweep("VADD", ["Baseline", "NDP(0.4)"], base=ci_config(),
                        scale="ci", use_store=False)
        assert set(out.results) == {"Baseline", "NDP(0.4)"}
        assert out.speedups["NDP(0.4)"] > 0


class TestAckBeforeEnd:
    def test_ack_arriving_before_gpu_end_still_completes(self):
        # A no-store block whose data hits GPU caches can finish on the
        # NSU before the GPU-side warp reaches OFLD.END; the controller
        # must hold the ACK and complete on end_block.
        from repro.sim.system import System
        from repro.workloads import get_workload

        cfg = make_config("NaiveNDP", ci_config())
        system = System(cfg, config_name="NaiveNDP")
        inst = get_workload("SP").build(cfg, "ci")
        system.set_code_layout(inst.blocks)
        system.load_workload(inst.name, inst.traces)

        orig_end = system.ndp.end_block
        order = {"ack_first": 0}

        def spy_end(off):
            if off.ack_arrived:
                order["ack_first"] += 1
            orig_end(off)

        system.ndp.end_block = spy_end
        r = system.run()
        assert r.warps_completed == inst.num_warps
        assert system.ndp.stats.acks == system.ndp.stats.offloads
