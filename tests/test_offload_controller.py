"""Targeted tests for the GPU-side NDP controller (repro.core.offload)."""


from repro.config import LINE_SIZE, ci_config
from repro.core.target_select import first_instr_target
from repro.gpu.coalescer import MemAccess
from repro.gpu.trace import DynBlock
from repro.sim.runner import make_config
from repro.sim.system import System
from repro.workloads import get_workload


def build_system(workload="VADD", config="NaiveNDP"):
    cfg = make_config(config, ci_config())
    system = System(cfg, config_name=config)
    inst = get_workload(workload).build(cfg, "ci")
    system.set_code_layout(inst.blocks)
    return system, inst


def lines_on(amap, hmc, n, start=0):
    out, line = [], start
    while len(out) < n:
        if amap.hmc_of(line * LINE_SIZE) == hmc:
            out.append(line)
        line += 1
    return out


class FakeWarp:
    wid = 0

    def __init__(self):
        self.completed = False


class FakeSM:
    def __init__(self, sm_id=0):
        self.sm_id = sm_id
        self.completions = []

    def complete_offload(self, warp):
        self.completions.append(warp)


def mk_dynblock(system, inst, hmc=0):
    block = inst.blocks[0]
    lines = lines_on(system.amap, hmc, 3)
    groups = tuple((MemAccess(l, 32, False),) for l in lines)
    return DynBlock(block, groups, 32)


class TestStartBlock:
    def test_target_follows_first_access(self):
        system, inst = build_system()
        item = mk_dynblock(system, inst, hmc=1)
        off = system.ndp.start_block(FakeSM(), FakeWarp(), item)
        assert off.target == 1
        assert off.target == first_instr_target(item.mem_accesses[0],
                                                system.amap)

    def test_pending_buffer_limit_rejects(self):
        system, inst = build_system()
        system.ndp.pending_cap = 0
        off = system.ndp.start_block(FakeSM(), FakeWarp(), mk_dynblock(
            system, inst))
        assert off is None
        assert system.ndp.stats.pending_rejects == 1

    def test_cmd_reaches_nsu(self):
        system, inst = build_system()
        item = mk_dynblock(system, inst, hmc=0)
        system.ndp.start_block(FakeSM(), FakeWarp(), item)
        system.engine.drain()
        assert system.nsus[0].cmds_received == 1

    def test_unique_instance_ids(self):
        system, inst = build_system()
        a = system.ndp.start_block(FakeSM(), FakeWarp(),
                                   mk_dynblock(system, inst))
        b = system.ndp.start_block(FakeSM(), FakeWarp(),
                                   mk_dynblock(system, inst))
        assert a.uid != b.uid


class TestFullBlockFlow:
    def test_end_to_end_ack(self):
        system, inst = build_system()
        sm = FakeSM()
        warp = FakeWarp()
        item = mk_dynblock(system, inst, hmc=0)
        off = system.ndp.start_block(sm, warp, item)
        # VADD block: LD, LD, (alu on NSU), ST -> two RDFs and one WTA.
        assert system.ndp.rdf(off, item.mem_accesses[0])
        assert system.ndp.rdf(off, item.mem_accesses[1])
        assert system.ndp.wta(off, item.mem_accesses[2])
        system.ndp.end_block(off)
        # Drive NSU + events to completion.
        for _ in range(200_000):
            system.engine.process_due()
            for nsu, acc in zip(system.nsus, system._nsu_accs):
                for _ in range(acc.step()):
                    nsu.tick()
            if sm.completions:
                break
            system.engine.now += 1
        assert sm.completions == [warp]
        assert system.ndp.stats.acks == 1
        # The NSU write happened and invalidated GPU caches.
        assert system.ndp.stats.ndp_writes == 1
        assert system.ndp.stats.invalidations_sent == 1

    def test_rdf_cache_hit_ships_from_gpu(self):
        system, inst = build_system()
        item = mk_dynblock(system, inst, hmc=0)
        # Pre-warm the L2 slice with the first load's line.
        line = item.mem_accesses[0][0].line_addr
        part = system.amap.hmc_of(line * LINE_SIZE)
        system.memsys.l2[part].insert(line)
        off = system.ndp.start_block(FakeSM(), FakeWarp(), item)
        system.ndp.rdf(off, item.mem_accesses[0])
        assert off.rdf_hits == 1
        # Cache-hit responses travel over the GPU link, not through DRAM.
        assert system.gpu_links.bytes_down() > 0

    def test_wta_inflight_tracks_owner(self):
        system, inst = build_system()
        item = mk_dynblock(system, inst, hmc=0)
        off = system.ndp.start_block(FakeSM(), FakeWarp(), item)
        store_acc = item.mem_accesses[2][0]
        owner = system.amap.hmc_of(store_acc.line_addr * LINE_SIZE)
        system.ndp.wta(off, item.mem_accesses[2])
        assert system.ndp.wta_inflight[owner] == 1


class TestSeqNumbers:
    def test_seq_increments_across_mem_instrs(self):
        system, inst = build_system()
        item = mk_dynblock(system, inst)
        off = system.ndp.start_block(FakeSM(), FakeWarp(), item)
        assert off.next_seq == 0
        system.ndp.rdf(off, item.mem_accesses[0])
        assert off.next_seq == 1
        system.ndp.rdf(off, item.mem_accesses[1])
        assert off.next_seq == 2
        system.ndp.wta(off, item.mem_accesses[2])
        assert off.next_seq == 3
