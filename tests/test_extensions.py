"""Tests for the optional extensions: the NSU read-only cache (paper
Section 7.1's suggestion for BPROP-like workloads) and the oracle target
selection policy (the Figure 5 alternative)."""

import pytest

from repro.config import ci_config
from repro.sim.runner import run_workload
from repro.sim.system import System
from repro.workloads import Scale, get_workload


def run_with(base, workload, config, scale="ci"):
    return run_workload(workload, config, base=base, scale=scale)


class TestROCache:
    def test_disabled_by_default(self):
        cfg = ci_config().with_mode("naive")
        system = System(cfg)
        assert all(n.ro_cache is None for n in system.nsus)

    def test_enabled_by_config(self):
        cfg = ci_config().with_mode("naive").with_ro_cache(4096)
        system = System(cfg)
        assert all(n.ro_cache is not None for n in system.nsus)

    def test_reduces_bprop_hit_reshipping(self):
        # BPROP's constant structure is re-shipped on every RDF hit; the
        # read-only cache should cut those GPU-link bytes materially.
        scale = Scale("ci", 48, 8)
        base = ci_config()
        without = run_workload("BPROP", "NDP(0.6)", base=base, scale=scale)
        with_ro = run_workload("BPROP", "NDP(0.6)",
                               base=base.with_ro_cache(4096), scale=scale)
        assert with_ro.traffic.gpu_link < without.traffic.gpu_link
        assert with_ro.cycles <= without.cycles * 1.05

    def test_ro_cache_invalidated_by_ndp_writes(self):
        cfg = ci_config().with_mode("naive").with_ro_cache(4096)
        system = System(cfg)
        nsu = system.nsus[0]
        nsu.ro_cache.insert(1234)
        assert nsu.ro_cache_hit(1234)
        nsu.ro_invalidate(1234)
        assert not nsu.ro_cache_hit(1234)

    def test_correct_results_with_ro_cache(self):
        cfg = ci_config().with_ro_cache(4096)
        r = run_workload("BPROP", "NaiveNDP", base=cfg, scale="ci")
        inst = get_workload("BPROP").build(cfg, "ci")
        assert r.warps_completed == inst.num_warps


class TestTargetPolicy:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            ci_config().with_target_policy("magic")

    def test_optimal_reduces_network_traffic(self):
        # The oracle policy places blocks at the modal stack; inter-HMC
        # forwarding bytes must not increase.
        base = ci_config()
        first = run_workload("BFS", "NDP(1.0)", base=base, scale="ci")
        opt = run_workload("BFS", "NDP(1.0)",
                           base=base.with_target_policy("optimal"),
                           scale="ci")
        assert opt.traffic.mem_net <= first.traffic.mem_net

    def test_both_policies_complete_work(self):
        base = ci_config().with_target_policy("optimal")
        r = run_workload("VADD", "NaiveNDP", base=base, scale="ci")
        inst = get_workload("VADD").build(base, "ci")
        assert r.warps_completed == inst.num_warps
