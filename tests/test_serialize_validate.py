"""Tests for result serialization and the post-run invariant auditor."""

import pytest

from repro.config import ci_config
from repro.sim.runner import make_config, run_workload
from repro.sim.serialize import (
    dump_results,
    load_results,
    result_from_dict,
    result_to_dict,
)
from repro.sim.system import System
from repro.sim.validate import AuditError, assert_clean, audit_system
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def sample_result():
    return run_workload("VADD", "NDP(0.4)", base=ci_config(), scale="ci")


class TestSerialization:
    def test_round_trip_preserves_fields(self, sample_result):
        d = result_to_dict(sample_result)
        back = result_from_dict(d)
        assert back.cycles == sample_result.cycles
        assert back.traffic == sample_result.traffic
        assert back.stalls == sample_result.stalls
        assert back.ipc == pytest.approx(sample_result.ipc)

    def test_dump_load_dict(self, sample_result, tmp_path):
        path = tmp_path / "res.json"
        dump_results({"a": sample_result}, str(path))
        loaded = load_results(str(path))
        assert loaded["a"].cycles == sample_result.cycles

    def test_dump_load_list(self, sample_result, tmp_path):
        path = tmp_path / "res.json"
        dump_results([sample_result, sample_result], str(path))
        loaded = load_results(str(path))
        assert len(loaded) == 2
        assert loaded[1].workload == "VADD"

    def test_json_is_plain_types(self, sample_result):
        import json

        text = json.dumps(result_to_dict(sample_result))
        assert "VADD" in text


def run_system(workload="VADD", config="NaiveNDP"):
    cfg = make_config(config, ci_config())
    system = System(cfg, config_name=config)
    inst = get_workload(workload).build(cfg, "ci")
    system.set_code_layout(inst.blocks)
    system.load_workload(inst.name, inst.traces)
    result = system.run()
    return system, result


class TestAudit:
    @pytest.mark.parametrize("config", ["Baseline", "NaiveNDP", "NDP(0.4)",
                                        "NDP(Dyn)_Cache"])
    def test_clean_after_normal_runs(self, config):
        system, result = run_system("VADD", config)
        assert audit_system(system, result) == []

    @pytest.mark.parametrize("workload", ["BFS", "BPROP", "STCL"])
    def test_clean_for_complex_workloads(self, workload):
        system, result = run_system(workload, "NaiveNDP")
        assert_clean(system, result)

    def test_detects_credit_leak(self):
        system, result = run_system()
        system.ndp.credits.release(0, cmd=1, delay=0)   # spurious credit
        failures = audit_system(system, result)
        assert any("credit" in f.lower() for f in failures)

    def test_detects_counter_mismatch(self):
        system, result = run_system()
        system.ndp.stats.acks -= 1
        with pytest.raises(AuditError):
            assert_clean(system, result)
