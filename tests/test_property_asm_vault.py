"""Property-based tests: random kernels through the asm round trip and
the analyzer; random request mixes through the vault scheduler."""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.isa.analyzer import analyze_kernel
from repro.isa.asm import assemble, disassemble
from repro.isa.instructions import Opcode, alu, branch, ld, st as st_instr, sync
from repro.isa.kernel import BasicBlock, Kernel
from repro.memory.dram import DRAMTimingSM
from repro.memory.vault import DRAMRequest, DRAMStats, VaultController
from repro.sim.engine import Engine

# ---------------------------------------------------------------------------
# Random kernel generation
# ---------------------------------------------------------------------------

ARRAYS = ("A", "B", "C", "D")


@st.composite
def instr_strategy(draw, next_reg):
    kind = draw(st.sampled_from(["ld", "st", "alu", "sync"]))
    if kind == "ld":
        dst = next_reg()
        addr = draw(st.integers(0, 3))
        return ld(dst, addr, draw(st.sampled_from(ARRAYS)))
    if kind == "st":
        data = draw(st.integers(4, 30))
        addr = draw(st.integers(0, 3))
        return st_instr(data, addr, draw(st.sampled_from(ARRAYS)))
    if kind == "alu":
        dst = next_reg()
        srcs = draw(st.lists(st.integers(4, 30), min_size=1, max_size=3))
        return alu(dst, *srcs)
    return sync()


@st.composite
def kernel_strategy(draw):
    counter = [40]

    def next_reg():
        counter[0] += 1
        return counter[0]

    blocks = []
    n_blocks = draw(st.integers(1, 3))
    for b in range(n_blocks):
        n = draw(st.integers(1, 8))
        instrs = [draw(instr_strategy(next_reg)) for _ in range(n)]
        if draw(st.booleans()):
            instrs.append(branch())
        blocks.append(BasicBlock(instrs, label=f"b{b}"))
    return Kernel("rand", blocks)


class TestAsmProperties:
    @given(kernel_strategy())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_preserves_ops(self, kernel):
        text = disassemble(kernel)
        back = assemble(text)
        assert [i.op for i in back.all_instrs()] == \
            [i.op for i in kernel.all_instrs()]
        # Idempotent from text onward.
        assert disassemble(back) == text

    @given(kernel_strategy())
    @settings(max_examples=60, deadline=None)
    def test_analyzer_stable_across_round_trip(self, kernel):
        a1 = analyze_kernel(kernel)
        a2 = analyze_kernel(assemble(disassemble(kernel)))
        assert a1.nsu_body_lengths == a2.nsu_body_lengths

    @given(kernel_strategy())
    @settings(max_examples=60, deadline=None)
    def test_blocks_within_limits(self, kernel):
        for blk in analyze_kernel(kernel, max_mem_per_block=4).blocks:
            c = blk.candidate
            assert 1 <= c.num_mem <= 4
            # A block never contains excluded instruction classes.
            for ins in blk.instrs:
                assert ins.op in (Opcode.LD, Opcode.ST, Opcode.ALU)


# ---------------------------------------------------------------------------
# Vault scheduler under random mixes
# ---------------------------------------------------------------------------

def mk_vault(trefi=0):
    e = Engine()
    cfg = SystemConfig()
    timing = DRAMTimingSM.from_config(
        dataclasses.replace(cfg.hmc.timing, tREFI=trefi,
                            tRFC=40 if trefi else 0),
        cfg.gpu.sm_clock_mhz, 32)
    return e, VaultController(e, timing, 16, DRAMStats())


class TestVaultProperties:
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 7),
                              st.booleans()),
                    min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_every_request_completes_exactly_once(self, reqs):
        e, vault = mk_vault()
        done = []
        for i, (bank, row, is_write) in enumerate(reqs):
            vault.submit(DRAMRequest(i, is_write,
                                     lambda r: done.append(r.line_addr),
                                     bank=bank, row=row))
        e.drain()
        assert sorted(done) == list(range(len(reqs)))

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 7),
                              st.booleans()),
                    min_size=1, max_size=80))
    @settings(max_examples=25, deadline=None)
    def test_completion_with_refresh_enabled(self, reqs):
        e, vault = mk_vault(trefi=100)
        done = []
        for i, (bank, row, is_write) in enumerate(reqs):
            vault.submit(DRAMRequest(i, is_write,
                                     lambda r: done.append(1),
                                     bank=bank, row=row))
        e.drain()
        assert len(done) == len(reqs)

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 7)),
                    min_size=2, max_size=80))
    @settings(max_examples=25, deadline=None)
    def test_stats_conserved(self, reqs):
        e, vault = mk_vault()
        stats = vault.stats
        for i, (bank, row) in enumerate(reqs):
            vault.submit(DRAMRequest(i, False, lambda r: None,
                                     bank=bank, row=row))
        e.drain()
        assert stats.reads == len(reqs)
        assert stats.row_hits + stats.row_misses == len(reqs)
        assert stats.activations == stats.row_misses
