"""Tests for workload trace files (save/load round trip + simulation)."""

import json

import pytest

from repro.config import ci_config
from repro.gpu.trace import DynBlock
from repro.sim.runner import make_config
from repro.sim.system import System
from repro.workloads import get_workload
from repro.workloads.trace_io import load_instance, save_instance


@pytest.fixture(scope="module")
def cfg():
    return ci_config()


def round_trip(cfg, tmp_path, workload="VADD"):
    inst = get_workload(workload).build(cfg, "ci")
    path = tmp_path / "trace.json"
    save_instance(inst, str(path))
    return inst, load_instance(str(path))


class TestRoundTrip:
    def test_structure_preserved(self, cfg, tmp_path):
        a, b = round_trip(cfg, tmp_path)
        assert b.name == a.name
        assert b.num_warps == a.num_warps
        assert b.analyzed.nsu_body_lengths == a.analyzed.nsu_body_lengths
        for ta, tb in zip(a.traces, b.traces):
            assert len(ta) == len(tb)

    def test_accesses_preserved(self, cfg, tmp_path):
        a, b = round_trip(cfg, tmp_path, "BFS")
        for ta, tb in zip(a.traces[:4], b.traces[:4]):
            for ia, ib in zip(ta, tb):
                if isinstance(ia, DynBlock):
                    assert ia.mem_accesses == ib.mem_accesses
                    assert ia.active_threads == ib.active_threads
                else:
                    assert ia.accesses == ib.accesses

    def test_loaded_trace_simulates_identically(self, cfg, tmp_path):
        orig, loaded = round_trip(cfg, tmp_path, "SP")

        def run(inst):
            c = make_config("NDP(0.6)", cfg)
            system = System(c, config_name="NDP(0.6)")
            system.set_code_layout(inst.blocks)
            system.load_workload(inst.name, inst.traces)
            return system.run()

        r1, r2 = run(orig), run(loaded)
        assert r1.cycles == r2.cycles
        assert r1.traffic.gpu_link == r2.traffic.gpu_link
        assert r1.offloads_issued == r2.offloads_issued


class TestValidation:
    def test_bad_format_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"format": 99}))
        with pytest.raises(ValueError):
            load_instance(str(p))

    def test_unknown_block_rejected(self, cfg, tmp_path):
        inst = get_workload("VADD").build(cfg, "ci")
        p = tmp_path / "t.json"
        save_instance(inst, str(p))
        doc = json.loads(p.read_text())
        doc["warps"][0][0]["id"] = 42     # nonexistent block
        p.write_text(json.dumps(doc))
        with pytest.raises(ValueError):
            load_instance(str(p))

    def test_file_is_plain_json(self, cfg, tmp_path):
        inst = get_workload("VADD").build(cfg, "ci")
        p = tmp_path / "t.json"
        save_instance(inst, str(p))
        doc = json.loads(p.read_text())
        assert doc["format"] == 1
        assert ".kernel" in doc["kernel_asm"]
