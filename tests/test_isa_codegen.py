"""Unit tests for partitioned code generation (repro.isa.codegen)."""

from repro.isa import BasicBlock, Kernel, alu, analyze_kernel, ld, st


def analyzed_vadd():
    k = Kernel("vadd", [BasicBlock([
        ld(4, 0, "A"),
        ld(5, 1, "B"),
        alu(6, 4, 5),
        alu(10, 2, 3),
        st(6, 10, "C"),
    ])])
    return analyze_kernel(k)


class TestGPUCode:
    def test_structure(self):
        blk = analyzed_vadd().blocks[0]
        kinds = [g.kind for g in blk.gpu_code]
        assert kinds == ["beg", "rdf", "rdf", "nop", "addr_alu", "wta", "end"]

    def test_offloaded_alu_becomes_nop(self):
        blk = analyzed_vadd().blocks[0]
        nop = [g for g in blk.gpu_code if g.kind == "nop"]
        assert len(nop) == 1
        assert nop[0].instr.dst == 6

    def test_address_alu_kept_on_gpu(self):
        blk = analyzed_vadd().blocks[0]
        aa = [g for g in blk.gpu_code if g.kind == "addr_alu"]
        assert len(aa) == 1
        assert aa[0].instr.dst == 10


class TestNSUCode:
    def test_structure_and_seq_numbers(self):
        blk = analyzed_vadd().blocks[0]
        kinds = [(n.kind, n.seq) for n in blk.nsu_code]
        assert kinds == [("beg", -1), ("ld", 0), ("ld", 1), ("alu", -1),
                         ("st", 2), ("end", -1)]

    def test_address_alu_removed_from_nsu(self):
        blk = analyzed_vadd().blocks[0]
        assert all(n.instr is None or n.instr.dst != 10
                   for n in blk.nsu_code)

    def test_body_len_excludes_beg_end(self):
        blk = analyzed_vadd().blocks[0]
        assert blk.nsu_body_len == 4


class TestRegisterTransfer:
    def test_vadd_no_transfers(self):
        blk = analyzed_vadd().blocks[0]
        assert blk.send_regs == frozenset()
        assert blk.ret_regs == frozenset()

    def test_live_in_out_round_trip(self):
        k = Kernel("k", [BasicBlock([
            ld(4, 0, "A"),
            ld(7, 2, "B"),
            alu(5, 4, 7, 9),  # R9 live-in
            st(5, 1, "C"),
        ])])
        ak = analyze_kernel(k)
        blk = ak.blocks[0]
        assert 9 in blk.send_regs

    def test_ret_regs_for_value_needed_later(self):
        k = Kernel("k", [BasicBlock([
            ld(4, 0, "A"),
            ld(6, 2, "B"),
            alu(5, 4, 6),
        ]), BasicBlock([
            st(5, 1, "C"),    # in a later basic block, executed on GPU
        ])])
        ak = analyze_kernel(k)
        # first block must return R5 to the GPU
        assert frozenset({5}) == ak.blocks[0].ret_regs


class TestCounts:
    def test_load_store_counts(self):
        blk = analyzed_vadd().blocks[0]
        assert blk.num_loads == 2
        assert blk.num_stores == 1

    def test_listing_mentions_block_id(self):
        blk = analyzed_vadd().blocks[0]
        text = blk.listing()
        assert "offload block 0" in text
        assert "GPU code" in text and "NSU code" in text
