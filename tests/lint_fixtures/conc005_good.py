"""CONC005 known-good (linted as a ``repro.serve`` module in tests):
sanctioned seams and module-level workers only."""
from repro.sim.store import ResultStore    # sanctioned seam


def _worker(payload):
    from repro import api
    return api.run(api.RunRequest(**payload))


def handle(pool, store_root, payload):
    store = ResultStore(store_root)
    if store.get(payload.get("key", "")) is None:
        pool.submit(_worker, payload)
