"""CONC004 known-good: every thread declares its lifecycle."""
import threading


def run_workers(fn):
    bg = threading.Thread(target=fn, daemon=True, name="bg")
    bg.start()
    fg = threading.Thread(target=fn, daemon=False, name="fg")
    fg.start()
    fg.join()
