"""CONC003 known-good: held notifies, wait in a predicate loop."""
import threading


class Mailbox:
    def __init__(self):
        self._items = []          # guarded-by: _cv
        self._cv = threading.Condition()

    def post(self, x):
        with self._cv:
            self._items.append(x)
            self._cv.notify()

    def take(self):
        with self._cv:
            while not self._items:
                self._cv.wait()
            return self._items.pop()
