"""CONC003 known-bad: Condition misuse."""
import threading


class Mailbox:
    def __init__(self):
        self._items = []          # guarded-by: _cv
        self._cv = threading.Condition()

    def post(self, x):
        self._cv.notify()         # BAD: notify without holding the lock

    def take(self):
        with self._cv:
            self._cv.wait()       # BAD: wait outside a predicate loop
            return self._items.pop()
