"""CONC001 known-bad: guarded attributes touched without the lock."""
import threading


class Counter:
    def __init__(self):
        self._total = 0           # guarded-by: _lock
        self._high = 0            # inferred guard: assigned under _lock below
        self._lock = threading.Lock()

    def ok(self, x):
        with self._lock:
            self._total += 1
            self._high = max(self._high, x)

    def racy_read(self):
        return self._total        # BAD: explicit guard, no lock held

    def racy_write(self, x):
        self._high = x            # BAD: inferred guard, no lock held
