"""CONC002 known-good: block first, publish under the lock after."""
import threading
import time


class Fetcher:
    def __init__(self):
        self._cache = {}          # guarded-by: _lock
        self._lock = threading.Lock()

    def refresh(self, fut):
        time.sleep(0.1)           # fine: no lock held
        value = fut.result()      # fine: no lock held
        with self._lock:
            self._cache["x"] = value
