"""CONC002 known-bad: blocking calls while holding a lock."""
import threading
import time


class Fetcher:
    def __init__(self):
        self._cache = {}          # guarded-by: _lock
        self._lock = threading.Lock()

    def refresh(self, fut):
        with self._lock:
            time.sleep(0.1)                 # BAD: sleep under lock
            self._cache["x"] = fut.result()  # BAD: future wait under lock
