"""CONC005 known-bad (linted as a ``repro.serve`` module in tests):
serve-layer code reaching around the api facade."""
from repro.sim.core import System          # BAD: sim-core import
from repro.gpu.sm import SMState           # BAD: gpu-internals import


def handle(pool, payload):
    system = System()
    # BAD: lambda worker captures live state across the pool boundary.
    pool.submit(lambda: system.run(payload))
    return SMState
