"""CONC001 known-good: every guarded access holds the lock, opt-outs
are annotated, and ``*_locked`` helpers are exempt by convention."""
import threading


class Counter:
    def __init__(self):
        self._total = 0           # guarded-by: _lock
        self._pending = []        # guarded-by: _lock
        self._lock = threading.Lock()
        self.peeks = 0  # guarded-by: none -- diagnostic, torn reads fine

    def add(self, x):
        with self._lock:
            self._pending.append(x)
            self._bump_locked()

    def _bump_locked(self):
        self._total += 1          # caller holds _lock (suffix convention)

    def snapshot(self):
        self.peeks += 1
        with self._lock:
            return self._total, list(self._pending)
