"""CONC004 known-bad: thread lifecycle left implicit."""
import threading
from threading import Thread


def fire_and_forget(fn):
    t = threading.Thread(target=fn)   # BAD: no daemon= decision
    t.start()
    Thread(target=fn).start()         # BAD: bare-import form
