"""Unit tests for the workload models: Table 1 counts and the address
properties that drive each workload's paper behaviour."""

import pytest

from repro.config import LINE_SIZE, ci_config
from repro.gpu.trace import DynBlock, DynInstr
from repro.workloads import SCALES, Scale, get_workload, workload_names

CFG = ci_config()

TABLE1 = {
    "BPROP": (29, 23),
    "BFS": (1, 1, 16),
    "BICG": (4, 4),
    "FWT": (16, 4),
    "KMN": (3,),
    "MiniFE": (3,),
    "SP": (3,),
    "STN": (15,),
    "STCL": (3, 9, 1, 1),
    "VADD": (4,),
}


@pytest.fixture(scope="module")
def built():
    return {n: get_workload(n).build(CFG, "ci") for n in workload_names()}


class TestTable1Counts:
    @pytest.mark.parametrize("name", list(TABLE1))
    def test_nsu_body_lengths(self, built, name):
        assert tuple(built[name].analyzed.nsu_body_lengths) == TABLE1[name]


class TestTraceStructure:
    @pytest.mark.parametrize("name", list(TABLE1))
    def test_every_warp_has_blocks(self, built, name):
        for trace in built[name].traces:
            assert any(isinstance(i, DynBlock) for i in trace)

    @pytest.mark.parametrize("name", list(TABLE1))
    def test_block_access_groups_match_mem_count(self, built, name):
        for trace in built[name].traces[:8]:
            for item in trace:
                if isinstance(item, DynBlock):
                    n_mem = item.block.num_loads + item.block.num_stores
                    assert len(item.mem_accesses) == n_mem
                    assert all(len(g) >= 1 for g in item.mem_accesses)

    def test_traces_deterministic(self):
        a = get_workload("BFS").build(CFG, "ci")
        b = get_workload("BFS").build(CFG, "ci")
        for ta, tb in zip(a.traces[:4], b.traces[:4]):
            for ia, ib in zip(ta, tb):
                if isinstance(ia, DynBlock):
                    assert ia.mem_accesses == ib.mem_accesses

    def test_warps_have_distinct_streams(self, built):
        inst = built["VADD"]
        first = [i for i in inst.traces[0] if isinstance(i, DynBlock)][0]
        second = [i for i in inst.traces[1] if isinstance(i, DynBlock)][0]
        assert first.mem_accesses != second.mem_accesses


class TestAddressCharacter:
    def _block_accesses(self, inst, block_id):
        out = []
        for trace in inst.traces:
            for item in trace:
                if isinstance(item, DynBlock) and \
                        item.block.block_id == block_id:
                    out.append(item.mem_accesses)
        return out

    def test_vadd_fully_coalesced(self, built):
        for groups in self._block_accesses(built["VADD"], 0)[:16]:
            for g in groups:
                assert len(g) == 1
                assert g[0].words == 32

    def test_bfs_gathers_divergent(self, built):
        # The single-indirect-load blocks touch many lines with few
        # useful words each.
        for groups in self._block_accesses(built["BFS"], 0)[:16]:
            (g,) = groups
            assert len(g) > 4
            avg_words = sum(a.words for a in g) / len(g)
            assert avg_words < 4

    def test_kmn_streams_read_and_write(self, built):
        # Rodinia kmeans uses a transposed feature layout for coalescing;
        # both the feature read and the partial-sum write stream fresh
        # lines with no reuse (the source of its bandwidth dominance).
        lines = []
        for groups in self._block_accesses(built["KMN"], 0)[:32]:
            for g in groups:
                assert len(g) == 1
                assert g[0].words == 32
                lines.append(g[0].line_addr)
        assert len(set(lines)) == len(lines)   # never re-touched

    def test_bprop_const_is_single_hot_line(self, built):
        lines = set()
        for groups in self._block_accesses(built["BPROP"], 0)[:16]:
            for g in groups[3:12]:      # the 9 const-struct loads
                for a in g:
                    lines.add(a.line_addr)
        assert len(lines) <= 2          # 68 bytes -> at most 2 lines

    def test_bprop_first_load_streams(self, built):
        # The first memory instruction must be the streaming weight load,
        # so the first-access target policy spreads blocks over stacks.
        targets = set()
        from repro.core.target_select import first_instr_target
        from repro.memory.address import AddressMap

        amap = AddressMap(CFG)
        for groups in self._block_accesses(built["BPROP"], 0):
            targets.add(first_instr_target(groups[0], amap))
        assert len(targets) == CFG.num_hmcs

    def test_stn_neighbors_overlap_across_warps(self, built):
        # Adjacent warps must share neighbour lines (the L2-reuse source).
        inst = built["STN"]
        per_warp_lines = []
        for trace in inst.traces[:6]:
            lines = set()
            for item in trace:
                if isinstance(item, DynBlock):
                    for g in item.mem_accesses[:7]:
                        lines.update(a.line_addr for a in g)
            per_warp_lines.append(lines)
        overlaps = sum(bool(per_warp_lines[i] & per_warp_lines[i + 1])
                       for i in range(len(per_warp_lines) - 1))
        assert overlaps >= 1

    def test_stcl_points_working_set_bounded(self, built):
        inst = built["STCL"]
        lines = set()
        for trace in inst.traces:
            for item in trace:
                if isinstance(item, DynBlock) and item.block.block_id == 0:
                    for g in item.mem_accesses:
                        lines.update(a.line_addr for a in g)
        # The resident point block fits in the caches by construction.
        assert len(lines) * LINE_SIZE < 2 * 1024 * 1024

    def test_bprop_prologue_warms_cache(self, built):
        trace = built["BPROP"].traces[0]
        head = trace[0]
        assert isinstance(head, DynInstr)
        assert head.instr.array == "net_unit"


class TestDivergenceMasks:
    def test_bfs_frontier_thins_over_iterations(self):
        inst = get_workload("BFS").build(CFG, Scale("t", 16, 12))
        actives = sorted({i.active_threads for t in inst.traces
                          for i in t if isinstance(i, DynBlock)})
        assert actives[0] >= 8          # never empty
        assert actives[0] < 32          # real divergence appears
        assert actives[-1] == 32        # first levels run full warps

    def test_masked_blocks_move_fewer_words(self):
        inst = get_workload("BFS").build(CFG, Scale("t", 8, 12))
        full = partial = None
        for t in inst.traces:
            for item in t:
                if not isinstance(item, DynBlock):
                    continue
                if item.block.block_id == 2:   # the 16-instr update block
                    words = sum(a.words for g in item.mem_accesses
                                for a in g)
                    if item.active_threads == 32:
                        full = words
                    elif item.active_threads <= 16:
                        partial = words
        assert full is not None and partial is not None
        assert partial < full

    def test_default_workloads_run_full_warps(self):
        inst = get_workload("VADD").build(CFG, "ci")
        for t in inst.traces[:4]:
            for item in t:
                if isinstance(item, DynBlock):
                    assert item.active_threads == 32


class TestScaling:
    def test_scale_presets_exist(self):
        assert set(SCALES) == {"ci", "bench", "paper"}

    def test_custom_scale(self):
        inst = get_workload("VADD").build(CFG, Scale("custom", 8, 2))
        assert inst.num_warps == 8

    def test_iter_factor_respected(self):
        bprop = get_workload("BPROP").build(CFG, Scale("s", 8, 8))
        assert bprop.scale.iters == 4   # iter_factor = 0.5
