"""Unit tests for the system configuration (Table 2 values, derived
rates, and variant constructors)."""


import pytest

from repro.config import (
    CacheConfig,
    NDPConfig,
    OffloadMode,
    SystemConfig,
    ci_config,
    onchip_storage_bytes,
    paper_config,
)


class TestTable2Defaults:
    def test_gpu(self):
        cfg = paper_config()
        assert cfg.gpu.num_sms == 64
        assert cfg.num_hmcs == 8
        assert cfg.gpu.warps_per_sm * cfg.gpu.warp_width == 1536
        assert cfg.gpu.l1d.size_bytes == 32 * 1024
        assert cfg.gpu.l2.size_bytes == 2 * 1024 * 1024
        assert cfg.gpu.sm_clock_mhz == 700.0

    def test_hmc(self):
        cfg = paper_config()
        assert cfg.hmc.num_vaults == 16
        assert cfg.hmc.banks_per_vault == 16
        assert cfg.hmc.memory_bytes == 4 * 1024 ** 3
        assert cfg.hmc.vault_queue_size == 64
        assert cfg.hmc.timing.tck_ns == 1.50

    def test_nsu(self):
        cfg = paper_config()
        assert cfg.nsu.clock_mhz == 350.0
        assert cfg.nsu.num_warp_slots == 48
        assert cfg.nsu.read_data_entries == 256
        assert cfg.nsu.cmd_buffer_entries == 10

    def test_algorithm1_parameters(self):
        ndp = NDPConfig()
        assert ndp.epoch_cycles == 30_000
        assert ndp.ratio_init == 0.1
        assert ndp.step_init == 0.15
        assert ndp.step_unit == 0.05
        assert (ndp.step_min, ndp.step_max) == (0.05, 0.15)
        assert ndp.history_window == 4


class TestDerivedRates:
    def test_link_bytes_per_cycle(self):
        cfg = paper_config()
        # 20 GB/s at 700 MHz = 28.57 B/cycle.
        assert cfg.gpu.link_bytes_per_sm_cycle == pytest.approx(28.57, abs=0.01)

    def test_nsu_half_rate(self):
        cfg = paper_config()
        assert cfg.nsu.cycles_per_sm_cycle(700.0) == pytest.approx(0.5)

    def test_dram_rate(self):
        cfg = paper_config()
        assert cfg.dram_cycles_per_sm_cycle == pytest.approx(0.952, abs=0.01)


class TestVariants:
    def test_with_mode(self):
        cfg = paper_config().with_mode(OffloadMode.STATIC, static_ratio=0.3)
        assert cfg.ndp.mode == OffloadMode.STATIC
        assert cfg.ndp.static_ratio == 0.3

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            NDPConfig(mode="bogus")

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            NDPConfig(static_ratio=1.5)

    def test_scaled_gpu(self):
        cfg = paper_config().scaled_gpu(num_sms=128)
        assert cfg.gpu.num_sms == 128

    def test_with_nsu_clock(self):
        cfg = paper_config().with_nsu_clock(175.0)
        assert cfg.nsu.clock_mhz == 175.0

    def test_non_power_of_two_hmcs_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(num_hmcs=6)

    def test_ci_preserves_compute_ratio(self):
        # GPU SMs per NSU must match the paper config (64/8 == 8/1 per
        # stack -- the saturation behaviour depends on it).
        p, c = paper_config(), ci_config()
        assert p.gpu.num_sms / p.num_hmcs == c.gpu.num_sms / c.num_hmcs


class TestCacheConfig:
    def test_num_sets(self):
        assert CacheConfig(32 * 1024, 4).num_sets == 64

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 3)


class TestStorageOverhead:
    def test_sm_buffer_bytes_match_paper(self):
        cfg = paper_config()
        assert cfg.sm_buffers.storage_bytes == 2912   # 2.84 KB

    def test_onchip_storage_positive(self):
        assert onchip_storage_bytes(paper_config()) > 8 * 1024 * 1024

    def test_max_mem_instrs_from_seq_bits(self):
        assert NDPConfig(seq_num_bits=6).max_mem_instrs_per_block == 64
