"""Memory-backend contract tests (PR 8 tentpole).

The ``repro.memory.backend`` registry hides the substrate behind a
small hook set; these tests pin the three guarantees the refactor
makes:

* the default ``hmc`` backend is **bit-identical** to the pre-backend
  simulator (same digests as ``test_baseline_recovery.EXPECTED``, same
  store keys as fingerprints minted before the field existed);
* the ``cxl`` backend is a genuinely different machine (its own pinned
  digests, zero intra-stack NoC traffic, separated store keys);
* every backend honours the shared protocol contract (registry
  completeness, resolve semantics, unarmed-chaos identity, CODA
  placement determinism).
"""

import dataclasses
import hashlib
import json

import pytest

from repro.config import BACKEND_NAMES, ci_config
from repro.faults import get_scenario
from repro.memory.backend import (
    BACKENDS,
    CXLBackend,
    HMCBackend,
    MemoryBackend,
    backend_names,
    resolve_backend,
)
from repro.sim.runner import build_system
from repro.sim.serialize import result_to_dict
from repro.sim.store import cell_key, config_fingerprint
from tests.test_baseline_recovery import TestUnarmedDigests


def _digest(result) -> str:
    blob = json.dumps(result_to_dict(result), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def _run(workload, config, base, **kw):
    system = build_system(workload, config, base=base, scale="ci", **kw)
    return system, system.run(max_cycles=20_000_000)


class TestRegistry:
    def test_registry_matches_config_names(self):
        assert tuple(BACKENDS) == BACKEND_NAMES
        assert backend_names() == BACKEND_NAMES

    def test_entries_are_protocol_instances(self):
        for name, backend in BACKENDS.items():
            assert isinstance(backend, MemoryBackend)
            assert backend.name == name

    def test_resolve_by_name_and_instance(self):
        hmc = resolve_backend("hmc")
        assert isinstance(hmc, HMCBackend)
        assert resolve_backend(None) is hmc          # default
        assert resolve_backend(hmc) is hmc           # pass-through
        assert isinstance(resolve_backend("cxl"), CXLBackend)

    def test_resolve_unknown_lists_choices(self):
        with pytest.raises(KeyError, match="hmc"):
            resolve_backend("ddr5")

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            dataclasses.replace(ci_config(), backend="ddr5")

    def test_hmc_hook_defaults_preserve_legacy_wiring(self):
        # The exact values the pre-backend simulator hard-coded; any
        # drift here breaks the bit-identity pins below.
        cfg = ci_config()
        hmc = resolve_backend("hmc")
        assert hmc.internal_noc is True
        assert hmc.local_response_latency(cfg) == 4
        assert hmc.ndp_cmd_entries(cfg) == cfg.nsu.cmd_buffer_entries
        assert hmc.gpu_link_kwargs(cfg) == {}
        assert hmc.mem_link_bpc(cfg) is None


class TestHMCIdentity:
    """backend="hmc" (the default) replays the pre-backend simulator."""

    @pytest.mark.parametrize("workload,config",
                             sorted(TestUnarmedDigests.EXPECTED))
    def test_explicit_hmc_matches_seed_digests(self, workload, config):
        base = ci_config().with_backend("hmc")
        _, result = _run(workload, config, base)
        assert _digest(result) == \
            TestUnarmedDigests.EXPECTED[(workload, config)]

    def test_default_backend_is_hmc(self):
        assert ci_config().backend == "hmc"


class TestCXLDigests:
    """The cxl expander is a different, deterministic machine."""

    EXPECTED = {
        ("VADD", "Baseline"):
            "79f4b0c46520b0ce8ce3f50ccebb58e9f0cb62575816ab5c9a308ca030132257",
        ("VADD", "NDP(Dyn)"):
            "2001e4f9abf87efc64e4bbb7f0ef17b4e8ba95ea6c130432c819d024942d73f3",
        ("KMN", "NDP(Dyn)_Cache"):
            "e5a69c901d8d2354758886b415cfcb0f7deb524ccfd657802a0d91a7d48b412e",
    }

    @pytest.mark.parametrize("workload,config", sorted(EXPECTED))
    def test_cxl_digest_pinned(self, workload, config):
        base = ci_config().with_backend("cxl")
        _, result = _run(workload, config, base)
        assert _digest(result) == self.EXPECTED[(workload, config)]

    @pytest.mark.parametrize("workload,config", sorted(EXPECTED))
    def test_cxl_differs_from_hmc(self, workload, config):
        hmc_pins = TestUnarmedDigests.EXPECTED
        if (workload, config) in hmc_pins:
            assert self.EXPECTED[(workload, config)] != \
                hmc_pins[(workload, config)]

    def test_cxl_has_no_intra_stack_traffic(self):
        # The expander has no vault NoC: every access rides the host
        # link or the fabric, and the intra_hmc counter must stay 0.
        base = ci_config().with_backend("cxl")
        _, result = _run("VADD", "NDP(Dyn)", base)
        assert result.traffic.intra_hmc == 0
        # ...whereas the hmc substrate does charge the internal NoC.
        _, hmc_result = _run("VADD", "NDP(Dyn)", ci_config())
        assert hmc_result.traffic.intra_hmc > 0

    def test_legacy_scheduler_agrees_on_cxl(self):
        # Both main-loop schedulers must replay the same cxl machine.
        base = ci_config().with_backend("cxl")
        _, result = _run("VADD", "NDP(Dyn)", base, sched="legacy")
        assert _digest(result) == self.EXPECTED[("VADD", "NDP(Dyn)")]

    def test_coda_policy_changes_placement_deterministically(self):
        base = ci_config().with_backend("cxl").with_target_policy("coda")
        digests = set()
        for _ in range(2):
            _, result = _run("VADD", "NDP(Dyn)", base)
            digests.add(_digest(result))
        assert digests == {
            "f5a3e31876cd409ffdcd1bcdf98f052b386d6e99dc1db516b4bbaea4198ca544"
        }
        assert digests != {self.EXPECTED[("VADD", "NDP(Dyn)")]}


class TestStoreKeySeparation:
    """hmc keeps pre-backend store keys; cxl gets its own key space."""

    def test_hmc_fingerprint_strips_backend_fields(self):
        fp = json.loads(config_fingerprint(ci_config()))
        assert "backend" not in fp
        assert "cxl" not in fp

    def test_cxl_fingerprint_keeps_backend_fields(self):
        fp = json.loads(config_fingerprint(ci_config().with_backend("cxl")))
        assert fp["backend"] == "cxl"
        assert "cxl" in fp

    def test_cell_keys_separate_per_backend(self):
        hmc_key = cell_key("VADD", "NDP(Dyn)", ci_config(), "ci",
                           20_000_000)
        cxl_key = cell_key("VADD", "NDP(Dyn)",
                           ci_config().with_backend("cxl"), "ci",
                           20_000_000)
        assert hmc_key != cxl_key

    def test_explicit_hmc_key_matches_default(self):
        # with_backend("hmc") must not fork the key space: it is the
        # same machine as the default, so it must hit the same cells.
        assert cell_key("VADD", "NDP(Dyn)", ci_config(), "ci",
                        20_000_000) == \
            cell_key("VADD", "NDP(Dyn)", ci_config().with_backend("hmc"),
                     "ci", 20_000_000)


class TestUnarmedChaosIdentity:
    """Arming a zero-rate fault plan must not perturb either backend."""

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_zero_rate_plan_is_identity(self, backend):
        # Arming adds recovery bookkeeping to result.extra, so compare
        # the simulation itself (timing, traffic, stalls), not the full
        # serialized digest -- same contract as the seed's
        # test_armed_zero_rate_matches_unarmed_cycles.
        base = ci_config().with_backend(backend)
        plan = get_scenario("vault-read-loss", rate=0.0, seed=0)
        armed_sys, armed = _run("VADD", "NDP(Dyn)", base, faults=plan)
        _, plain = _run("VADD", "NDP(Dyn)", base)
        assert armed.cycles == plain.cycles
        assert armed.traffic == plain.traffic
        assert armed.stalls.as_dict() == plain.stalls.as_dict()
        assert armed_sys.fault_injector.total_fired == 0

    def test_cxl_faults_actually_fire(self):
        # fault_controllers must expose the expander's channels so a
        # real plan still lands somewhere.
        base = ci_config().with_backend("cxl")
        plan = get_scenario("vault-read-loss", rate=0.05, seed=1)
        system, _ = _run("VADD", "Baseline", base, faults=plan)
        assert system.fault_injector.total_fired > 0
