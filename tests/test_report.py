"""Tests for the markdown report generator (CI scale, small subset)."""

import pytest

from repro.analysis.figures import ExperimentRunner
from repro.analysis.report import PAPER_HEADLINES, _md_table, generate_report
from repro.config import ci_config


class TestMdTable:
    def test_structure(self):
        text = _md_table([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    def test_empty(self):
        assert _md_table([]) == ""


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        runner = ExperimentRunner(base=ci_config(), scale="ci",
                                  workloads=["VADD", "KMN"])
        return generate_report(runner)

    def test_all_sections_present(self, report):
        for section in ("Table 1", "Figure 5", "Figure 7", "Figure 8",
                        "Figure 9", "Figure 10", "Figure 11",
                        "Section 4.2", "Section 7.5"):
            assert section in report

    def test_paper_references_quoted(self, report):
        assert "2.84 KB" in report
        assert "paper" in report.lower()

    def test_is_valid_markdown_tables(self, report):
        # Every table row line has balanced pipes.
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_headline_constants(self):
        assert PAPER_HEADLINES["max_speedup"] == pytest.approx(1.668)
        assert PAPER_HEADLINES["avg_energy_saving"] == pytest.approx(0.086)
