"""Baseline memory-path recovery: timeout-and-reissue for non-offloaded
loads (PR 3 tentpole).

Before this subsystem existed, any drop on the baseline load path
(GPU link, vault read) deadlocked the MSHR waiting for a fill that
never arrives and the run ended ``fatal``.  These tests pin the new
contract: armed runs recover, audits stay clean, the fill-conservation
invariant holds, and unarmed runs are bit-identical to the pre-recovery
simulator.
"""

import hashlib
import json
import os
import subprocess
import sys

import pytest

from repro.config import ci_config
from repro.faults import (
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
    TimeoutTracker,
    get_scenario,
)
from repro.sim.runner import build_system
from repro.sim.serialize import result_to_dict
from repro.sim.system import SimulationTimeout
from repro.sim.validate import audit_system


def _run(config, plan, workload="VADD", max_cycles=5_000_000):
    system = build_system(workload, config, base=ci_config(), scale="ci",
                          faults=plan)
    result = system.run(max_cycles=max_cycles)
    return system, result


def _digest(result) -> str:
    blob = json.dumps(result_to_dict(result), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


class TestBaselineRecovery:
    """Drops on the baseline load path end ``recovered``, not ``fatal``."""

    @pytest.mark.parametrize("scenario", ["vault-read-loss", "link-corrupt",
                                          "ack-drop"])
    def test_baseline_drops_recover(self, scenario):
        plan = get_scenario(scenario, rate=0.05, seed=1)
        system, result = _run("Baseline", plan)
        assert system.fault_injector.total_fired > 0
        assert audit_system(system, result) == []
        b = system.memsys.rstats
        assert b.fetch_attempts == b.fills + b.fills_lost + b.fills_dup
        assert b.fills > 0

    def test_vault_read_loss_counters_move(self):
        plan = get_scenario("vault-read-loss", rate=0.05, seed=1)
        system, result = _run("Baseline", plan)
        rec = result.extra["recovery"]
        assert rec["fills_lost"] > 0
        assert rec["mshr_reissues"] > 0
        assert rec["fills"] > 0

    def test_mixed_path_ndp_config_recovers(self):
        # NDP(Dyn) exercises both the offload path (ACK watchdog) and
        # baseline loads (fill watchdog) under the same plan.
        plan = get_scenario("vault-read-loss", rate=0.05, seed=1)
        system, result = _run("NDP(Dyn)", plan)
        assert system.fault_injector.total_fired > 0
        assert audit_system(system, result) == []

    def test_give_up_surfaces_as_timeout(self):
        # mshr_max_retries=0 means the first lost fill is abandoned;
        # the warp never drains and the run deadlocks (-> fatal).
        policy = RecoveryPolicy(mshr_max_retries=0)
        plan = get_scenario("vault-read-loss", rate=0.05, seed=1,
                            recovery=policy)
        system = build_system("VADD", "Baseline", base=ci_config(),
                              scale="ci", faults=plan)
        with pytest.raises(SimulationTimeout):
            system.run(max_cycles=5_000_000)
        assert system.memsys.rstats.mshr_gaveup > 0

    def test_duplicate_fill_dropped_exactly_once(self):
        # Delay responses on the uplink past a tiny fill timeout: the
        # watchdog reissues, then the delayed original arrives late and
        # must be counted as a duplicate, not double-filled.
        policy = RecoveryPolicy().with_site_timeout("mshr", 120)
        plan = FaultPlan(
            name="dup-fill", seed=1,
            specs=(FaultSpec("gpu_link_up", "delay", rate=0.1,
                             delay_cycles=400),),
            recovery=policy)
        system, result = _run("Baseline", plan)
        b = system.memsys.rstats
        assert b.mshr_watchdog_fires > 0
        assert b.fills_dup > 0
        assert b.fetch_attempts == b.fills + b.fills_lost + b.fills_dup
        assert audit_system(system, result) == []


class TestAdaptiveTimeouts:
    def test_adaptive_policy_recovers_and_reports(self):
        policy = RecoveryPolicy(adaptive=True)
        plan = get_scenario("vault-read-loss", rate=0.05, seed=1,
                            recovery=policy)
        system, result = _run("Baseline", plan)
        assert audit_system(system, result) == []
        snap = result.extra["recovery_timeouts"]
        assert snap["mshr"]["observations"] > 0
        assert snap["mshr"]["timeout"] >= policy.min_timeout

    def test_tracker_ewma_math(self):
        policy = RecoveryPolicy(adaptive=True, ewma_alpha=0.5,
                                timeout_scale=4.0, min_timeout=100)
        t = TimeoutTracker(policy)
        assert t.timeout("mshr") == 3000  # no observations -> static
        t.observe("mshr", 200)
        assert t.timeout("mshr") == 800  # 4 * 200
        t.observe("mshr", 100)
        assert t.timeout("mshr") == 600  # 4 * (0.5*100 + 0.5*200)

    def test_static_site_override(self):
        policy = RecoveryPolicy(ack_timeout=3000).with_site_timeout(
            "mshr", 500)
        t = TimeoutTracker(policy)
        assert t.timeout("mshr") == 500
        assert t.timeout("ack") == 3000

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(site_timeouts=(("bogus-site", 100),))
        with pytest.raises(ValueError):
            RecoveryPolicy(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(site_timeouts=(("mshr", 0),))


class TestUnarmedDigests:
    """Unarmed runs are bit-identical to the pre-recovery simulator.

    VADD/KMN digests were captured from the seed tree (commit 4999bdf)
    before the baseline-recovery changes landed.  The BFS digest was
    refreshed when workload RNG seeding switched from ``hash(name)``
    (PYTHONHASHSEED-dependent, flagged by ``repro lint`` rule DET004) to
    ``zlib.crc32``: BFS consumes the per-warp RNG, so its traces -- and
    only then its digest -- depend on that seed component.
    """

    EXPECTED = {
        ("VADD", "Baseline"):
            "fee302ab795d798eca8696616cbc58c001f395679d1b5ee4c7cd82540531ee69",
        ("VADD", "NDP(Dyn)"):
            "d5bf548c1e545fb3cd00d93ff26301ef882f454688048baee84e5f5891ef996d",
        ("KMN", "NDP(Dyn)_Cache"):
            "2acecddc7e259ad35edcafd9c32d19741bfdb35faad8a0f2ce2d56afce7f3976",
        ("BFS", "NDP(Dyn)"):
            "a1445f286ed3325342c0a57b09f18cfc83fa5e9d844aec4afeaab8a4a11b4685",
    }

    @pytest.mark.parametrize("workload,config", sorted(EXPECTED))
    def test_unarmed_digest_unchanged(self, workload, config):
        system = build_system(workload, config, base=ci_config(),
                              scale="ci")
        result = system.run(max_cycles=20_000_000)
        assert _digest(result) == self.EXPECTED[(workload, config)]

    @pytest.mark.parametrize("workload,config", sorted(EXPECTED))
    def test_legacy_scheduler_digest_unchanged(self, workload, config):
        # The pinned digests bind BOTH main-loop schedulers: the active
        # scheduler (the default above) and the tick-everything legacy
        # loop must replay the exact same simulation.
        system = build_system(workload, config, base=ci_config(),
                              scale="ci", sched="legacy")
        result = system.run(max_cycles=20_000_000)
        assert _digest(result) == self.EXPECTED[(workload, config)]

    @pytest.mark.parametrize("workload,config",
                             [("BFS", "NDP(Dyn)"),
                              ("KMN", "NDP(Dyn)_Cache")])
    def test_schedulers_agree_beyond_the_digest(self, workload, config):
        # The digest covers RunResult; the stall breakdown and phase
        # accounting also feed figures and the metrics stream, so pin
        # them cross-scheduler too (BFS stresses dependency stalls, KMN
        # with the cache filter stresses the offload/suppress path).
        runs = {}
        for sched in ("legacy", "active"):
            system = build_system(workload, config, base=ci_config(),
                                  scale="ci", sched=sched)
            result = system.run(max_cycles=20_000_000)
            runs[sched] = (result, system.phases)
        legacy, active = runs["legacy"], runs["active"]
        assert _digest(legacy[0]) == _digest(active[0])
        assert legacy[0].stalls.as_dict() == active[0].stalls.as_dict()
        for field in ("stepped", "fast_forwarded", "epochs", "events"):
            assert getattr(legacy[1], field) == getattr(active[1], field), \
                f"phase counter {field} diverged between schedulers"

    def test_active_scheduler_elides_ticks(self):
        # The point of the active scheduler: strictly fewer SM ticks than
        # the dense stepped * num_sms product, with the gap settled into
        # the same idle classifications (digest equality above).
        system = build_system("VADD", "Baseline", base=ci_config(),
                              scale="ci")
        system.run(max_cycles=20_000_000)
        dense = system.phases.stepped * system.cfg.gpu.num_sms
        assert 0 < system.sched_stats["sm_ticks"] < dense
        assert system.sched_stats["sm_wakes"] > 0

    @pytest.mark.parametrize("hashseed", ["0", "1"])
    def test_bfs_digest_stable_across_hash_seeds(self, hashseed):
        # The pre-fix bug: hash(self.name) in the RNG seed tuple made BFS
        # traces vary with PYTHONHASHSEED, which pytest inherits -- so an
        # in-process digest check could never catch it.  Run in a child
        # with a pinned, different hash seed each time.
        code = (
            "import hashlib, json\n"
            "from repro.config import ci_config\n"
            "from repro.sim.runner import build_system\n"
            "from repro.sim.serialize import result_to_dict\n"
            "system = build_system('BFS', 'NDP(Dyn)', base=ci_config(),"
            " scale='ci')\n"
            "result = system.run(max_cycles=20_000_000)\n"
            "blob = json.dumps(result_to_dict(result), sort_keys=True)\n"
            "print(hashlib.sha256(blob.encode()).hexdigest())\n")
        env = dict(os.environ, PYTHONHASHSEED=hashseed,
                   PYTHONPATH="src")
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True, text=True,
                              cwd=os.path.dirname(os.path.dirname(
                                  os.path.abspath(__file__))))
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == self.EXPECTED[("BFS", "NDP(Dyn)")]

    def test_armed_zero_rate_matches_unarmed_cycles(self):
        # Arming recovery with a zero-rate plan must not perturb timing:
        # the watchdog never fires and reissue never happens, so cycle
        # counts match the unarmed run exactly.
        plan = get_scenario("vault-read-loss", rate=0.0, seed=0)
        armed_sys, armed = _run("Baseline", plan)
        plain = build_system("VADD", "Baseline", base=ci_config(),
                             scale="ci").run(max_cycles=5_000_000)
        assert armed.cycles == plain.cycles
        assert armed_sys.memsys.rstats.fills_lost == 0
        assert armed_sys.memsys.rstats.fills_dup == 0
