"""Unit tests for packet sizes (Figure 4) and credit-based buffer
management (Section 4.3)."""

import pytest

from repro.config import ADDR_SIZE, LINE_SIZE, PKT_HEADER, REG_SIZE, WORD_SIZE
from repro.core.credit import BufferCreditManager
from repro.core.packets import PacketSizes
from repro.sim.engine import Engine


class TestPacketSizes:
    def test_cmd_without_registers(self):
        assert PacketSizes.offload_cmd(0, 32) == PKT_HEADER + 8 + 4

    def test_cmd_register_payload_scales_with_threads(self):
        base = PacketSizes.offload_cmd(0, 32)
        assert PacketSizes.offload_cmd(2, 32) == base + 2 * REG_SIZE * 32
        assert PacketSizes.offload_cmd(2, 8) == base + 2 * REG_SIZE * 8

    def test_rdf_request_aligned_vs_misaligned(self):
        aligned = PacketSizes.rdf_request(False, 32)
        misaligned = PacketSizes.rdf_request(True, 32)
        assert misaligned == aligned + 32  # per-thread offsets appended

    def test_rdf_response_only_touched_words(self):
        # Section 4.4: a divergent access touching 2 words ships 8 bytes,
        # not a 128B line.
        small = PacketSizes.rdf_response(2)
        assert small < PacketSizes.mem_read_response()
        assert small == PKT_HEADER + 4 + 2 * WORD_SIZE

    def test_baseline_response_full_line(self):
        assert PacketSizes.mem_read_response() == PKT_HEADER + LINE_SIZE

    def test_ack_sizes(self):
        assert PacketSizes.offload_ack(0, 32) == PKT_HEADER
        assert (PacketSizes.offload_ack(1, 32)
                == PKT_HEADER + REG_SIZE * 32)

    def test_wta_equals_rdf_request(self):
        assert PacketSizes.wta(False, 4) == PacketSizes.rdf_request(False, 4)

    def test_ndp_write(self):
        assert PacketSizes.ndp_write(3) == PKT_HEADER + ADDR_SIZE + 12

    def test_invalidation_small(self):
        assert PacketSizes.invalidation() == PKT_HEADER


def mk_mgr(engine=None, cmd=2, rd=8, wa=8, hmcs=2):
    e = engine or Engine()
    return e, BufferCreditManager(e, hmcs, cmd_entries=cmd,
                                  read_data_entries=rd, write_addr_entries=wa)


class TestCreditManager:
    def test_immediate_grant(self):
        e, m = mk_mgr()
        granted = []
        m.reserve(0, num_loads=2, num_stores=1,
                  on_grant=lambda: granted.append(1))
        assert granted == [1]
        assert m.available(0) == (1, 6, 7)

    def test_insufficient_credits_queue(self):
        e, m = mk_mgr(rd=3)
        order = []
        m.reserve(0, num_loads=3, num_stores=0, on_grant=lambda: order.append("a"))
        m.reserve(0, num_loads=1, num_stores=0, on_grant=lambda: order.append("b"))
        assert order == ["a"]
        assert m.queue_depth(0) == 1
        m.release(0, read_data=3, delay=0)
        assert order == ["a", "b"]

    def test_fifo_no_bypass(self):
        # A small reservation must NOT bypass a queued larger one
        # (bypass could starve the large block forever).
        e, m = mk_mgr(rd=4)
        order = []
        m.reserve(0, num_loads=4, num_stores=0, on_grant=lambda: order.append("big1"))
        m.reserve(0, num_loads=4, num_stores=0, on_grant=lambda: order.append("big2"))
        m.reserve(0, num_loads=1, num_stores=0, on_grant=lambda: order.append("small"))
        m.release(0, read_data=4, cmd=1, delay=0)
        assert order == ["big1", "big2"]
        m.release(0, read_data=4, cmd=1, delay=0)
        assert order == ["big1", "big2", "small"]

    def test_per_hmc_independence(self):
        e, m = mk_mgr(rd=1)
        got = []
        m.reserve(0, num_loads=1, num_stores=0, on_grant=lambda: got.append(0))
        m.reserve(1, num_loads=1, num_stores=0, on_grant=lambda: got.append(1))
        assert got == [0, 1]

    def test_oversized_block_rejected(self):
        e, m = mk_mgr(rd=4)
        with pytest.raises(ValueError):
            m.reserve(0, num_loads=5, num_stores=0, on_grant=lambda: None)

    def test_release_delay_models_credit_latency(self):
        e, m = mk_mgr(rd=1)
        got = []
        m.reserve(0, num_loads=1, num_stores=0, on_grant=lambda: got.append("a"))
        m.reserve(0, num_loads=1, num_stores=0, on_grant=lambda: got.append("b"))
        m.release(0, read_data=1, delay=5)
        assert got == ["a"]
        e.drain()
        assert got == ["a", "b"]
        assert e.now == 5

    def test_conservation_check(self):
        e, m = mk_mgr()
        m.release(0, cmd=1, delay=0)   # spurious credit
        with pytest.raises(AssertionError):
            m.assert_conserved()

    def test_grant_consumes_cmd_credit(self):
        e, m = mk_mgr(cmd=1)
        got = []
        m.reserve(0, num_loads=0, num_stores=1, on_grant=lambda: got.append("a"))
        m.reserve(0, num_loads=0, num_stores=1, on_grant=lambda: got.append("b"))
        assert got == ["a"]   # cmd credit exhausted
        m.release(0, cmd=1, delay=0)
        assert got == ["a", "b"]
