"""Unit tests for target-NSU selection and the Figure 5 study."""

import numpy as np
import pytest

from repro.config import LINE_SIZE, SystemConfig
from repro.core.target_select import (
    block_traffic,
    first_instr_target,
    optimal_target,
    target_policy_traffic_study,
)
from repro.gpu.coalescer import MemAccess
from repro.memory.address import AddressMap


@pytest.fixture(scope="module")
def amap():
    return AddressMap(SystemConfig(num_hmcs=8))


def lines_on(amap, hmc, n, start=0):
    """Find n line addresses owned by a given HMC."""
    out = []
    line = start
    while len(out) < n:
        if amap.hmc_of(line * LINE_SIZE) == hmc:
            out.append(line)
        line += 1
    return out


class TestPolicies:
    def test_first_policy_majority(self, amap):
        a_lines = lines_on(amap, 2, 3)
        b_lines = lines_on(amap, 5, 1)
        accs = tuple(MemAccess(l, 32, False) for l in a_lines + b_lines)
        assert first_instr_target(accs, amap) == 2

    def test_first_policy_empty_raises(self, amap):
        with pytest.raises(ValueError):
            first_instr_target((), amap)

    def test_optimal_counts_all_instructions(self, amap):
        # First instruction favours HMC 1, but the block overall touches
        # HMC 3 far more.
        first = tuple(MemAccess(l, 32, False) for l in lines_on(amap, 1, 2))
        second = tuple(MemAccess(l, 32, False) for l in lines_on(amap, 3, 6))
        assert first_instr_target(first, amap) == 1
        assert optimal_target((first, second), amap) == 3

    def test_block_traffic_counts_remote_lines(self, amap):
        local = tuple(MemAccess(l, 32, False) for l in lines_on(amap, 4, 3))
        remote = tuple(MemAccess(l, 32, False) for l in lines_on(amap, 6, 2))
        assert block_traffic((local, remote), 4, amap) == 2
        assert block_traffic((local,), 4, amap) == 0

    def test_optimal_never_worse(self, amap):
        rng = np.random.default_rng(3)
        for _ in range(20):
            lines = rng.integers(0, 1 << 18, size=12).tolist()
            groups = (tuple(MemAccess(l, 4, True) for l in lines[:4]),
                      tuple(MemAccess(l, 4, True) for l in lines[4:]))
            t_first = first_instr_target(groups[0], amap)
            t_opt = optimal_target(groups, amap)
            assert (block_traffic(groups, t_opt, amap)
                    <= block_traffic(groups, t_first, amap))


class TestFigure5Study:
    @pytest.fixture(scope="class")
    def study(self):
        return target_policy_traffic_study(
            num_hmcs=8, access_counts=(1, 2, 4, 8, 16, 32, 64),
            trials=4000, seed=1)

    def test_first_policy_analytic_expectation(self, study):
        # The first access is always local, the other n-1 are remote with
        # probability 7/8: E[remote fraction] = (n-1)/n * 7/8.
        n = study["n_accesses"].astype(float)
        assert np.allclose(study["first_policy"], (n - 1) / n * 7 / 8,
                           atol=0.02)

    def test_ratio_at_most_fifteen_percent(self, study):
        # Paper: "our policy ... increases the traffic by at most 15% only".
        assert study["ratio"].max() <= 1.16

    def test_gap_diminishes_with_more_accesses(self, study):
        # "the difference diminishes as the number of memory access
        # increases"
        peak = study["ratio"].max()
        assert study["ratio"][-1] < peak
        assert study["ratio"][-1] <= 1.08

    def test_single_access_identical(self, study):
        assert study["ratio"][0] == pytest.approx(1.0)

    def test_optimal_below_first(self, study):
        assert np.all(study["optimal"] <= study["first_policy"] + 1e-9)
