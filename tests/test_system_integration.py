"""Integration tests: full-system runs at CI scale.

These exercise the complete pipeline -- workload build, static analysis,
partitioned execution, credits, NSU execution, coherence -- and check
conservation invariants rather than performance numbers (shape assertions
live in benchmarks/, at a larger scale).
"""

import pytest

from repro.config import ci_config
from repro.sim.runner import make_config, run_workload
from repro.sim.system import System
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def base():
    return ci_config()


def run(w, c, base, **kw):
    return run_workload(w, c, base=base, scale="ci", **kw)


class TestBaseline:
    def test_all_warps_complete(self, base):
        r = run("VADD", "Baseline", base)
        inst = get_workload("VADD").build(base, "ci")
        assert r.warps_completed == inst.num_warps

    def test_instruction_count_matches_trace(self, base):
        from repro.gpu.trace import trace_instruction_count

        inst = get_workload("VADD").build(base, "ci")
        expected = sum(trace_instruction_count(t) for t in inst.traces)
        r = run("VADD", "Baseline", base)
        assert r.instructions == expected

    def test_no_ndp_traffic_in_baseline(self, base):
        r = run("VADD", "Baseline", base)
        assert r.traffic.mem_net == 0
        assert r.traffic.invalidations == 0
        assert r.offloads_issued == 0
        assert r.nsu_instructions == 0

    def test_dram_reads_cover_misses(self, base):
        r = run("VADD", "Baseline", base)
        # Streaming VADD: loads miss everywhere; every primary L2 miss
        # fetches a full line (MSHR merges make dram_reads <= l2_misses).
        assert r.dram_reads > 0
        assert r.dram_reads >= 0.5 * r.l2_misses * 128

    def test_write_through_stores_reach_dram(self, base):
        r = run("VADD", "Baseline", base)
        inst = get_workload("VADD").build(base, "ci")
        stores = sum(1 for t in inst.traces for i in t)  # upper bound sanity
        assert r.dram_writes > 0

    def test_morecore_has_more_sms(self, base):
        cfg = make_config("Baseline_MoreCore", base)
        assert cfg.gpu.num_sms == base.gpu.num_sms + base.num_hmcs


class TestNaiveNDP:
    def test_all_blocks_offloaded(self, base):
        r = run("VADD", "NaiveNDP", base)
        assert r.offloads_issued == r.blocks_total
        assert r.offloads_issued > 0

    def test_acks_match_offloads(self, base):
        # Every offloaded block completes exactly once.
        cfg = make_config("NaiveNDP", base)
        system = System(cfg, config_name="NaiveNDP")
        inst = get_workload("VADD").build(cfg, "ci")
        system.set_code_layout(inst.blocks)
        system.load_workload(inst.name, inst.traces)
        r = system.run()
        assert system.ndp.stats.acks == system.ndp.stats.offloads
        assert r.warps_completed == inst.num_warps

    def test_nsu_executes_block_bodies(self, base):
        r = run("VADD", "NaiveNDP", base)
        # VADD: 4-instr body + OFLD.END per instance.
        assert r.nsu_instructions == r.offloads_issued * 5

    def test_memory_network_carries_data(self, base):
        r = run("VADD", "NaiveNDP", base)
        assert r.traffic.mem_net > 0

    def test_gpu_traffic_reduced_vs_baseline(self, base):
        b = run("VADD", "Baseline", base)
        n = run("VADD", "NaiveNDP", base)
        assert n.traffic.gpu_link < 0.5 * b.traffic.gpu_link

    def test_invalidations_flow(self, base):
        r = run("VADD", "NaiveNDP", base)
        # One store per block instance -> at least one INV per instance.
        assert r.traffic.invalidations >= r.offloads_issued * 16

    def test_warp_idle_dominates_stalls(self, base):
        r = run("VADD", "NaiveNDP", base)
        assert r.stalls.warp_idle > r.stalls.dependency_stall

    def test_credits_conserved_after_run(self, base):
        cfg = make_config("NaiveNDP", base)
        system = System(cfg, config_name="NaiveNDP")
        inst = get_workload("SP").build(cfg, "ci")
        system.set_code_layout(inst.blocks)
        system.load_workload(inst.name, inst.traces)
        system.run()
        system.ndp.credits.assert_conserved()
        for hmc in range(cfg.num_hmcs):
            cmd, rd, wa = system.ndp.credits.available(hmc)
            assert (cmd, rd, wa) == (cfg.nsu.cmd_buffer_entries,
                                     cfg.nsu.read_data_entries,
                                     cfg.nsu.write_addr_entries)

    def test_nsu_buffers_empty_after_run(self, base):
        cfg = make_config("NaiveNDP", base)
        system = System(cfg, config_name="NaiveNDP")
        inst = get_workload("BFS").build(cfg, "ci")
        system.set_code_layout(inst.blocks)
        system.load_workload(inst.name, inst.traces)
        system.run()
        for nsu in system.nsus:
            assert len(nsu.read_buf) == 0
            assert len(nsu.wta_buf) == 0
            assert not nsu.warps and not nsu.cmd_queue

    def test_wta_inflight_drains(self, base):
        cfg = make_config("NaiveNDP", base)
        system = System(cfg, config_name="NaiveNDP")
        inst = get_workload("VADD").build(cfg, "ci")
        system.set_code_layout(inst.blocks)
        system.load_workload(inst.name, inst.traces)
        system.run()
        assert all(v == 0 for v in system.ndp.wta_inflight)


class TestStaticRatio:
    def test_ratio_zero_equals_baseline_work(self, base):
        r = run_workload("VADD", "NDP(0.2)", base=base, scale="ci")
        assert 0 < r.offloads_issued < r.blocks_total

    def test_results_deterministic(self, base):
        r1 = run("KMN", "NDP(0.4)", base)
        r2 = run("KMN", "NDP(0.4)", base)
        assert r1.cycles == r2.cycles
        assert r1.traffic.gpu_link == r2.traffic.gpu_link
        assert r1.offloads_issued == r2.offloads_issued

    def test_work_conserved_across_ratios(self, base):
        # Completed warps and baseline-equivalent instructions must not
        # depend on the offload ratio.
        rs = [run("SP", c, base)
              for c in ("Baseline", "NDP(0.4)", "NDP(1.0)")]
        assert len({r.warps_completed for r in rs}) == 1
        assert len({r.instructions for r in rs}) == 1


class TestDynamic:
    def test_epoch_log_populated(self, base):
        from repro.workloads import Scale

        r = run_workload("VADD", "NDP(Dyn)", base=base,
                         scale=Scale("ci", 96, 8))
        assert len(r.extra["epoch_log"]) >= 1
        assert all(0.0 <= ratio <= 1.0 for _, ratio in r.extra["epoch_log"])

    def test_cache_aware_records_stats(self, base):
        r = run("BPROP", "NDP(Dyn)_Cache", base)
        assert r.rdf_packets >= 0
        assert r.rdf_cache_hits <= r.rdf_packets

    def test_bprop_suppression_engages(self, base):
        from repro.workloads import Scale

        # BPROP's hot 68-byte structure gives its blocks high RDF hit
        # rates; the Section 7.3 filter must suppress instances once
        # measurements accumulate (needs a long enough run).
        r = run_workload("BPROP", "NDP(Dyn)_Cache", base=base,
                         scale=Scale("ci", 96, 16))
        assert r.offloads_suppressed > 0


class TestAllWorkloadsRun:
    @pytest.mark.parametrize("name", ["BPROP", "BFS", "BICG", "FWT", "KMN",
                                      "MiniFE", "SP", "STN", "STCL", "VADD"])
    def test_ndp_dyn_cache_completes(self, base, name):
        r = run(name, "NDP(Dyn)_Cache", base)
        inst = get_workload(name).build(base, "ci")
        assert r.warps_completed == inst.num_warps
        assert r.cycles > 0
