"""Unit tests for the memory coalescer."""

import numpy as np

from repro.config import LINE_SIZE, WORD_SIZE
from repro.gpu.coalescer import MemAccess, access_stats, coalesce


class TestCoalesce:
    def test_fully_coalesced_single_line(self):
        addrs = np.arange(32) * WORD_SIZE + 5 * LINE_SIZE
        (acc,) = coalesce(addrs)
        assert acc.line_addr == 5
        assert acc.words == 32
        assert not acc.irregular

    def test_strided_access_spans_lines(self):
        addrs = np.arange(32) * LINE_SIZE  # one line per thread
        accs = coalesce(addrs)
        assert len(accs) == 32
        assert all(a.words == 1 for a in accs)
        assert all(a.irregular for a in accs)

    def test_divergent_random_lines(self):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 20, 32) * WORD_SIZE
        accs = coalesce(addrs)
        assert 1 <= len(accs) <= 32
        total_words = sum(a.words for a in accs)
        assert total_words <= 32

    def test_duplicate_addresses_merge(self):
        addrs = np.zeros(32, dtype=np.int64)
        (acc,) = coalesce(addrs)
        assert acc.words == 1

    def test_active_mask_filters(self):
        addrs = np.arange(32) * WORD_SIZE
        active = np.zeros(32, dtype=bool)
        active[:4] = True
        (acc,) = coalesce(addrs, active)
        assert acc.words == 4

    def test_all_inactive_returns_empty(self):
        assert coalesce(np.arange(4), np.zeros(4, dtype=bool)) == ()

    def test_partial_warp_is_irregular(self):
        # 4 active lanes with lane-ordered offsets but not a full aligned
        # pattern of the coalescer's aligned test... lanes 0..3 give
        # offsets 0,4,8,12 == i*word -> actually aligned by Section 4.1.1.
        addrs = np.arange(4) * WORD_SIZE
        (acc,) = coalesce(addrs)
        assert not acc.irregular

    def test_misaligned_offsets_are_irregular(self):
        addrs = np.array([8, 4, 0, 12], dtype=np.int64)  # shuffled lanes
        (acc,) = coalesce(addrs)
        assert acc.irregular

    def test_access_stats(self):
        addrs = np.arange(64) * WORD_SIZE  # two full lines
        accs = coalesce(addrs)
        lines, words = access_stats(accs)
        assert lines == 2
        assert words == 64

    def test_bytes_touched(self):
        acc = MemAccess(0, 5, False)
        assert acc.bytes_touched == 5 * WORD_SIZE

    def test_line_boundary_split(self):
        # 32 words starting mid-line straddle two lines.
        addrs = (np.arange(32) * WORD_SIZE) + LINE_SIZE // 2
        accs = coalesce(addrs)
        assert len(accs) == 2
        assert sum(a.words for a in accs) == 32
