"""Failure-injection tests: the simulator must fail loudly, not hang or
silently corrupt, when packets or protocol state die in flight.

Faults are injected through the deterministic ``repro.faults`` plans (the
same hooks the chaos CLI drives) rather than by monkeypatching internals,
so these tests exercise the production injection + recovery paths.
"""

import pytest

from repro.config import ci_config
from repro.faults import FaultPlan, FaultSpec, RecoveryPolicy
from repro.sim.runner import build_system, run_workload
from repro.sim.system import SimulationTimeout

NO_RECOVERY = RecoveryPolicy(enabled=False)


def _run(plan, config="NaiveNDP", max_cycles=200_000):
    system = build_system("VADD", config, base=ci_config(), scale="ci",
                          faults=plan)
    return system, system.run(max_cycles=max_cycles)


class TestWatchdog:
    def test_timeout_raised_not_hang(self):
        # An absurdly small cycle budget must raise SimulationTimeout with
        # diagnostic info, never loop forever.
        with pytest.raises(SimulationTimeout) as exc:
            run_workload("VADD", "Baseline", base=ci_config(), scale="ci",
                         max_cycles=10)
        assert "VADD" in str(exc.value)
        assert "warps live" in str(exc.value)

    def test_lost_ack_without_recovery_deadlocks(self):
        # Drop every ACK packet with recovery disabled: warps block at
        # OFLD.END forever; the deadlock detector reports it immediately.
        plan = FaultPlan(name="ack-drop-all", seed=1, recovery=NO_RECOVERY,
                         specs=(FaultSpec(site="gpu_link_up", kind="drop",
                                          rate=1.0),))
        with pytest.raises(SimulationTimeout) as exc:
            _run(plan)
        assert "deadlock" in str(exc.value)

    def test_lost_rdf_response_without_recovery_deadlocks(self):
        # Swallow every memory-network packet (RDF response forwarding):
        # NSU read-data entries never complete and warps starve.
        plan = FaultPlan(name="rdf-drop-all", seed=1, recovery=NO_RECOVERY,
                         specs=(FaultSpec(site="mem_net", kind="drop",
                                          rate=1.0),))
        with pytest.raises(SimulationTimeout):
            _run(plan)

    def test_stuck_credit_without_recovery_deadlocks(self):
        # Drop every credit-return message: once the initial grants run
        # out, reservations queue forever.
        plan = FaultPlan(name="credit-drop-all", seed=1, recovery=NO_RECOVERY,
                         specs=(FaultSpec(site="credit", kind="drop",
                                          rate=1.0),))
        with pytest.raises(SimulationTimeout):
            _run(plan)

    def test_lost_rdf_with_recovery_completes(self):
        # The same mem-net loss at a survivable rate completes through
        # watchdog-driven replay when recovery is armed (the default).
        plan = FaultPlan(name="rdf-drop-some", seed=3, specs=(
            FaultSpec(site="mem_net", kind="drop", rate=0.1),))
        system, result = _run(plan, config="NDP(Dyn)", max_cycles=2_000_000)
        assert result.extra["faults"]["total_fired"] > 0
        assert result.extra["recovery"]["watchdog_fires"] > 0

    def test_stuck_credit_with_recovery_completes(self):
        # A single dropped credit-return message is reconciled from the
        # per-instance ledger when its block completes.
        plan = FaultPlan(name="credit-drop-one", seed=2, specs=(
            FaultSpec(site="credit", kind="drop", at_events=(1,)),))
        system, result = _run(plan, config="NDP(Dyn)", max_cycles=2_000_000)
        assert result.extra["faults"]["fired"] == {"credit.drop": 1}
        assert result.extra["recovery"]["credits_reclaimed"] >= 1


class TestBufferInvariantTraps:
    def test_read_buffer_overflow_trips_assertion(self):
        from repro.core.buffers import ReadDataBuffer

        b = ReadDataBuffer(2)
        b.expect(("a", 0), 1)
        b.expect(("a", 1), 1)
        with pytest.raises(AssertionError):
            b.expect(("a", 2), 1)

    def test_cmd_buffer_overflow_trips_assertion(self):
        from repro.sim.runner import make_config
        from repro.sim.system import System
        from repro.workloads import get_workload

        cfg = make_config("NaiveNDP", ci_config())
        system = System(cfg)
        nsu = system.nsus[0]
        nsu.num_slots = 0   # never spawn: queue can only grow
        class FakeInst:
            block = get_workload("VADD").build(cfg, "ci").blocks[0]
            uid = ("x",)
        with pytest.raises(AssertionError):
            for i in range(cfg.nsu.cmd_buffer_entries + 1):
                nsu.receive_cmd(FakeInst())
