"""Failure-injection tests: the simulator must fail loudly, not hang or
silently corrupt, when components misbehave."""

import pytest

from repro.config import ci_config
from repro.sim.runner import make_config, run_workload
from repro.sim.system import SimulationTimeout, System
from repro.workloads import get_workload


class TestWatchdog:
    def test_timeout_raised_not_hang(self):
        # An absurdly small cycle budget must raise SimulationTimeout with
        # diagnostic info, never loop forever.
        with pytest.raises(SimulationTimeout) as exc:
            run_workload("VADD", "Baseline", base=ci_config(), scale="ci",
                         max_cycles=10)
        assert "VADD" in str(exc.value)
        assert "warps live" in str(exc.value)

    def test_lost_ack_detected(self):
        # Drop every ACK packet: warps block at OFLD.END forever and the
        # watchdog fires.
        cfg = make_config("NaiveNDP", ci_config())
        system = System(cfg, config_name="NaiveNDP")
        inst = get_workload("VADD").build(cfg, "ci")
        system.set_code_layout(inst.blocks)
        system.load_workload(inst.name, inst.traces)
        system.ndp.send_ack = lambda nsu, inst_: None   # drop ACKs
        with pytest.raises(SimulationTimeout):
            system.run(max_cycles=50_000)

    def test_lost_rdf_response_detected(self):
        # Swallow read-data deliveries: NSU warps starve.
        cfg = make_config("NaiveNDP", ci_config())
        system = System(cfg, config_name="NaiveNDP")
        inst = get_workload("VADD").build(cfg, "ci")
        system.set_code_layout(inst.blocks)
        system.load_workload(inst.name, inst.traces)
        for nsu in system.nsus:
            nsu.deliver_read = lambda *a, **k: None
        with pytest.raises(SimulationTimeout):
            system.run(max_cycles=50_000)

    def test_stuck_credit_detected(self):
        # Never return credits: after the initial grants run out, blocks
        # queue forever.
        cfg = make_config("NaiveNDP", ci_config())
        system = System(cfg, config_name="NaiveNDP")
        inst = get_workload("VADD").build(cfg, "ci")
        system.set_code_layout(inst.blocks)
        system.load_workload(inst.name, inst.traces)
        system.ndp.credits.release = lambda *a, **k: None
        with pytest.raises(SimulationTimeout):
            system.run(max_cycles=80_000)


class TestBufferInvariantTraps:
    def test_read_buffer_overflow_trips_assertion(self):
        from repro.core.buffers import ReadDataBuffer

        b = ReadDataBuffer(2)
        b.expect(("a", 0), 1)
        b.expect(("a", 1), 1)
        with pytest.raises(AssertionError):
            b.expect(("a", 2), 1)

    def test_cmd_buffer_overflow_trips_assertion(self):
        cfg = make_config("NaiveNDP", ci_config())
        system = System(cfg)
        nsu = system.nsus[0]
        nsu.num_slots = 0   # never spawn: queue can only grow
        class FakeInst:
            block = get_workload("VADD").build(cfg, "ci").blocks[0]
            uid = ("x",)
        with pytest.raises(AssertionError):
            for i in range(cfg.nsu.cmd_buffer_entries + 1):
                nsu.receive_cmd(FakeInst())
