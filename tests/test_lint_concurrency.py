"""The CONC rule family: fixtures corpus, annotations, --changed and
--fix-stale."""

import shutil
import subprocess
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.concurrency import (build_manifest, class_models,
                                    parse_guard_annotations)
from repro.lint.fixes import fix_stale

FIXTURES = Path(__file__).parent / "lint_fixtures"


def lint_fixture(name: str, rule: str):
    """Findings for one fixture file, restricted to one CONC rule."""
    report = run_lint([FIXTURES / name], use_baseline=False, rules=[rule])
    return [f for f in report.findings if f.rule == rule]


def lint_as_serve(tmp_path, name: str, rule: str):
    """Lint a fixture placed so its module resolves to repro.serve.*
    (CONC005 is scoped to serve/analysis modules)."""
    pkg = tmp_path / "repro" / "serve"
    pkg.mkdir(parents=True, exist_ok=True)
    shutil.copy(FIXTURES / name, pkg / "handler.py")
    report = run_lint([pkg / "handler.py"], use_baseline=False, rules=[rule])
    return [f for f in report.findings if f.rule == rule]


# -- the corpus: one bad and one good fixture per rule ------------------------

class TestFixtureCorpus:
    def test_conc001_bad(self):
        findings = lint_fixture("conc001_bad.py", "CONC001")
        assert len(findings) == 2
        assert any("_total" in f.message for f in findings)
        assert any("_high" in f.message for f in findings)

    def test_conc001_good(self):
        assert lint_fixture("conc001_good.py", "CONC001") == []

    def test_conc002_bad(self):
        findings = lint_fixture("conc002_bad.py", "CONC002")
        assert len(findings) == 2
        assert any("time.sleep" in f.message for f in findings)
        assert any("result" in f.message for f in findings)

    def test_conc002_good(self):
        assert lint_fixture("conc002_good.py", "CONC002") == []

    def test_conc003_bad(self):
        findings = lint_fixture("conc003_bad.py", "CONC003")
        assert len(findings) == 2
        assert any("without holding" in f.message for f in findings)
        assert any("predicate loop" in f.message for f in findings)

    def test_conc003_good(self):
        assert lint_fixture("conc003_good.py", "CONC003") == []

    def test_conc004_bad(self):
        findings = lint_fixture("conc004_bad.py", "CONC004")
        assert len(findings) == 2

    def test_conc004_good(self):
        assert lint_fixture("conc004_good.py", "CONC004") == []

    def test_conc005_bad(self, tmp_path):
        findings = lint_as_serve(tmp_path, "conc005_bad.py", "CONC005")
        imports = [f for f in findings if "import" in f.message]
        lambdas = [f for f in findings if "lambda" in f.message]
        assert len(imports) == 2 and len(lambdas) == 1

    def test_conc005_good(self, tmp_path):
        assert lint_as_serve(tmp_path, "conc005_good.py", "CONC005") == []

    def test_conc005_inert_outside_serve(self):
        # The same bad file as a plain module: the import restriction
        # does not apply (only the scope makes it serve-layer code).
        assert lint_fixture("conc005_bad.py", "CONC005") == []


# -- annotations, inference, manifest -----------------------------------------

ANNOTATED = '''\
import threading


class Box:
    def __init__(self):
        self._items = []   # guarded-by: _lock
        self.reads = 0     # guarded-by: none -- diagnostic only
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
'''


class TestAnnotations:
    def test_parse_guard_annotations(self):
        anns = parse_guard_annotations(ANNOTATED)
        by_lock = {a.lock: a for a in anns}
        assert set(by_lock) == {"_lock", "none"}
        assert by_lock["none"].reason == "diagnostic only"
        assert by_lock["_lock"].reason is None

    def test_annotation_requires_known_lock(self):
        src = ANNOTATED.replace("guarded-by: _lock", "guarded-by: _nope")
        from repro.lint.core import FileContext
        from repro.lint.concurrency import GuardedAttributeRule
        ctx = FileContext("box.py", src, "box")
        GuardedAttributeRule().check_file(ctx, None)
        assert any("_nope" in f.message for f in ctx.findings)

    def test_condition_alias_groups(self):
        import ast
        models = {m.name: m
                  for m in class_models(ast.parse(ANNOTATED), ANNOTATED)}
        box = models["Box"]
        assert box.aliases == {"_ready": "_lock"}
        assert box.group("_lock") == frozenset({"_lock", "_ready"})
        assert "_items" in box.guards and "reads" not in box.guards

    def test_build_manifest_shape(self):
        manifest = build_manifest({"pkg.box": ANNOTATED})
        contract = manifest["pkg.box.Box"]
        assert contract["locks"] == {"_lock": "lock", "_ready": "condition"}
        assert contract["guard_groups"]["_items"] == ["_lock", "_ready"]
        assert "reads" not in contract["guard_groups"]

    def test_suppression_silences_conc(self, tmp_path):
        src = ("import threading\n\n\n"
               "class C:\n"
               "    def __init__(self):\n"
               "        self._x = 0   # guarded-by: _lock\n"
               "        self._lock = threading.Lock()\n\n"
               "    def peek(self):\n"
               "        # lint: ignore[CONC001] -- benign monotonic read\n"
               "        return self._x\n")
        p = tmp_path / "c.py"
        p.write_text(src)
        report = run_lint([p], use_baseline=False, rules=["CONC001"])
        assert [f.rule for f in report.findings] == []


# -- the shipped tree ---------------------------------------------------------

class TestShippedTreeConcurrency:
    def test_serve_stack_is_conc_clean(self):
        root = Path(__file__).parent.parent / "src" / "repro"
        report = run_lint([root / "serve", root / "sim" / "store.py"],
                          use_baseline=False,
                          rules=["CONC001", "CONC002", "CONC003",
                                 "CONC004", "CONC005"])
        assert [f.format() for f in report.findings] == []

    def test_manifest_covers_serve_locks(self):
        import inspect
        import repro.serve.daemon as daemon
        import repro.serve.jobs as jobs
        import repro.serve.limiter as limiter
        import repro.serve.pool as pool
        manifest = build_manifest({
            m.__name__: inspect.getsource(m)
            for m in (daemon, jobs, limiter, pool)})
        assert "repro.serve.jobs.JobQueue" in manifest
        jq = manifest["repro.serve.jobs.JobQueue"]
        for attr in ("_lanes", "_order", "_cursor", "_depth", "_closed"):
            assert jq["guard_groups"][attr] == ["_lock", "_ready"]
        # 'none' opt-outs stay out of the runtime contract.
        assert "hits" not in manifest["repro.serve.jobs.Coalescer"][
            "guard_groups"]
        assert "rejections" not in manifest[
            "repro.serve.limiter.TokenBucket"]["guard_groups"]
        assert manifest["repro.serve.pool.ShardPool"]["guard_groups"][
            "_restarts"] == ["_lock"]


# -- repro lint --changed -----------------------------------------------------

def _git(repo: Path, *args: str) -> None:
    subprocess.run(["git", "-c", "user.email=t@t", "-c", "user.name=t",
                    *args], cwd=repo, check=True, capture_output=True)


BAD_SET_ITER = "for x in {1, 2}:\n    pass\n"


class TestChanged:
    def test_scopes_to_touched_files(self, tmp_path, monkeypatch):
        repo = tmp_path / "r"
        repo.mkdir()
        _git(repo, "init", "-q")
        (repo / "a.py").write_text(BAD_SET_ITER)
        (repo / "b.py").write_text(BAD_SET_ITER)
        _git(repo, "add", "-A")
        _git(repo, "commit", "-qm", "seed")
        (repo / "b.py").write_text("y = 2\n" + BAD_SET_ITER)
        (repo / "c.py").write_text(BAD_SET_ITER)   # untracked counts too
        monkeypatch.chdir(repo)

        full = run_lint([repo], use_baseline=False, rules=["DET001"])
        assert full.files == 3

        scoped = run_lint([repo], use_baseline=False, rules=["DET001"],
                          changed="HEAD")
        assert scoped.files == 2
        touched = {Path(f.path).name for f in scoped.findings}
        assert touched == {"b.py", "c.py"}

    def test_bad_ref_raises(self, tmp_path, monkeypatch):
        repo = tmp_path / "r"
        repo.mkdir()
        _git(repo, "init", "-q")
        (repo / "a.py").write_text("x = 1\n")
        monkeypatch.chdir(repo)
        with pytest.raises(ValueError, match="--changed"):
            run_lint([repo], use_baseline=False, changed="no-such-ref")


# -- repro lint --fix-stale ---------------------------------------------------

class TestFixStale:
    def _report(self, path: Path):
        return run_lint([path], use_baseline=False)

    def test_removes_trailing_marker(self, tmp_path):
        p = tmp_path / "m.py"
        p.write_text("x = 1  # lint: ignore[DET001] -- nothing here\n"
                     "y = 2\n")
        result = fix_stale(self._report(p))
        assert result.removed == 1 and result.applied
        assert p.read_text() == "x = 1\ny = 2\n"
        # the rewritten file is clean
        assert self._report(p).findings == []

    def test_removes_standalone_block(self, tmp_path):
        p = tmp_path / "m.py"
        p.write_text("# lint: ignore[DET001] -- stale reason\n"
                     "# continuation of the stale reason\n"
                     "x = 1\n")
        result = fix_stale(self._report(p))
        assert result.removed == 1
        assert p.read_text() == "x = 1\n"

    def test_dry_run_diffs_without_writing(self, tmp_path):
        p = tmp_path / "m.py"
        src = "x = 1  # lint: ignore[DET001] -- nothing here\n"
        p.write_text(src)
        result = fix_stale(self._report(p), dry_run=True)
        assert result.removed == 1 and not result.applied
        assert p.read_text() == src                  # untouched
        (diff,) = result.diffs.values()
        assert "-x = 1  # lint: ignore[DET001]" in diff
        assert "+x = 1" in diff

    def test_live_suppressions_survive(self, tmp_path):
        p = tmp_path / "m.py"
        p.write_text("for i in {1, 2}:  # lint: ignore[DET001] -- test data\n"
                     "    pass\n"
                     "x = 1  # lint: ignore[DET001] -- stale\n")
        result = fix_stale(self._report(p))
        assert result.removed == 1
        text = p.read_text()
        assert "test data" in text and "stale" not in text

    def test_api_facade_round_trip(self, tmp_path):
        from repro import api
        p = tmp_path / "m.py"
        p.write_text("x = 1  # lint: ignore[DET001] -- stale\n")
        report = api.lint([p], use_baseline=False, fix_stale=True)
        assert report.stale_fix.removed == 1
        assert report.findings == []                 # post-fix re-lint
        assert p.read_text() == "x = 1\n"
