"""Unit tests for offload-block extraction and Eq. (1) scoring."""


from repro.config import REG_SIZE
from repro.isa import (
    BasicBlock,
    Kernel,
    address_calc_indices,
    alu,
    analyze_kernel,
    extract_candidate_blocks,
    ld,
    live_in_regs,
    live_out_regs,
    score_block,
    st,
    shmem_ld,
    shmem_st,
    sync,
)


def vadd_region():
    """The Figure 2 vector-add body: C[i] = A[i] + B[i].

    R0/R1/R2 hold precomputed addresses, R10 is address arithmetic.
    """
    return (
        ld(4, 0, "A"),
        ld(5, 1, "B"),
        alu(6, 4, 5),            # data ALU -> NSU
        alu(10, 2, 3),           # address calc for the store -> GPU
        st(6, 10, "C"),
    )


class TestAddressCalc:
    def test_store_address_alu_marked(self):
        region = vadd_region()
        marked = address_calc_indices(region)
        assert marked == {3}

    def test_data_alu_not_marked(self):
        region = vadd_region()
        assert 2 not in address_calc_indices(region)

    def test_chained_address_arithmetic(self):
        region = (
            alu(1, 0),           # addr calc (feeds 2)
            alu(2, 1),           # addr calc (feeds ld)
            ld(3, 2, "A"),
        )
        assert address_calc_indices(region) == {0, 1}

    def test_indirect_load_producer_not_marked(self):
        # x = B[A[i]]: the A-load's result feeds the B address, but the
        # load itself is memory, not address arithmetic.
        region = (
            ld(4, 0, "A"),
            alu(5, 4),           # turns the loaded index into an address
            ld(6, 5, "B", indirect=True),
        )
        marked = address_calc_indices(region)
        assert marked == {1}

    def test_no_memory_no_marks(self):
        assert address_calc_indices((alu(1, 0), alu(2, 1))) == frozenset()


class TestLiveness:
    def test_live_in_excludes_loaded_and_addr_regs(self):
        region = vadd_region()
        ac = address_calc_indices(region)
        # R4, R5 come from the read-data buffer; addresses travel in
        # RDF/WTA packets; nothing else is read -> no live-ins.
        assert live_in_regs(region, ac) == frozenset()

    def test_live_in_detects_external_operand(self):
        region = (
            ld(4, 0, "A"),
            alu(5, 4, 9),        # R9 defined outside the block
            st(5, 1, "C"),
        )
        ac = address_calc_indices(region)
        assert live_in_regs(region, ac) == {9}

    def test_live_out_only_when_read_later(self):
        region = (ld(4, 0, "A"), alu(5, 4))
        ac = address_calc_indices(region)
        assert live_out_regs(region, ac, frozenset({5})) == {5}
        assert live_out_regs(region, ac, frozenset({7})) == frozenset()

    def test_live_out_ignores_gpu_side_defs(self):
        region = vadd_region()
        ac = address_calc_indices(region)
        # R10 is produced by the address ALU, which stays on the GPU.
        assert live_out_regs(region, ac, frozenset({10})) == frozenset()


class TestScore:
    def test_vadd_score_counts_three_accesses(self):
        region = vadd_region()
        ac = address_calc_indices(region)
        assert score_block(region, ac, frozenset()) == 12.0  # 3 x 4B

    def test_register_transfer_penalty(self):
        region = (
            ld(4, 0, "A"),
            alu(5, 4, 9),        # live-in R9
            st(5, 1, "C"),
        )
        ac = address_calc_indices(region)
        # 2 accesses * 4B - 1 live-in * REG_SIZE
        assert score_block(region, ac, frozenset()) == 8.0 - REG_SIZE

    def test_negative_score_when_context_dominates(self):
        region = (alu(5, 10, 11), alu(6, 12, 13), alu(7, 5, 6),
                  st(7, 0, "C"))
        ac = address_calc_indices(region)
        s = score_block(region, ac, frozenset())
        assert s == 4.0 - 4 * REG_SIZE
        assert s < 0


class TestExtraction:
    def test_vadd_kernel_single_block(self):
        k = Kernel("vadd", [BasicBlock(list(vadd_region()))])
        blocks = extract_candidate_blocks(k)
        assert len(blocks) == 1
        assert blocks[0].num_loads == 2
        assert blocks[0].num_stores == 1
        assert blocks[0].reason == "score"

    def test_sync_splits_runs(self):
        k = Kernel("k", [BasicBlock([
            ld(4, 0, "A"), st(4, 1, "C"),
            sync(),
            ld(5, 2, "B"), st(5, 3, "D"),
        ])])
        blocks = extract_candidate_blocks(k)
        assert len(blocks) == 2
        assert [b.start for b in blocks] == [0, 3]

    def test_shmem_not_offloaded(self):
        k = Kernel("k", [BasicBlock([
            shmem_ld(4, 0), alu(5, 4), shmem_st(5, 1),
        ])])
        assert extract_candidate_blocks(k) == []

    def test_indirect_load_salvaged_from_negative_region(self):
        # Region score is negative (heavy register context), but the
        # indirect load must still be extracted alone (Section 4.4).
        k = Kernel("k", [BasicBlock([
            ld(4, 0, "A"),
            alu(5, 4),
            ld(6, 5, "B", indirect=True),
            alu(7, 6, 10, 11, 12, 13),     # many live-ins -> negative score
            alu(8, 7, 14, 15, 16, 17),
        ])], live_out=frozenset({8}))
        blocks = extract_candidate_blocks(k)
        indirect = [b for b in blocks if b.reason == "indirect"]
        assert len(indirect) == 1
        assert indirect[0].num_mem == 1
        assert indirect[0].instrs[0].indirect

    def test_mem_limit_splits_block(self):
        instrs = []
        for i in range(6):
            instrs.append(ld(10 + i, i, "A"))
        instrs.append(st(10, 8, "C"))
        k = Kernel("k", [BasicBlock(instrs)])
        blocks = extract_candidate_blocks(k, max_mem_per_block=4)
        assert len(blocks) == 2
        assert blocks[0].num_mem == 4
        assert blocks[1].num_mem == 3

    def test_pure_alu_run_not_a_block(self):
        k = Kernel("k", [BasicBlock([alu(1, 0), alu(2, 1)])])
        assert extract_candidate_blocks(k) == []


class TestAnalyzeKernel:
    def test_vadd_nsu_body_length_matches_table1(self):
        # Table 1: VADD offload block = 4 NSU instructions (2 LD, ADD, ST).
        k = Kernel("vadd", [BasicBlock(list(vadd_region()))])
        ak = analyze_kernel(k)
        assert ak.nsu_body_lengths == [4]

    def test_block_ids_sequential(self):
        k = Kernel("k", [BasicBlock([
            ld(4, 0, "A"), st(4, 1, "C"),
            sync(),
            ld(5, 2, "B"), st(5, 3, "D"),
        ])])
        ak = analyze_kernel(k)
        assert [b.block_id for b in ak.blocks] == [0, 1]
