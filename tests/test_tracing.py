"""Tests for packet-level message tracing (Figure 6 timelines)."""

import pytest

from repro.config import ci_config
from repro.sim.runner import make_config
from repro.sim.system import System
from repro.sim.tracing import MessageTrace
from repro.workloads import get_workload


def traced_run(workload="VADD", config="NaiveNDP"):
    cfg = make_config(config, ci_config())
    system = System(cfg, config_name=config)
    inst = get_workload(workload).build(cfg, "ci")
    system.set_code_layout(inst.blocks)
    system.load_workload(inst.name, inst.traces)
    trace = MessageTrace()
    system.ndp.trace = trace
    system.run()
    return system, trace


class TestMessageTrace:
    def test_records_and_bounds(self):
        t = MessageTrace(max_events=2)
        for i in range(4):
            t.record(i, "CMD", "gpu", "hmc0", 28)
        assert len(t.events) == 2
        assert t.dropped == 2

    def test_summary(self):
        t = MessageTrace()
        t.record(0, "CMD", "gpu", "hmc0", 28)
        t.record(1, "CMD", "gpu", "hmc1", 28)
        t.record(2, "ACK", "hmc0", "gpu", 16)
        assert t.summary() == {"CMD": (2, 56), "ACK": (1, 16)}
        assert not t.truncated

    def test_summary_reports_dropped(self):
        t = MessageTrace(max_events=1)
        t.record(0, "CMD", "gpu", "hmc0", 28)
        t.record(1, "ACK", "hmc0", "gpu", 16)
        t.record(2, "ACK", "hmc0", "gpu", 16)
        assert t.truncated
        assert t.summary() == {"CMD": (1, 28), "DROPPED": (2, 0)}

    def test_timeline_empty(self):
        t = MessageTrace()
        assert "no events" in t.timeline(("x",))


class TestEndToEndTrace:
    @pytest.fixture(scope="class")
    def traced(self):
        return traced_run()

    def test_figure2_message_sequence(self, traced):
        # One VADD block instance must show the Figure 2(b) pattern:
        # CMD, two RDFs (or hit responses), one WTA, a WRITE, and the ACK.
        system, trace = traced
        uid = trace.instances()[0]
        kinds = [e.kind for e in trace.for_instance(uid)]
        assert kinds[0] == "CMD"
        rdfs = [k for k in kinds if k in ("RDF", "RDF_RESP", "RDF_HIT_RESP")]
        assert len(rdfs) >= 2
        assert "WTA" in kinds
        assert "WRITE" in kinds
        assert kinds[-1] == "ACK" or "ACK" in kinds

    def test_timestamps_monotonic(self, traced):
        _, trace = traced
        uid = trace.instances()[0]
        cycles = [e.cycle for e in trace.for_instance(uid)]
        assert cycles == sorted(cycles)

    def test_timeline_renders(self, traced):
        _, trace = traced
        uid = trace.instances()[0]
        text = trace.timeline(uid)
        assert "CMD" in text and "ACK" in text
        assert "gpu" in text and "hmc" in text

    def test_all_instances_have_acks(self, traced):
        system, trace = traced
        n_acks = sum(1 for e in trace.events if e.kind == "ACK")
        assert n_acks == system.ndp.stats.acks

    def test_inv_recorded(self, traced):
        _, trace = traced
        assert any(e.kind == "INV" for e in trace.events)
