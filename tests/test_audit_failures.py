"""Tests for ``audit_system``'s failure paths: each conservation invariant
must produce its specific violation message when broken.

The positive path (clean audits after every configuration) is covered by
the integration tests; here we take a clean finished system and surgically
break one invariant at a time."""

import pytest

from repro.config import ci_config
from repro.sim.runner import build_system
from repro.sim.validate import AuditError, assert_clean, audit_system


@pytest.fixture(scope="module")
def finished():
    system = build_system("VADD", "NDP(Dyn)", base=ci_config(), scale="ci")
    result = system.run(max_cycles=2_000_000)
    return system, result


class TestAuditFailurePaths:
    def test_clean_baseline(self, finished):
        system, result = finished
        assert audit_system(system, result) == []
        assert_clean(system, result)   # must not raise

    def test_leaked_read_buffer_entry(self, finished):
        system, result = finished
        nsu = system.nsus[0]
        nsu.read_buf.expect((("fake", 0, 0), 0), 1)
        try:
            failures = audit_system(system, result)
            assert any("read buffer leaks" in f for f in failures)
            with pytest.raises(AuditError, match="read buffer leaks"):
                assert_clean(system, result)
        finally:
            nsu.read_buf._entries.clear()

    def test_unbalanced_credits(self, finished):
        system, result = finished
        bank = system.ndp.credits._credits[0]
        bank.cmd -= 1
        try:
            failures = audit_system(system, result)
            assert any("credits" in f and "!= capacity" in f
                       for f in failures)
        finally:
            bank.cmd += 1

    def test_credit_overflow(self, finished):
        system, result = finished
        bank = system.ndp.credits._credits[0]
        bank.read_data += 3
        try:
            failures = audit_system(system, result)
            assert any("credit overflow" in f for f in failures)
        finally:
            bank.read_data -= 3

    def test_leaked_load_replay(self, finished):
        system, result = finished
        sm = system.sms[0]
        sm._replays[999] = object()
        try:
            assert sm.pending_replays == 1
            failures = audit_system(system, result)
            assert any("leaks load replays" in f for f in failures)
        finally:
            del sm._replays[999]
        assert sm.pending_replays == 0

    def test_ack_offload_mismatch(self, finished):
        system, result = finished
        system.ndp.stats.offloads += 1
        try:
            failures = audit_system(system, result)
            assert any("!= offloads" in f for f in failures)
        finally:
            system.ndp.stats.offloads -= 1

    def test_wta_inflight_leak(self, finished):
        system, result = finished
        system.ndp.wta_inflight[-1] += 1
        try:
            failures = audit_system(system, result)
            assert any("in-flight WTA counters leak" in f for f in failures)
        finally:
            system.ndp.wta_inflight[-1] -= 1

    def test_pending_engine_events(self, finished):
        system, result = finished
        system.engine.after(100, lambda: None)
        try:
            failures = audit_system(system, result)
            assert any("events still pending" in f for f in failures)
        finally:
            system.engine.now += 200
            system.engine.process_due()   # drain the injected event

    def test_multiple_violations_all_reported(self, finished):
        system, result = finished
        sm = system.sms[0]
        sm._replays[999] = object()
        system.ndp.wta_inflight[0] += 1
        try:
            failures = audit_system(system, result)
            assert len(failures) >= 2
        finally:
            del sm._replays[999]
            system.ndp.wta_inflight[0] -= 1
        assert audit_system(system, result) == []
