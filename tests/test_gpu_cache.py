"""Unit tests for the cache and MSHR models."""

import pytest

from repro.gpu.cache import Cache, CacheStats, MSHRFile


def mk(size=4096, assoc=4, line=128):
    return Cache(size, assoc, line)


class TestCache:
    def test_miss_then_hit(self):
        c = mk()
        assert not c.lookup(10)
        c.insert(10)
        assert c.lookup(10)
        assert c.stats.hits == 1
        assert c.stats.misses == 1

    def test_lru_eviction_order(self):
        c = Cache(4 * 128, 4, 128)  # one set, 4 ways
        for line in range(4):
            c.insert(line * c.num_sets)  # all map to set 0
        victim = c.insert(100 * c.num_sets)
        assert victim == 0

    def test_lookup_refreshes_lru(self):
        c = Cache(4 * 128, 4, 128)
        for line in range(4):
            c.insert(line)
        c.lookup(0)                  # 0 becomes MRU
        victim = c.insert(400)
        assert victim == 1

    def test_insert_existing_no_eviction(self):
        c = mk()
        c.insert(5)
        assert c.insert(5) is None
        assert c.occupancy == 1

    def test_invalidate(self):
        c = mk()
        c.insert(7)
        assert c.invalidate(7)
        assert not c.lookup(7)
        assert not c.invalidate(7)
        assert c.stats.invalidations == 1

    def test_probe_does_not_count_demand(self):
        c = mk()
        c.insert(3)
        assert c.probe(3)
        assert not c.probe(4)
        assert c.stats.hits == 0 and c.stats.misses == 0
        assert c.stats.accesses_probe == 2

    def test_touch_write_no_allocate(self):
        c = mk()
        c.touch_write(9)
        assert not c.contains(9)

    def test_sets_power_of_two_required(self):
        with pytest.raises(ValueError):
            Cache(3 * 128 * 4, 4, 128)

    def test_distinct_sets_do_not_conflict(self):
        c = mk(size=2 * 4 * 128)   # 2 sets
        c.insert(0)
        c.insert(1)
        assert c.contains(0) and c.contains(1)

    def test_hit_rate(self):
        c = mk()
        c.insert(1)
        c.lookup(1)
        c.lookup(2)
        assert c.stats.hit_rate == pytest.approx(0.5)


class TestMSHR:
    def test_new_then_merge(self):
        stats = CacheStats()
        m = MSHRFile(4, stats)
        calls = []
        assert m.allocate(5, lambda: calls.append("a")) == "new"
        assert m.allocate(5, lambda: calls.append("b")) == "merged"
        assert stats.mshr_merges == 1
        assert m.fill(5) == 2
        assert calls == ["a", "b"]

    def test_full_rejects(self):
        stats = CacheStats()
        m = MSHRFile(2, stats)
        assert m.allocate(1, lambda: None) == "new"
        assert m.allocate(2, lambda: None) == "new"
        assert m.allocate(3, lambda: None) == "full"
        assert stats.mshr_rejects == 1

    def test_merge_allowed_when_full(self):
        stats = CacheStats()
        m = MSHRFile(1, stats)
        m.allocate(1, lambda: None)
        assert m.allocate(1, lambda: None) == "merged"

    def test_fill_frees_entry(self):
        m = MSHRFile(1, CacheStats())
        m.allocate(1, lambda: None)
        m.fill(1)
        assert m.allocate(2, lambda: None) == "new"

    def test_fill_unknown_line_noop(self):
        m = MSHRFile(1, CacheStats())
        assert m.fill(42) == 0

    def test_peak_tracking(self):
        m = MSHRFile(8, CacheStats())
        for i in range(5):
            m.allocate(i, lambda: None)
        assert m.peak == 5
