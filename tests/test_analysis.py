"""Tests for the analysis/experiment harness (fast paths + a CI-scale
smoke of the simulation-backed figures)."""

import math

import pytest

from repro.analysis.figures import (
    ExperimentRunner,
    coherence_overhead,
    figure5,
    figure7,
    figure11,
    geomean,
)
from repro.analysis.tables import (
    format_table,
    hardware_overhead,
    table1,
    table2,
)
from repro.config import ci_config


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_empty_is_nan(self):
        assert math.isnan(geomean([]))


class TestTables:
    def test_table1_rows(self):
        rows = table1()
        assert len(rows) == 10
        assert rows[0]["Abbr."] == "BPROP"
        assert all("# of instr. in offload blocks" in r for r in rows)

    def test_table2_rows(self):
        rows = table2()
        params = {r["Parameter"] for r in rows}
        assert {"# of SMs", "# of HMCs", "NSU", "DRAM timing"} <= params

    def test_hardware_overhead_values(self):
        hw = hardware_overhead()
        assert hw["per_sm_bytes"] == 2912
        assert 0.01 < hw["overhead_fraction"] < 0.03

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "bb": "xy"}, {"a": 22, "bb": "z"}],
                            "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(set(len(l) for l in lines[1:])) == 1


class TestFigure5:
    def test_small_study_shapes(self):
        d = figure5(trials=500)
        assert len(d["n_accesses"]) == 64
        assert d["ratio"].max() < 1.3


class TestRunnerCaching:
    def test_result_cached(self):
        r = ExperimentRunner(base=ci_config(), scale="ci",
                             workloads=["VADD"])
        a = r.result("VADD", "Baseline")
        b = r.result("VADD", "Baseline")
        assert a is b

    def test_speedup_self_is_one(self):
        r = ExperimentRunner(base=ci_config(), scale="ci",
                             workloads=["VADD"])
        assert r.speedup("VADD", "Baseline") == pytest.approx(1.0)


class TestSimulationBackedFigures:
    """CI-scale smoke over a two-workload subset."""

    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(base=ci_config(), scale="ci",
                                workloads=["VADD", "KMN"])

    def test_figure7_structure(self, runner):
        d = figure7(runner)
        assert set(d) == {"VADD", "KMN", "GMEAN"}
        for row in d.values():
            assert set(row) == {"Baseline", "Baseline_MoreCore", "NaiveNDP"}
            assert row["Baseline"] == pytest.approx(1.0)

    def test_figure11_structure(self, runner):
        d = figure11(runner)
        for w in ("VADD", "KMN", "AVG"):
            assert 0.0 <= d[w]["icache_utilization"] <= 1.0
            assert 0.0 <= d[w]["warp_occupancy"] <= 1.0

    def test_coherence_overhead_structure(self, runner):
        d = coherence_overhead(runner)
        assert 0.0 <= d["AVG"] <= 1.0
