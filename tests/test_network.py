"""Unit tests for the hypercube memory network and GPU links."""

import pytest

from repro.config import SystemConfig, ci_config
from repro.network import (
    GPULinks,
    MemoryNetwork,
    dimension_order_path,
    hypercube_topology,
)
from repro.network.topology import links_per_node
from repro.sim.engine import Engine, LinkCounters


class TestTopology:
    def test_8_node_hypercube_degree_3(self):
        g = hypercube_topology(8)
        assert all(g.degree[n] == 3 for n in g.nodes)
        assert g.number_of_edges() == 12

    def test_edges_differ_in_one_bit(self):
        g = hypercube_topology(8)
        for u, v in g.edges:
            assert bin(u ^ v).count("1") == 1

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            hypercube_topology(6)

    def test_links_per_node(self):
        assert links_per_node(8) == 3
        assert links_per_node(4) == 2

    def test_dimension_order_path_minimal(self):
        path = dimension_order_path(0b000, 0b111)
        assert path == [0b000, 0b001, 0b011, 0b111]

    def test_path_self(self):
        assert dimension_order_path(5, 5) == [5]

    def test_path_hops_equal_hamming_distance(self):
        for src in range(8):
            for dst in range(8):
                hops = len(dimension_order_path(src, dst)) - 1
                assert hops == bin(src ^ dst).count("1")


class TestMemoryNetwork:
    def _net(self, num_hmcs=8):
        e = Engine()
        cfg = SystemConfig(num_hmcs=num_hmcs)
        net = MemoryNetwork(e, cfg, LinkCounters())
        return e, net

    def test_local_delivery_is_free(self):
        e, net = self._net()
        got = []
        net.send(3, 3, 128, lambda: got.append(e.now))
        e.drain()
        assert got == [0]
        assert net.total_bytes() == 0

    def test_single_hop_delivery(self):
        e, net = self._net()
        got = []
        net.send(0, 1, 128, lambda: got.append(e.now))
        e.drain()
        assert len(got) == 1
        assert got[0] > 0

    def test_multi_hop_costs_more(self):
        e1, net1 = self._net()
        t1 = []
        net1.send(0, 1, 256, lambda: t1.append(e1.now))
        e1.drain()
        e3, net3 = self._net()
        t3 = []
        net3.send(0, 7, 256, lambda: t3.append(e3.now))
        e3.drain()
        assert t3[0] > t1[0]

    def test_bytes_counted_per_hop(self):
        e, net = self._net()
        net.send(0, 7, 100, lambda: None)
        e.drain()
        assert net.total_bytes() == 300  # 3 hops x 100 bytes

    def test_traffic_does_not_touch_gpu_links(self):
        e = Engine()
        cfg = SystemConfig(num_hmcs=8)
        counters = LinkCounters()
        net = MemoryNetwork(e, cfg, counters)
        net.send(0, 5, 512, lambda: None)
        e.drain()
        assert counters.get("mem_net") > 0
        assert counters.get("gpu_link") == 0

    def test_hops_helper(self):
        _, net = self._net()
        assert net.hops(0, 7) == 3
        assert net.hops(2, 2) == 0


class TestGPULinks:
    def test_mismatched_links_rejected(self):
        e = Engine()
        cfg = SystemConfig(num_hmcs=4)  # default GPU has 8 links
        with pytest.raises(ValueError):
            GPULinks(e, cfg, LinkCounters())

    def test_down_and_up_independent(self):
        e = Engine()
        cfg = ci_config()
        links = GPULinks(e, cfg, LinkCounters())
        times = {}
        links.to_hmc(0, 1024, lambda: times.setdefault("down", e.now))
        links.to_gpu(0, 1024, lambda: times.setdefault("up", e.now))
        e.drain()
        # Full duplex: both directions complete at the same time.
        assert times["down"] == times["up"]

    def test_per_hmc_links_parallel(self):
        e = Engine()
        cfg = ci_config()
        links = GPULinks(e, cfg, LinkCounters())
        times = []
        for h in range(cfg.num_hmcs):
            links.to_hmc(h, 2048, lambda: times.append(e.now))
        e.drain()
        assert len(set(times)) == 1  # all links serialize independently

    def test_byte_accounting(self):
        e = Engine()
        cfg = ci_config()
        c = LinkCounters()
        links = GPULinks(e, cfg, c)
        links.to_hmc(1, 100, lambda: None)
        links.to_gpu(0, 50, lambda: None)
        assert links.bytes_down() == 100
        assert links.bytes_up() == 50
        assert c.get("gpu_link") == 150

    def test_paper_bandwidth_ratio(self):
        # Aggregate DRAM bandwidth (8 stacks x ~320 GB/s) must exceed GPU
        # off-chip bandwidth (8 x 2 x 20 GB/s) by a wide margin -- the
        # premise of the whole paper (Section 1).
        cfg = SystemConfig()
        gpu_bw = cfg.gpu.total_offchip_bytes_per_sm_cycle * 2
        from repro.memory import AddressMap, HMCStack
        e = Engine()
        stack = HMCStack(e, cfg, 0, AddressMap(cfg), LinkCounters())
        dram_bw = stack.peak_bandwidth_bytes_per_cycle() * cfg.num_hmcs
        assert dram_bw > 3 * gpu_bw
