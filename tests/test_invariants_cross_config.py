"""Cross-configuration invariants at CI scale.

Fast, scale-robust counterparts of the benchmark assertions: relations
that must hold at *any* scale (traffic conservation, work conservation,
monotonicities) rather than the magnitude claims the bench suite checks.
"""

import pytest

from repro.config import ci_config
from repro.sim.runner import run_workload
from repro.workloads import Scale

BASE = ci_config()
SC = Scale("ci", 64, 4)


@pytest.fixture(scope="module")
def results():
    out = {}
    for w in ("VADD", "BFS", "STN"):
        for c in ("Baseline", "NDP(0.4)", "NDP(1.0)"):
            out[(w, c)] = run_workload(w, c, base=BASE, scale=SC)
    return out


class TestTrafficInvariants:
    @pytest.mark.parametrize("w", ["VADD", "BFS"])
    def test_offload_cuts_gpu_traffic_for_cache_cold_workloads(
            self, results, w):
        base = results[(w, "Baseline")].traffic.gpu_link
        full = results[(w, "NDP(1.0)")].traffic.gpu_link
        assert full < base

    def test_offload_inflates_gpu_traffic_for_cache_hot_stn(self, results):
        # The Section 7.1 effect in byte counters: STN's neighbour loads
        # hit the GPU caches (free off-chip in the baseline), but under
        # full offload every hit's data is re-shipped to the NSU over the
        # GPU links.
        base = results[("STN", "Baseline")].traffic.gpu_link
        full = results[("STN", "NDP(1.0)")].traffic.gpu_link
        assert full > base

    @pytest.mark.parametrize("w", ["VADD", "BFS", "STN"])
    def test_network_traffic_grows_with_ratio(self, results, w):
        half = results[(w, "NDP(0.4)")].traffic.mem_net
        full = results[(w, "NDP(1.0)")].traffic.mem_net
        assert 0 < half <= full

    @pytest.mark.parametrize("w", ["VADD", "BFS", "STN"])
    def test_invalidations_proportional_to_ndp_stores(self, results, w):
        r = results[(w, "NDP(1.0)")]
        if r.traffic.invalidations:
            # 16 bytes per NDP write.
            assert r.traffic.invalidations % 16 == 0

    def test_rdf_divergence_saves_bytes_vs_baseline_lines(self, results):
        # BFS full offload: RDF responses carry touched words only, so
        # network + GPU-link bytes together undercut the baseline's
        # full-line GPU traffic.
        base = results[("BFS", "Baseline")].traffic.gpu_link
        r = results[("BFS", "NDP(1.0)")]
        assert r.traffic.gpu_link + r.traffic.mem_net < base


class TestWorkConservation:
    @pytest.mark.parametrize("w", ["VADD", "BFS", "STN"])
    def test_instructions_identical_across_configs(self, results, w):
        vals = {results[(w, c)].instructions
                for c in ("Baseline", "NDP(0.4)", "NDP(1.0)")}
        assert len(vals) == 1

    @pytest.mark.parametrize("w", ["VADD", "BFS", "STN"])
    def test_warps_complete_everywhere(self, results, w):
        vals = {results[(w, c)].warps_completed
                for c in ("Baseline", "NDP(0.4)", "NDP(1.0)")}
        assert len(vals) == 1

    @pytest.mark.parametrize("w", ["VADD", "BFS", "STN"])
    def test_nsu_work_scales_with_ratio(self, results, w):
        n0 = results[(w, "Baseline")].nsu_instructions
        n4 = results[(w, "NDP(0.4)")].nsu_instructions
        n10 = results[(w, "NDP(1.0)")].nsu_instructions
        assert n0 == 0
        assert 0 < n4 < n10


class TestDeterminism:
    def test_repeated_runs_identical(self):
        a = run_workload("BFS", "NDP(0.6)", base=BASE, scale=SC)
        b = run_workload("BFS", "NDP(0.6)", base=BASE, scale=SC)
        assert a.cycles == b.cycles
        assert a.traffic == b.traffic
        assert a.stalls == b.stalls
        assert a.offloads_issued == b.offloads_issued

    def test_seed_changes_results(self):
        import dataclasses

        other = dataclasses.replace(BASE, seed=99)
        a = run_workload("BFS", "NDP(0.6)", base=BASE, scale=SC)
        b = run_workload("BFS", "NDP(0.6)", base=other, scale=SC)
        # Different page mapping + decision RNG: same work, different
        # timing/placement.
        assert a.instructions == b.instructions
        assert (a.cycles, a.traffic.mem_net) != (b.cycles,
                                                 b.traffic.mem_net)
