"""Unit tests for the kernel IR (repro.isa.instructions / kernel)."""

import pytest

from repro.isa import (
    BasicBlock,
    Instr,
    Kernel,
    Opcode,
    alu,
    branch,
    ld,
    sfu,
    shmem_ld,
    shmem_st,
    st,
    sync,
)


class TestConstructors:
    def test_ld_fields(self):
        i = ld(dst=3, addr=1, array="A")
        assert i.op is Opcode.LD
        assert i.dst == 3
        assert i.addr_src == 1
        assert i.array == "A"
        assert not i.indirect
        assert i.dtype_bytes == 4

    def test_ld_indirect_flag(self):
        i = ld(dst=3, addr=1, array="B", indirect=True)
        assert i.indirect

    def test_st_fields(self):
        i = st(data=5, addr=2, array="C")
        assert i.op is Opcode.ST
        assert i.dst is None
        assert i.srcs == (5,)
        assert i.addr_src == 2

    def test_alu_fields(self):
        i = alu(7, 1, 2)
        assert i.op is Opcode.ALU
        assert i.dst == 7
        assert i.srcs == (1, 2)

    def test_sfu_latency_class(self):
        assert sfu(1, 2).latency_class == "sfu"
        assert alu(1, 2).latency_class == "alu"

    def test_shmem_and_sync(self):
        assert shmem_ld(1, 2).op is Opcode.SHMEM_LD
        assert shmem_st(1, 2).op is Opcode.SHMEM_ST
        assert sync().op is Opcode.SYNC
        assert branch(3).op is Opcode.BRANCH


class TestValidation:
    def test_ld_requires_array(self):
        with pytest.raises(ValueError):
            Instr(Opcode.LD, dst=1, addr_src=0)

    def test_ld_requires_dst(self):
        with pytest.raises(ValueError):
            Instr(Opcode.LD, addr_src=0, array="A")

    def test_st_must_not_write(self):
        with pytest.raises(ValueError):
            Instr(Opcode.ST, dst=1, addr_src=0, array="A")


class TestReads:
    def test_reads_includes_addr_src(self):
        i = ld(dst=3, addr=9, array="A")
        assert 9 in i.reads

    def test_reads_deduplicates_addr_src(self):
        i = Instr(Opcode.ST, srcs=(4, 9), addr_src=9, array="A")
        assert i.reads == (4, 9)

    def test_st_reads_data_and_addr(self):
        i = st(data=4, addr=2, array="A")
        assert set(i.reads) == {4, 2}


class TestBasicBlock:
    def test_len_and_iter(self):
        b = BasicBlock([alu(1, 0), alu(2, 1)])
        assert len(b) == 2
        assert [i.dst for i in b] == [1, 2]

    def test_branch_only_terminal(self):
        BasicBlock([alu(1, 0), branch()])  # fine
        with pytest.raises(ValueError):
            BasicBlock([branch(), alu(1, 0)])


class TestKernel:
    def _kernel(self):
        b0 = BasicBlock([alu(1, 0), ld(2, 1, "A")], label="b0")
        b1 = BasicBlock([alu(3, 2), st(3, 1, "C")], label="b1")
        return Kernel("k", [b0, b1], live_out=frozenset({3}))

    def test_all_instrs_order(self):
        k = self._kernel()
        assert [i.op for i in k.all_instrs()] == [
            Opcode.ALU, Opcode.LD, Opcode.ALU, Opcode.ST]

    def test_num_instrs(self):
        assert self._kernel().num_instrs == 4

    def test_registers(self):
        assert self._kernel().registers() == {0, 1, 2, 3}
