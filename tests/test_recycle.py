"""Tests for the allocation-rate machinery: pooled event records with
generation stamps, the DRAMRequest free list and its reset() contract,
hop-walk recycling in the memory network, the vectorized FR-FCFS pick,
and MSHR-full structural parking (docs/performance.md)."""

import dataclasses

import numpy as np
import pytest

from repro.config import SystemConfig, ci_config
from repro.faults import get_scenario
from repro.memory.dram import DRAMTimingSM
from repro.memory.vault import (VEC_PICK_THRESHOLD, DRAMRequest,
                                DRAMRequestPool, DRAMStats, VaultController)
from repro.network.fabric import MemoryNetwork
from repro.sim.engine import Engine, LinkCounters
from repro.sim.runner import build_system
from repro.sim.serialize import result_digest


class TestEventRecycling:
    def test_cancel_prevents_dispatch(self):
        e = Engine()
        fired = []
        rec, gen = e.call_after(3, fired.append, "x")
        assert e.cancel(rec, gen) is True
        e.drain()
        assert fired == []
        assert e.metrics_snapshot()["events_cancelled"] == 1

    def test_cancel_is_single_shot(self):
        e = Engine()
        rec, gen = e.call_after(3, lambda: None)
        assert e.cancel(rec, gen) is True
        assert e.cancel(rec, gen) is False

    def test_stale_generation_rejected_after_recycle(self):
        # Once an event fires, its record returns to the pool and its
        # generation bumps; a cancel with the stale handle must neither
        # succeed nor disturb the record's next occupant.
        e = Engine()
        first, second = [], []
        rec1, gen1 = e.call_after(1, first.append, 1)
        e.drain()
        assert first == [1]
        rec2, gen2 = e.call_after(1, second.append, 2)
        assert rec2 is rec1          # LIFO free list reuses the record
        assert gen2 != gen1
        assert e.cancel(rec1, gen1) is False
        e.drain()
        assert second == [2]

    def test_recycle_metrics_exported(self):
        e = Engine()
        for i in range(1, 6):
            e.after(i, lambda: None)
        e.drain()
        snap = e.metrics_snapshot()
        assert snap["events_recycled"] == 5
        assert snap["event_pool_free"] > 0

    def test_cancelled_event_keeps_pending_until_drained(self):
        # Tombstones stay in the queue until their cycle passes; the
        # run loop's termination check (engine.pending) must still see
        # them so time advances past the cancelled slot.
        e = Engine()
        rec, gen = e.call_after(2, lambda: None)
        e.cancel(rec, gen)
        assert e.pending == 1
        e.drain()
        assert e.pending == 0


class TestDRAMRequestPool:
    def test_reset_completeness(self):
        # A recycled record must be field-for-field equal to a freshly
        # constructed one -- the recycle invariant.  Dataclass equality
        # compares every field, so a field added without a reset() line
        # fails here.
        pool = DRAMRequestPool()
        req = pool.acquire(0x1234, True, lambda r: None, bank=3, row=7,
                           extra_latency=11, meta={"k": 1},
                           on_lost=lambda r: None)
        pool.release(req)
        assert req == DRAMRequest(0, False, None)

    def test_acquire_reuses_released_records(self):
        pool = DRAMRequestPool()
        req = pool.acquire(1, False, None)
        pool.release(req)
        again = pool.acquire(2, True, None, bank=5)
        assert again is req
        assert (again.line_addr, again.is_write, again.bank) == (2, True, 5)
        assert pool.metrics_snapshot() == {
            "created": 1, "reused": 1, "released": 1, "free": 0}

    def test_double_free_raises(self):
        pool = DRAMRequestPool()
        req = pool.acquire(1, False, None)
        pool.release(req)
        with pytest.raises(ValueError, match="double-free"):
            pool.release(req)

    def test_foreign_record_rejected(self):
        # Directly-constructed requests (tests, ad-hoc callers) are not
        # pool-owned and must never enter the free list.
        pool = DRAMRequestPool()
        with pytest.raises(ValueError):
            pool.release(DRAMRequest(1, False, None))

    def test_fault_replay_never_double_frees(self):
        # vault-read-loss exercises every release path: normal
        # completion, loss with an on_lost reissue, and loss with no
        # listener (released at service time).  A double-free would
        # raise inside the run; afterwards conservation must hold:
        # every acquired record was released exactly once.
        plan = get_scenario("vault-read-loss", rate=0.05, seed=1)
        system = build_system("VADD", "Baseline", base=ci_config(),
                              scale="ci", faults=plan)
        system.run(max_cycles=2_000_000)
        pools = [stack.pool for stack in system.hmcs]
        assert any(p.created + p.reused > 0 for p in pools)
        for p in pools:
            assert p.created + p.reused == p.released
            assert p.free == p.created


class TestHopWalkRecycling:
    def test_walk_recycled_and_reset_after_delivery(self):
        e = Engine()
        cfg = SystemConfig()
        net = MemoryNetwork(e, cfg, LinkCounters())
        delivered = []
        net.send(0, 3, 128, lambda: delivered.append(e.now))
        e.drain()
        assert len(delivered) == 1
        assert len(net._walks) == 1
        walk = net._walks[0]
        assert (walk.path, walk.hop, walk.size, walk.deliver) == \
            (None, 0, 0, None)

    def test_walks_reused_across_packets(self):
        e = Engine()
        cfg = SystemConfig()
        net = MemoryNetwork(e, cfg, LinkCounters())
        done = []
        net.send(0, 3, 128, lambda: done.append("a"))
        e.drain()
        first = net._walks[0]
        net.send(1, 2, 64, lambda: done.append("b"))
        assert not net._walks       # the recycled record is in flight
        e.drain()
        assert done == ["a", "b"]
        assert net._walks[0] is first


class TestVectorizedPick:
    def test_vec_matches_scalar_randomized(self):
        # The numpy window scan must make the identical FR-FCFS decision
        # as the Python loop for any bank/queue state -- the dispatch
        # threshold can then never change a simulation result.
        rng = np.random.default_rng(42)
        e = Engine()
        cfg = SystemConfig()
        t = DRAMTimingSM.from_config(cfg.hmc.timing, cfg.gpu.sm_clock_mhz,
                                     32)
        for _ in range(200):
            vault = VaultController(e, t, num_banks=16, stats=DRAMStats())
            now = int(rng.integers(0, 150))
            for bank in vault.banks:
                bank.busy_until = int(rng.integers(0, 300))
                if rng.random() < 0.5:
                    bank.open_row = int(rng.integers(0, 4))
            n = int(rng.integers(VEC_PICK_THRESHOLD, 64))
            for _ in range(n):
                vault.queue.append(DRAMRequest(
                    0, False, None, bank=int(rng.integers(0, 16)),
                    row=int(rng.integers(0, 4))))
            assert (vault._pick_index_scalar(now, n)
                    == vault._pick_index_vec(now, n))

    def test_dispatch_uses_vec_only_above_threshold(self):
        e = Engine()
        cfg = SystemConfig()
        t = DRAMTimingSM.from_config(cfg.hmc.timing, cfg.gpu.sm_clock_mhz,
                                     32)
        vault = VaultController(e, t, num_banks=16, stats=DRAMStats())
        for _ in range(3):
            vault.queue.append(DRAMRequest(0, False, None, bank=0, row=0))
        # tiny window: must take the scalar path (numpy setup would
        # dominate) and still pick the oldest request
        assert vault._pick_index(0) == (0, 0)


class TestStructuralParking:
    def test_mshr_full_parks_without_perturbing_counters(self):
        # Starve the L1 MSHR file so loads hit structural rejects; the
        # active scheduler must park those SMs (fewer sm_ticks, parks
        # observed) while replaying the exact miss/reject counters the
        # legacy cycle-by-cycle scheduler accrues -- proven by digest
        # identity, since l1 stats are part of the result.
        base = ci_config()
        base = dataclasses.replace(
            base, gpu=dataclasses.replace(
                base.gpu, l1d=dataclasses.replace(
                    base.gpu.l1d, mshr_entries=1)))
        results = {}
        for sched in ("active", "legacy"):
            system = build_system("VADD", "Baseline", base=base,
                                  scale="ci", sched=sched)
            res = system.run(max_cycles=2_000_000)
            results[sched] = (result_digest(res), dict(system.sched_stats))
        act_digest, act_stats = results["active"]
        leg_digest, leg_stats = results["legacy"]
        assert act_digest == leg_digest
        assert act_stats["struct_parks"] > 0
        assert act_stats["struct_replayed"] > 0
        assert act_stats["sm_ticks"] < leg_stats["sm_ticks"]
