"""Tests for the metrics registry, JSONL export and system publishing."""

import json

import pytest

from repro.config import ci_config
from repro.sim.metrics import (SCHEMA_VERSION, Counter, Histogram,
                               MetricsRegistry, PhaseCycles, read_jsonl)
from repro.sim.runner import run_workload


class TestCounter:
    def test_add(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_set_never_moves_backwards(self):
        c = Counter("x")
        c.set(10)
        c.set(3)
        assert c.value == 10
        c.set(12)
        assert c.value == 12


class TestHistogram:
    def test_bucket_placement(self):
        h = Histogram("q", bounds=(0, 2, 4))
        for v in (0, 1, 2, 3, 4, 99):
            h.observe(v)
        assert h.buckets == [1, 2, 2, 1]   # <=0, <=2, <=4, overflow
        assert h.count == 6
        assert h.max == 99

    def test_mean(self):
        h = Histogram("q")
        assert h.mean == 0.0
        h.observe(2)
        h.observe(4)
        assert h.mean == 3.0

    def test_as_dict(self):
        h = Histogram("q", bounds=(1,))
        h.observe(1)
        d = h.as_dict()
        assert d["count"] == 1 and d["buckets"] == [1, 0]


class TestRegistry:
    def test_counter_handles_are_shared(self):
        m = MetricsRegistry()
        m.counter("a").add(2)
        m.counter("a").add(3)
        assert m.snapshot()["counters"]["a"] == 5

    def test_set_counters_prefix(self):
        m = MetricsRegistry()
        m.set_counters({"reads": 7, "writes": 2}, prefix="vault.")
        assert m.snapshot()["counters"] == {"vault.reads": 7,
                                            "vault.writes": 2}

    def test_record_order(self):
        m = MetricsRegistry()
        m.heartbeat(100, gauges={"warps": 3})
        recs = m.to_records()
        assert recs[0]["kind"] == "meta"
        assert recs[0]["schema_version"] == SCHEMA_VERSION
        assert recs[1]["kind"] == "heartbeat"
        assert recs[-1]["kind"] == "summary"

    def test_summary_record_is_merged(self):
        m = MetricsRegistry()
        m.counter("n").add(1)
        m.record("summary", stalls={"MemDataBuf": 4})
        recs = m.to_records()
        assert [r["kind"] for r in recs] == ["meta", "summary"]
        assert recs[-1]["stalls"] == {"MemDataBuf": 4}
        assert recs[-1]["counters"]["n"] == 1

    def test_jsonl_round_trip(self, tmp_path):
        m = MetricsRegistry()
        m.meta["workload"] = "VADD"
        m.heartbeat(10, gauges={"q": 1}, counters={"c": 2})
        path = tmp_path / "out.jsonl"
        n = m.export_jsonl(path)
        back = read_jsonl(path)
        assert len(back) == n == 3
        assert back[0]["workload"] == "VADD"
        assert back[1]["gauges"] == {"q": 1}


class TestSystemPublishing:
    @pytest.fixture(scope="class")
    def run(self):
        m = MetricsRegistry(heartbeat_cycles=200)
        r = run_workload("VADD", "NDP(Dyn)", base=ci_config(), scale="ci",
                         metrics=m)
        return m, r

    def test_meta_identifies_the_run(self, run):
        m, _ = run
        recs = m.to_records()
        assert recs[0]["workload"] == "VADD"
        assert recs[0]["config"] == "NDP(Dyn)"
        assert recs[0]["scale"] == "ci"

    def test_heartbeats_emitted(self, run):
        m, r = run
        hbs = m.heartbeats
        assert hbs, "a multi-hundred-cycle run must heartbeat at 200 cycles"
        for hb in hbs:
            assert 0 < hb["cycle"] <= r.cycles + m.heartbeat_cycles
            assert "gauges" in hb and "counters" in hb
        cycles = [hb["cycle"] for hb in hbs]
        assert cycles == sorted(cycles)

    def test_summary_has_stall_attribution(self, run):
        m, r = run
        summary = m.to_records()[-1]
        assert summary["kind"] == "summary"
        assert summary["stalls"] == r.stalls.as_dict()
        for k in ("stall.dependency", "stall.exec_unit_busy",
                  "stall.warp_idle"):
            assert k in summary["counters"]

    def test_summary_has_packet_kinds(self, run):
        m, _ = run
        summary = m.to_records()[-1]
        packets = summary["packets"]
        assert packets["CMD"] > 0
        assert packets["ACK"] == packets["CMD"]
        assert "RDF" in packets and "WTA" in packets
        assert summary["counters"]["packets.CMD"] == packets["CMD"]

    def test_summary_phase_accounting(self, run):
        m, r = run
        phases = m.to_records()[-1]["phases"]
        assert phases["total"] == phases["stepped"] + phases["fast_forwarded"]
        # The loop counts iterations, so the total can lead the final
        # cycle count by at most one step.
        assert r.cycles <= phases["total"] <= r.cycles + 1

    def test_export_is_parseable_jsonl(self, run, tmp_path):
        m, _ = run
        path = tmp_path / "m.jsonl"
        m.export_jsonl(path)
        with open(path) as f:
            lines = [json.loads(x) for x in f if x.strip()]
        assert lines[0]["kind"] == "meta"
        assert lines[-1]["kind"] == "summary"

    def test_baseline_run_publishes_without_ndp(self):
        m = MetricsRegistry(heartbeat_cycles=200)
        run_workload("VADD", "Baseline", base=ci_config(), scale="ci",
                     metrics=m)
        summary = m.to_records()[-1]
        assert summary["packets"] == {}
        assert "stall.dependency" in summary["counters"]


class TestPhaseCycles:
    def test_as_dict_total(self):
        p = PhaseCycles(stepped=10, fast_forwarded=5, epochs=2)
        d = p.as_dict()
        assert d["total"] == 15
        assert d["epochs"] == 2
