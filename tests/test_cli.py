"""Tests for the command-line interface and ASCII plot helpers."""

import pytest

from repro.analysis.plots import bar_chart, grouped_bar_chart, hbar, line_plot
from repro.cli import build_parser, main


class TestPlots:
    def test_hbar_scales(self):
        assert hbar(5, 10, width=10) == "#####"
        assert hbar(10, 10, width=10) == "#" * 10
        assert hbar(20, 10, width=10) == "#" * 10   # clamped

    def test_hbar_zero_max(self):
        assert hbar(5, 0) == ""

    def test_bar_chart_contains_labels_and_values(self):
        text = bar_chart({"a": 1.0, "bb": 2.0}, title="T")
        assert text.startswith("T")
        assert "a " in text and "bb" in text
        assert "2.00" in text

    def test_bar_chart_baseline_tick(self):
        text = bar_chart({"x": 2.0}, baseline=1.0, width=10)
        assert "|" in text

    def test_grouped_bar_chart(self):
        text = grouped_bar_chart({"g": {"a": 1.0}}, title="T")
        assert "g:" in text and "a" in text

    def test_line_plot_axes(self):
        text = line_plot([1, 2, 3], {"s": [1.0, 2.0, 3.0]})
        assert "+" in text and "*" in text
        assert "s" in text.splitlines()[-1]


class TestParser:
    def test_all_commands_present(self):
        p = build_parser()
        for cmd in (["list"], ["run", "VADD", "Baseline"],
                    ["sweep", "KMN"], ["table", "1"], ["figure", "5"],
                    ["overhead"]):
            args = p.parse_args(cmd)
            assert callable(args.fn)

    def test_scale_choices(self):
        p = build_parser()
        with pytest.raises(SystemExit):
            p.parse_args(["--scale", "huge", "list"])

    def test_overrides_parsed(self):
        p = build_parser()
        a = p.parse_args(["--sms", "128", "--nsu-mhz", "175",
                          "--ro-cache", "4096",
                          "--target-policy", "optimal", "list"])
        assert a.sms == 128
        assert a.nsu_mhz == 175.0
        assert a.ro_cache == 4096
        assert a.target_policy == "optimal"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "VADD" in out and "NDP(Dyn)_Cache" in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "29,23" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        assert "64 SMs" in capsys.readouterr().out

    def test_table_bad_number(self):
        assert main(["table", "9"]) == 2

    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        assert "2.84 KB" in capsys.readouterr().out

    def test_figure5(self, capsys):
        assert main(["figure", "5"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_figure_bad_number(self):
        assert main(["--scale", "ci", "figure", "99"]) == 2

    def test_run_command_ci(self, capsys):
        assert main(["--scale", "ci", "run", "VADD", "Baseline"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "energy" in out
