"""Tests for the command-line interface and ASCII plot helpers."""

import pytest

from repro.analysis.plots import bar_chart, grouped_bar_chart, hbar, line_plot
from repro.cli import build_parser, main


class TestPlots:
    def test_hbar_scales(self):
        assert hbar(5, 10, width=10) == "#####"
        assert hbar(10, 10, width=10) == "#" * 10
        assert hbar(20, 10, width=10) == "#" * 10   # clamped

    def test_hbar_zero_max(self):
        assert hbar(5, 0) == ""

    def test_bar_chart_contains_labels_and_values(self):
        text = bar_chart({"a": 1.0, "bb": 2.0}, title="T")
        assert text.startswith("T")
        assert "a " in text and "bb" in text
        assert "2.00" in text

    def test_bar_chart_baseline_tick(self):
        text = bar_chart({"x": 2.0}, baseline=1.0, width=10)
        assert "|" in text

    def test_grouped_bar_chart(self):
        text = grouped_bar_chart({"g": {"a": 1.0}}, title="T")
        assert "g:" in text and "a" in text

    def test_line_plot_axes(self):
        text = line_plot([1, 2, 3], {"s": [1.0, 2.0, 3.0]})
        assert "+" in text and "*" in text
        assert "s" in text.splitlines()[-1]


class TestParser:
    def test_all_commands_present(self):
        p = build_parser()
        for cmd in (["list"], ["run", "VADD", "Baseline"],
                    ["sweep", "KMN"], ["table", "1"], ["figure", "5"],
                    ["overhead"]):
            args = p.parse_args(cmd)
            assert callable(args.fn)

    def test_scale_choices(self):
        p = build_parser()
        with pytest.raises(SystemExit):
            p.parse_args(["--scale", "huge", "list"])

    def test_overrides_parsed(self):
        p = build_parser()
        a = p.parse_args(["--sms", "128", "--nsu-mhz", "175",
                          "--ro-cache", "4096",
                          "--target-policy", "optimal", "list"])
        assert a.sms == 128
        assert a.nsu_mhz == 175.0
        assert a.ro_cache == 4096
        assert a.target_policy == "optimal"

    def test_store_flags_parsed(self):
        p = build_parser()
        a = p.parse_args(["--store", "/tmp/x", "--parallel", "4",
                          "store", "ls"])
        assert a.store == "/tmp/x"
        assert a.parallel == 4
        assert a.action == "ls"
        b = p.parse_args(["--no-store", "run", "VADD", "Baseline",
                          "--metrics", "out.jsonl"])
        assert b.no_store and b.metrics == "out.jsonl"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "VADD" in out and "NDP(Dyn)_Cache" in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "29,23" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        assert "64 SMs" in capsys.readouterr().out

    def test_table_bad_number(self):
        assert main(["table", "9"]) == 2

    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        assert "2.84 KB" in capsys.readouterr().out

    def test_figure5(self, capsys):
        assert main(["figure", "5"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_figure_bad_number(self):
        assert main(["--scale", "ci", "figure", "99"]) == 2

    def test_run_command_ci(self, capsys):
        assert main(["--scale", "ci", "run", "VADD", "Baseline"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "energy" in out


class TestStoreCommands:
    @pytest.fixture(autouse=True)
    def _no_env_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)

    def test_store_requires_configuration(self, capsys):
        assert main(["store", "ls"]) == 2
        assert "no store configured" in capsys.readouterr().err

    def test_run_populates_then_hits_store(self, tmp_path, capsys):
        argv = ["--scale", "ci", "--store", str(tmp_path),
                "run", "VADD", "Baseline"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "[store] hit" not in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "[store] hit" in second
        # Identical summaries whichever path produced the result.
        assert first.splitlines()[-12:] == second.splitlines()[-12:]

    def test_store_ls_and_clear(self, tmp_path, capsys):
        main(["--scale", "ci", "--store", str(tmp_path),
              "run", "VADD", "Baseline"])
        capsys.readouterr()
        assert main(["--store", str(tmp_path), "store", "ls"]) == 0
        out = capsys.readouterr().out
        assert "VADD" in out and "1 entries" in out
        assert main(["--store", str(tmp_path), "store", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_no_store_bypasses_env(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        main(["--scale", "ci", "run", "VADD", "Baseline"])
        capsys.readouterr()
        assert main(["--scale", "ci", "--no-store",
                     "run", "VADD", "Baseline"]) == 0
        assert "[store] hit" not in capsys.readouterr().out

    def test_run_metrics_export(self, tmp_path, capsys):
        out_path = tmp_path / "m.jsonl"
        assert main(["--scale", "ci", "run", "VADD", "NDP(Dyn)",
                     "--metrics", str(out_path)]) == 0
        assert "metrics records" in capsys.readouterr().out
        import json

        recs = [json.loads(x) for x in out_path.read_text().splitlines()]
        assert recs[0]["kind"] == "meta"
        assert recs[-1]["kind"] == "summary"
        assert "packets.CMD" in recs[-1]["counters"]
        assert "stall.dependency" in recs[-1]["counters"]


class TestLintCommand:
    def test_flags_parse(self):
        p = build_parser()
        a = p.parse_args(["lint", "src/repro", "--format", "json",
                          "--no-baseline", "--rules", "DET001,DET004"])
        assert callable(a.fn)
        assert a.paths == ["src/repro"]
        assert a.format == "json" and a.no_baseline
        assert a.rules == "DET001,DET004"

    def test_audit_flag_on_run_sweep_chaos(self):
        p = build_parser()
        for cmd in (["run", "VADD", "Baseline", "--audit"],
                    ["sweep", "KMN", "--audit"], ["chaos", "--audit"]):
            assert p.parse_args(cmd).audit
        assert not p.parse_args(["run", "VADD", "Baseline"]).audit

    def test_lint_shipped_tree_is_clean(self, capsys):
        import pathlib
        root = pathlib.Path(__file__).resolve().parent.parent
        assert main(["lint", str(root / "src" / "repro")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_reports_violation_as_json(self, tmp_path, capsys):
        import json
        bad = tmp_path / "bad.py"
        bad.write_text("def f():\n"
                       "    s = {1, 2}\n"
                       "    for x in s:\n"
                       "        print(x)\n")
        assert main(["lint", str(bad), "--format", "json",
                     "--no-baseline"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 1
        assert payload["findings"][0]["rule"] == "DET001"

    def test_run_audit_flag_end_to_end(self, capsys):
        assert main(["--scale", "ci", "--no-store",
                     "run", "VADD", "Baseline", "--audit"]) == 0
        assert "cycles" in capsys.readouterr().out


class TestBestSoFarPlot:
    def test_renders_curve_title_and_final_best(self):
        from repro.analysis.plots import best_so_far_plot

        records = [
            {"kind": "explore-meta", "fitness": "cycles",
             "agent": "random", "seed": 3},
            {"kind": "evaluation", "fitness": 900.0},
            {"kind": "evaluation", "fitness": None},   # fatal: skipped
            {"kind": "evaluation", "fitness": 700.0},
            {"kind": "evaluation", "fitness": 800.0},
        ]
        text = best_so_far_plot(records)
        assert "best-so-far" in text and "evaluation" in text
        assert "random agent" in text and "seed 3" in text
        assert "final best 700" in text
        assert "(from 900 at evaluation 1)" in text

    def test_no_plottable_records_raises(self):
        from repro.analysis.plots import best_so_far_plot

        with pytest.raises(ValueError, match="nothing to plot"):
            best_so_far_plot([{"kind": "explore-meta"}])
        with pytest.raises(ValueError, match="nothing to plot"):
            best_so_far_plot([{"kind": "evaluation", "fitness": None}])

    def test_explore_plot_end_to_end(self, tmp_path, capsys):
        rc = main(["--scale", "ci", "--no-store", "explore", "VADD",
                   "--space", "tiny", "--agent", "random",
                   "--generations", "1", "--population", "2",
                   "--max-cycles", "5000000",
                   "--out", str(tmp_path / "xo"), "--plot"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "best-so-far" in out
        assert "final best" in out


class TestServeCLI:
    def test_serve_flags_parsed(self):
        p = build_parser()
        args = p.parse_args(["serve"])
        assert args.port == 8787 and args.mode == "process"
        assert args.rate == 0.0 and args.hot_set == 64
        args = p.parse_args(["serve", "--port", "0", "--mode", "thread",
                             "--rate", "2.5", "--hot-set", "8",
                             "--queue-depth", "32"])
        assert args.port == 0 and args.mode == "thread"
        assert args.rate == 2.5 and args.hot_set == 8
        assert args.queue_depth == 32

    def test_loadtest_flags_parsed(self):
        p = build_parser()
        args = p.parse_args(["loadtest"])
        assert args.url == "http://127.0.0.1:8787"
        assert args.clients == 8 and args.duplicates == 0.5
        assert args.workload == "VADD" and args.config == "Baseline"
        assert not args.expect_rejections
        args = p.parse_args(["loadtest", "--clients", "4",
                             "--mix", "run,sweep", "--expect-rejections"])
        assert args.clients == 4 and args.mix == "run,sweep"
        assert args.expect_rejections

    def test_explore_plot_flag_parsed(self):
        args = build_parser().parse_args(["explore", "VADD", "--plot"])
        assert args.plot
        assert not build_parser().parse_args(["explore", "VADD"]).plot

    def test_run_unknown_workload_exits_2(self, capsys):
        rc = main(["--scale", "ci", "--no-store", "run", "NOPE", "Baseline"])
        assert rc == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_loadtest_against_dead_daemon_exits_2(self, capsys):
        rc = main(["loadtest", "--url", "http://127.0.0.1:9",
                   "--clients", "1", "--requests", "1"])
        assert rc == 2
        assert "loadtest failed" in capsys.readouterr().err
