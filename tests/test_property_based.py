"""Property-based tests (hypothesis) for core data structures and
invariants."""

import numpy as np
from hypothesis import given, strategies as st

from repro.config import LINE_SIZE, NDPConfig, OffloadMode, SystemConfig, WORD_SIZE
from repro.core.credit import BufferCreditManager
from repro.core.decision import HillClimbingController
from repro.gpu.cache import Cache, CacheStats, MSHRFile
from repro.gpu.coalescer import coalesce
from repro.memory.address import AddressMap
from repro.network.topology import dimension_order_path
from repro.sim.engine import Engine, Link


class TestCoalescerProperties:
    @given(st.lists(st.integers(0, 1 << 40), min_size=1, max_size=32))
    def test_words_bounded_by_lanes(self, addrs):
        accs = coalesce(np.array(addrs, dtype=np.int64) * WORD_SIZE)
        assert 1 <= len(accs) <= len(addrs)
        assert sum(a.words for a in accs) <= len(addrs)
        assert all(a.words >= 1 for a in accs)

    @given(st.lists(st.integers(0, 1 << 40), min_size=1, max_size=32))
    def test_lines_cover_all_addresses(self, addrs):
        byte_addrs = np.array(addrs, dtype=np.int64) * WORD_SIZE
        accs = coalesce(byte_addrs)
        lines = {a.line_addr for a in accs}
        assert lines == set((byte_addrs // LINE_SIZE).tolist())

    @given(st.lists(st.integers(0, 1 << 40), min_size=1, max_size=32))
    def test_coalesce_is_permutation_invariant_in_content(self, addrs):
        a1 = coalesce(np.array(addrs, dtype=np.int64))
        a2 = coalesce(np.array(addrs[::-1], dtype=np.int64))
        assert sorted((x.line_addr, x.words) for x in a1) == \
            sorted((x.line_addr, x.words) for x in a2)


class TestCacheProperties:
    @given(st.lists(st.integers(0, 512), min_size=1, max_size=300))
    def test_occupancy_never_exceeds_capacity(self, lines):
        c = Cache(4096, 4, 128)
        cap = c.num_sets * c.assoc
        for l in lines:
            if not c.lookup(l):
                c.insert(l)
            assert c.occupancy <= cap

    @given(st.lists(st.integers(0, 64), min_size=1, max_size=200))
    def test_inserted_line_immediately_hits(self, lines):
        c = Cache(4096, 4, 128)
        for l in lines:
            c.insert(l)
            assert c.contains(l)

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 32)),
                    min_size=1, max_size=200))
    def test_mshr_entries_conserved(self, ops):
        stats = CacheStats()
        m = MSHRFile(8, stats)
        outstanding = set()
        for is_alloc, line in ops:
            if is_alloc:
                res = m.allocate(line, lambda: None)
                if res == "new":
                    outstanding.add(line)
                assert len(m) <= 8
            elif line in outstanding:
                m.fill(line)
                outstanding.discard(line)
            assert len(m) == len(outstanding)


class TestAddressMapProperties:
    @given(st.integers(0, 1 << 45), st.integers(1, 1 << 16))
    def test_decode_is_total_and_stable(self, addr, seed):
        amap = AddressMap(SystemConfig(num_hmcs=8, seed=seed % 100))
        loc1 = amap.decode(addr)
        loc2 = amap.decode(addr)
        assert loc1 == loc2
        assert 0 <= loc1.hmc < 8
        assert 0 <= loc1.vault < 16
        assert 0 <= loc1.bank < 16

    @given(st.lists(st.integers(0, 1 << 30), min_size=1, max_size=64))
    def test_vectorized_always_matches_scalar(self, lines):
        amap = AddressMap(SystemConfig(num_hmcs=8))
        arr = np.array(lines, dtype=np.int64)
        vec = amap.hmc_of_lines(arr).tolist()
        scalar = [amap.hmc_of(l * LINE_SIZE) for l in lines]
        assert vec == scalar


class TestTopologyProperties:
    @given(st.integers(0, 63), st.integers(0, 63))
    def test_path_valid_and_minimal(self, src, dst):
        path = dimension_order_path(src, dst)
        assert path[0] == src and path[-1] == dst
        # Each hop flips exactly one bit; total hops = Hamming distance.
        for a, b in zip(path, path[1:]):
            assert bin(a ^ b).count("1") == 1
        assert len(path) - 1 == bin(src ^ dst).count("1")


class TestLinkProperties:
    @given(st.lists(st.integers(1, 4096), min_size=1, max_size=40))
    def test_serialization_lower_bound(self, sizes):
        e = Engine()
        link = Link(e, "l", bytes_per_cycle=16, latency=3)
        done = []
        for s in sizes:
            link.send(s, lambda: done.append(e.now))
        e.drain()
        assert len(done) == len(sizes)
        # Total bytes cannot beat the link bandwidth.
        import math
        min_cycles = sum(math.ceil(s / 16) for s in sizes)
        assert max(done) >= min_cycles

    @given(st.lists(st.integers(1, 4096), min_size=2, max_size=40))
    def test_fifo_delivery_order(self, sizes):
        e = Engine()
        link = Link(e, "l", bytes_per_cycle=8, latency=2)
        order = []
        for i, s in enumerate(sizes):
            link.send(s, lambda i=i: order.append(i))
        e.drain()
        assert order == sorted(order)


class TestCreditProperties:
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 5)),
                    min_size=1, max_size=60))
    def test_credits_never_negative_or_overflow(self, reservations):
        e = Engine()
        m = BufferCreditManager(e, 1, cmd_entries=10, read_data_entries=16,
                                write_addr_entries=16)
        granted = []
        pending = []
        for n_ld, n_st in reservations:
            res = m.reserve(0, num_loads=n_ld, num_stores=n_st,
                            on_grant=lambda r=(n_ld, n_st): granted.append(r))
            pending.append(res)
            cmd, rd, wa = m.available(0)
            assert cmd >= 0 and rd >= 0 and wa >= 0
        # Release everything granted; all queued reservations must drain.
        done = set()
        while len(done) < len(granted):
            for i, (n_ld, n_st) in enumerate(list(granted)):
                if i in done:
                    continue
                done.add(i)
                m.release(0, cmd=1, read_data=n_ld, write_addr=n_st, delay=0)
        assert len(granted) == len(reservations)
        m.assert_conserved()


class TestHillClimbingProperties:
    @given(st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1,
                    max_size=100))
    def test_ratio_always_in_unit_interval(self, ipcs):
        c = HillClimbingController(NDPConfig(mode=OffloadMode.DYNAMIC))
        for v in ipcs:
            r = c.end_epoch(v)
            assert 0.0 <= r <= 1.0
            assert c.cfg.step_min <= c.step <= c.cfg.step_max
