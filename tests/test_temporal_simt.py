"""Tests for the temporal-SIMT NSU datapath option (Section 4.5)."""


from repro.config import ci_config
from repro.sim.runner import run_workload
from repro.sim.system import System
from repro.workloads import get_workload


class TestConfig:
    def test_default_full_width(self):
        cfg = ci_config("naive")
        system = System(cfg)
        assert all(n.subcycles_per_instr == 1 for n in system.nsus)

    def test_narrow_width_multiplies_subcycles(self):
        cfg = ci_config("naive").with_nsu_simd_width(8)
        system = System(cfg)
        assert all(n.subcycles_per_instr == 4 for n in system.nsus)

    def test_non_divisible_width_ceils(self):
        cfg = ci_config("naive").with_nsu_simd_width(12)
        system = System(cfg)
        assert all(n.subcycles_per_instr == 3 for n in system.nsus)


class TestBehaviour:
    def test_narrow_nsu_slows_naive_offload(self):
        base = ci_config()
        wide = run_workload("VADD", "NaiveNDP", base=base, scale="ci")
        narrow = run_workload(
            "VADD", "NaiveNDP", base=base.with_nsu_simd_width(4),
            scale="ci")
        # 8x fewer lanes -> NSU-bound naive offload takes longer.
        assert narrow.cycles > wide.cycles
        assert narrow.warps_completed == wide.warps_completed

    def test_narrow_nsu_correctness(self):
        cfg = ci_config().with_nsu_simd_width(8)
        r = run_workload("BFS", "NaiveNDP", base=cfg, scale="ci")
        inst = get_workload("BFS").build(cfg, "ci")
        assert r.warps_completed == inst.num_warps

    def test_instruction_count_unchanged(self):
        base = ci_config()
        wide = run_workload("SP", "NaiveNDP", base=base, scale="ci")
        narrow = run_workload(
            "SP", "NaiveNDP", base=base.with_nsu_simd_width(16),
            scale="ci")
        assert narrow.nsu_instructions == wide.nsu_instructions
