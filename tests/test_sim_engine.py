"""Unit tests for the discrete-event engine, links, and rate accumulators."""

import pytest

from repro.sim.engine import Engine, Link, LinkCounters, RateAccumulator


class TestEngine:
    def test_events_run_in_time_order(self):
        e = Engine()
        out = []
        e.at(5, lambda: out.append(5))
        e.at(2, lambda: out.append(2))
        e.at(9, lambda: out.append(9))
        e.drain()
        assert out == [2, 5, 9]

    def test_same_cycle_fifo_order(self):
        e = Engine()
        out = []
        e.at(3, lambda: out.append("a"))
        e.at(3, lambda: out.append("b"))
        e.drain()
        assert out == ["a", "b"]

    def test_cannot_schedule_in_past(self):
        e = Engine()
        e.now = 10
        with pytest.raises(ValueError):
            e.at(5, lambda: None)

    def test_after_ceils_fractional_delay(self):
        e = Engine()
        fired = []
        e.after(2.3, lambda: fired.append(e.now))
        e.drain()
        assert fired == [3]

    def test_after_rejects_nonpositive_delay(self):
        # Zero/negative delays land at `now`, where execution depends on
        # the caller's position relative to process_due -- same-cycle
        # scheduling must be the explicit at(engine.now, fn).
        e = Engine()
        with pytest.raises(ValueError, match="positive delay"):
            e.after(0, lambda: None)
        with pytest.raises(ValueError, match="positive delay"):
            e.after(-1.5, lambda: None)

    def test_after_counts_subcycle_delays(self):
        # Sub-cycle delays (a misconverted clock ratio, typically) are
        # legal but surface in the metrics snapshot.
        e = Engine()
        e.after(0.4, lambda: None)
        e.after(0.9, lambda: None)
        e.after(1.0, lambda: None)
        assert e.subcycle_delays == 2
        assert e.metrics_snapshot()["subcycle_delays"] == 2

    def test_event_scheduling_event(self):
        e = Engine()
        out = []
        e.at(1, lambda: e.at(4, lambda: out.append(e.now)))
        e.drain()
        assert out == [4]

    def test_process_due_only_runs_due(self):
        e = Engine()
        out = []
        e.at(0, lambda: out.append("now"))
        e.at(7, lambda: out.append("later"))
        e.process_due()
        assert out == ["now"]
        assert e.next_event_time() == 7


class TestRateAccumulator:
    def test_half_rate_fires_every_other_step(self):
        acc = RateAccumulator(0.5)
        fires = [acc.step() for _ in range(10)]
        assert sum(fires) == 5
        assert max(fires) == 1

    def test_rate_above_one(self):
        acc = RateAccumulator(1.786)  # 1250/700 crossbar ratio
        total = sum(acc.step() for _ in range(700))
        assert total == pytest.approx(1250, abs=2)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            RateAccumulator(0.0)


class TestLink:
    def test_serialization_latency(self):
        e = Engine()
        link = Link(e, "l", bytes_per_cycle=16, latency=4)
        arrivals = []
        link.send(128, lambda: arrivals.append(e.now))
        e.drain()
        # 128/16 = 8 cycles serialization + 4 latency
        assert arrivals == [12]

    def test_back_to_back_packets_queue(self):
        e = Engine()
        link = Link(e, "l", bytes_per_cycle=16, latency=0)
        arrivals = []
        link.send(128, lambda: arrivals.append(e.now))
        link.send(128, lambda: arrivals.append(e.now))
        e.drain()
        assert arrivals == [8, 16]

    def test_bandwidth_is_conserved(self):
        e = Engine()
        link = Link(e, "l", bytes_per_cycle=10, latency=0)
        arrivals = []
        for _ in range(50):
            link.send(100, lambda: arrivals.append(e.now))
        e.drain()
        # 5000 bytes at 10 B/cyc cannot finish before cycle 500.
        assert arrivals[-1] == 500

    def test_counters_accumulate_by_class(self):
        e = Engine()
        c = LinkCounters()
        l1 = Link(e, "a", 8, traffic_class="gpu_link", counters=c)
        l2 = Link(e, "b", 8, traffic_class="mem_net", counters=c)
        l1.send(64, lambda: None)
        l2.send(32, lambda: None)
        l2.send(32, lambda: None)
        assert c.get("gpu_link") == 64
        assert c.get("mem_net") == 64
        assert c.total() == 128

    def test_utilization(self):
        e = Engine()
        link = Link(e, "l", bytes_per_cycle=10, latency=0)
        link.send(500, lambda: None)
        e.drain()
        assert link.utilization(100) == pytest.approx(0.5)

    def test_rejects_nonpositive_size(self):
        e = Engine()
        link = Link(e, "l", 8)
        with pytest.raises(ValueError):
            link.send(0, lambda: None)

    def test_queue_delay(self):
        e = Engine()
        link = Link(e, "l", bytes_per_cycle=1, latency=0)
        link.send(10, lambda: None)
        assert link.queue_delay == 10


class TestWakeQueue:
    def test_starts_fully_active(self):
        from repro.sim.engine import WakeQueue
        wq = WakeQueue(3)
        assert wq.active == [0, 1, 2]
        assert all(wq.is_active(i) for i in range(3))

    def test_park_and_wake_round_trip(self):
        from repro.sim.engine import WakeQueue
        wq = WakeQueue(3)
        wq.park(1, since=10)
        assert wq.active == [0, 2]
        assert not wq.is_active(1)
        # wake returns the first unsettled cycle for idle accounting
        assert wq.wake(1) == 10
        assert wq.active == [0, 1, 2]

    def test_spurious_wake_is_noop(self):
        from repro.sim.engine import WakeQueue
        wq = WakeQueue(2)
        assert wq.wake(0) is None
        assert wq.active == [0, 1]

    def test_double_park_rejected(self):
        from repro.sim.engine import WakeQueue
        wq = WakeQueue(2)
        wq.park(0, since=5)
        with pytest.raises(ValueError):
            wq.park(0, since=6)

    def test_set_since_restamps_parked_member(self):
        from repro.sim.engine import WakeQueue
        wq = WakeQueue(2)
        wq.park(0, since=5)
        wq.set_since(0, 20)
        assert wq.asleep_items() == [(0, 20)]
        with pytest.raises(KeyError):
            wq.set_since(1, 20)

    def test_timed_lane_pops_due_and_dedups(self):
        from repro.sim.engine import WakeQueue
        wq = WakeQueue(3)
        wq.park(0, since=0)
        wq.park(1, since=0)
        wq.wake_at(0, 10)
        wq.wake_at(0, 12)          # duplicate booking, same member
        wq.wake_at(1, 30)
        assert wq.pop_due(9) == []
        assert wq.pop_due(15) == [0]
        assert wq.next_time() == 30

    def test_timed_lane_skips_already_active(self):
        from repro.sim.engine import WakeQueue
        wq = WakeQueue(2)
        wq.park(0, since=0)
        wq.wake_at(0, 10)
        wq.wake(0)                 # woke early; booking is now stale
        assert wq.pop_due(10) == []
        assert wq.next_time() is None
