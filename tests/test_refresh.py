"""Tests for DRAM refresh modelling (tREFI / tRFC)."""

import dataclasses


from repro.config import SystemConfig, ci_config
from repro.memory.dram import DRAMTimingSM
from repro.memory.vault import DRAMRequest, DRAMStats, VaultController
from repro.sim.engine import Engine
from repro.sim.runner import run_workload


def mk_vault(trefi=200, trfc=50):
    e = Engine()
    cfg = SystemConfig()
    timing = DRAMTimingSM.from_config(
        dataclasses.replace(cfg.hmc.timing, tREFI=0, tRFC=0),
        cfg.gpu.sm_clock_mhz, 32)
    timing = dataclasses.replace(timing, tREFI=trefi, tRFC=trfc)
    stats = DRAMStats()
    return e, VaultController(e, timing, 16, stats), stats


class TestRefresh:
    def test_refresh_fires_periodically_under_load(self):
        e, vault, stats = mk_vault(trefi=100, trfc=20)
        for i in range(200):
            vault.submit(DRAMRequest(i, False, lambda r: None,
                                     bank=i % 16, row=i // 16))
        e.drain()
        assert stats.refreshes >= 2

    def test_refresh_closes_rows(self):
        e, vault, stats = mk_vault(trefi=50, trfc=10)
        done = []
        vault.submit(DRAMRequest(0, False, lambda r: done.append(1),
                                 bank=0, row=7))
        e.drain()
        assert vault.banks[0].open_row == 7
        # Force a refresh by advancing past tREFI with another request.
        e.now = 60
        vault.submit(DRAMRequest(1, False, lambda r: done.append(2),
                                 bank=0, row=7))
        e.drain()
        assert stats.refreshes >= 1
        # The second access re-activated the row after the refresh closed it.
        assert stats.activations == 2

    def test_disabled_when_trefi_zero(self):
        e, vault, stats = mk_vault(trefi=0, trfc=0)
        vault._next_refresh = None
        for i in range(50):
            vault.submit(DRAMRequest(i, False, lambda r: None,
                                     bank=i % 16, row=0))
        e.drain()
        assert stats.refreshes == 0

    def test_idle_backlog_not_replayed(self):
        e, vault, stats = mk_vault(trefi=10, trfc=5)
        e.now = 10_000          # vault idle for many intervals
        vault.submit(DRAMRequest(0, False, lambda r: None, bank=0, row=0))
        e.drain()
        # One refresh, not a thousand.
        assert stats.refreshes == 1

    def test_requests_complete_despite_refresh(self):
        e, vault, stats = mk_vault(trefi=30, trfc=15)
        done = []
        for i in range(64):
            vault.submit(DRAMRequest(i, False, lambda r: done.append(1),
                                     bank=i % 16, row=i))
        e.drain()
        assert len(done) == 64


class TestEndToEnd:
    def test_refresh_costs_bandwidth(self):
        base = ci_config()
        hmc_off = dataclasses.replace(
            base.hmc, timing=dataclasses.replace(base.hmc.timing,
                                                 tREFI=0, tRFC=0))
        no_refresh = dataclasses.replace(base, hmc=hmc_off)
        r_with = run_workload("VADD", "Baseline", base=base, scale="ci")
        r_without = run_workload("VADD", "Baseline", base=no_refresh,
                                 scale="ci")
        assert r_with.cycles >= r_without.cycles
        assert r_with.warps_completed == r_without.warps_completed
