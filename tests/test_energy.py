"""Unit tests for the energy model (Figure 10 accounting)."""

import pytest

from repro.config import ci_config, paper_config
from repro.energy import EnergyParams, compute_energy
from repro.sim.results import RunResult, StallBreakdown, TrafficBytes


def mk_result(**kw):
    defaults = dict(
        workload="w", config_name="c", cycles=1000, instructions=5000,
        nsu_instructions=0, warps_completed=10,
        stalls=StallBreakdown(), traffic=TrafficBytes(),
        dram_activations=0, dram_reads=0, dram_writes=0)
    defaults.update(kw)
    return RunResult(**defaults)


class TestComponents:
    def test_baseline_has_no_nsu_energy(self):
        e = compute_energy(mk_result(), paper_config())
        assert e.nsu == 0.0
        assert e.gpu > 0

    def test_nsu_energy_when_offloading(self):
        r = mk_result(nsu_instructions=100, nsu_cycles=500,
                      offloads_issued=10)
        e = compute_energy(r, paper_config())
        assert e.nsu > 0

    def test_link_energy_proportional_to_bytes(self):
        p = EnergyParams()
        r1 = mk_result(traffic=TrafficBytes(gpu_link=1000))
        r2 = mk_result(traffic=TrafficBytes(gpu_link=3000))
        e1 = compute_energy(r1, paper_config(), p)
        e2 = compute_energy(r2, paper_config(), p)
        assert (e2.offchip_icnt - e1.offchip_icnt) == pytest.approx(
            2000 * p.offchip_link_nj_per_byte)

    def test_memory_network_counted_as_offchip(self):
        r = mk_result(traffic=TrafficBytes(mem_net=4000))
        e = compute_energy(r, paper_config())
        assert e.offchip_icnt > 0

    def test_dram_activation_energy(self):
        p = EnergyParams()
        r0 = mk_result()
        r1 = mk_result(dram_activations=100)
        d = (compute_energy(r1, paper_config(), p).dram
             - compute_energy(r0, paper_config(), p).dram)
        assert d == pytest.approx(100 * p.dram_activate_nj)

    def test_published_constants(self):
        p = EnergyParams()
        assert p.offchip_link_nj_per_byte == pytest.approx(2e-3 * 8)  # 2 pJ/b
        assert p.dram_activate_nj == 11.8
        assert p.dram_rw_nj_per_byte == pytest.approx(4e-3 * 8)       # 4 pJ/b

    def test_static_energy_scales_with_runtime(self):
        e1 = compute_energy(mk_result(cycles=1000), paper_config())
        e2 = compute_energy(mk_result(cycles=2000), paper_config())
        assert e2.gpu > e1.gpu
        assert e2.dram > e1.dram

    def test_more_sms_cost_more(self):
        cfg = paper_config()
        big = cfg.scaled_gpu(num_sms=cfg.gpu.num_sms * 2)
        r = mk_result()
        assert compute_energy(r, big).gpu > compute_energy(r, cfg).gpu


class TestBreakdown:
    def test_total_is_sum(self):
        r = mk_result(traffic=TrafficBytes(gpu_link=100, intra_hmc=50),
                      dram_activations=5, dram_reads=640)
        e = compute_energy(r, paper_config())
        assert e.total == pytest.approx(
            e.gpu + e.nsu + e.intra_hmc_noc + e.offchip_icnt + e.dram)

    def test_normalization(self):
        r = mk_result()
        e = compute_energy(r, paper_config())
        n = e.normalized_to(e)
        assert n["Total"] == pytest.approx(1.0)
        assert sum(v for k, v in n.items()
                   if k != "Total") == pytest.approx(1.0)

    def test_end_to_end_energy_from_simulation(self):
        from repro.sim.runner import make_config, run_workload

        cfg = ci_config()
        base = run_workload("VADD", "Baseline", base=cfg, scale="ci")
        e = compute_energy(base, make_config("Baseline", cfg))
        assert e.total > 0
        assert e.nsu == 0
        # GPU static + DRAM should dominate a short memory-bound run.
        assert e.gpu + e.dram > 0.5 * e.total
