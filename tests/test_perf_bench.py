"""The simulator perf harness: pinned grid, baseline files, --compare."""

import json

import pytest

from repro.perf import bench as perf
from repro.sim.runner import config_variants
from repro.config import paper_config
from repro.workloads import workload_names


def _fake_cell(workload="VADD", config="Baseline", wall=0.5,
               digest="d0", num_sms=128):
    return {
        "workload": workload, "config": config, "scale": "bench",
        "num_sms": num_sms, "sched": "active", "wall_s": wall,
        "wall_all": [wall], "cycles": 1000, "cycles_per_sec": 1000 / wall,
        "sm_ticks": 4000, "ticks_per_cycle": 4.0, "events_processed": 10,
        "instructions": 500, "digest": digest,
    }


def _fake_report(cells, rev="abc1234", sched="active"):
    return {"kind": "repro-bench", "version": 1, "rev": rev,
            "sched": sched, "suites": ["sparse"], "repeats": 1,
            "unix_time": 0, "python": "3", "cells": cells}


class TestPinnedGrid:
    def test_suite_cells_are_resolvable(self):
        # Every pinned cell must name a real workload and config, or the
        # bench dies at runtime instead of in review.
        configs = set(config_variants(paper_config()))
        workloads = set(workload_names())
        for suite, cells in perf.SUITES.items():
            for w, c, sms in cells:
                assert w in workloads, (suite, w)
                assert c in configs, (suite, c)
                assert sms is None or sms > 0

    def test_quick_subset_is_in_the_sparse_suite(self):
        assert set(perf.QUICK) <= set(perf.SUITES["sparse"])

    def test_unknown_suite_rejected(self):
        with pytest.raises(KeyError, match="unknown bench suite"):
            perf.run_bench(suites=("warp-speed",))


class TestReportIO:
    def test_write_and_load_round_trip(self, tmp_path):
        report = _fake_report([_fake_cell()])
        path = perf.write_report(report, str(tmp_path))
        assert path.endswith("BENCH_abc1234.json")
        assert perf.load_report(path) == report
        # atomic write leaves no temp droppings
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_abc1234.json"]

    def test_load_rejects_foreign_json(self, tmp_path):
        p = tmp_path / "other.json"
        p.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not a repro bench report"):
            perf.load_report(str(p))


class TestCompare:
    def test_per_cell_and_geomean_speedup(self):
        base = _fake_report([_fake_cell(wall=1.0),
                             _fake_cell(config="NDP(Dyn)", wall=4.0)],
                            rev="old", sched="legacy")
        new = _fake_report([_fake_cell(wall=0.5),
                            _fake_cell(config="NDP(Dyn)", wall=2.0)])
        cmp = perf.compare(new, base)
        assert [r["speedup"] for r in cmp["rows"]] == [2.0, 2.0]
        assert cmp["geomean"] == pytest.approx(2.0)
        assert cmp["digests_match"] is True
        assert cmp["unmatched"] == 0

    def test_digest_mismatch_is_flagged(self):
        base = _fake_report([_fake_cell(digest="aa")])
        new = _fake_report([_fake_cell(digest="bb")])
        cmp = perf.compare(new, base)
        assert cmp["digests_match"] is False
        assert any("not apples-to-apples" in line
                   for line in perf.format_compare(cmp))

    def test_unmatched_cells_are_skipped_not_crashed(self):
        base = _fake_report([_fake_cell()])
        new = _fake_report([_fake_cell(),
                            _fake_cell(workload="SP", wall=0.1)])
        cmp = perf.compare(new, base)
        assert len(cmp["rows"]) == 1
        assert cmp["unmatched"] == 1


class TestRealCell:
    def test_quick_grid_runs_and_records(self, tmp_path, monkeypatch):
        # Shrink the quick subset to one ci-scale default-GPU cell so the
        # real path (fresh build, timing, digest) stays test-sized.
        monkeypatch.setattr(perf, "QUICK", (("VADD", "Baseline", None),))
        monkeypatch.setattr(perf, "BENCH_SCALE", "ci")
        from repro import api
        out = api.bench(quick=True, repeats=1, out=str(tmp_path))
        assert out.path and out.path.startswith(str(tmp_path))
        cells = out.report["cells"]
        assert len(cells) == 1
        c = cells[0]
        assert c["wall_s"] > 0 and c["cycles"] > 0
        assert c["sm_ticks"] > 0 and c["digest"]
        # self-compare: identical digests, geomean ~1 (wall jitter aside)
        cmp = perf.compare(out.report, perf.load_report(out.path))
        assert cmp["digests_match"] is True
        assert cmp["geomean"] == pytest.approx(1.0)

    def test_legacy_and_active_cells_share_digests(self, monkeypatch):
        monkeypatch.setattr(perf, "BENCH_SCALE", "ci")
        cells = {}
        for sched in ("legacy", "active"):
            cells[sched] = perf._run_cell("VADD", "Baseline", None,
                                          sched=sched, repeats=1,
                                          max_cycles=20_000_000)
        assert cells["legacy"].digest == cells["active"].digest
        assert cells["legacy"].cycles == cells["active"].cycles
        # the active scheduler must actually elide SM ticks
        assert cells["active"].sm_ticks < cells["legacy"].sm_ticks
