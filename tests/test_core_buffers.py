"""Unit tests for the NSU read-data and write-address buffers."""

import pytest

from repro.core.buffers import ReadDataBuffer, WriteAddressBuffer
from repro.gpu.coalescer import MemAccess


KEY = (("uid",), 0)


class TestReadDataBuffer:
    def test_complete_after_all_words(self):
        b = ReadDataBuffer(4)
        b.expect(KEY, 64)
        assert not b.is_complete(KEY)
        assert not b.deliver(KEY, 32)
        assert b.deliver(KEY, 32)
        assert b.is_complete(KEY)

    def test_delivery_before_expectation(self):
        # A cache-hit RDF response can race ahead; completion is only
        # declared once the expectation (total word count) is known.
        b = ReadDataBuffer(4)
        assert not b.deliver(KEY, 8)
        b2 = (KEY[0], 1)
        b.expect(KEY, 8)
        assert b.is_complete(KEY)

    def test_consume_frees_entry(self):
        b = ReadDataBuffer(1)
        b.expect(KEY, 4)
        b.deliver(KEY, 4)
        e = b.consume(KEY)
        assert e.arrived_packets == 1
        assert len(b) == 0
        # capacity is available again
        b.expect((("uid",), 1), 4)

    def test_consume_incomplete_raises(self):
        b = ReadDataBuffer(4)
        b.expect(KEY, 4)
        with pytest.raises(AssertionError):
            b.consume(KEY)

    def test_overflow_raises(self):
        b = ReadDataBuffer(1)
        b.expect(KEY, 4)
        with pytest.raises(AssertionError):
            b.expect((("uid",), 1), 4)

    def test_duplicate_expectation_raises(self):
        b = ReadDataBuffer(2)
        b.expect(KEY, 4)
        with pytest.raises(AssertionError):
            b.expect(KEY, 8)

    def test_multiple_packets_merge(self):
        # Divergent load: 4 RDF responses with a few words each merge into
        # one read-data entry (Section 4.1.2).
        b = ReadDataBuffer(4)
        b.expect(KEY, 10)
        for words in (3, 3, 3, 1):
            b.deliver(KEY, words)
        e = b.consume(KEY)
        assert e.arrived_packets == 4
        assert e.arrived_words == 10


def acc(line):
    return MemAccess(line, 4, False)


class TestWriteAddressBuffer:
    def test_deliver_and_consume(self):
        b = WriteAddressBuffer(2)
        b.deliver(KEY, (acc(1), acc(2)))
        assert b.has(KEY)
        got = b.consume(KEY)
        assert [a.line_addr for a in got] == [1, 2]
        assert not b.has(KEY)

    def test_overflow_raises(self):
        b = WriteAddressBuffer(1)
        b.deliver(KEY, (acc(1),))
        with pytest.raises(AssertionError):
            b.deliver((KEY[0], 1), (acc(2),))

    def test_duplicate_raises(self):
        b = WriteAddressBuffer(2)
        b.deliver(KEY, (acc(1),))
        with pytest.raises(AssertionError):
            b.deliver(KEY, (acc(1),))

    def test_consume_missing_raises(self):
        b = WriteAddressBuffer(2)
        with pytest.raises(AssertionError):
            b.consume(KEY)

    def test_peak_tracking(self):
        b = WriteAddressBuffer(4)
        for i in range(3):
            b.deliver((KEY[0], i), (acc(i),))
        assert b.peak == 3
