"""The runtime lock sanitizer (repro.lint.sanitize)."""

import pytest

from repro.lint import sanitize
from repro.lint.sanitize import (GuardViolation, LockOrderError,
                                 SanitizedLock)


@pytest.fixture
def armed():
    """Install the sanitizer for one test; restore the pristine classes
    afterwards unless the whole process runs armed (REPRO_SANITIZE=1 CI
    jobs must stay armed across tests)."""
    sanitize.reset()
    sanitize.install()
    yield sanitize
    if not sanitize.armed():
        sanitize.uninstall()
    sanitize.reset()


# -- arming -------------------------------------------------------------------

class TestArming:
    def test_env_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize.armed()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize.armed()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize.armed()

    def test_maybe_install_noop_unarmed(self, monkeypatch):
        if sanitize.installed():
            pytest.skip("process is running armed")
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitize.maybe_install() is False
        assert not sanitize.installed()

    def test_install_is_idempotent(self, armed):
        manifest = sanitize.install()
        assert sanitize.installed()
        assert "repro.serve.jobs.JobQueue" in manifest

    def test_unarmed_classes_untouched(self):
        if sanitize.installed():
            pytest.skip("process is running armed")
        from repro.serve.daemon import _HotSet
        hs = _HotSet(4)
        assert hs._d == {}                   # raw access: no proxy, no check
        assert not isinstance(hs._lock, SanitizedLock)


# -- guarded accesses ---------------------------------------------------------

class TestGuardChecks:
    def test_unguarded_read_raises(self, armed):
        from repro.serve.daemon import _HotSet
        hs = _HotSet(4)
        with pytest.raises(GuardViolation, match="_HotSet._d"):
            _ = hs._d
        with hs._lock:                       # held: same access is legal
            assert hs._d == {}

    def test_unguarded_write_raises(self, armed):
        from repro.serve.limiter import TokenBucket
        tb = TokenBucket(rate=1.0)
        with pytest.raises(GuardViolation, match="TokenBucket._buckets"):
            tb._buckets = {}

    def test_locked_api_still_works(self, armed):
        from repro.serve.daemon import _HotSet
        hs = _HotSet(2)
        hs.put("a", {"v": 1})
        hs.put("b", {"v": 2})
        hs.put("c", {"v": 3})                # evicts "a"
        assert hs.get("a") is None
        assert hs.get("c") == {"v": 3}
        assert len(hs) == 2

    def test_none_optouts_not_checked(self, armed):
        from repro.serve.jobs import Coalescer
        c = Coalescer()
        assert c.hits == 0                   # guarded-by: none -> no raise

    def test_condition_over_proxy(self, armed):
        from repro.serve.jobs import Job, JobQueue
        q = JobQueue()
        assert isinstance(q._lock, SanitizedLock)
        assert q.pop(timeout=0.01) is None   # wait path over the proxy
        q.push(Job(kind="run", key="a" * 64, payload={}, client="c"))
        job = q.pop(timeout=1.0)
        assert job is not None and job.key == "a" * 64
        assert q.depth == 0

    def test_guard_checks_counted(self, armed):
        from repro.serve.daemon import _HotSet
        hs = _HotSet(4)
        before = sanitize.counters()["sanitize.guard_checks"]
        hs.put("k", {"v": 1})
        hs.get("k")
        assert sanitize.counters()["sanitize.guard_checks"] > before


# -- lock ordering and contention ---------------------------------------------

class TestLockOrder:
    def test_inversion_raises(self, armed):
        from repro.serve.jobs import JobQueue
        from repro.serve.limiter import TokenBucket
        tb = TokenBucket(rate=1.0)           # TokenBucket._lock: rank 3
        q = JobQueue()                       # JobQueue._lock:    rank 1
        with tb._lock:
            with pytest.raises(LockOrderError, match="inversion"):
                q._lock.acquire()

    def test_declared_order_allowed(self, armed):
        from repro.serve.jobs import JobQueue
        from repro.serve.limiter import TokenBucket
        tb = TokenBucket(rate=1.0)
        q = JobQueue()
        with q._lock:                        # rank 1 then rank 3: legal
            with tb._lock:
                pass

    def test_contention_counted(self, armed):
        from repro.serve.daemon import _HotSet
        hs = _HotSet(4)
        before = sanitize.counters()["sanitize.contended"]
        with hs._lock:
            assert hs._lock.acquire(blocking=False) is False
        assert sanitize.counters()["sanitize.contended"] == before + 1


# -- daemon integration -------------------------------------------------------

class TestDaemonIntegration:
    def test_daemon_lifecycle_armed(self, armed):
        from repro.serve.daemon import ServeConfig, ServeDaemon
        daemon = ServeDaemon(ServeConfig(mode="thread", shards=1,
                                         hot_set=4))
        daemon.start()
        try:
            assert daemon.healthz()["ok"]
            stats = daemon.stats()
            assert stats["queue_depth"] == 0
        finally:
            daemon.stop()
        assert not daemon.healthz()["ok"]
        # stop() folded the sanitize.* counters into the registry
        names = set(daemon.registry.counters)
        assert any(n.startswith("sanitize.") for n in names)
