"""Smoke tests for the runnable examples (they must stay green)."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "offload block 0" in out
        assert "NSU code" in out
        assert "ACK" in out                 # the Figure 6 timeline
        assert "speedup of NaiveNDP" in out

    def test_custom_workload(self):
        out = run_example("custom_workload.py")
        assert "SAXPY" in out or "saxpy" in out
        assert "speedup" in out

    def test_page_migration(self):
        out = run_example("page_migration.py")
        assert "WTA drain" in out or "fetch-bound" in out
        assert "swaps observed" in out

    def test_graph_analytics(self):
        out = run_example("graph_analytics.py")
        assert "single indirect load" in out
        assert "fetch efficiency" in out

    def test_asm_kernel(self):
        out = run_example("asm_kernel.py")
        assert "gather_triad" in out
        assert "single indirect gather" in out
        assert "speedup" in out

    def test_all_examples_exist_and_have_docstrings(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 6
        for s in scripts:
            text = s.read_text()
            assert text.startswith("#!") or text.startswith('"""'), s.name
            assert '"""' in text, s.name
            assert "def main()" in text, s.name
