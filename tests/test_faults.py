"""Tests for the deterministic fault-injection subsystem (repro.faults):
plan validation, seed determinism, zero-overhead arming, recovery paths
and the chaos CLI."""

import hashlib
import json

import pytest

from repro.config import ci_config
from repro.faults import (FaultPlan, FaultSpec, RecoveryPolicy, get_scenario,
                          scenario_names)
from repro.faults.inject import FaultInjector
from repro.sim.engine import Engine
from repro.sim.runner import build_system, run_workload
from repro.sim.serialize import result_to_dict
from repro.sim.system import SimulationTimeout
from repro.sim.validate import audit_system


def digest(result) -> str:
    return hashlib.sha256(
        json.dumps(result_to_dict(result), sort_keys=True).encode()
    ).hexdigest()


def run_with(plan, config="NDP(Dyn)", max_cycles=2_000_000):
    system = build_system("VADD", config, base=ci_config(), scale="ci",
                          faults=plan)
    return system, system.run(max_cycles=max_cycles)


class TestPlanValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(site="warp_engine")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(site="mem_net", kind="scramble")

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(site="mem_net", rate=1.5)

    def test_delay_only_on_packet_sites(self):
        with pytest.raises(ValueError):
            FaultSpec(site="credit", kind="delay")

    def test_delay_cycles_must_be_positive(self):
        # Engine.after() rejects non-positive delays; the plan must fail
        # at construction, not mid-simulation.
        with pytest.raises(ValueError, match="delay_cycles"):
            FaultSpec(site="mem_net", kind="delay", delay_cycles=0)
        with pytest.raises(ValueError, match="delay_cycles"):
            FaultSpec(site="mem_net", kind="delay", delay_cycles=-5)

    def test_fingerprint_covers_specs(self):
        a = FaultPlan(name="p", seed=1,
                      specs=(FaultSpec(site="mem_net", rate=0.1),))
        b = FaultPlan(name="p", seed=1,
                      specs=(FaultSpec(site="mem_net", rate=0.2),))
        assert a.fingerprint() != b.fingerprint()

    def test_scenario_registry(self):
        names = scenario_names()
        assert "rdf-drop" in names and "credit-loss" in names
        plan = get_scenario("rdf-drop", rate=0.02, seed=5)
        assert plan.seed == 5
        assert any(s.site == "mem_net" for s in plan.specs)
        with pytest.raises(KeyError):
            get_scenario("no-such-scenario")


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan(name="d", seed=9, specs=(
            FaultSpec(site="mem_net", kind="drop", rate=0.3),))
        seq = []
        for _ in range(2):
            inj = FaultInjector(plan, Engine())
            seq.append([inj.decide("mem_net") is not None
                        for _ in range(200)])
        assert seq[0] == seq[1]
        assert any(seq[0])   # 0.3 over 200 events: some must fire

    def test_different_seeds_differ(self):
        mk = lambda seed: FaultInjector(
            FaultPlan(name="d", seed=seed, specs=(
                FaultSpec(site="mem_net", kind="drop", rate=0.3),)),
            Engine())
        a, b = mk(1), mk(2)
        sa = [a.decide("mem_net") is not None for _ in range(200)]
        sb = [b.decide("mem_net") is not None for _ in range(200)]
        assert sa != sb

    def test_at_events_and_max_events(self):
        plan = FaultPlan(name="d", seed=0, specs=(
            FaultSpec(site="credit", kind="drop", at_events=(2, 4)),))
        inj = FaultInjector(plan, Engine())
        hits = [inj.decide("credit") is not None for _ in range(6)]
        assert hits == [False, True, False, True, False, False]


class TestZeroOverhead:
    def test_rate_zero_plan_is_bit_identical_to_unarmed(self):
        baseline = run_workload("VADD", "NDP(Dyn)", base=ci_config(),
                                scale="ci")
        plan = FaultPlan(name="armed-zero", seed=0, specs=(
            FaultSpec(site="mem_net", kind="drop", rate=0.0),
            FaultSpec(site="gpu_link_up", kind="drop", rate=0.0),
            FaultSpec(site="vault_read", kind="drop", rate=0.0),
            FaultSpec(site="nsu_buffer", kind="corrupt", rate=0.0),
            FaultSpec(site="credit", kind="drop", rate=0.0),
        ))
        system, armed = run_with(plan)
        assert armed.extra["faults"]["total_fired"] == 0
        # Strip the armed-only extra keys: everything else must match the
        # unarmed run exactly (cycle-exact seed behaviour).
        armed_d = result_to_dict(armed)
        armed_d["extra"].pop("faults")
        armed_d["extra"].pop("recovery")
        assert armed_d == result_to_dict(baseline)


class TestRecovery:
    def test_seeded_plan_recovers_and_audits_clean(self):
        # The ISSUE acceptance plan: 1% RDF drop + one credit-loss event.
        plan = FaultPlan(name="accept", seed=3, specs=(
            FaultSpec(site="mem_net", kind="drop", rate=0.1),
            FaultSpec(site="credit", kind="drop", at_events=(1,)),
        ))
        digests = []
        for _ in range(2):
            system, result = run_with(plan)
            assert audit_system(system, result) == []
            assert result.extra["faults"]["total_fired"] > 0
            rec = result.extra["recovery"]
            assert rec["credits_reclaimed"] >= 1
            digests.append(digest(result))
        assert digests[0] == digests[1]   # same seed -> same run

    def test_heavy_loss_falls_back_and_stays_consistent(self):
        plan = get_scenario("rdf-drop", rate=0.2, seed=3)
        system, result = run_with(plan)
        assert audit_system(system, result) == []
        rec = result.extra["recovery"]
        assert rec["retries"] > 0
        # acks + fallbacks == offloads is part of the audit; spot-check
        # the counters surfaced to users as well.
        s = system.ndp.stats
        assert s.acks + rec["fallbacks"] == s.offloads

    def test_nsu_corruption_recovers(self):
        plan = get_scenario("nsu-corrupt", rate=0.05, seed=11)
        system, result = run_with(plan)
        assert audit_system(system, result) == []
        assert result.extra["faults"]["total_fired"] > 0

    def test_recovery_disabled_deadlocks_fast(self):
        plan = get_scenario("rdf-drop", rate=0.2, seed=3,
                            recovery=RecoveryPolicy(enabled=False))
        with pytest.raises(SimulationTimeout) as exc:
            run_with(plan)
        assert "deadlock" in str(exc.value)


class TestChaosCLI:
    def test_degradation_table(self, capsys):
        from repro.cli import main

        rc = main(["--scale", "ci", "--workloads", "VADD", "--no-store",
                   "chaos", "--rates", "0,0.01,0.2",
                   "--configs", "NDP(Dyn),NaiveNDP", "--fault-seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "VADD / rdf-drop" in out
        assert "clean x1.00" in out       # rate 0 matches the reference
        assert "recovered" in out         # rate 0.2 forces recovery
        assert "[chaos] simulations:" in out

    def test_chaos_store_salting(self, tmp_path, capsys):
        from repro.cli import main

        args = ["--scale", "ci", "--workloads", "VADD",
                "--store", str(tmp_path),
                "chaos", "--rates", "0.2", "--configs", "NDP(Dyn)",
                "--fault-seed", "3"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        # Second invocation is served from the plan-salted store and the
        # table is unchanged (deterministic outcomes).
        assert "simulations: 0" in second
        assert (first.splitlines()[-3] == second.splitlines()[-3])

    def test_run_with_faults_skips_store(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["--scale", "ci", "--store", str(tmp_path),
                   "run", "VADD", "NDP(Dyn)",
                   "--faults", "rdf-drop", "--fault-rate", "0.1",
                   "--fault-seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults fired" in out
        # The faulted result must not be cached under the plain cell key.
        rc = main(["--scale", "ci", "--store", str(tmp_path),
                   "run", "VADD", "NDP(Dyn)"])
        assert rc == 0
        assert "[store] hit" not in capsys.readouterr().out
