"""Unit tests for the NSU model (repro.core.nsu) driven directly through
a stub controller."""


from repro.config import ci_config
from repro.core.nsu import NSU
from repro.gpu.coalescer import MemAccess
from repro.isa import BasicBlock, Kernel, alu, analyze_kernel, ld, st
from repro.sim.engine import Engine


def vadd_block():
    k = Kernel("vadd", [BasicBlock([
        ld(4, 0, "A"), ld(5, 1, "B"), alu(6, 4, 5),
        alu(10, 2), st(6, 10, "C"),
    ])])
    return analyze_kernel(k).blocks[0]


def loadonly_block():
    k = Kernel("k", [BasicBlock([ld(4, 0, "A"), ld(5, 1, "B"),
                                 alu(6, 4, 5)])],
               live_out=frozenset({6}))
    return analyze_kernel(k).blocks[0]


class StubController:
    """Records credit releases, writes, and ACKs."""

    def __init__(self):
        self.released = []
        self.writes = []
        self.acks = []
        self.code_layout = {0: (0, 2)}

    def release_credits(self, hmc, inst=None, **kw):
        self.released.append((hmc, kw))
        return True

    def ndp_write(self, nsu, warp, acc):
        self.writes.append(acc)
        # Immediate write completion for unit testing.
        nsu.engine.after(5, lambda: nsu.write_done(warp))

    def send_ack(self, nsu, inst):
        self.acks.append(inst)


class FakeInstance:
    def __init__(self, block, uid=("u", 0, 0)):
        self.block = block
        self.uid = uid
        self.active_threads = 32


def mk_nsu():
    e = Engine()
    ctrl = StubController()
    nsu = NSU(e, ci_config("naive"), hmc_id=0, controller=ctrl)
    return e, ctrl, nsu


def tick_until(e, nsu, cond, limit=5000):
    for _ in range(limit):
        e.process_due()
        nsu.tick()
        if cond():
            return
        e.now += 1
    raise AssertionError("condition never met")


class TestSpawn:
    def test_cmd_spawns_warp_with_live_ins(self):
        e, ctrl, nsu = mk_nsu()
        blk = loadonly_block()
        ctrl.code_layout = {blk.block_id: (0, 2)}
        inst = FakeInstance(blk)
        nsu.receive_cmd(inst)
        assert len(nsu.warps) == 1
        # Command-buffer credit returns at spawn.
        assert ctrl.released == [(0, {"cmd": 1})]

    def test_icache_lines_touched(self):
        e, ctrl, nsu = mk_nsu()
        blk = loadonly_block()
        ctrl.code_layout = {blk.block_id: (3, 4)}
        nsu.receive_cmd(FakeInstance(blk))
        assert {3, 4, 5, 6} <= nsu.icache_touched

    def test_slots_limit_and_queue(self):
        e, ctrl, nsu = mk_nsu()
        nsu.num_slots = 2
        blk = loadonly_block()
        ctrl.code_layout = {blk.block_id: (0, 1)}
        for i in range(4):
            nsu.receive_cmd(FakeInstance(blk, uid=("u", 0, i)))
        assert len(nsu.warps) == 2
        assert len(nsu.cmd_queue) == 2


class TestExecution:
    def test_load_waits_for_read_data(self):
        e, ctrl, nsu = mk_nsu()
        blk = loadonly_block()
        ctrl.code_layout = {blk.block_id: (0, 1)}
        inst = FakeInstance(blk)
        nsu.receive_cmd(inst)
        # No data yet: the warp blocks on the first LD.
        for _ in range(10):
            e.process_due()
            nsu.tick()
            e.now += 1
        assert nsu.instructions == 0
        # Deliver both loads' data.
        nsu.expect_read((inst.uid, 0), 32)
        nsu.deliver_read((inst.uid, 0), 32)
        nsu.expect_read((inst.uid, 1), 32)
        nsu.deliver_read((inst.uid, 1), 32)
        tick_until(e, nsu, lambda: ctrl.acks == [inst])
        # ld, ld, alu, end
        assert nsu.instructions == 4

    def test_read_credit_released_on_consume(self):
        e, ctrl, nsu = mk_nsu()
        blk = loadonly_block()
        ctrl.code_layout = {blk.block_id: (0, 1)}
        inst = FakeInstance(blk)
        nsu.receive_cmd(inst)
        for seq in (0, 1):
            nsu.expect_read((inst.uid, seq), 32)
            nsu.deliver_read((inst.uid, seq), 32)
        tick_until(e, nsu, lambda: ctrl.acks)
        rd = sum(kw.get("read_data", 0) for _, kw in ctrl.released)
        assert rd == 2

    def test_store_consumes_wta_and_waits_for_writes(self):
        e, ctrl, nsu = mk_nsu()
        blk = vadd_block()
        ctrl.code_layout = {blk.block_id: (0, 2)}
        inst = FakeInstance(blk)
        nsu.receive_cmd(inst)
        for seq in (0, 1):
            nsu.expect_read((inst.uid, seq), 32)
            nsu.deliver_read((inst.uid, seq), 32)
        nsu.expect_wta((inst.uid, 2), 1)
        nsu.deliver_wta((inst.uid, 2), MemAccess(77, 32, False))
        tick_until(e, nsu, lambda: ctrl.acks)
        assert [a.line_addr for a in ctrl.writes] == [77]
        wa = sum(kw.get("write_addr", 0) for _, kw in ctrl.released)
        assert wa == 1

    def test_wta_arriving_before_expectation(self):
        e, ctrl, nsu = mk_nsu()
        key = (("u", 0, 0), 2)
        nsu.deliver_wta(key, MemAccess(5, 4, False))
        assert not nsu.wta_buf.has(key)
        nsu.expect_wta(key, 1)
        assert nsu.wta_buf.has(key)

    def test_occupancy_accounting(self):
        e, ctrl, nsu = mk_nsu()
        blk = loadonly_block()
        ctrl.code_layout = {blk.block_id: (0, 1)}
        nsu.receive_cmd(FakeInstance(blk))
        for _ in range(10):
            nsu.tick()
        assert nsu.cycles == 10
        assert nsu.occupancy_sum == 10.0
        nsu.account_idle(5)
        assert nsu.cycles == 15

    def test_warp_slot_freed_after_ack(self):
        e, ctrl, nsu = mk_nsu()
        blk = loadonly_block()
        ctrl.code_layout = {blk.block_id: (0, 1)}
        inst = FakeInstance(blk)
        nsu.receive_cmd(inst)
        for seq in (0, 1):
            nsu.expect_read((inst.uid, seq), 32)
            nsu.deliver_read((inst.uid, seq), 32)
        tick_until(e, nsu, lambda: ctrl.acks)
        assert nsu.warps == []
        assert nsu.idle
