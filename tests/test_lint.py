"""The ``repro.lint`` static analyzer: per-rule fixtures (positive hit,
suppressed hit, clean), suppression semantics, baseline mechanics, the
JSON reporter, and the meta-test that the shipped tree itself lints
clean.

Fixture packages are laid out on disk as a miniature ``repro`` package so
the tests exercise the same contract discovery (``discover_project``)
that ``repro lint src/repro`` uses.
"""

import json

import pytest

from repro.lint import (
    ALL_RULES,
    Project,
    render_json,
    render_pretty,
    run_lint,
)

# ---------------------------------------------------------------------------
# miniature contract files for a self-contained fixture package
# ---------------------------------------------------------------------------

PACKETS_SRC = '''\
class PacketSizes:
    MASK = 4

    @staticmethod
    def offload_cmd():
        return 1

    @staticmethod
    def rdf_response():
        return 2


PACKET_FAULT_SITES = {
    "offload_cmd": "gpu_link_down",
    "rdf_response": "mem_net",
}
'''

PLAN_SRC = '''\
PACKET_SITES = ("mem_net", "gpu_link_down", "gpu_link_up")
SITES = PACKET_SITES + ("vault_read", "nsu_buffer", "credit")
WATCHDOG_SITES = ("ack", "mshr")
'''

METRICS_SRC = '''\
KNOWN_METRICS = frozenset({"sm.live_warps", "packets.*"})
'''

CLI_SRC = '''\
import argparse


def build_parser():
    p = argparse.ArgumentParser()
    p.add_argument("--workload")
    return p
'''

API_SRC = '''\
class RunRequest:
    workload: str = "VADD"
'''


def make_pkg(tmp_path, files=None):
    """Write a mini repro package; returns its root directory."""
    pkg = tmp_path / "repro"
    layout = {
        "core/packets.py": PACKETS_SRC,
        "faults/plan.py": PLAN_SRC,
        "sim/metrics.py": METRICS_SRC,
        "cli.py": CLI_SRC,
        "api.py": API_SRC,
    }
    layout.update(files or {})
    for rel, src in layout.items():
        p = pkg / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(src)
    return pkg


def lint_pkg(tmp_path, files=None, rules=None):
    pkg = make_pkg(tmp_path, files)
    report = run_lint([pkg], use_baseline=False, rules=rules)
    return report.findings


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# ---------------------------------------------------------------------------
# determinism rules
# ---------------------------------------------------------------------------

class TestSetIteration:
    POSITIVE = (
        "def f():\n"
        "    s = {1, 2, 3}\n"
        "    out = []\n"
        "    for x in s:\n"
        "        out.append(x)\n"
        "    return out\n")

    def test_positive(self, tmp_path):
        hits = by_rule(lint_pkg(tmp_path,
                                {"workloads/gen.py": self.POSITIVE}),
                       "DET001")
        assert len(hits) == 1
        f = hits[0]
        assert f.severity == "error"
        assert f.line == 4
        assert f.path.endswith("workloads/gen.py")

    def test_sorted_is_clean(self, tmp_path):
        src = self.POSITIVE.replace("for x in s:", "for x in sorted(s):")
        assert not by_rule(lint_pkg(tmp_path, {"workloads/gen.py": src}),
                           "DET001")

    def test_reducer_consumption_is_clean(self, tmp_path):
        src = ("def f():\n"
               "    s = {1, 2, 3}\n"
               "    return sum(x for x in s)\n")
        assert not by_rule(lint_pkg(tmp_path, {"workloads/gen.py": src}),
                           "DET001")

    def test_suppressed(self, tmp_path):
        src = self.POSITIVE.replace(
            "    for x in s:",
            "    # lint: ignore[DET001] -- output is re-sorted downstream\n"
            "    for x in s:")
        findings = lint_pkg(tmp_path, {"workloads/gen.py": src})
        assert not by_rule(findings, "DET001")
        assert not by_rule(findings, "LINT002")   # suppression was used


class TestDictViewIteration:
    POSITIVE = (
        "def g(d):\n"
        "    out = []\n"
        "    for v in d.values():\n"
        "        out.append(v)\n"
        "    return out\n")

    def test_positive(self, tmp_path):
        hits = by_rule(lint_pkg(tmp_path,
                                {"workloads/gen.py": self.POSITIVE}),
                       "DET002")
        assert len(hits) == 1
        assert hits[0].severity == "warning"

    def test_sorted_is_clean(self, tmp_path):
        src = self.POSITIVE.replace("d.values():", "sorted(d.values()):")
        assert not by_rule(lint_pkg(tmp_path, {"workloads/gen.py": src}),
                           "DET002")


class TestUnseededRandom:
    def test_module_draw_flagged(self, tmp_path):
        src = ("import random\n"
               "def h():\n"
               "    return random.random()\n")
        hits = by_rule(lint_pkg(tmp_path, {"workloads/gen.py": src}),
                       "DET003")
        assert len(hits) == 1
        assert hits[0].severity == "error"

    def test_seeded_rng_clean(self, tmp_path):
        src = ("import random\n"
               "def h():\n"
               "    return random.Random(0).random()\n")
        assert not by_rule(lint_pkg(tmp_path, {"workloads/gen.py": src}),
                           "DET003")


class TestHashId:
    def test_hash_flagged(self, tmp_path):
        src = ("def key(name):\n"
               "    return hash(name) & 0xFFFF\n")
        hits = by_rule(lint_pkg(tmp_path, {"workloads/gen.py": src}),
                       "DET004")
        assert len(hits) == 1
        assert hits[0].severity == "error"
        assert hits[0].line == 2

    def test_suppressed_with_reason(self, tmp_path):
        src = ("def key(name):\n"
               "    return hash(name)  "
               "# lint: ignore[DET004] -- in-process cache key only\n")
        findings = lint_pkg(tmp_path, {"workloads/gen.py": src})
        assert not by_rule(findings, "DET004")
        assert not by_rule(findings, "LINT001")


class TestWallClock:
    SRC = ("import time\n"
           "def stamp():\n"
           "    return time.time()\n")

    def test_flagged_on_sim_path(self, tmp_path):
        hits = by_rule(lint_pkg(tmp_path, {"sim/clock.py": self.SRC}),
                       "DET005")
        assert len(hits) == 1
        assert hits[0].severity == "warning"

    def test_out_of_scope_module_clean(self, tmp_path):
        assert not by_rule(lint_pkg(tmp_path,
                                    {"analysis/clock.py": self.SRC}),
                           "DET005")


# ---------------------------------------------------------------------------
# suppression semantics
# ---------------------------------------------------------------------------

class TestSuppressions:
    def test_missing_reason_is_a_finding(self, tmp_path):
        src = ("def key(name):\n"
               "    return hash(name)  # lint: ignore[DET004]\n")
        findings = lint_pkg(tmp_path, {"workloads/gen.py": src})
        hits = by_rule(findings, "LINT001")
        assert len(hits) == 1
        assert hits[0].severity == "error"

    def test_stale_suppression_is_a_finding(self, tmp_path):
        src = ("def f():\n"
               "    # lint: ignore[DET001] -- nothing to see here\n"
               "    return 1\n")
        hits = by_rule(lint_pkg(tmp_path, {"workloads/gen.py": src}),
                       "LINT002")
        assert len(hits) == 1

    def test_comment_block_covers_next_statement(self, tmp_path):
        src = ("def key(name):\n"
               "    # lint: ignore[DET004] -- an in-process cache key;\n"
               "    # the value never reaches a digest or a store\n"
               "    return hash(name)\n")
        findings = lint_pkg(tmp_path, {"workloads/gen.py": src})
        assert not by_rule(findings, "DET004")
        assert not by_rule(findings, "LINT002")

    def test_docstring_mention_is_not_a_suppression(self, tmp_path):
        src = ('"""Write # lint: ignore[DET004] -- why, to suppress."""\n')
        findings = lint_pkg(tmp_path, {"workloads/gen.py": src})
        assert not by_rule(findings, "LINT001")
        assert not by_rule(findings, "LINT002")

    def test_filtered_out_rule_is_not_stale(self, tmp_path):
        # With --rules restricting the run, a suppression for an
        # unselected rule cannot have matched anything -- it is not stale.
        src = ("def key(name):\n"
               "    return hash(name)  "
               "# lint: ignore[DET004] -- in-process cache key only\n")
        findings = lint_pkg(tmp_path, {"workloads/gen.py": src},
                            rules=["DET001"])
        assert not by_rule(findings, "LINT002")

    def test_syntax_error_reported_not_raised(self, tmp_path):
        findings = lint_pkg(tmp_path, {"workloads/gen.py": "def f(:\n"})
        hits = by_rule(findings, "LINT003")
        assert len(hits) == 1
        assert hits[0].severity == "error"


# ---------------------------------------------------------------------------
# protocol rules (contract registries)
# ---------------------------------------------------------------------------

class TestPacketCoverage:
    def test_consistent_contract_is_clean(self, tmp_path):
        assert not by_rule(lint_pkg(tmp_path), "PROTO001")

    def test_unmapped_packet_kind(self, tmp_path):
        src = PACKETS_SRC.replace(
            "    @staticmethod\n    def rdf_response():",
            "    @staticmethod\n    def wta():\n"
            "        return 3\n\n"
            "    @staticmethod\n    def rdf_response():")
        hits = by_rule(lint_pkg(tmp_path, {"core/packets.py": src}),
                       "PROTO001")
        assert len(hits) == 1
        assert "wta" in hits[0].message
        assert hits[0].severity == "error"

    def test_unknown_fault_site(self, tmp_path):
        src = PACKETS_SRC.replace('"gpu_link_down"', '"warp_hole"')
        hits = by_rule(lint_pkg(tmp_path, {"core/packets.py": src}),
                       "PROTO001")
        assert len(hits) == 1
        assert "warp_hole" in hits[0].message

    def test_stale_mapping_entry(self, tmp_path):
        src = PACKETS_SRC.replace(
            '    "rdf_response": "mem_net",',
            '    "rdf_response": "mem_net",\n    "ghost": "mem_net",')
        hits = by_rule(lint_pkg(tmp_path, {"core/packets.py": src}),
                       "PROTO001")
        assert len(hits) == 1
        assert "ghost" in hits[0].message


class TestMetricNames:
    def test_typo_flagged(self, tmp_path):
        src = ("def publish(m):\n"
               "    m.counter(\"packts.CMD\").add(1)\n")
        hits = by_rule(lint_pkg(tmp_path, {"sim/probe.py": src}),
                       "PROTO002")
        assert len(hits) == 1
        assert "packts.CMD" in hits[0].message
        assert hits[0].line == 2

    def test_registered_and_pattern_names_clean(self, tmp_path):
        src = ("def publish(m):\n"
               "    m.counter(\"sm.live_warps\").add(1)\n"
               "    m.counter(\"packets.offload_cmd\").add(1)\n")
        assert not by_rule(lint_pkg(tmp_path, {"sim/probe.py": src}),
                           "PROTO002")


class TestFaultSites:
    def test_bogus_site_flagged(self, tmp_path):
        src = ("def arm(faults):\n"
               "    return faults.packet(\"bogus_site\", 1)\n")
        hits = by_rule(lint_pkg(tmp_path, {"faults/user.py": src}),
                       "PROTO003")
        assert len(hits) == 1
        assert "bogus_site" in hits[0].message

    def test_declared_site_clean(self, tmp_path):
        src = ("def arm(faults):\n"
               "    return faults.packet(\"mem_net\", 1)\n")
        assert not by_rule(lint_pkg(tmp_path, {"faults/user.py": src}),
                           "PROTO003")


class TestFacadeDrift:
    def test_aligned_cli_is_clean(self, tmp_path):
        assert not [f for f in by_rule(lint_pkg(tmp_path), "FAC001")
                    if f.severity == "error"]

    def test_unmatched_flag_is_an_error(self, tmp_path):
        src = CLI_SRC.replace(
            'p.add_argument("--workload")',
            'p.add_argument("--workload")\n'
            '    p.add_argument("--frobnicate")')
        hits = [f for f in by_rule(lint_pkg(tmp_path, {"cli.py": src}),
                                   "FAC001") if f.severity == "error"]
        assert len(hits) == 1
        assert "frobnicate" in hits[0].message
        assert hits[0].path.endswith("cli.py")

    def test_facade_param_without_flag_is_a_warning(self, tmp_path):
        src = API_SRC + "    block_size: int = 64\n"
        hits = [f for f in by_rule(lint_pkg(tmp_path, {"api.py": src}),
                                   "FAC001")
                if "block_size" in f.message]
        assert len(hits) == 1
        assert hits[0].severity == "warning"


# ---------------------------------------------------------------------------
# perf rules
# ---------------------------------------------------------------------------

class TestHotPathAllocation:
    ENGINE_LAMBDA = (
        "class Engine:\n"
        "    def process_due(self):\n"
        "        self.cb = lambda: None\n")

    def test_engine_method_lambda_flagged(self, tmp_path):
        hits = by_rule(lint_pkg(
            tmp_path, {"sim/engine.py": self.ENGINE_LAMBDA}), "PERF001")
        assert len(hits) == 1
        assert "process_due" in hits[0].message

    def test_tick_method_closure_flagged(self, tmp_path):
        src = ("class SM:\n"
               "    def tick(self):\n"
               "        def cb():\n"
               "            return self\n"
               "        self.cb = cb\n")
        hits = by_rule(lint_pkg(tmp_path, {"gpu/sm.py": src}), "PERF001")
        assert len(hits) == 1
        assert "nested function 'cb'" in hits[0].message

    def test_partial_in_tick_flagged(self, tmp_path):
        src = ("import functools\n"
               "class NSU:\n"
               "    def tick(self):\n"
               "        self.cb = functools.partial(print, 1)\n")
        hits = by_rule(lint_pkg(tmp_path, {"core/nsu.py": src}), "PERF001")
        assert len(hits) == 1

    def test_alloc_ok_annotation_allows(self, tmp_path):
        src = ("class Engine:\n"
               "    def process_due(self):\n"
               "        self.cb = lambda: None"
               "  # perf: alloc-ok -- once per drain, not per event\n")
        assert not by_rule(lint_pkg(
            tmp_path, {"sim/engine.py": src}), "PERF001")

    def test_alloc_ok_without_reason_is_a_finding(self, tmp_path):
        src = ("class Engine:\n"
               "    def process_due(self):\n"
               "        self.cb = lambda: None  # perf: alloc-ok\n")
        hits = by_rule(lint_pkg(tmp_path, {"sim/engine.py": src}),
                       "PERF001")
        assert any("without a reason" in f.message for f in hits)

    def test_cold_functions_and_modules_unflagged(self, tmp_path):
        # non-hot method in the engine module's other classes, and a
        # tick() outside the sim path, are both fine
        engine = ("class WakeQueue:\n"
                  "    def park(self):\n"
                  "        self.cb = lambda: None\n")
        serve = ("class Shard:\n"
                 "    def tick(self):\n"
                 "        self.cb = lambda: None\n")
        assert not by_rule(lint_pkg(tmp_path, {
            "sim/engine.py": engine, "serve/shard.py": serve}), "PERF001")


# ---------------------------------------------------------------------------
# baseline + reporters
# ---------------------------------------------------------------------------

class TestBaseline:
    def test_round_trip_masks_then_unmasks(self, tmp_path):
        pkg = make_pkg(tmp_path,
                       {"workloads/gen.py": TestSetIteration.POSITIVE})
        bl = tmp_path / "baseline.json"
        first = run_lint([pkg], baseline=bl, update_baseline=True)
        assert first.exit_code == 0 and bl.is_file()

        second = run_lint([pkg], baseline=bl)
        assert second.exit_code == 0
        assert not second.live
        assert any(f.baselined for f in second.findings)

        # a new violation in another file is not masked
        extra = pkg / "workloads" / "gen2.py"
        extra.write_text("def f(d):\n"
                         "    return [v for v in d.values()][0]\n")
        third = run_lint([pkg], baseline=bl)
        assert third.exit_code == 1
        assert all(f.path.endswith("gen2.py") for f in third.live)

    def test_baseline_key_survives_line_moves(self, tmp_path):
        pkg = make_pkg(tmp_path,
                       {"workloads/gen.py": TestSetIteration.POSITIVE})
        bl = tmp_path / "baseline.json"
        run_lint([pkg], baseline=bl, update_baseline=True)
        shifted = "\n\n" + TestSetIteration.POSITIVE
        (pkg / "workloads" / "gen.py").write_text(shifted)
        report = run_lint([pkg], baseline=bl)
        assert report.exit_code == 0

    def test_no_baseline_reports_everything(self, tmp_path):
        pkg = make_pkg(tmp_path,
                       {"workloads/gen.py": TestSetIteration.POSITIVE})
        bl = tmp_path / "baseline.json"
        run_lint([pkg], baseline=bl, update_baseline=True)
        report = run_lint([pkg], baseline=bl, use_baseline=False)
        assert report.exit_code == 1


class TestReporters:
    def test_json_payload(self, tmp_path):
        pkg = make_pkg(tmp_path,
                       {"workloads/gen.py": TestSetIteration.POSITIVE})
        report = run_lint([pkg], use_baseline=False)
        payload = json.loads(render_json(report.findings, report.files))
        assert payload["files"] == report.files
        assert payload["counts"]["error"] == 1
        assert payload["clean"] is False
        (entry,) = [f for f in payload["findings"]
                    if f["rule"] == "DET001"]
        assert entry["line"] == 4 and entry["severity"] == "error"

    def test_pretty_lists_rule_and_location(self, tmp_path):
        pkg = make_pkg(tmp_path,
                       {"workloads/gen.py": TestSetIteration.POSITIVE})
        report = run_lint([pkg], use_baseline=False)
        text = render_pretty(report.findings, report.files)
        assert "DET001" in text and "gen.py:4" in text
        assert "error" in text

    def test_rule_filter(self, tmp_path):
        pkg = make_pkg(tmp_path, {
            "workloads/gen.py": TestSetIteration.POSITIVE,
            "sim/probe.py": "def publish(m):\n"
                            "    m.counter(\"packts.CMD\").add(1)\n",
        })
        report = run_lint([pkg], use_baseline=False, rules=["PROTO002"])
        assert {f.rule for f in report.findings} == {"PROTO002"}


# ---------------------------------------------------------------------------
# the shipped tree
# ---------------------------------------------------------------------------

class TestShippedTree:
    def test_rule_table_is_consistent(self):
        ids = [r.id for r in ALL_RULES]
        assert len(ids) == len(set(ids))
        assert all(r.severity in ("error", "warning", "info")
                   for r in ALL_RULES)

    def test_src_repro_lints_clean(self):
        import pathlib
        root = pathlib.Path(__file__).resolve().parent.parent
        report = run_lint([root / "src" / "repro"],
                          baseline=root / ".repro-lint-baseline.json")
        assert report.exit_code == 0, render_pretty(report.findings,
                                                    report.files)

    def test_real_contracts_parse(self):
        import pathlib
        root = pathlib.Path(__file__).resolve().parent.parent
        proj = Project.from_package(root / "src" / "repro")
        assert "offload_cmd" in proj.packet_fault_sites
        assert "mem_net" in proj.packet_sites
        assert proj.metric_known("sm.live_warps")
        assert proj.metric_known("packets.offload_cmd")
        assert not proj.metric_known("packts.CMD")
        assert "workload" in proj.run_request_fields


class TestMetricReceiverNaming:
    """PROTO004 (the enforced receiver-naming convention) and the
    annotation-aware receiver resolution that replaced PROTO002's old
    name-list heuristic."""

    BAD_EMIT = "    {recv}.counter(\"packts.CMD\").add(1)\n"

    def test_conventional_bindings_are_clean(self, tmp_path):
        src = ("from repro.sim.metrics import MetricsRegistry\n"
               "m = MetricsRegistry()\n"
               "metrics = MetricsRegistry()\n"
               "registry = MetricsRegistry()\n"
               "run_metrics = MetricsRegistry()\n"
               "shard_registry = MetricsRegistry()\n")
        assert not by_rule(lint_pkg(tmp_path, {"serve/wire.py": src}),
                           "PROTO004")

    def test_assignment_to_unconventional_name_flagged(self, tmp_path):
        src = "tracker = MetricsRegistry()\n"
        hits = by_rule(lint_pkg(tmp_path, {"serve/wire.py": src}),
                       "PROTO004")
        assert len(hits) == 1
        assert "tracker" in hits[0].message
        assert hits[0].severity == "error"

    def test_annotated_param_flagged(self, tmp_path):
        src = ("def attach(tracker: MetricsRegistry):\n"
               "    return tracker\n")
        hits = by_rule(lint_pkg(tmp_path, {"serve/wire.py": src}),
                       "PROTO004")
        assert len(hits) == 1
        assert "tracker" in hits[0].message

    def test_annotated_attribute_flagged(self, tmp_path):
        src = ("class Daemon:\n"
               "    def __init__(self):\n"
               "        self.tracker: MetricsRegistry = MetricsRegistry()\n")
        hits = by_rule(lint_pkg(tmp_path, {"serve/wire.py": src}),
                       "PROTO004")
        assert len(hits) == 1
        assert "tracker" in hits[0].message

    def test_optional_and_forward_ref_annotations_recognized(self, tmp_path):
        src = ("def a(tracker: MetricsRegistry | None):\n"
               "    return tracker\n"
               "def b(keeper: \"MetricsRegistry\"):\n"
               "    return keeper\n")
        hits = by_rule(lint_pkg(tmp_path, {"serve/wire.py": src}),
                       "PROTO004")
        assert {h.message.split("'")[1] for h in hits} \
            == {"tracker", "keeper"}

    def test_proto002_follows_annotated_receiver(self, tmp_path):
        # Even before the rename PROTO004 demands, PROTO002 must see the
        # bad metric name through the annotated binding.
        src = ("def publish(tracker: MetricsRegistry):\n"
               + self.BAD_EMIT.format(recv="tracker"))
        hits = by_rule(lint_pkg(tmp_path, {"sim/probe.py": src}),
                       "PROTO002")
        assert len(hits) == 1
        assert "packts.CMD" in hits[0].message

    def test_proto002_follows_constructed_receiver(self, tmp_path):
        src = ("def publish():\n"
               "    tracker = MetricsRegistry()\n"
               + self.BAD_EMIT.format(recv="tracker"))
        hits = by_rule(lint_pkg(tmp_path, {"sim/probe.py": src}),
                       "PROTO002")
        assert len(hits) == 1

    def test_proto002_follows_suffix_convention(self, tmp_path):
        src = ("def publish(shard_metrics):\n"
               + self.BAD_EMIT.format(recv="shard_metrics"))
        hits = by_rule(lint_pkg(tmp_path, {"sim/probe.py": src}),
                       "PROTO002")
        assert len(hits) == 1

    def test_unrecognizable_receiver_stands_down(self, tmp_path):
        # An unannotated, unconventionally named parameter is invisible
        # to PROTO002 by design -- PROTO004 outlaws creating such a
        # binding, which is what keeps this gate sound.
        src = ("def publish(thing):\n"
               + self.BAD_EMIT.format(recv="thing"))
        assert not by_rule(lint_pkg(tmp_path, {"sim/probe.py": src}),
                           "PROTO002")
