"""Unit tests for the shared address-pattern helpers
(repro.workloads.patterns)."""

import numpy as np
import pytest

from repro.config import WORD_SIZE
from repro.gpu.coalescer import coalesce
from repro.workloads.base import ArrayLayout, MemCtx, Scale
from repro.workloads.patterns import (
    blocked_reuse,
    broadcast,
    hot_struct,
    indirect_divergent,
    stencil_3x3,
    streaming,
    strided,
)


def mk_ctx(warp=0, it=0, seed=0):
    return MemCtx(warp=warp, it=it, lanes=np.arange(32, dtype=np.int64),
                  rng=np.random.default_rng(seed),
                  scale=Scale("t", 8, 4))


@pytest.fixture
def arrays():
    a = ArrayLayout()
    a.add("A", 1 << 20)
    a.add("B", 68)          # BPROP-style constant struct
    a.add("C", 512 * WORD_SIZE)
    return a


class TestStreaming:
    def test_consecutive_and_coalesced(self, arrays):
        addrs = streaming(arrays, "A", mk_ctx())
        assert np.array_equal(np.diff(addrs),
                              np.full(31, WORD_SIZE))
        (acc,) = coalesce(addrs)
        assert acc.words == 32 and not acc.irregular

    def test_iterations_advance(self, arrays):
        a0 = streaming(arrays, "A", mk_ctx(it=0))
        a1 = streaming(arrays, "A", mk_ctx(it=1))
        assert a1[0] == a0[0] + 32 * WORD_SIZE

    def test_warps_disjoint(self, arrays):
        w0 = set(streaming(arrays, "A", mk_ctx(warp=0)).tolist())
        w1 = set(streaming(arrays, "A", mk_ctx(warp=1)).tolist())
        assert not w0 & w1


class TestHotStruct:
    def test_same_every_iteration(self, arrays):
        a0 = hot_struct(arrays, "B", mk_ctx(it=0), 17)
        a1 = hot_struct(arrays, "B", mk_ctx(warp=3, it=2), 17)
        assert np.array_equal(a0, a1)

    def test_fits_in_struct(self, arrays):
        addrs = hot_struct(arrays, "B", mk_ctx(), 17)
        assert addrs.max() < arrays.base("B") + 68


class TestBroadcast:
    def test_single_word(self, arrays):
        addrs = broadcast(arrays, "C", mk_ctx(), 512)
        assert np.unique(addrs).size == 1
        (acc,) = coalesce(addrs)
        assert acc.words == 1


class TestIndirect:
    def test_divergent_many_lines(self, arrays):
        addrs = indirect_divergent(arrays, "A", mk_ctx())
        accs = coalesce(addrs)
        assert len(accs) > 8
        assert all(a.words <= 4 for a in accs)

    def test_rng_driven(self, arrays):
        a = indirect_divergent(arrays, "A", mk_ctx(seed=1))
        b = indirect_divergent(arrays, "A", mk_ctx(seed=2))
        assert not np.array_equal(a, b)


class TestStencil:
    def test_neighbor_offset_applied(self, arrays):
        # warp 1 so the -1 neighbour doesn't wrap at the array start.
        center = stencil_3x3(arrays, "A", mk_ctx(warp=1), 0, 64)
        left = stencil_3x3(arrays, "A", mk_ctx(warp=1), -1, 64)
        assert np.array_equal(center - left, np.full(32, WORD_SIZE))

    def test_wraps_at_array_end(self, arrays):
        ctx = mk_ctx(warp=7, it=3)
        addrs = stencil_3x3(arrays, "A", ctx, 64 + 1, 64)
        assert addrs.max() < arrays.base("A") + arrays.size("A")


class TestBlockedReuse:
    def test_stays_in_block(self, arrays):
        for warp in range(6):
            addrs = blocked_reuse(arrays, "C", mk_ctx(warp=warp), 512)
            assert addrs.max() < arrays.base("C") + 512 * WORD_SIZE


class TestStrided:
    def test_stride_in_words(self, arrays):
        addrs = strided(arrays, "A", mk_ctx(), stride_words=64)
        assert np.all(np.diff(addrs) == 64 * WORD_SIZE)


class TestArrayLayout:
    def test_disjoint_regions(self):
        a = ArrayLayout()
        a.add("x", 100)
        a.add("y", 100)
        assert abs(a.base("x") - a.base("y")) >= ArrayLayout.REGION

    def test_duplicate_rejected(self):
        a = ArrayLayout()
        a.add("x", 8)
        with pytest.raises(ValueError):
            a.add("x", 8)

    def test_element_wraps_modulo_size(self):
        a = ArrayLayout()
        a.add("x", 40)
        assert a.element("x", 10) == a.base("x")   # 10*4 % 40 == 0
