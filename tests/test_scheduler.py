"""Tests for the warp-scheduler policies (GTO vs loose round-robin)."""

import dataclasses

import pytest

from repro.config import ci_config

from repro.gpu.sm import SM
from repro.gpu.trace import DynInstr
from repro.isa import alu
from repro.sim.engine import Engine
from repro.sim.runner import run_workload

class RecordingMemSys:
    def __init__(self, engine, latency=10):
        self.engine = engine
        self.latency = latency

    def load(self, sm, access, on_done):
        self.engine.after(self.latency, on_done)
        return True

    def store(self, sm, access):
        return True

def mk_sm(engine, scheduler):
    return SM(engine, 0, warps_per_sm=4, alu_latency=4,
              max_inflight_loads=4, memsys=RecordingMemSys(engine),
              scheduler=scheduler)

def drive(engine, sm, record):
    while not sm.done and engine.now < 10_000:
        engine.process_due()
        before = {w.wid: w.instrs_retired for w in sm.warps}
        sm.tick()
        for w in sm.warps:
            if w.instrs_retired > before.get(w.wid, 0):
                record.append(w.wid)
        engine.now += 1

def alu_trace(n=8):
    return [DynInstr(alu(100 + i, 0)) for i in range(n)]

class TestPolicies:
    def test_invalid_scheduler_rejected(self):
        with pytest.raises(ValueError):
            mk_sm(Engine(), "magic")

    def test_gto_runs_one_warp_greedily(self):
        e = Engine()
        sm = mk_sm(e, "gto")
        sm.assign([alu_trace(), alu_trace()])
        order = []
        drive(e, sm, order)
        # GTO: long runs of the same warp id.
        runs = sum(1 for a, b in zip(order, order[1:]) if a != b)
        assert runs <= 3

    def test_lrr_interleaves_warps(self):
        e = Engine()
        sm = mk_sm(e, "lrr")
        sm.assign([alu_trace(), alu_trace()])
        order = []
        drive(e, sm, order)
        switches = sum(1 for a, b in zip(order, order[1:]) if a != b)
        # Round robin: switch nearly every issue.
        assert switches >= len(order) // 2

    def test_both_complete_same_work(self):
        for sched in ("gto", "lrr"):
            e = Engine()
            sm = mk_sm(e, sched)
            sm.assign([alu_trace(), alu_trace(), alu_trace()])
            drive(e, sm, [])
            assert sm.warps_completed == 3
            assert sm.instructions == 24

class TestEndToEnd:
    def test_scheduler_config_flows_through(self):
        base = ci_config()
        lrr = dataclasses.replace(
            base, gpu=dataclasses.replace(base.gpu, scheduler="lrr"))
        r_gto = run_workload("VADD", "Baseline", base=base, scale="ci")
        r_lrr = run_workload("VADD", "Baseline", base=lrr, scale="ci")
        # Same work either way; timing may differ.
        assert r_gto.instructions == r_lrr.instructions
        assert r_gto.warps_completed == r_lrr.warps_completed
