"""Tests for the assembly front-end (repro.isa.asm)."""

import pytest

from repro.isa import Opcode, analyze_kernel
from repro.isa.asm import AsmError, SFU_OPS, assemble, disassemble

VADD = """
.kernel vadd
.block body
    ld   r4, [A + r0]
    ld   r5, [B + r1]
    add  r6, r4, r5
    add  r10, r2, r3
    st   [C + r10], r6
"""


class TestAssemble:
    def test_vadd_structure(self):
        k = assemble(VADD)
        assert k.name == "vadd"
        assert len(k.blocks) == 1
        ops = [i.op for i in k.blocks[0]]
        assert ops == [Opcode.LD, Opcode.LD, Opcode.ALU, Opcode.ALU,
                       Opcode.ST]

    def test_vadd_analyzes_like_handwritten(self):
        ak = analyze_kernel(assemble(VADD))
        assert ak.nsu_body_lengths == [4]

    def test_indirect_and_dtype_suffixes(self):
        k = assemble(""".kernel k
.block b
    ld.ind r5, [B + r4]
    ld.b8  r6, [C + r1]
""")
        a, b = k.blocks[0].instrs
        assert a.indirect and a.dtype_bytes == 4
        assert not b.indirect and b.dtype_bytes == 8

    def test_sfu_mnemonics(self):
        for m in SFU_OPS:
            k = assemble(f".kernel k\n.block b\n    {m} r1, r0\n")
            assert k.blocks[0].instrs[0].op is Opcode.SFU

    def test_generic_alu_keeps_tag(self):
        k = assemble(".kernel k\n.block b\n    fma r3, r1, r2, r0\n")
        i = k.blocks[0].instrs[0]
        assert i.op is Opcode.ALU
        assert i.tag == "fma"
        assert i.srcs == (1, 2, 0)

    def test_shared_memory_and_sync(self):
        k = assemble(""".kernel k
.block b
    shld r1, r0
    shst r1, r2
    sync
""")
        ops = [i.op for i in k.blocks[0]]
        assert ops == [Opcode.SHMEM_LD, Opcode.SHMEM_ST, Opcode.SYNC]

    def test_branch_terminal(self):
        k = assemble(".kernel k\n.block b\n    add r1, r0\n    bra r1\n")
        assert k.blocks[0].instrs[-1].op is Opcode.BRANCH

    def test_live_out_directive(self):
        k = assemble(".kernel k\n.live_out r7 r9\n.block b\n    add r7, r0\n")
        assert k.live_out == {7, 9}

    def test_comments_and_blank_lines(self):
        k = assemble("""
# header comment
.kernel k
.block b
    add r1, r0   # trailing comment

""")
        assert len(k.blocks[0]) == 1

    def test_multiple_blocks(self):
        k = assemble(""".kernel k
.block first
    add r1, r0
.block second
    add r2, r1
""")
        assert [b.label for b in k.blocks] == ["first", "second"]


class TestErrors:
    @pytest.mark.parametrize("bad, msg", [
        ("", "empty"),
        (".kernel\n", ".kernel"),
        (".kernel k\n.block b\n    ld r4\n", "ld needs"),
        (".kernel k\n.block b\n    ld r4, [A - r0]\n", "array"),
        (".kernel k\n.block b\n    st [A + r0]\n", "st needs"),
        (".kernel k\n.block b\n    add x1, r0\n", "register"),
        (".kernel k\n.block b\n    bra r1, r2\n", "at most one"),
        (".kernel k\n.weird\n.block b\n    add r1, r0\n", "directive"),
    ])
    def test_parse_errors(self, bad, msg):
        with pytest.raises(AsmError) as e:
            assemble(bad)
        assert msg.lower() in str(e.value).lower()

    def test_error_carries_line_number(self):
        with pytest.raises(AsmError) as e:
            assemble(".kernel k\n.block b\n    ld r4\n")
        assert e.value.lineno == 3


class TestRoundTrip:
    def test_vadd_round_trip(self):
        k1 = assemble(VADD)
        text = disassemble(k1)
        k2 = assemble(text)
        assert disassemble(k2) == text
        assert [i.op for i in k1.all_instrs()] == \
            [i.op for i in k2.all_instrs()]

    def test_workload_kernels_round_trip(self):
        from repro.workloads import get_workload, workload_names

        for name in workload_names():
            k1 = get_workload(name).kernel()
            k2 = assemble(disassemble(k1))
            assert k1.num_instrs == k2.num_instrs, name
            assert [i.op for i in k1.all_instrs()] == \
                [i.op for i in k2.all_instrs()], name
            # The analyzer must extract identical blocks either way.
            a1 = analyze_kernel(k1)
            a2 = analyze_kernel(k2)
            assert a1.nsu_body_lengths == a2.nsu_body_lengths, name
