"""Unit tests for the SM issue engine against a scriptable fake memory
system (no caches/DRAM -- pure latency/reject control)."""

from repro.gpu.coalescer import MemAccess
from repro.gpu.sm import SM
from repro.gpu.trace import DynInstr

from repro.isa import alu, ld, sfu, st
from repro.sim.engine import Engine

class FakeMemSys:
    """Loads complete after a fixed latency; optional reject budget."""

    def __init__(self, engine, latency=10, rejects=0):
        self.engine = engine
        self.latency = latency
        self.rejects = rejects
        self.loads = []
        self.stores = []

    def load(self, sm, access, on_done):
        if self.rejects > 0:
            self.rejects -= 1
            return False
        self.loads.append(access)
        self.engine.after(self.latency, on_done)
        return True

    def store(self, sm, access):
        if self.rejects > 0:
            self.rejects -= 1
            return False
        self.stores.append(access)
        return True

def acc(line=0, words=32):
    return MemAccess(line, words, False)

def mk_sm(engine, **kw):
    mem = FakeMemSys(engine, **kw)
    sm = SM(engine, 0, warps_per_sm=4, alu_latency=4,
            max_inflight_loads=2, memsys=mem)
    return sm, mem

def drive(engine, sm, max_cycles=10_000):
    while not sm.done and engine.now < max_cycles:
        engine.process_due()
        sm.tick()
        engine.now += 1
    assert sm.done, "SM did not finish"

class TestBasicIssue:
    def test_alu_chain_respects_latency(self):
        e = Engine()
        sm, _ = mk_sm(e)
        trace = [DynInstr(alu(1, 0)), DynInstr(alu(2, 1)),
                 DynInstr(alu(3, 2))]
        sm.assign([trace])
        drive(e, sm)
        # 3 dependent ALUs at latency 4: at least 2 * 4 cycles of
        # dependency stalls.
        assert sm.stalls.dependency_stall >= 6
        assert sm.instructions == 3

    def test_independent_alus_pipeline(self):
        e = Engine()
        sm, _ = mk_sm(e)
        trace = [DynInstr(alu(i, 0)) for i in range(1, 9)]
        sm.assign([trace])
        drive(e, sm)
        assert sm.stalls.dependency_stall == 0

    def test_load_use_stall(self):
        e = Engine()
        sm, mem = mk_sm(e, latency=50)
        trace = [DynInstr(ld(1, 0, "A"), (acc(),)), DynInstr(alu(2, 1))]
        sm.assign([trace])
        drive(e, sm)
        assert sm.stalls.dependency_stall >= 45
        assert len(mem.loads) == 1

    def test_independent_loads_overlap(self):
        e = Engine()
        sm, mem = mk_sm(e, latency=100)
        trace = [DynInstr(ld(1, 0, "A"), (acc(0),)),
                 DynInstr(ld(2, 0, "B"), (acc(1),)),
                 DynInstr(alu(3, 1, 2))]
        sm.assign([trace])
        drive(e, sm)
        # Both loads issue back-to-back; total runtime ~ one latency.
        assert e.now < 180

    def test_max_inflight_loads_enforced(self):
        e = Engine()
        sm, mem = mk_sm(e, latency=200)
        trace = [DynInstr(ld(i, 0, "A"), (acc(i),)) for i in range(1, 5)]
        sm.assign([trace])
        drive(e, sm)
        # max 2 in flight: the third load structurally stalls.
        assert sm.stalls.exec_unit_busy > 0

    def test_store_reads_data_register(self):
        e = Engine()
        sm, mem = mk_sm(e, latency=30)
        trace = [DynInstr(ld(1, 0, "A"), (acc(),)),
                 DynInstr(st(1, 2, "B"), (acc(5),))]
        sm.assign([trace])
        drive(e, sm)
        assert len(mem.stores) == 1
        # The store waited for the load's 30-cycle latency.
        assert sm.stalls.dependency_stall >= 25

    def test_sfu_slower_than_alu(self):
        e = Engine()
        sm1, _ = mk_sm(e)
        trace = [DynInstr(sfu(1, 0)), DynInstr(alu(2, 1))]
        sm1.assign([trace])
        drive(e, sm1)
        assert sm1.stalls.dependency_stall >= 12

class TestStructuralReplay:
    def test_rejected_load_retries_and_completes(self):
        e = Engine()
        sm, mem = mk_sm(e, latency=10, rejects=3)
        trace = [DynInstr(ld(1, 0, "A"), (acc(),)), DynInstr(alu(2, 1))]
        sm.assign([trace])
        drive(e, sm)
        assert len(mem.loads) == 1
        assert sm.stalls.exec_unit_busy >= 3
        assert sm.instructions == 2

    def test_divergent_load_partial_reject_no_duplicates(self):
        e = Engine()
        sm, mem = mk_sm(e, latency=10, rejects=2)
        accesses = tuple(acc(i, 1) for i in range(4))
        trace = [DynInstr(ld(1, 0, "A"), accesses), DynInstr(alu(2, 1))]
        sm.assign([trace])
        drive(e, sm)
        # All 4 lines requested exactly once despite mid-way rejects.
        assert sorted(a.line_addr for a in mem.loads) == [0, 1, 2, 3]

    def test_store_partial_reject_no_duplicates(self):
        e = Engine()
        sm, mem = mk_sm(e, latency=10, rejects=2)
        accesses = tuple(acc(i, 1) for i in range(4))
        trace = [DynInstr(st(9, 0, "A"), accesses)]
        sm.assign([trace])
        drive(e, sm)
        assert sorted(a.line_addr for a in mem.stores) == [0, 1, 2, 3]

class TestSchedulingAndOccupancy:
    def test_warp_slots_limit_concurrency(self):
        e = Engine()
        sm, mem = mk_sm(e, latency=20)
        traces = [[DynInstr(ld(1, 0, "A"), (acc(i),)), DynInstr(alu(2, 1))]
                  for i in range(10)]
        sm.assign(traces)
        assert len(sm.pending_traces) == 10
        sm.tick()
        assert sm.live_warps == 4    # warps_per_sm
        drive(e, sm)
        assert sm.warps_completed == 10

    def test_latency_hiding_across_warps(self):
        e = Engine()
        # One warp: load + dependent ALU = exposed latency.  Four warps:
        # the SM switches while each waits (the GPU's whole point).
        sm1, _ = mk_sm(e, latency=40)
        sm1.assign([[DynInstr(ld(1, 0, "A"), (acc(),)), DynInstr(alu(2, 1))]])
        drive(e, sm1)
        single = e.now

        e2 = Engine()
        sm4, _ = mk_sm(e2, latency=40)
        sm4.assign([[DynInstr(ld(1, 0, "A"), (acc(i),)), DynInstr(alu(2, 1))]
                    for i in range(4)])
        drive(e2, sm4)
        quad = e2.now
        assert quad < 4 * single * 0.5

    def test_classification_priority(self):
        e = Engine()
        sm, _ = mk_sm(e)
        # No warps at all: a drained SM adds nothing.
        sm.tick()
        assert sm.stalls.total == 0
