"""NSU-side NDP buffers (paper Section 4.1.2).

The read-data buffer holds, per outstanding load instruction, the words
delivered by RDF response packets; an entry is complete when every word the
GPU's coalescer promised has arrived (the paper merges multiple RDF
responses into one entry via the active-thread mask).  The write-address
buffer holds the WTA packets' coalesced line addresses for each store
instruction.  Both are keyed by (offload instance, sequence number), the
offload packet ID of Figure 4.

Capacity is enforced by construction: the GPU-side credit manager never
lets more entries be outstanding than the buffer holds, and these classes
assert that invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.coalescer import MemAccess


@dataclass
class ReadEntry:
    """One read-data buffer entry (one load instruction of one instance)."""

    expected_words: int | None = None   # None until the GPU generated RDFs
    arrived_words: int = 0
    arrived_packets: int = 0

    @property
    def complete(self) -> bool:
        return (self.expected_words is not None
                and self.arrived_words >= self.expected_words)


class ReadDataBuffer:
    """Read-data buffer of one NSU."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: dict[tuple, ReadEntry] = {}
        self.peak = 0

    def _entry(self, key: tuple) -> ReadEntry:
        e = self._entries.get(key)
        if e is None:
            if len(self._entries) >= self.capacity:
                raise AssertionError(
                    "read-data buffer overflow: credit management must "
                    "prevent this (Section 4.3)")
            e = ReadEntry()
            self._entries[key] = e
            self.peak = max(self.peak, len(self._entries))
        return e

    def expect(self, key: tuple, words: int) -> None:
        """GPU-side RDF generation announced the total words for a load."""
        e = self._entry(key)
        if e.expected_words is not None:
            raise AssertionError(f"duplicate expectation for {key}")
        e.expected_words = words

    def deliver(self, key: tuple, words: int) -> bool:
        """An RDF response arrived; returns True if the entry is complete."""
        e = self._entry(key)
        e.arrived_words += words
        e.arrived_packets += 1
        return e.complete

    def is_complete(self, key: tuple) -> bool:
        e = self._entries.get(key)
        return e is not None and e.complete

    def consume(self, key: tuple) -> ReadEntry:
        """The NSU load instruction reads and frees the entry."""
        e = self._entries.pop(key, None)
        if e is None or not e.complete:
            raise AssertionError(f"consuming incomplete read entry {key}")
        return e

    def purge_uid(self, uid) -> int:
        """Drop every entry of one offload instance (recovery abort).
        Returns the number of entries removed."""
        keys = [k for k in self._entries if k[0] == uid]
        for k in keys:
            del self._entries[k]
        return len(keys)

    def __len__(self) -> int:
        return len(self._entries)


class WriteAddressBuffer:
    """Write-address buffer of one NSU."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: dict[tuple, tuple[MemAccess, ...]] = {}
        self.peak = 0

    def deliver(self, key: tuple, accesses: tuple[MemAccess, ...]) -> None:
        if key in self._entries:
            raise AssertionError(f"duplicate WTA entry {key}")
        if len(self._entries) >= self.capacity:
            raise AssertionError(
                "write-address buffer overflow: credit management must "
                "prevent this (Section 4.3)")
        self._entries[key] = accesses
        self.peak = max(self.peak, len(self._entries))

    def has(self, key: tuple) -> bool:
        return key in self._entries

    def consume(self, key: tuple) -> tuple[MemAccess, ...]:
        """The NSU store instruction reads and frees the entry."""
        accesses = self._entries.pop(key, None)
        if accesses is None:
            raise AssertionError(f"consuming missing WTA entry {key}")
        return accesses

    def purge_uid(self, uid) -> list[MemAccess]:
        """Drop every entry of one offload instance (recovery abort).
        Returns the purged accesses so the controller can unwind its
        in-flight WTA counters."""
        out: list[MemAccess] = []
        for k in [k for k in self._entries if k[0] == uid]:
            out.extend(self._entries.pop(k))
        return out

    def __len__(self) -> int:
        return len(self._entries)
