"""Coherence & dynamic memory management helpers (Sections 4.2 and 4.1.1).

The invalidation mechanism itself lives in
:class:`~repro.core.offload.NDPController` (vault write -> INV packet ->
:meth:`~repro.sim.memsys.GPUMemSystem.invalidate`); this module adds the
page-swap guard the paper describes for dynamic memory management: before a
newly mapped page on an HMC may be written, all in-flight WTA packets to
that HMC must drain, while accesses to other stacks proceed unimpeded.  The
drain latency hides under the tens-of-microseconds external page fetch
(NVLink/PCIe).
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Engine

#: External page-fetch latency in SM cycles: ~20 us at 700 MHz (the paper
#: cites "tens of microseconds" for NVLink/PCIe page migration).
PAGE_FETCH_LATENCY = 14_000


class PageMigrationGuard:
    """Serializes a page swap-in against in-flight NDP writes (Section 4.1.1)."""

    def __init__(self, engine: Engine, controller) -> None:
        self.engine = engine
        self.controller = controller
        self.swaps = 0
        self.stalled_swaps = 0

    def swap_in_page(self, hmc: int, on_ready: Callable[[], None],
                     fetch_latency: int = PAGE_FETCH_LATENCY) -> None:
        """Swap a page into ``hmc``: fetch it over the external interface
        and, in parallel, wait for the stack's WTA packets to drain; the
        page becomes writable when both have happened."""
        self.swaps += 1
        state = {"fetched": False, "drained": False}
        if not self.controller.can_swap_page_now(hmc):
            self.stalled_swaps += 1

        def check() -> None:
            if state["fetched"] and state["drained"]:
                on_ready()

        def fetched() -> None:
            state["fetched"] = True
            check()

        def drained() -> None:
            state["drained"] = True
            check()

        self.engine.after(fetch_latency, fetched)
        self.controller.wait_for_wta_drain(hmc, drained)
