"""Offload decision policies (paper Sections 6, 7.1, 7.2, 7.3).

* :class:`NeverOffload` -- the baseline.
* :class:`AlwaysOffload` -- the naive mechanism of Section 6.
* :class:`StaticRatioDecider` -- Section 7.1: each block instance is
  offloaded with a fixed probability.
* :class:`HillClimbingController` -- Algorithm 1: an epoch-based hill
  climber with adaptive step size that tracks the offload ratio maximizing
  the throughput of offload-block instructions.
* :class:`CacheLocalityTracker` -- Section 7.3: per-static-block RDF cache
  statistics used to suppress blocks whose cache locality makes offloading
  a net loss.
* :class:`DynamicDecider` -- combines the hill climber with (optionally)
  the cache-locality filter: NDP(Dyn) and NDP(Dyn)_Cache.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.config import LINE_SIZE, NDPConfig, REG_SIZE, WORD_SIZE


class NeverOffload:
    """Baseline: no block instance is ever offloaded."""

    def decide(self, sm_id: int, dynblock) -> bool:
        return False


class AlwaysOffload:
    """Naive NDP (Section 6): every block instance is offloaded."""

    def decide(self, sm_id: int, dynblock) -> bool:
        return True


class StaticRatioDecider:
    """Offload each block instance with fixed probability ``ratio``.

    The paper's static study makes the decision "randomly to meet the
    given offload ratio" because the decision logic cannot know a block
    instance's impact before executing it (Section 7.1).
    """

    def __init__(self, ratio: float, seed: int = 1) -> None:
        if not 0.0 <= ratio <= 1.0:
            raise ValueError("ratio must be in [0, 1]")
        self.ratio = ratio
        self._rng = np.random.default_rng(seed)

    def decide(self, sm_id: int, dynblock) -> bool:
        if self.ratio >= 1.0:
            return True
        if self.ratio <= 0.0:
            return False
        return bool(self._rng.random() < self.ratio)


class HillClimbingController:
    """Algorithm 1: dynamic offload-ratio decision via hill climbing.

    Call :meth:`end_epoch` with the epoch's average IPC of offload-block
    instructions; it updates :attr:`ratio` for the next epoch.  The step
    size adapts to the recent direction-change history: oscillation
    (frequent reversals) shrinks the step, a consistent climb grows it,
    both clamped to [step_min, step_max].
    """

    #: Epochs whose IPC sample is recorded but not compared: the first
    #: epoch blends cold caches and warp launch, which would otherwise
    #: feed Algorithm 1 a spurious "got worse" signal on short runs.
    WARMUP_EPOCHS = 1

    def __init__(self, cfg: NDPConfig) -> None:
        self.cfg = cfg
        self.ratio = cfg.ratio_init
        self.step = cfg.step_init
        self.direction = +1
        self.prev_ipc: float | None = None
        self.history: deque[bool] = deque(maxlen=cfg.history_window)
        self.epochs = 0

    def end_epoch(self, cur_avg_ipc: float) -> float:
        """Apply one Algorithm 1 update; returns the new ratio."""
        self.epochs += 1
        cfg = self.cfg
        if self.epochs <= self.WARMUP_EPOCHS:
            return self.ratio
        if self.prev_ipc is not None:
            if cur_avg_ipc < self.prev_ipc:
                self.direction *= -1          # reverse if getting worse
                self.history.append(True)
            else:
                self.history.append(False)
            n_changes = sum(self.history)
            if (n_changes > cfg.history_window / 2
                    and self.step > cfg.step_min):
                self.step = max(cfg.step_min, self.step - cfg.step_unit)
            elif self.step < cfg.step_max:
                self.step = min(cfg.step_max, self.step + cfg.step_unit)
            if cfg.step_unit <= self.ratio <= 1.0 - cfg.step_unit:
                self.ratio += self.direction * self.step
            else:
                # At a boundary the paper's guard freezes the ratio; we
                # nudge it inward by one step unit (and point the climb
                # direction inward) so the climber re-enters the legal
                # band instead of deadlocking against the wall.
                inward = +1 if self.ratio < cfg.step_unit else -1
                self.direction = inward
                self.ratio += inward * cfg.step_unit
            self.ratio = min(1.0, max(0.0, self.ratio))
        self.prev_ipc = cur_avg_ipc
        return self.ratio


@dataclass
class _BlockCacheStats:
    instances: int = 0
    rdf_packets: int = 0
    rdf_hits: int = 0

    @property
    def avg_num_cache_lines(self) -> float:
        return self.rdf_packets / self.instances if self.instances else 0.0

    @property
    def avg_miss_rate(self) -> float:
        if not self.rdf_packets:
            return 1.0
        return 1.0 - self.rdf_hits / self.rdf_packets


class CacheLocalityTracker:
    """Runtime RDF cache statistics per static offload block (Section 7.3).

    ``paper_benefit`` implements the paper's published Benefit equation
    verbatim.  The *suppression score* additionally charges the cost of
    re-shipping cache-*hitting* data from the GPU to the NSU: a line that
    hits in the GPU caches costs the baseline no off-chip traffic at all,
    but under NDP its RDF response still crosses a GPU link (this is
    exactly why BPROP and STN lose, Section 7.1), so net benefit must
    subtract it.  DESIGN.md documents this as a corrected-accounting
    substitution.
    """

    def __init__(self, simd_width: int = 32, min_instances: int = 8) -> None:
        self.simd_width = simd_width
        self.min_instances = min_instances
        self._stats: dict[int, _BlockCacheStats] = {}

    def record_instance(self, block_id: int, rdf_packets: int,
                        rdf_hits: int) -> None:
        s = self._stats.setdefault(block_id, _BlockCacheStats())
        s.instances += 1
        s.rdf_packets += rdf_packets
        s.rdf_hits += rdf_hits

    def stats(self, block_id: int) -> _BlockCacheStats:
        return self._stats.setdefault(block_id, _BlockCacheStats())

    def paper_benefit(self, block) -> float:
        """The Section 7.3 Benefit equation, as published."""
        s = self.stats(block.block_id)
        load_term = (math.ceil(s.avg_num_cache_lines * s.avg_miss_rate)
                     * LINE_SIZE * self.simd_width)
        store_term = block.num_stores * WORD_SIZE * self.simd_width
        return float(load_term + store_term)

    def score(self, block) -> float:
        """Suppression score: net GPU-link traffic change of offloading.

        Positive -> offloading reduces GPU off-chip traffic -> allowed.
        """
        s = self.stats(block.block_id)
        avg_lines = s.avg_num_cache_lines
        miss = s.avg_miss_rate
        # Loads: missed lines would have crossed the GPU link in the
        # baseline (full 128B line) but now flow through the memory
        # network; hit lines cost *extra* GPU-link bytes under NDP.
        load_benefit = avg_lines * miss * LINE_SIZE
        hit_cost = avg_lines * (1.0 - miss) * LINE_SIZE
        store_benefit = block.num_stores * WORD_SIZE * self.simd_width
        overhead = (len(block.send_regs) + len(block.ret_regs)) * (
            REG_SIZE * self.simd_width)
        return load_benefit + store_benefit - hit_cost - overhead

    def suppressed(self, block) -> bool:
        """True when the measured cache locality makes offloading a loss.

        Blocks without enough measured instances are never suppressed
        (the measurement must come first)."""
        s = self.stats(block.block_id)
        if s.instances < self.min_instances:
            return False
        return self.score(block) <= 0.0


class DynamicDecider:
    """NDP(Dyn) / NDP(Dyn)_Cache: hill-climbing ratio + optional filter."""

    def __init__(self, cfg: NDPConfig, *, cache_aware: bool,
                 seed: int = 1) -> None:
        self.controller = HillClimbingController(cfg)
        self.cache_aware = cache_aware
        self.tracker = CacheLocalityTracker()
        self._rng = np.random.default_rng(seed)
        self.suppressed_count = 0

    @property
    def ratio(self) -> float:
        return self.controller.ratio

    def decide(self, sm_id: int, dynblock) -> bool:
        if self.cache_aware and self.tracker.suppressed(dynblock.block):
            self.suppressed_count += 1
            return False
        r = self.controller.ratio
        if r <= 0.0:
            return False
        if r >= 1.0:
            return True
        return bool(self._rng.random() < r)

    def end_epoch(self, cur_avg_ipc: float) -> float:
        return self.controller.end_epoch(cur_avg_ipc)

    def record_instance(self, block_id: int, rdf_packets: int,
                        rdf_hits: int) -> None:
        self.tracker.record_instance(block_id, rdf_packets, rdf_hits)


def make_decider(cfg: NDPConfig, seed: int = 1):
    """Build the decider matching ``cfg.mode``."""
    from repro.config import OffloadMode

    if cfg.mode == OffloadMode.OFF:
        return NeverOffload()
    if cfg.mode == OffloadMode.NAIVE:
        return AlwaysOffload()
    if cfg.mode == OffloadMode.STATIC:
        return StaticRatioDecider(cfg.static_ratio, seed=seed)
    if cfg.mode == OffloadMode.DYNAMIC:
        return DynamicDecider(cfg, cache_aware=False, seed=seed)
    if cfg.mode == OffloadMode.DYNAMIC_CACHE:
        return DynamicDecider(cfg, cache_aware=True, seed=seed)
    raise ValueError(f"unknown offload mode {cfg.mode!r}")
