"""Offload packet formats and byte-size accounting (paper Figure 4).

Every NDP packet starts with the *offload packet ID* -- (SM id, warp id,
sequence number) -- plus routing/type fields, which we lump into the fixed
``PKT_HEADER``.  The helpers below compute wire sizes for each packet type;
the simulator charges these bytes to the links a packet traverses.

The command/ACK packets carry register context only when the offload block
has live-ins/live-outs (the shaded fields of Figure 4(a)); RDF/WTA packets
carry per-thread offsets only for misaligned accesses (Figure 4(b)); RDF
response packets carry only the words actually touched by active threads
(Figure 4(c)) -- the source of the divergence bandwidth saving of
Section 4.4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ADDR_SIZE, LINE_SIZE, PKT_HEADER, REG_SIZE, WORD_SIZE


@dataclass(frozen=True)
class OffloadPacketId:
    """Unique ID shared by all packets of one offload block instance."""

    sm_id: int
    warp_id: int
    instance: int     # per-(sm, warp) running counter

    def with_seq(self, seq: int) -> tuple["OffloadPacketId", int]:
        return (self, seq)


class PacketSizes:
    """Wire-size computation for every message class in the system."""

    #: Active-thread-mask field (32 threads -> 4 bytes).
    MASK = 4
    #: Start-PC field of the offload command packet.
    PC = 8

    # -- NDP packets (Figure 4) ------------------------------------------------

    @staticmethod
    def offload_cmd(num_send_regs: int, active_threads: int) -> int:
        """Offload command packet: header + PC + mask [+ register data]."""
        return (PKT_HEADER + PacketSizes.PC + PacketSizes.MASK
                + num_send_regs * REG_SIZE * active_threads)

    @staticmethod
    def rdf_request(irregular: bool, words: int) -> int:
        """Read-and-forward request: header + base address [+ offsets]."""
        return PKT_HEADER + ADDR_SIZE + PacketSizes.MASK + (
            words if irregular else 0)

    @staticmethod
    def wta(irregular: bool, words: int) -> int:
        """Write-address packet: same layout as an RDF request."""
        return PacketSizes.rdf_request(irregular, words)

    @staticmethod
    def rdf_response(words: int) -> int:
        """RDF response: header + only the touched words (Section 4.4)."""
        return PKT_HEADER + PacketSizes.MASK + words * WORD_SIZE

    @staticmethod
    def offload_ack(num_ret_regs: int, active_threads: int) -> int:
        """Offload acknowledgment: header [+ returned register data]."""
        return PKT_HEADER + num_ret_regs * REG_SIZE * active_threads

    @staticmethod
    def ndp_write(words: int) -> int:
        """NSU -> vault write: header + address + data words."""
        return PKT_HEADER + ADDR_SIZE + words * WORD_SIZE

    @staticmethod
    def write_ack() -> int:
        """Vault -> NSU write acknowledgment."""
        return PKT_HEADER

    @staticmethod
    def invalidation() -> int:
        """Vault -> GPU cache invalidation message (Section 4.2)."""
        return PKT_HEADER

    # -- baseline memory messages (Figure 2(a)) ---------------------------------

    @staticmethod
    def mem_read_request() -> int:
        return PKT_HEADER + ADDR_SIZE

    @staticmethod
    def mem_read_response() -> int:
        """Baseline read responses always carry the full cache line."""
        return PKT_HEADER + LINE_SIZE

    @staticmethod
    def mem_write(words: int) -> int:
        """Write-through store: header + address + written words."""
        return PKT_HEADER + ADDR_SIZE + words * WORD_SIZE


#: Which fault-injection site each packet kind traverses (the
#: ``repro.faults.plan.PACKET_SITES`` vocabulary).  GPU-sourced packets
#: ride the downstream GPU links, HMC-sourced replies ride upstream, and
#: inter-HMC forwarding rides the memory network.  ``repro lint``
#: (PROTO001) checks that every :class:`PacketSizes` method has an entry
#: here, that every entry names a real method, and that every site is a
#: declared packet site -- so a new packet kind cannot ship without
#: deciding where faults can kill it.
PACKET_FAULT_SITES = {
    "offload_cmd": "gpu_link_down",
    "rdf_request": "gpu_link_down",
    "wta": "gpu_link_down",
    "mem_read_request": "gpu_link_down",
    "mem_write": "gpu_link_down",
    "rdf_response": "mem_net",
    "ndp_write": "mem_net",
    "write_ack": "mem_net",
    "offload_ack": "gpu_link_up",
    "invalidation": "gpu_link_up",
    "mem_read_response": "gpu_link_up",
}
