"""GPU-side NDP controller: partitioned execution on the SM (Section 4.1.1).

The controller implements everything the paper adds to the GPU:

* ``OFLD.BEG``: target-NSU selection (first memory instruction's majority
  HMC), NSU buffer reservation through the credit manager, and the offload
  command packet with live-in registers;
* load instructions: RDF packet generation with a GPU cache probe -- hits
  ship the cached data to the target NSU from the GPU (no DRAM access),
  misses send the RDF to the owning HMC whose response is forwarded over
  the memory network (Figure 6(a));
* store instructions: WTA packets carrying translated addresses to the
  target NSU (Figure 6(b));
* ``OFLD.END``: parking the warp until the NSU's acknowledgment returns
  the live-out registers;
* the per-SM pending packet buffer: packets of not-yet-granted blocks wait
  on-chip, and a full buffer back-pressures the warp (ExecUnitBusy);
* NSU write routing + cache-invalidation coherence (Section 4.2) and the
  in-flight WTA counters used for dynamic memory management (Section 4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.config import LINE_SIZE, SystemConfig
from repro.core.credit import BufferCreditManager
from repro.core.packets import PacketSizes
from repro.core.target_select import first_instr_target, optimal_target
from repro.gpu.coalescer import MemAccess
from repro.sim.engine import Engine


class OffloadInstance:
    """Runtime state of one offloaded block instance."""

    __slots__ = ("uid", "sm", "warp", "item", "block", "target",
                 "granted", "deferred", "pending_packets", "next_seq",
                 "rdf_packets", "rdf_hits", "gpu_end_reached", "ack_arrived",
                 "active_threads", "start_cycle")

    def __init__(self, uid, sm, warp, item, target: int) -> None:
        self.uid = uid
        self.sm = sm
        self.warp = warp
        self.item = item
        self.block = item.block
        self.target = target
        self.granted = False
        self.deferred: list[Callable[[], None]] = []
        self.pending_packets = 0
        self.next_seq = 0
        self.rdf_packets = 0
        self.rdf_hits = 0
        self.gpu_end_reached = False
        self.ack_arrived = False
        self.active_threads = item.active_threads
        self.start_cycle = 0


@dataclass
class NDPStats:
    offloads: int = 0
    acks: int = 0
    rdf_packets: int = 0
    rdf_hits: int = 0
    wta_packets: int = 0
    ndp_writes: int = 0
    invalidations_sent: int = 0
    pending_peak: int = 0
    pending_rejects: int = 0

    def packet_counts(self) -> dict[str, int]:
        """Packet counts keyed by the MessageTrace kind names."""
        return {
            "CMD": self.offloads,
            "ACK": self.acks,
            "RDF": self.rdf_packets - self.rdf_hits,
            "RDF_HIT_RESP": self.rdf_hits,
            "WTA": self.wta_packets,
            "WRITE": self.ndp_writes,
            "INV": self.invalidations_sent,
        }


class NDPController:
    """One controller per GPU; owns the credit manager and packet plumbing."""

    def __init__(self, engine: Engine, cfg: SystemConfig, *, amap, memsys,
                 gpu_links, network, hmcs, counters, decider=None) -> None:
        self.engine = engine
        self.cfg = cfg
        self.amap = amap
        self.memsys = memsys
        self.gpu_links = gpu_links
        self.network = network
        self.hmcs = hmcs
        self.counters = counters
        self.decider = decider
        self.credits = BufferCreditManager(
            engine, cfg.num_hmcs,
            cmd_entries=cfg.nsu.cmd_buffer_entries,
            read_data_entries=cfg.nsu.read_data_entries,
            write_addr_entries=cfg.nsu.write_addr_entries)
        self.nsus: list = []               # filled by the system after build
        self.code_layout: dict[int, tuple[int, int]] = {}
        self.pending = [0] * cfg.gpu.num_sms
        self.pending_cap = cfg.sm_buffers.pending_entries
        self.wta_inflight = [0] * cfg.num_hmcs   # Section 4.1.1 page guard
        self._wta_drain_waiters: dict[int, list[Callable[[], None]]] = {}
        self.stats = NDPStats()
        self._uid_counter = 0
        # Optional packet-level tracing (repro.sim.tracing.MessageTrace).
        self.trace = None

    def metrics_snapshot(self) -> dict:
        """Counters/gauges published into the metrics registry."""
        return {
            "packets": self.stats.packet_counts(),
            "pending_total": sum(self.pending),
            "pending_peak": self.stats.pending_peak,
            "pending_rejects": self.stats.pending_rejects,
            "wta_inflight": sum(self.wta_inflight),
        }

    def set_code_layout(self, blocks) -> None:
        """Lay the NSU code for each block out in I-cache lines.

        Each NSU instruction occupies :data:`~repro.core.nsu.NSU_INSTR_BYTES`;
        blocks are padded to line granularity (Figure 11's footprint)."""
        from repro.core.nsu import NSU_INSTR_BYTES

        line = self.cfg.nsu.icache_line
        cursor = 0
        for b in blocks:
            nbytes = len(b.nsu_code) * NSU_INSTR_BYTES
            n_lines = max(1, -(-nbytes // line))
            self.code_layout[b.block_id] = (cursor, n_lines)
            cursor += n_lines

    # -- OFLD.BEG ------------------------------------------------------------

    def start_block(self, sm, warp, item) -> OffloadInstance | None:
        sm_id = sm.sm_id
        if self.pending[sm_id] + 1 > self.pending_cap:
            self.stats.pending_rejects += 1
            return None
        if self.cfg.ndp.target_policy == "optimal":
            target = optimal_target(item.mem_accesses, self.amap)
        else:
            target = first_instr_target(item.mem_accesses[0], self.amap)
        self._uid_counter += 1
        uid = (sm_id, warp.wid, self._uid_counter)
        inst = OffloadInstance(uid, sm, warp, item, target)
        inst.start_cycle = self.engine.now
        self.stats.offloads += 1
        block = item.block
        cmd_size = PacketSizes.offload_cmd(len(block.send_regs),
                                           inst.active_threads)

        def send_cmd() -> None:
            if self.trace is not None:
                self.trace.record(self.engine.now, "CMD", "gpu",
                                  f"hmc{target}", cmd_size, uid,
                                  f"{len(block.send_regs)} regs")
            self.gpu_links.to_hmc(
                target, cmd_size,
                lambda: self.nsus[target].receive_cmd(inst))

        # Reserve NSU buffer space for the whole block (Section 4.3).  The
        # grant may fire synchronously when credits are available.
        self.credits.reserve(target, num_loads=block.num_loads,
                             num_stores=block.num_stores,
                             on_grant=lambda: self._grant(inst))
        self._emit(inst, send_cmd)
        return inst

    def _grant(self, inst: OffloadInstance) -> None:
        inst.granted = True
        if inst.deferred:
            for fn in inst.deferred:
                fn()
            inst.deferred.clear()
        if inst.pending_packets:
            self.pending[inst.sm.sm_id] -= inst.pending_packets
            inst.pending_packets = 0

    def _emit(self, inst: OffloadInstance, fn: Callable[[], None]) -> None:
        """Run ``fn`` now if the block is granted, else park it in the SM's
        pending packet buffer."""
        if inst.granted:
            fn()
        else:
            inst.deferred.append(fn)
            inst.pending_packets += 1
            p = self.pending[inst.sm.sm_id] = self.pending[inst.sm.sm_id] + 1
            self.stats.pending_peak = max(self.stats.pending_peak, p)

    def _pending_room(self, inst: OffloadInstance, needed: int) -> bool:
        if inst.granted:
            return True
        return self.pending[inst.sm.sm_id] + needed <= self.pending_cap

    # -- load instructions (RDF) -----------------------------------------------

    def rdf(self, inst: OffloadInstance,
            accesses: tuple[MemAccess, ...]) -> bool:
        if not self._pending_room(inst, len(accesses)):
            self.stats.pending_rejects += 1
            return False
        seq = inst.next_seq
        inst.next_seq += 1
        key = (inst.uid, seq)
        total_words = sum(a.words for a in accesses)
        target = inst.target
        nsu = self.nsus[target]

        def emit_one(acc: MemAccess) -> None:
            inst.rdf_packets += 1
            self.stats.rdf_packets += 1
            if self.memsys.rdf_probe(inst.sm.sm_id, acc.line_addr):
                # GPU cache hit: ship the cached words to the target NSU
                # (minimizes DRAM access but costs GPU-link bandwidth --
                # the Section 7.1 BPROP effect).  With the optional NSU
                # read-only cache, a line the NSU already holds costs only
                # a header-sized "use cached copy" message.
                inst.rdf_hits += 1
                self.stats.rdf_hits += 1
                if nsu.ro_cache_hit(acc.line_addr):
                    self.gpu_links.to_hmc(
                        target, PacketSizes.invalidation(),
                        lambda: nsu.deliver_read(key, acc.words))
                    return
                resp = PacketSizes.rdf_response(acc.words)
                if self.trace is not None:
                    self.trace.record(self.engine.now, "RDF_HIT_RESP",
                                      "gpu", f"hmc{target}", resp,
                                      inst.uid,
                                      f"seq {seq}, {acc.words} words")
                self.gpu_links.to_hmc(
                    target, resp,
                    lambda: nsu.deliver_read(key, acc.words,
                                             cacheable_line=acc.line_addr))
                return
            owner = self.amap.hmc_of(acc.line_addr * LINE_SIZE)
            req = PacketSizes.rdf_request(acc.irregular, acc.words)
            resp = PacketSizes.rdf_response(acc.words)

            def at_owner() -> None:
                self.hmcs[owner].access_line(
                    acc.line_addr, False,
                    lambda r: route_response(), noc_bytes=LINE_SIZE)

            def route_response() -> None:
                if self.trace is not None:
                    self.trace.record(self.engine.now, "RDF_RESP",
                                      f"hmc{owner}", f"hmc{target}", resp,
                                      inst.uid, f"seq {seq}")
                if owner == target:
                    self.counters.add("intra_hmc", resp)
                    self.engine.after(
                        4, lambda: nsu.deliver_read(key, acc.words))
                else:
                    self.network.send(owner, target, resp,
                                      lambda: nsu.deliver_read(key, acc.words))

            if self.trace is not None:
                self.trace.record(self.engine.now, "RDF", "gpu",
                                  f"hmc{owner}", req, inst.uid,
                                  f"seq {seq}, line {acc.line_addr:#x}")
            self.gpu_links.to_hmc(owner, req, at_owner)

        def emit_all() -> None:
            nsu.expect_read(key, total_words)
            for acc in accesses:
                emit_one(acc)

        self._emit(inst, emit_all)
        return True

    # -- store instructions (WTA) -------------------------------------------------

    def wta(self, inst: OffloadInstance,
            accesses: tuple[MemAccess, ...]) -> bool:
        if not self._pending_room(inst, len(accesses)):
            self.stats.pending_rejects += 1
            return False
        seq = inst.next_seq
        inst.next_seq += 1
        key = (inst.uid, seq)
        target = inst.target
        nsu = self.nsus[target]

        def emit_all() -> None:
            nsu.expect_wta(key, len(accesses))
            for acc in accesses:
                self.stats.wta_packets += 1
                owner = self.amap.hmc_of(acc.line_addr * LINE_SIZE)
                self.wta_inflight[owner] += 1
                size = PacketSizes.wta(acc.irregular, acc.words)
                if self.trace is not None:
                    self.trace.record(self.engine.now, "WTA", "gpu",
                                      f"hmc{target}", size, inst.uid,
                                      f"seq {seq}, line {acc.line_addr:#x}")
                self.gpu_links.to_hmc(
                    target, size, lambda a=acc: nsu.deliver_wta(key, a))

        self._emit(inst, emit_all)
        return True

    # -- OFLD.END -------------------------------------------------------------------

    def end_block(self, inst: OffloadInstance) -> None:
        inst.gpu_end_reached = True
        if inst.ack_arrived:
            # The NSU finished before the GPU-side code did (no-store
            # blocks with fast cache-hit data): resume next cycle.
            self.engine.after(1, lambda: self._complete(inst))

    def send_ack(self, nsu, inst: OffloadInstance) -> None:
        size = PacketSizes.offload_ack(len(inst.block.ret_regs),
                                       inst.active_threads)
        if self.trace is not None:
            self.trace.record(self.engine.now, "ACK", f"hmc{nsu.hmc_id}",
                              "gpu", size, inst.uid,
                              f"{len(inst.block.ret_regs)} regs")
        self.gpu_links.to_gpu(nsu.hmc_id, size, lambda: self._ack(inst))

    def _ack(self, inst: OffloadInstance) -> None:
        inst.ack_arrived = True
        self.stats.acks += 1
        if self.decider is not None and hasattr(self.decider,
                                                "record_instance"):
            self.decider.record_instance(
                inst.block.block_id, inst.rdf_packets, inst.rdf_hits)
        if inst.gpu_end_reached:
            self._complete(inst)

    def _complete(self, inst: OffloadInstance) -> None:
        inst.sm.complete_offload(inst.warp)

    # -- NSU write routing + coherence (Sections 4.1.2 / 4.2) -----------------------

    def ndp_write(self, nsu, warp, acc: MemAccess) -> None:
        """Route one NSU store access to the owning vault; invalidate GPU
        caches when the write completes; acknowledge the NSU."""
        owner = self.amap.hmc_of(acc.line_addr * LINE_SIZE)
        size = PacketSizes.ndp_write(acc.words)
        self.stats.ndp_writes += 1
        if self.trace is not None:
            self.trace.record(self.engine.now, "WRITE", f"hmc{nsu.hmc_id}",
                              f"hmc{owner}", size, warp.inst.uid,
                              f"line {acc.line_addr:#x}")

        def do_write() -> None:
            self.hmcs[owner].access_line(
                acc.line_addr, True, lambda r: on_written(),
                noc_bytes=size)

        def on_written() -> None:
            self._send_invalidation(owner, acc.line_addr)
            for peer in self.nsus:
                peer.ro_invalidate(acc.line_addr)
            if owner == nsu.hmc_id:
                nsu.write_done(warp)
            else:
                self.network.send(owner, nsu.hmc_id,
                                  PacketSizes.write_ack(),
                                  lambda: nsu.write_done(warp))

        if owner == nsu.hmc_id:
            do_write()
        else:
            self.network.send(nsu.hmc_id, owner, size, do_write)

    def _send_invalidation(self, owner: int, line_addr: int) -> None:
        size = PacketSizes.invalidation()
        self.stats.invalidations_sent += 1
        self.memsys.count_invalidation_bytes(size)
        if self.trace is not None:
            self.trace.record(self.engine.now, "INV", f"hmc{owner}", "gpu",
                              size, None, f"line {line_addr:#x}")
        self.gpu_links.to_gpu(
            owner, size, lambda: self._apply_invalidation(owner, line_addr))

    def _apply_invalidation(self, owner: int, line_addr: int) -> None:
        self.memsys.invalidate(line_addr)
        self.wta_inflight[owner] -= 1
        if self.wta_inflight[owner] == 0:
            for cb in self._wta_drain_waiters.pop(owner, []):
                cb()

    # -- dynamic memory management guard (Section 4.1.1) ------------------------------

    def can_swap_page_now(self, hmc: int) -> bool:
        """True when a new page mapped to ``hmc`` can be written immediately
        (no in-flight WTA packets to that stack)."""
        return self.wta_inflight[hmc] == 0

    def wait_for_wta_drain(self, hmc: int, cb: Callable[[], None]) -> None:
        """Defer ``cb`` until the stack has no in-flight WTA packets.  Other
        stacks' data remains accessible meanwhile (per the paper)."""
        if self.wta_inflight[hmc] == 0:
            cb()
        else:
            self._wta_drain_waiters.setdefault(hmc, []).append(cb)
