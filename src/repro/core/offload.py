"""GPU-side NDP controller: partitioned execution on the SM (Section 4.1.1).

The controller implements everything the paper adds to the GPU:

* ``OFLD.BEG``: target-NSU selection (first memory instruction's majority
  HMC), NSU buffer reservation through the credit manager, and the offload
  command packet with live-in registers;
* load instructions: RDF packet generation with a GPU cache probe -- hits
  ship the cached data to the target NSU from the GPU (no DRAM access),
  misses send the RDF to the owning HMC whose response is forwarded over
  the memory network (Figure 6(a));
* store instructions: WTA packets carrying translated addresses to the
  target NSU (Figure 6(b));
* ``OFLD.END``: parking the warp until the NSU's acknowledgment returns
  the live-out registers;
* the per-SM pending packet buffer: packets of not-yet-granted blocks wait
  on-chip, and a full buffer back-pressures the warp (ExecUnitBusy);
* NSU write routing + cache-invalidation coherence (Section 4.2) and the
  in-flight WTA counters used for dynamic memory management (Section 4.1.1);
* the protocol-recovery layer (``repro.faults``): when a fault plan with a
  recovery policy is armed, every offload instance carries an ACK watchdog.
  A block that stops making progress is retried -- its reservation is
  re-queued if it was never granted, or its NSU-side state is purged and
  every packet replayed from the SM (the GPU generated all addresses, so
  replay needs no recomputation) -- and after ``max_retries`` the block
  falls back to inline execution on the SM.  Credits are reconciled from a
  per-instance ledger whenever an instance closes or aborts, so dropped
  credit-return messages cannot wedge the manager.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

from repro.config import LINE_SIZE, SystemConfig
from repro.core.credit import BufferCreditManager
from repro.core.packets import PacketSizes
from repro.faults.recovery import RecoveryStats
from repro.gpu.coalescer import MemAccess
from repro.sim.engine import Engine


class OffloadInstance:
    """Runtime state of one offloaded block instance."""

    __slots__ = ("uid", "sm", "warp", "item", "block", "target",
                 "granted", "deferred", "pending_packets", "next_seq",
                 "rdf_packets", "rdf_hits", "gpu_end_reached", "ack_arrived",
                 "active_threads", "start_cycle",
                 # recovery state (inert unless a recovery policy is armed)
                 "attempt", "retries", "completed", "held", "reservation",
                 "wd_token", "progress_sig")

    def __init__(self, uid, sm, warp, item, target: int) -> None:
        self.uid = uid
        self.sm = sm
        self.warp = warp
        self.item = item
        self.block = item.block
        self.target = target
        self.granted = False
        self.deferred: list[Callable[[], None]] = []
        self.pending_packets = 0
        self.next_seq = 0
        self.rdf_packets = 0
        self.rdf_hits = 0
        self.gpu_end_reached = False
        self.ack_arrived = False
        self.active_threads = item.active_threads
        self.start_cycle = 0
        self.attempt = 0           # bumped per abort; stales old packets
        self.retries = 0
        self.completed = False
        self.held = None           # [cmd, read_data, write_addr] ledger
        self.reservation = None
        self.wd_token = 0
        self.progress_sig = None


@dataclass
class NDPStats:
    offloads: int = 0
    acks: int = 0
    rdf_packets: int = 0
    rdf_hits: int = 0
    wta_packets: int = 0
    ndp_writes: int = 0
    invalidations_sent: int = 0
    pending_peak: int = 0
    pending_rejects: int = 0

    def packet_counts(self) -> dict[str, int]:
        """Packet counts keyed by the MessageTrace kind names."""
        return {
            "CMD": self.offloads,
            "ACK": self.acks,
            "RDF": self.rdf_packets - self.rdf_hits,
            "RDF_HIT_RESP": self.rdf_hits,
            "WTA": self.wta_packets,
            "WRITE": self.ndp_writes,
            "INV": self.invalidations_sent,
        }


class NDPController:
    """One controller per GPU; owns the credit manager and packet plumbing."""

    def __init__(self, engine: Engine, cfg: SystemConfig, *, amap, memsys,
                 gpu_links, network, hmcs, counters, decider=None,
                 backend=None) -> None:
        from repro.memory.backend import resolve_backend
        self.engine = engine
        self.cfg = cfg
        self.amap = amap
        self.memsys = memsys
        self.gpu_links = gpu_links
        self.network = network
        self.hmcs = hmcs
        self.counters = counters
        self.decider = decider
        # Substrate hooks: target selection, device queue depth, and the
        # cost of a device-local response hop all come from the backend
        # ("hmc" returns the historical constants bit-identically).
        self.backend = resolve_backend(backend if backend is not None
                                       else cfg.backend)
        self._internal_noc = self.backend.internal_noc
        self._local_resp_latency = self.backend.local_response_latency(cfg)
        self.credits = BufferCreditManager(
            engine, cfg.num_hmcs,
            cmd_entries=self.backend.ndp_cmd_entries(cfg),
            read_data_entries=cfg.nsu.read_data_entries,
            write_addr_entries=cfg.nsu.write_addr_entries)
        self.nsus: list = []               # filled by the system after build
        self.code_layout: dict[int, tuple[int, int]] = {}
        self.pending = [0] * cfg.gpu.num_sms
        self.pending_cap = cfg.sm_buffers.pending_entries
        self.wta_inflight = [0] * cfg.num_hmcs   # Section 4.1.1 page guard
        self._wta_drain_waiters: dict[int, list[Callable[[], None]]] = {}
        self.stats = NDPStats()
        self._uid_counter = 0
        # Optional packet-level tracing (repro.sim.tracing.MessageTrace).
        self.trace = None
        # Protocol recovery (repro.faults): a RecoveryPolicy when armed,
        # plus the system-wide TimeoutTracker ("ack" site) that resolves
        # the watchdog deadline -- static, per-site override or adaptive.
        self.recovery = None
        self.timeouts = None
        self.rstats = RecoveryStats()
        self._instances: dict[tuple, OffloadInstance] = {}
        self._watchdogs: list[tuple] = []   # (deadline, uid, token) heap

    def metrics_snapshot(self) -> dict:
        """Counters/gauges published into the metrics registry."""
        return {
            "packets": self.stats.packet_counts(),
            "pending_total": sum(self.pending),
            "pending_peak": self.stats.pending_peak,
            "pending_rejects": self.stats.pending_rejects,
            "wta_inflight": sum(self.wta_inflight),
        }

    def set_code_layout(self, blocks) -> None:
        """Lay the NSU code for each block out in I-cache lines.

        Each NSU instruction occupies :data:`~repro.core.nsu.NSU_INSTR_BYTES`;
        blocks are padded to line granularity (Figure 11's footprint)."""
        from repro.core.nsu import NSU_INSTR_BYTES

        line = self.cfg.nsu.icache_line
        cursor = 0
        for b in blocks:
            nbytes = len(b.nsu_code) * NSU_INSTR_BYTES
            n_lines = max(1, -(-nbytes // line))
            self.code_layout[b.block_id] = (cursor, n_lines)
            cursor += n_lines

    # -- OFLD.BEG ------------------------------------------------------------

    def start_block(self, sm, warp, item) -> OffloadInstance | None:
        sm_id = sm.sm_id
        if self.pending[sm_id] + 1 > self.pending_cap:
            self.stats.pending_rejects += 1
            return None
        target = self.backend.select_target(self.cfg, item, self.amap)
        self._uid_counter += 1
        uid = (sm_id, warp.wid, self._uid_counter)
        inst = OffloadInstance(uid, sm, warp, item, target)
        inst.start_cycle = self.engine.now
        self.stats.offloads += 1
        block = item.block
        if self.recovery is not None:
            self._instances[uid] = inst
            inst.progress_sig = self._progress_sig(inst)
            self._arm_watchdog(inst)

        # Reserve NSU buffer space for the whole block (Section 4.3).  The
        # grant may fire synchronously when credits are available.
        inst.reservation = self.credits.reserve(
            target, num_loads=block.num_loads, num_stores=block.num_stores,
            on_grant=lambda: self._grant(inst))
        self._emit(inst, lambda: self._send_cmd(inst))
        return inst

    def _send_cmd(self, inst: OffloadInstance) -> None:
        block = inst.block
        attempt = inst.attempt
        cmd_size = PacketSizes.offload_cmd(len(block.send_regs),
                                           inst.active_threads)
        if self.trace is not None:
            self.trace.record(self.engine.now, "CMD", "gpu",
                              f"hmc{inst.target}", cmd_size, inst.uid,
                              f"{len(block.send_regs)} regs")
        self.gpu_links.to_hmc(inst.target, cmd_size,
                              lambda: self._deliver_cmd(inst, attempt))

    def _deliver_cmd(self, inst: OffloadInstance, attempt: int) -> None:
        if inst.completed or inst.attempt != attempt:
            self.rstats.stale_cmds += 1
            return
        self.nsus[inst.target].receive_cmd(inst)

    def _grant(self, inst: OffloadInstance) -> None:
        inst.granted = True
        if self.recovery is not None:
            inst.held = [1, inst.block.num_loads, inst.block.num_stores]
        if inst.deferred:
            for fn in inst.deferred:
                fn()
            inst.deferred.clear()
        if inst.pending_packets:
            self.pending[inst.sm.sm_id] -= inst.pending_packets
            inst.pending_packets = 0

    def _emit(self, inst: OffloadInstance, fn: Callable[[], None]) -> None:
        """Run ``fn`` now if the block is granted, else park it in the SM's
        pending packet buffer."""
        if inst.granted:
            fn()
        else:
            inst.deferred.append(fn)
            inst.pending_packets += 1
            p = self.pending[inst.sm.sm_id] = self.pending[inst.sm.sm_id] + 1
            self.stats.pending_peak = max(self.stats.pending_peak, p)

    def _pending_room(self, inst: OffloadInstance, needed: int) -> bool:
        if inst.granted:
            return True
        return self.pending[inst.sm.sm_id] + needed <= self.pending_cap

    # -- credit plumbing -------------------------------------------------------

    def release_credits(self, hmc: int, inst=None, *, cmd: int = 0,
                        read_data: int = 0, write_addr: int = 0) -> bool:
        """NSU-side credit return, routed through the owning instance's
        ledger so recovery can reconcile entries whose return message an
        armed fault plan dropped."""
        ok = self.credits.release(hmc, cmd=cmd, read_data=read_data,
                                  write_addr=write_addr)
        held = getattr(inst, "held", None)
        if ok and held is not None:
            held[0] -= cmd
            held[1] -= read_data
            held[2] -= write_addr
        return ok

    def _reconcile_held(self, inst: OffloadInstance) -> None:
        held = inst.held
        inst.held = None
        if held and any(held):
            self.credits.reconcile(inst.target, cmd=held[0],
                                   read_data=held[1], write_addr=held[2])
            self.rstats.credits_reclaimed += sum(held)

    # -- WTA conservation under faults ----------------------------------------

    def _dec_wta_inflight(self, owner: int) -> None:
        self.wta_inflight[owner] -= 1
        if self.wta_inflight[owner] == 0:
            for cb in self._wta_drain_waiters.pop(owner, []):
                cb()

    def wta_discarded(self, acc: MemAccess) -> None:
        """An NSU discarded a corrupted WTA delivery (fault injection)."""
        self.rstats.wta_lost += 1
        self._dec_wta_inflight(self.amap.hmc_of(acc.line_addr * LINE_SIZE))

    def _wta_pkt_lost(self, owner: int) -> None:
        self.rstats.wta_lost += 1
        self._dec_wta_inflight(owner)

    def _ndp_write_lost(self, owner: int) -> None:
        self.rstats.writes_lost += 1
        self._dec_wta_inflight(owner)

    def _inv_lost(self, owner: int) -> None:
        self.rstats.invs_lost += 1
        self._dec_wta_inflight(owner)

    # -- load instructions (RDF) -----------------------------------------------

    def rdf(self, inst: OffloadInstance,
            accesses: tuple[MemAccess, ...]) -> bool:
        if not self._pending_room(inst, len(accesses)):
            self.stats.pending_rejects += 1
            return False
        seq = inst.next_seq
        inst.next_seq += 1
        key = (inst.uid, seq)
        total_words = sum(a.words for a in accesses)
        target = inst.target
        nsu = self.nsus[target]
        attempt = inst.attempt

        def emit_one(acc: MemAccess) -> None:
            inst.rdf_packets += 1
            self.stats.rdf_packets += 1
            if self.memsys.rdf_probe(inst.sm.sm_id, acc.line_addr):
                # GPU cache hit: ship the cached words to the target NSU
                # (minimizes DRAM access but costs GPU-link bandwidth --
                # the Section 7.1 BPROP effect).  With the optional NSU
                # read-only cache, a line the NSU already holds costs only
                # a header-sized "use cached copy" message.
                inst.rdf_hits += 1
                self.stats.rdf_hits += 1
                if nsu.ro_cache_hit(acc.line_addr):
                    self.gpu_links.to_hmc(
                        target, PacketSizes.invalidation(),
                        lambda: self._deliver_read(inst, attempt, key,
                                                   acc.words))
                    return
                resp = PacketSizes.rdf_response(acc.words)
                if self.trace is not None:
                    self.trace.record(self.engine.now, "RDF_HIT_RESP",
                                      "gpu", f"hmc{target}", resp,
                                      inst.uid,
                                      f"seq {seq}, {acc.words} words")
                self.gpu_links.to_hmc(
                    target, resp,
                    lambda: self._deliver_read(inst, attempt, key, acc.words,
                                               cacheable_line=acc.line_addr))
                return
            owner = self.amap.hmc_of(acc.line_addr * LINE_SIZE)
            req = PacketSizes.rdf_request(acc.irregular, acc.words)
            resp = PacketSizes.rdf_response(acc.words)

            def at_owner() -> None:
                self.hmcs[owner].access_line(
                    acc.line_addr, False,
                    lambda r: route_response(), noc_bytes=LINE_SIZE)

            def route_response() -> None:
                if self.trace is not None:
                    self.trace.record(self.engine.now, "RDF_RESP",
                                      f"hmc{owner}", f"hmc{target}", resp,
                                      inst.uid, f"seq {seq}")
                if owner == target:
                    if self._internal_noc:
                        self.counters.add("intra_hmc", resp)
                    self.engine.after(
                        self._local_resp_latency,
                        lambda: self._deliver_read(inst, attempt, key,
                                                   acc.words))
                else:
                    self.network.send(
                        owner, target, resp,
                        lambda: self._deliver_read(inst, attempt, key,
                                                   acc.words))

            if self.trace is not None:
                self.trace.record(self.engine.now, "RDF", "gpu",
                                  f"hmc{owner}", req, inst.uid,
                                  f"seq {seq}, line {acc.line_addr:#x}")
            self.gpu_links.to_hmc(owner, req, at_owner)

        def emit_all() -> None:
            nsu.expect_read(key, total_words)
            for acc in accesses:
                emit_one(acc)

        self._emit(inst, emit_all)
        return True

    def _deliver_read(self, inst: OffloadInstance, attempt: int, key: tuple,
                      words: int, cacheable_line: int | None = None) -> None:
        if inst.completed or inst.attempt != attempt:
            self.rstats.stale_reads += 1
            return
        self.nsus[inst.target].deliver_read(key, words,
                                            cacheable_line=cacheable_line)

    def _deliver_wta(self, inst: OffloadInstance, attempt: int, key: tuple,
                     acc: MemAccess, owner: int) -> None:
        if inst.completed or inst.attempt != attempt:
            self.rstats.stale_wta += 1
            self._dec_wta_inflight(owner)
            return
        self.nsus[inst.target].deliver_wta(key, acc)

    # -- store instructions (WTA) -------------------------------------------------

    def wta(self, inst: OffloadInstance,
            accesses: tuple[MemAccess, ...]) -> bool:
        if not self._pending_room(inst, len(accesses)):
            self.stats.pending_rejects += 1
            return False
        seq = inst.next_seq
        inst.next_seq += 1
        key = (inst.uid, seq)
        target = inst.target
        nsu = self.nsus[target]
        attempt = inst.attempt

        def emit_all() -> None:
            nsu.expect_wta(key, len(accesses))
            for acc in accesses:
                self.stats.wta_packets += 1
                owner = self.amap.hmc_of(acc.line_addr * LINE_SIZE)
                self.wta_inflight[owner] += 1
                size = PacketSizes.wta(acc.irregular, acc.words)
                if self.trace is not None:
                    self.trace.record(self.engine.now, "WTA", "gpu",
                                      f"hmc{target}", size, inst.uid,
                                      f"seq {seq}, line {acc.line_addr:#x}")
                self.gpu_links.to_hmc(
                    target, size,
                    (lambda a=acc, o=owner:
                        self._deliver_wta(inst, attempt, key, a, o)),
                    lost=(lambda o=owner: self._wta_pkt_lost(o)))

        self._emit(inst, emit_all)
        return True

    # -- OFLD.END -------------------------------------------------------------------

    def end_block(self, inst: OffloadInstance) -> None:
        inst.gpu_end_reached = True
        if inst.ack_arrived:
            # The NSU finished before the GPU-side code did (no-store
            # blocks with fast cache-hit data): resume next cycle.
            self.engine.after(1, lambda: self._complete(inst))

    def send_ack(self, nsu, inst: OffloadInstance) -> None:
        size = PacketSizes.offload_ack(len(inst.block.ret_regs),
                                       inst.active_threads)
        attempt = inst.attempt
        if self.trace is not None:
            self.trace.record(self.engine.now, "ACK", f"hmc{nsu.hmc_id}",
                              "gpu", size, inst.uid,
                              f"{len(inst.block.ret_regs)} regs")
        self.gpu_links.to_gpu(nsu.hmc_id, size,
                              lambda: self._ack(inst, attempt))

    def _ack(self, inst: OffloadInstance, attempt: int | None = None) -> None:
        if inst.completed or (attempt is not None
                              and inst.attempt != attempt):
            self.rstats.stale_acks += 1
            return
        inst.ack_arrived = True
        self.stats.acks += 1
        if self.timeouts is not None:
            # Feed the adaptive deadline: offload-issue -> ACK round-trip.
            self.timeouts.observe("ack", self.engine.now - inst.start_cycle)
        if self.decider is not None and hasattr(self.decider,
                                                "record_instance"):
            self.decider.record_instance(
                inst.block.block_id, inst.rdf_packets, inst.rdf_hits)
        if inst.gpu_end_reached:
            self._complete(inst)

    def _complete(self, inst: OffloadInstance) -> None:
        if self.recovery is not None:
            inst.completed = True
            self._instances.pop(inst.uid, None)
            # Any entries whose credit-return message was dropped are
            # restored here: the manager knows what the block reserved.
            self._reconcile_held(inst)
        # complete_offload is a waker-hooked mutator: the active
        # scheduler settles the SM's parked idle cycles before the ACK
        # registers land (invariant I1, docs/performance.md).  We only
        # reach here from engine events (ACK delivery), never from
        # another SM's tick (invariant I3).
        inst.sm.complete_offload(inst.warp)

    # -- NSU write routing + coherence (Sections 4.1.2 / 4.2) -----------------------

    def ndp_write(self, nsu, warp, acc: MemAccess) -> None:
        """Route one NSU store access to the owning vault; invalidate GPU
        caches when the write completes; acknowledge the NSU."""
        owner = self.amap.hmc_of(acc.line_addr * LINE_SIZE)
        size = PacketSizes.ndp_write(acc.words)
        self.stats.ndp_writes += 1
        if self.trace is not None:
            self.trace.record(self.engine.now, "WRITE", f"hmc{nsu.hmc_id}",
                              f"hmc{owner}", size, warp.inst.uid,
                              f"line {acc.line_addr:#x}")

        def do_write() -> None:
            self.hmcs[owner].access_line(
                acc.line_addr, True, lambda r: on_written(),
                noc_bytes=size)

        def on_written() -> None:
            self._send_invalidation(owner, acc.line_addr)
            for peer in self.nsus:
                peer.ro_invalidate(acc.line_addr)
            if owner == nsu.hmc_id:
                nsu.write_done(warp)
            else:
                self.network.send(owner, nsu.hmc_id,
                                  PacketSizes.write_ack(),
                                  lambda: nsu.write_done(warp),
                                  lost=self._write_ack_lost)

        if owner == nsu.hmc_id:
            do_write()
        else:
            self.network.send(nsu.hmc_id, owner, size, do_write,
                              lost=lambda: self._ndp_write_lost(owner))

    def _write_ack_lost(self) -> None:
        # The write landed and was invalidated; only the NSU warp's
        # completion signal died.  Recovery replays the block.
        self.rstats.write_acks_lost += 1

    def _send_invalidation(self, owner: int, line_addr: int) -> None:
        size = PacketSizes.invalidation()
        self.stats.invalidations_sent += 1
        self.memsys.count_invalidation_bytes(size)
        if self.trace is not None:
            self.trace.record(self.engine.now, "INV", f"hmc{owner}", "gpu",
                              size, None, f"line {line_addr:#x}")
        self.gpu_links.to_gpu(
            owner, size, lambda: self._apply_invalidation(owner, line_addr),
            lost=lambda: self._inv_lost(owner))

    def _apply_invalidation(self, owner: int, line_addr: int) -> None:
        self.memsys.invalidate(line_addr)
        self._dec_wta_inflight(owner)

    # -- dynamic memory management guard (Section 4.1.1) ------------------------------

    def can_swap_page_now(self, hmc: int) -> bool:
        """True when a new page mapped to ``hmc`` can be written immediately
        (no in-flight WTA packets to that stack)."""
        return self.wta_inflight[hmc] == 0

    def wait_for_wta_drain(self, hmc: int, cb: Callable[[], None]) -> None:
        """Defer ``cb`` until the stack has no in-flight WTA packets.  Other
        stacks' data remains accessible meanwhile (per the paper)."""
        if self.wta_inflight[hmc] == 0:
            cb()
        else:
            self._wta_drain_waiters.setdefault(hmc, []).append(cb)

    # -- protocol recovery: ACK watchdogs, replay, inline fallback ----------------

    @staticmethod
    def _progress_sig(inst: OffloadInstance) -> tuple:
        return (inst.attempt, inst.granted, inst.next_seq,
                inst.pending_packets, inst.gpu_end_reached, inst.ack_arrived)

    def _arm_watchdog(self, inst: OffloadInstance) -> None:
        inst.wd_token += 1
        timeout = (self.timeouts.timeout("ack") if self.timeouts is not None
                   else self.recovery.ack_timeout)
        heapq.heappush(self._watchdogs,
                       (self.engine.now + timeout, inst.uid, inst.wd_token))

    def next_watchdog_deadline(self) -> int | None:
        """Earliest armed deadline (the system folds this into its
        fast-forward target; stale heap entries only wake it early)."""
        return self._watchdogs[0][0] if self._watchdogs else None

    def poll_watchdogs(self, now: int) -> None:
        """Fire every due watchdog.  Called from the system main loop so
        watchdog timers never appear as engine events -- an unarmed run's
        event stream (and cycle count) stays untouched."""
        wd = self._watchdogs
        while wd and wd[0][0] <= now:
            _, uid, token = heapq.heappop(wd)
            inst = self._instances.get(uid)
            if inst is None or token != inst.wd_token:
                continue
            self._watchdog_check(inst)

    def _watchdog_check(self, inst: OffloadInstance) -> None:
        sig = self._progress_sig(inst)
        if sig != inst.progress_sig:
            # The block moved since the last check; keep watching.
            inst.progress_sig = sig
            self._arm_watchdog(inst)
            return
        self.rstats.watchdog_fires += 1
        exhausted = inst.retries >= self.recovery.max_retries
        if not inst.granted:
            # Wedged waiting for buffer credits (e.g. a lost credit-return
            # message starved the FIFO): re-queue or give up.
            self._fallback(inst) if exhausted else self._retry_queued(inst)
        elif inst.gpu_end_reached and not inst.ack_arrived:
            # Every packet left the GPU but the ACK never came back:
            # a CMD/RDF/WTA/WRITE/ACK packet died somewhere.
            self._fallback(inst) if exhausted else self._retry(inst)
        else:
            # Mid-emission on the SM with no safe replay point (e.g. an
            # address operand is still outstanding); keep watching.  A
            # truly dead block surfaces as a simulation timeout.
            self._arm_watchdog(inst)

    def _retry_queued(self, inst: OffloadInstance) -> None:
        """Re-queue a never-granted reservation.  Parked packets stay in
        the SM's pending buffer; the new grant flushes them."""
        inst.retries += 1
        self.rstats.retries += 1
        block = inst.block
        self.credits.cancel(inst.reservation)
        inst.reservation = self.credits.reserve(
            inst.target, num_loads=block.num_loads,
            num_stores=block.num_stores,
            on_grant=lambda: self._grant(inst))
        inst.progress_sig = self._progress_sig(inst)
        self._arm_watchdog(inst)

    def _retry(self, inst: OffloadInstance) -> None:
        """Full replay: abort the NSU-side attempt, re-reserve, re-emit
        every packet from the SM's already-generated addresses."""
        inst.retries += 1
        self.rstats.retries += 1
        self._abort_attempt(inst)
        attempt = inst.attempt
        block = inst.block
        inst.reservation = self.credits.reserve(
            inst.target, num_loads=block.num_loads,
            num_stores=block.num_stores,
            on_grant=lambda: self._replay(inst, attempt))
        inst.progress_sig = self._progress_sig(inst)
        self._arm_watchdog(inst)

    def _abort_attempt(self, inst: OffloadInstance) -> None:
        """Unwind one attempt: stale its in-flight packets, reconcile its
        credits, purge its NSU state, unwind WTA counters."""
        inst.attempt += 1
        if not inst.granted:
            self.credits.cancel(inst.reservation)
        else:
            self._reconcile_held(inst)
        inst.granted = False
        if inst.pending_packets:
            self.pending[inst.sm.sm_id] -= inst.pending_packets
            inst.pending_packets = 0
        inst.deferred.clear()
        inst.ack_arrived = False
        inst.next_seq = 0
        _reads, wta = self.nsus[inst.target].purge_instance(inst.uid)
        self.rstats.wta_purged += len(wta)
        for acc in wta:
            self._dec_wta_inflight(self.amap.hmc_of(acc.line_addr * LINE_SIZE))

    def _replay(self, inst: OffloadInstance, attempt: int) -> None:
        """The retry's reservation was granted: re-send CMD and every
        RDF/WTA packet in program order (addresses were kept on the SM)."""
        if inst.completed or inst.attempt != attempt:
            return   # superseded by a later retry or a fallback
        inst.granted = True
        inst.held = [1, inst.block.num_loads, inst.block.num_stores]
        self._send_cmd(inst)
        mem_seq = 0
        item = inst.item
        for g in inst.block.gpu_code:
            if g.kind == "rdf":
                self.rdf(inst, item.mem_accesses[mem_seq])
                mem_seq += 1
            elif g.kind == "wta":
                self.wta(inst, item.mem_accesses[mem_seq])
                mem_seq += 1

    def _fallback(self, inst: OffloadInstance) -> None:
        """Retries exhausted: abort the offload for good and re-execute
        the block inline on the SM (it generated every address already,
        so inline re-execution is always possible)."""
        self.rstats.fallbacks += 1
        self._abort_attempt(inst)
        inst.completed = True
        self._instances.pop(inst.uid, None)
        # fallback_inline is the third waker-hooked mutator (with
        # wake_warp and complete_offload): it runs off watchdog/NACK
        # engine events, so the parked SM's stall accounting settles
        # before the warp is re-armed (docs/performance.md, I1/I3).
        inst.sm.fallback_inline(inst.warp)
