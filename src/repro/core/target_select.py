"""Target-NSU selection policies and the Figure 5 policy study.

The target NSU is chosen by the *first* memory instruction of the block:
the HMC receiving the most accesses from that instruction (Section 4.1.1).
The alternative -- picking the HMC with the most accesses over the *whole*
block -- is traffic-optimal but needs a buffer for every generated address,
so the paper rejects it after showing (Figure 5) the first-instruction
policy costs at most ~15% extra inter-stack traffic under random placement,
with the gap vanishing as blocks touch more memory.

A third policy, :func:`coda_target`, implements CODA-style compute/data
co-location (weight the write set) for the comparative-backend studies;
all three are dispatched by ``MemoryBackend.select_target``.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.gpu.coalescer import MemAccess
from repro.memory.address import AddressMap


def _majority_hmc(line_addrs, amap: AddressMap) -> int:
    counts = Counter(amap.hmc_of_lines(
        np.asarray(line_addrs, dtype=np.int64)).tolist())
    # Ties break toward the lower HMC id (deterministic hardware).
    best = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))
    return best[0]


def first_instr_target(first_accesses: tuple[MemAccess, ...],
                       amap: AddressMap) -> int:
    """Paper policy: HMC with the most accesses from the first LD/ST."""
    if not first_accesses:
        raise ValueError("first memory instruction has no accesses")
    return _majority_hmc([a.line_addr for a in first_accesses], amap)


def optimal_target(all_accesses: tuple[tuple[MemAccess, ...], ...],
                   amap: AddressMap) -> int:
    """Oracle policy: HMC with the most accesses over the whole block."""
    lines = [a.line_addr for group in all_accesses for a in group]
    if not lines:
        raise ValueError("offload block has no memory accesses")
    return _majority_hmc(lines, amap)


def coda_target(all_accesses: tuple[tuple[MemAccess, ...], ...],
                block, amap: AddressMap, write_weight: int = 2) -> int:
    """CODA-style co-location policy: weight the block's *write set*.

    CODA places compute next to the data it mutates: a store crosses the
    network twice on a miss (write-allocate fetch + writeback) and its
    line is the block's output, so co-locating with the majority of the
    write set keeps producer->consumer chains device-local.  We walk the
    block's GPU code to classify each memory instruction ("rdf" = load,
    "wta" = store -- :mod:`repro.isa.codegen`) and count every store
    access ``write_weight`` times in the majority vote.  Same
    deterministic low-id tie-break as the other policies.

    Falls back to plain majority (== ``optimal_target``) for read-only
    blocks, where co-location has nothing extra to say.
    """
    weighted: Counter = Counter()
    mem_seq = 0
    for inst in block.gpu_code:
        if inst.kind not in ("rdf", "wta"):
            continue
        group = all_accesses[mem_seq]
        mem_seq += 1
        weight = write_weight if inst.kind == "wta" else 1
        owners = amap.hmc_of_lines(np.asarray(
            [a.line_addr for a in group], dtype=np.int64)).tolist()
        for owner in owners:
            weighted[owner] += weight
    if not weighted:
        raise ValueError("offload block has no memory accesses")
    best = max(weighted.items(), key=lambda kv: (kv[1], -kv[0]))
    return best[0]


def block_traffic(all_accesses, target: int, amap: AddressMap) -> int:
    """Inter-stack line movements for a block executed on ``target``:
    every access whose owner is not the target crosses the network once."""
    lines = np.asarray(
        [a.line_addr for group in all_accesses for a in group],
        dtype=np.int64)
    owners = amap.hmc_of_lines(lines)
    return int(np.count_nonzero(owners != target))


def target_policy_traffic_study(
        num_hmcs: int = 8,
        access_counts=tuple(range(1, 65)),
        trials: int = 20_000,
        seed: int = 7) -> dict:
    """Monte-Carlo reproduction of Figure 5.

    Memory accesses within a block are mapped to HMCs uniformly at random
    (the paper's random 4 KB page mapping).  For each block size we compare
    the expected off-chip traffic of the first-access policy against the
    optimal policy, normalized so the worst case (every access remote)
    equals 1 -- matching the figure's "normalized amount of traffic" axis.

    Returns a dict with ``n_accesses``, ``first_policy``, ``optimal`` and
    ``ratio`` (first/optimal) arrays.
    """
    rng = np.random.default_rng(seed)
    ns, first_t, opt_t = [], [], []
    rows = np.arange(trials)
    for n in access_counts:
        draws = rng.integers(0, num_hmcs, size=(trials, n))
        # First policy: the target is the stack of the first access.
        first_target = draws[:, 0]
        remote_first = (draws != first_target[:, None]).sum(axis=1)
        # Optimal policy: the modal stack.
        counts = np.zeros((trials, num_hmcs), dtype=np.int64)
        for j in range(n):
            counts[rows, draws[:, j]] += 1
        opt_remote = n - counts.max(axis=1)
        ns.append(n)
        first_t.append(remote_first.mean() / n)
        opt_t.append(opt_remote.mean() / n)
    first_arr = np.asarray(first_t)
    opt_arr = np.asarray(opt_t)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(opt_arr > 0, first_arr / np.maximum(opt_arr, 1e-12),
                         1.0)
    return {
        "n_accesses": np.asarray(ns),
        "first_policy": first_arr,
        "optimal": opt_arr,
        "ratio": ratio,
    }
