"""Credit-based NSU buffer management (paper Section 4.3).

The GPU hosts one buffer manager that tracks credits for the three NDP
buffers of every NSU: the offload-command buffer, the read-data buffer and
the write-address buffer.  An SM reserves entries for a whole offload block
*before* any packet leaves the GPU (one command entry, one read-data entry
per load instruction, one write-address entry per store instruction).  The
NSU returns credits as entries free up.  Because a block's packets are only
released once all its NSU buffer space is guaranteed, the NSU can always
drain the network -- the deadlock-freedom argument of Section 4.3.

Reservations that cannot be granted immediately queue FIFO per HMC and are
granted as credits return; the owning SM keeps the block's packets in its
pending packet buffer meanwhile (Section 4.1.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.sim.engine import Engine

#: Delay for a credit to travel back to the GPU-side manager.  Credits are
#: piggybacked on other packets (Section 4.3) so they cost no bandwidth,
#: only latency.
CREDIT_RETURN_DELAY = 10


@dataclass
class Reservation:
    """One pending/granted buffer reservation for an offload block."""

    hmc: int
    cmd: int
    read_data: int
    write_addr: int
    on_grant: Callable[[], None]
    granted: bool = False


class _HMCCredits:
    __slots__ = ("cmd", "read_data", "write_addr", "waiting")

    def __init__(self, cmd: int, read_data: int, write_addr: int) -> None:
        self.cmd = cmd
        self.read_data = read_data
        self.write_addr = write_addr
        self.waiting: deque[Reservation] = deque()

    def can_grant(self, r: Reservation) -> bool:
        return (self.cmd >= r.cmd and self.read_data >= r.read_data
                and self.write_addr >= r.write_addr)

    def take(self, r: Reservation) -> None:
        self.cmd -= r.cmd
        self.read_data -= r.read_data
        self.write_addr -= r.write_addr


class BufferCreditManager:
    """GPU-side credit manager for all NSU buffers (Section 4.3)."""

    def __init__(self, engine: Engine, num_hmcs: int, *,
                 cmd_entries: int, read_data_entries: int,
                 write_addr_entries: int) -> None:
        self.engine = engine
        self.faults = None   # armed by the system when a plan is active
        self._init = (cmd_entries, read_data_entries, write_addr_entries)
        self._credits = [
            _HMCCredits(cmd_entries, read_data_entries, write_addr_entries)
            for _ in range(num_hmcs)
        ]
        self.reservations_granted = 0
        self.reservations_queued = 0
        self.reservations_cancelled = 0

    def reserve(self, hmc: int, *, num_loads: int, num_stores: int,
                on_grant: Callable[[], None]) -> Reservation:
        """Request buffer space for one offload block.

        ``on_grant`` fires (possibly immediately) when the reservation is
        granted.  A block that over-asks the *total* buffer size could
        never be granted; the analyzer's sequence-number bound prevents
        this, and we assert it here.
        """
        c0, r0, w0 = self._init
        if num_loads > r0 or num_stores > w0:
            raise ValueError(
                f"offload block needs {num_loads} read / {num_stores} write "
                f"entries but NSU buffers only hold {r0}/{w0}")
        res = Reservation(hmc, 1, num_loads, num_stores, on_grant)
        bank = self._credits[hmc]
        if not bank.waiting and bank.can_grant(res):
            bank.take(res)
            res.granted = True
            self.reservations_granted += 1
            on_grant()
        else:
            bank.waiting.append(res)
            self.reservations_queued += 1
        return res

    # -- credit return ---------------------------------------------------------

    def release(self, hmc: int, *, cmd: int = 0, read_data: int = 0,
                write_addr: int = 0, delay: int = CREDIT_RETURN_DELAY) -> bool:
        """NSU returns credits (piggybacked; latency only, no bandwidth).

        Returns False when an armed fault plan drops the credit-return
        message -- the caller's ledger keeps the entries until recovery
        reconciles them (see :meth:`reconcile`)."""
        if (self.faults is not None
                and self.faults.decide("credit") is not None):
            return False

        def apply() -> None:
            bank = self._credits[hmc]
            bank.cmd += cmd
            bank.read_data += read_data
            bank.write_addr += write_addr
            self._drain(hmc)
        if delay:
            self.engine.after(delay, apply)
        else:
            apply()
        return True

    def reconcile(self, hmc: int, *, cmd: int = 0, read_data: int = 0,
                  write_addr: int = 0) -> None:
        """Restore credits immediately, bypassing fault injection.

        The recovery layer calls this when an offload instance completes
        or aborts with unreturned entries (dropped credit messages or
        purged buffer state): the GPU-side manager knows exactly what the
        block reserved, so it can reconstruct the ledger on timeout."""
        bank = self._credits[hmc]
        bank.cmd += cmd
        bank.read_data += read_data
        bank.write_addr += write_addr
        self._drain(hmc)

    def cancel(self, res: Reservation) -> bool:
        """Remove a still-queued reservation (recovery retry/fallback).
        Returns False when it was already granted or already removed."""
        bank = self._credits[res.hmc]
        try:
            bank.waiting.remove(res)
        except ValueError:
            return False
        self.reservations_cancelled += 1
        self._drain(res.hmc)
        return True

    def _drain(self, hmc: int) -> None:
        bank = self._credits[hmc]
        while bank.waiting and bank.can_grant(bank.waiting[0]):
            res = bank.waiting.popleft()
            bank.take(res)
            res.granted = True
            self.reservations_granted += 1
            res.on_grant()

    # -- introspection -----------------------------------------------------------

    def available(self, hmc: int) -> tuple[int, int, int]:
        b = self._credits[hmc]
        return (b.cmd, b.read_data, b.write_addr)

    def queue_depth(self, hmc: int) -> int:
        return len(self._credits[hmc].waiting)

    def assert_conserved(self) -> None:
        """Invariant check: credits never exceed the configured capacity
        once all reservations are released (used by property tests)."""
        c0, r0, w0 = self._init
        for i, b in enumerate(self._credits):
            if b.cmd > c0 or b.read_data > r0 or b.write_addr > w0:
                raise AssertionError(
                    f"credit overflow on HMC {i}: {b.cmd}/{b.read_data}/"
                    f"{b.write_addr} vs capacity {c0}/{r0}/{w0}")
