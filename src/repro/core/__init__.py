"""The paper's contribution: partitioned-execution NDP without an MMU on
the memory stack.

Modules
-------
packets
    Offload packet formats and size accounting (Figure 4).
credit
    Credit-based NSU buffer management / deadlock prevention (Section 4.3).
buffers
    NSU-side read-data, write-address and command buffers (Section 4.1.2).
target_select
    Target-NSU selection policies and the Figure 5 study.
nsu
    The Near-data-processing SIMD Unit (Section 4.5).
offload
    GPU-side NDP controller: OFLD.BEG/END semantics, RDF/WTA generation,
    cache probing, ACK delivery (Section 4.1.1).
decision
    Offload decision policies: naive, static ratio, hill-climbing dynamic
    ratio (Algorithm 1), cache-locality-aware filtering (Section 7.3).
coherence
    Cache-invalidation-based coherence and dynamic-memory-management
    guards (Sections 4.2 and 4.1.1).
"""

from repro.core.packets import PacketSizes, OffloadPacketId
from repro.core.credit import BufferCreditManager, Reservation
from repro.core.buffers import ReadDataBuffer, WriteAddressBuffer
from repro.core.target_select import (
    first_instr_target,
    optimal_target,
    target_policy_traffic_study,
)
from repro.core.decision import (
    AlwaysOffload,
    CacheLocalityTracker,
    HillClimbingController,
    NeverOffload,
    StaticRatioDecider,
    DynamicDecider,
    make_decider,
)

__all__ = [
    "PacketSizes",
    "OffloadPacketId",
    "BufferCreditManager",
    "Reservation",
    "ReadDataBuffer",
    "WriteAddressBuffer",
    "first_instr_target",
    "optimal_target",
    "target_policy_traffic_study",
    "AlwaysOffload",
    "NeverOffload",
    "StaticRatioDecider",
    "DynamicDecider",
    "HillClimbingController",
    "CacheLocalityTracker",
    "make_decider",
]
