"""The Near-data-processing SIMD Unit (paper Sections 4.1.2 and 4.5).

The NSU is a deliberately small core on the stack's logic layer: warp slots,
a physical instruction cache, a register file, and the three NDP buffers --
*no* MMU/TLB, *no* data cache, *no* coalescer.  Every memory address it
consumes was generated and translated on the GPU; loads pop the read-data
buffer, stores pop the write-address buffer.

Clocking: the NSU runs at half the SM frequency (Table 2); the system calls
:meth:`tick` once per NSU cycle via a rate accumulator.  All timestamps stay
in SM cycles.
"""

from __future__ import annotations

from collections import deque

from repro.config import LINE_SIZE, SystemConfig
from repro.core.buffers import ReadDataBuffer, WriteAddressBuffer
from repro.gpu.cache import Cache, CacheStats
from repro.sim.engine import Engine

#: Bytes per NSU instruction in its I-cache footprint (Figure 11 metric).
NSU_INSTR_BYTES = 16

#: Load-to-use latency from the read-data buffer (SM cycles): a local SRAM
#: access, far cheaper than a cache hierarchy.
READ_BUFFER_LATENCY = 4


class NSUWarp:
    """One spawned offload-block execution on an NSU."""

    __slots__ = ("inst", "code", "sub_pc", "reg_ready",
                 "outstanding_writes", "state", "wait_key")

    def __init__(self, inst) -> None:
        self.inst = inst
        self.code = inst.block.nsu_code
        self.sub_pc = 1          # skip OFLD.BEG, executed at spawn
        self.reg_ready: dict[int, int] = {}
        self.outstanding_writes = 0
        self.state = "ready"     # ready | wait_read | wait_wta | wait_reg
                                 # | wait_writes
        self.wait_key = None


class NSU:
    """One NSU: warp slots + command queue + NDP buffers + issue logic."""

    def __init__(self, engine: Engine, cfg: SystemConfig, hmc_id: int,
                 controller) -> None:
        self.engine = engine
        self.cfg = cfg
        self.hmc_id = hmc_id
        self.controller = controller   # NDPController: write routing, ACKs
        self.faults = None   # armed by the system when a plan is active
        n = cfg.nsu
        self.num_slots = n.num_warp_slots
        self.alu_latency_sm = int(round(
            n.alu_latency / n.cycles_per_sm_cycle(cfg.gpu.sm_clock_mhz)))
        # Temporal SIMT (Section 4.5): a narrow datapath re-issues a
        # 32-thread warp instruction over several NSU cycles.
        self.subcycles_per_instr = max(1, -(-n.warp_width // n.simd_width))
        self._busy_subcycles = 0
        self.read_buf = ReadDataBuffer(n.read_data_entries)
        self.wta_buf = WriteAddressBuffer(n.write_addr_entries)
        self.cmd_queue: deque = deque()
        self.warps: list[NSUWarp] = []
        self.ready: deque[NSUWarp] = deque()
        # WTA packets may arrive before their entry is expected; count the
        # arrived packets per key until the expectation lands.
        self._wta_arrived: dict[tuple, list] = {}
        self._wta_expected: dict[tuple, int] = {}
        # Waiters on read/WTA completion, keyed like the buffers.
        self._read_waiters: dict[tuple, NSUWarp] = {}
        self._wta_waiters: dict[tuple, NSUWarp] = {}
        # Optional read-only cache (Section 7.1 extension): caches data
        # the GPU re-ships on RDF hits, so hot constant structures cost
        # one transfer instead of one per block instance.
        self.ro_cache: Cache | None = None
        self.ro_stats = CacheStats()
        if n.ro_cache_bytes:
            self.ro_cache = Cache(n.ro_cache_bytes, 4, LINE_SIZE,
                                  self.ro_stats)
        # Statistics (Figure 11).
        self.icache_lines = max(1, n.icache_bytes // n.icache_line)
        self.icache_touched: set[int] = set()
        self.instructions = 0
        self.alu_ops = 0
        self.occupancy_sum = 0.0
        self.cycles = 0
        self.cmds_received = 0

    # -- command / spawn ---------------------------------------------------------

    def receive_cmd(self, inst) -> None:
        """An offload command packet arrived at the logic layer."""
        self.cmds_received += 1
        if len(self.cmd_queue) >= self.cfg.nsu.cmd_buffer_entries:
            raise AssertionError(
                "offload command buffer overflow: credit management must "
                "prevent this (Section 4.3)")
        self.cmd_queue.append(inst)
        self._try_spawn()

    def _try_spawn(self) -> None:
        while self.cmd_queue and len(self.warps) < self.num_slots:
            inst = self.cmd_queue.popleft()
            warp = NSUWarp(inst)
            now = self.engine.now
            # OFLD.BEG: initialize live-in registers from the command packet.
            for reg in inst.block.send_regs:
                warp.reg_ready[reg] = now
            self._touch_icache(inst.block)
            self.warps.append(warp)
            self.ready.append(warp)
            # The command buffer entry frees as the warp spawns.
            self.controller.release_credits(self.hmc_id, inst, cmd=1)

    def _touch_icache(self, block) -> None:
        start_line, n_lines = self.controller.code_layout[block.block_id]
        for l in range(start_line, start_line + n_lines):
            self.icache_touched.add(l % self.icache_lines)

    # -- data delivery (called by the controller's packet plumbing) ---------------

    def expect_read(self, key: tuple, words: int) -> None:
        self.read_buf.expect(key, words)

    def deliver_read(self, key: tuple, words: int,
                     cacheable_line: int | None = None) -> None:
        if (self.faults is not None
                and self.faults.decide("nsu_buffer") is not None):
            # Buffer-entry corruption: ECC detects it and the delivery is
            # discarded; the entry stays incomplete until recovery replays.
            return
        if self.ro_cache is not None and cacheable_line is not None:
            self.ro_cache.insert(cacheable_line)
        if self.read_buf.deliver(key, words):
            warp = self._read_waiters.pop(key, None)
            if warp is not None:
                self._wake(warp)

    def ro_cache_hit(self, line_addr: int) -> bool:
        """True when the NSU's read-only cache already holds the line."""
        return self.ro_cache is not None and self.ro_cache.lookup(line_addr)

    def ro_invalidate(self, line_addr: int) -> None:
        if self.ro_cache is not None:
            self.ro_cache.invalidate(line_addr)

    def expect_wta(self, key: tuple, n_packets: int) -> None:
        self._wta_expected[key] = n_packets
        self._check_wta(key)

    def deliver_wta(self, key: tuple, access) -> None:
        if (self.faults is not None
                and self.faults.decide("nsu_buffer") is not None):
            # Corrupted write-address entry: discarded on arrival; the
            # controller's stale/lost accounting keeps WTA counters sane.
            self.controller.wta_discarded(access)
            return
        self._wta_arrived.setdefault(key, []).append(access)
        self._check_wta(key)

    def _check_wta(self, key: tuple) -> None:
        exp = self._wta_expected.get(key)
        arrived = self._wta_arrived.get(key, [])
        if exp is not None and len(arrived) >= exp:
            self.wta_buf.deliver(key, tuple(arrived))
            del self._wta_expected[key]
            self._wta_arrived.pop(key, None)
            warp = self._wta_waiters.pop(key, None)
            if warp is not None:
                self._wake(warp)

    def _wake(self, warp: NSUWarp) -> None:
        if warp.state != "ready":
            warp.state = "ready"
            warp.wait_key = None
            self.ready.append(warp)

    # -- execution -----------------------------------------------------------------

    def tick(self) -> bool:
        """One NSU cycle: account occupancy, issue at most one instruction."""
        self.cycles += 1
        self.occupancy_sum += len(self.warps)
        if self._busy_subcycles > 0:
            # A previous warp instruction still streams through the
            # narrow datapath (temporal SIMT).
            self._busy_subcycles -= 1
            return True
        n_ready = len(self.ready)
        for _ in range(n_ready):
            warp = self.ready.popleft()
            status = self._try_issue(warp)
            if status == "issued":
                if warp.state != "done":
                    self.ready.append(warp)
                self._busy_subcycles = self.subcycles_per_instr - 1
                return True
            if status == "retry":
                self.ready.append(warp)
                # round-robin: try the next ready warp this cycle
            # "blocked": the warp left the ready queue; wake() re-adds it.
        return False

    def account_idle(self, nsu_cycles: int) -> None:
        """Bulk occupancy accounting while the system fast-forwards."""
        self.cycles += nsu_cycles
        self.occupancy_sum += len(self.warps) * nsu_cycles

    @property
    def has_ready(self) -> bool:
        return bool(self.ready)

    @property
    def quiescent(self) -> bool:
        """True when a tick could only burn occupancy accounting: no warp
        instruction is streaming through the datapath and nothing is ready
        to issue.  The active scheduler replaces such ticks with an exactly
        equivalent :meth:`account_idle` call (``cycles`` and
        ``occupancy_sum`` advance identically; nothing else moves)."""
        return self._busy_subcycles == 0 and not self.ready

    def next_wake(self) -> int | None:
        """Earliest cycle this NSU can make progress on its own, or ``None``
        when only a delivery (read data, WTA, command, write ack) can."""
        return None if self.quiescent else self.engine.now + 1

    @property
    def idle(self) -> bool:
        return not self.warps and not self.cmd_queue

    def _try_issue(self, warp: NSUWarp) -> str:
        now = self.engine.now
        n = warp.code[warp.sub_pc]
        inst = warp.inst
        if n.kind == "ld":
            key = (inst.uid, n.seq)
            if not self.read_buf.is_complete(key):
                warp.state = "wait_read"
                warp.wait_key = key
                self._read_waiters[key] = warp
                return "blocked"
            self.read_buf.consume(key)
            self.controller.release_credits(self.hmc_id, inst, read_data=1)
            warp.reg_ready[n.instr.dst] = now + READ_BUFFER_LATENCY
        elif n.kind == "alu":
            ready_at = max((warp.reg_ready.get(r, 0) for r in n.instr.reads),
                           default=0)
            if ready_at > now:
                # Short producer latencies: retry on later ticks.
                return "retry"
            if n.instr.dst is not None:
                warp.reg_ready[n.instr.dst] = now + self.alu_latency_sm
            self.alu_ops += 1
        elif n.kind == "st":
            key = (inst.uid, n.seq)
            if not self.wta_buf.has(key):
                warp.state = "wait_wta"
                warp.wait_key = key
                self._wta_waiters[key] = warp
                return "blocked"
            data_ready = max(
                (warp.reg_ready.get(r, 0) for r in n.instr.srcs), default=0)
            if data_ready > now:
                # Keep the WTA entry for the retry.
                return "retry"
            accesses = self.wta_buf.consume(key)
            self.controller.release_credits(self.hmc_id, inst, write_addr=1)
            for acc in accesses:
                warp.outstanding_writes += 1
                self.controller.ndp_write(self, warp, acc)
        elif n.kind == "end":
            if warp.outstanding_writes > 0:
                warp.state = "wait_writes"
                return "blocked"
            self._finish(warp)
            self.instructions += 1
            return "issued"
        else:  # pragma: no cover - beg consumed at spawn
            raise AssertionError(f"unexpected NSU op {n.kind}")
        warp.sub_pc += 1
        self.instructions += 1
        return "issued"

    def write_done(self, warp: NSUWarp) -> None:
        """A DRAM write issued by this warp was acknowledged."""
        warp.outstanding_writes -= 1
        if warp.state == "aborted":
            return   # recovery purged the warp; the write still landed
        if warp.outstanding_writes == 0 and warp.state == "wait_writes":
            self._wake(warp)

    def _finish(self, warp: NSUWarp) -> None:
        """OFLD.END: ship the ACK with live-out registers, free the slot."""
        self.warps.remove(warp)
        warp.state = "done"
        self.controller.send_ack(self, warp.inst)
        self._try_spawn()

    # -- recovery ----------------------------------------------------------------

    def purge_instance(self, uid) -> tuple[int, list]:
        """Abort one offload instance: evict its warp, queued command and
        buffer state (recovery retry/fallback).

        Returns ``(read_entries_purged, wta_accesses_purged)`` so the
        controller can reconcile credits and in-flight WTA counters."""
        for warp in [w for w in self.warps if w.inst.uid == uid]:
            self.warps.remove(warp)
            warp.state = "aborted"
        self.ready = deque(w for w in self.ready if w.inst.uid != uid)
        self.cmd_queue = deque(i for i in self.cmd_queue if i.uid != uid)
        for key in [k for k in self._read_waiters if k[0] == uid]:
            del self._read_waiters[key]
        for key in [k for k in self._wta_waiters if k[0] == uid]:
            del self._wta_waiters[key]
        reads = self.read_buf.purge_uid(uid)
        wta = self.wta_buf.purge_uid(uid)
        for key in [k for k in self._wta_arrived if k[0] == uid]:
            wta.extend(self._wta_arrived.pop(key))
        for key in [k for k in self._wta_expected if k[0] == uid]:
            del self._wta_expected[key]
        self._try_spawn()
        return reads, wta

    # -- introspection -----------------------------------------------------------

    @property
    def avg_occupancy(self) -> float:
        return self.occupancy_sum / max(1, self.cycles)

    @property
    def icache_utilization(self) -> float:
        return len(self.icache_touched) / self.icache_lines

    def metrics_snapshot(self) -> dict:
        """Counters/gauges published into the metrics registry."""
        return {
            "warps": len(self.warps),
            "ready": len(self.ready),
            "cmd_queue": len(self.cmd_queue),
            "read_buf": len(self.read_buf),
            "read_buf_peak": self.read_buf.peak,
            "wta_buf": len(self.wta_buf),
            "wta_buf_peak": self.wta_buf.peak,
            "instructions": self.instructions,
            "cmds_received": self.cmds_received,
            "avg_occupancy": self.avg_occupancy,
        }
