"""Structured run-level observability: counters, histograms, heartbeats.

A :class:`MetricsRegistry` attaches to a :class:`~repro.sim.system.System`
(``System(cfg, metrics=registry)`` or ``run_workload(..., metrics=...)``).
During the run the system samples every component's ``metrics_snapshot()``
on a heartbeat cadence -- SMs, NSUs, HMC vaults, the two link fabrics and
the event engine all publish into the registry -- and at the end it writes
a summary with stall attribution, packet counts by kind, per-class traffic
bytes and the cycle-phase split (stepped vs. fast-forwarded cycles).

Export is JSON Lines (one record per line), designed to be greppable and
to stream into pandas:

* ``{"kind": "meta", ...}``       -- one leading record: workload, config,
  scale, heartbeat cadence, schema version.
* ``{"kind": "heartbeat", "cycle": C, "gauges": {...}, "counters": {...}}``
  -- periodic samples; gauges are instantaneous (queue depths, live
  warps), counters are cumulative at the sample point.
* ``{"kind": "summary", ...}``    -- final counters, histograms, the
  Figure 8 stall attribution and packet-kind totals.

See ``docs/observability.md`` for the full schema and how to read a
stall-attribution dump.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Schema version stamped into every export's meta record.  Bump when the
#: record layout changes incompatibly.
SCHEMA_VERSION = 1

#: Default sampling cadence in SM cycles.
DEFAULT_HEARTBEAT_CYCLES = 1000

#: Default histogram bucket upper bounds (occupancy-style quantities).
DEFAULT_BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)

#: The metric-name registry: every dotted name published into a
#: :class:`MetricsRegistry` must appear here, either verbatim or by
#: matching a ``prefix.*`` pattern (names keyed by an open vocabulary:
#: packet kinds, fault sites, traffic classes, recovery counters).
#: ``repro lint`` (PROTO002) statically checks emission sites against
#: this set, so a typo'd metric name fails CI instead of silently
#: splitting a time series.
KNOWN_METRICS = frozenset({
    # SM / NSU execution
    "sm.live_warps", "sm.ready_warps", "sm.instructions",
    "nsu.warps", "nsu.cmd_queue", "nsu.read_buf", "nsu.wta_buf",
    "nsu.instructions",
    "warps.completed",
    # memory system
    "vault.queue_total", "vault.queue_max", "vault.queue_occupancy",
    "dram.activations", "l2.misses",
    # fabrics / engine
    "gpu_link.max_queue_delay", "mem_net.max_queue_delay",
    "engine.pending_events",
    # Figure 8 stall attribution
    "stall.exec_unit_busy", "stall.dependency", "stall.warp_idle",
    # open vocabularies
    "traffic.*", "packets.*", "faults.*", "recovery.*",
    # design-space exploration (repro explore) counters
    "explore.*",
    # simulation-as-a-service daemon (repro serve) counters/latencies
    "serve.*",
    # runtime lock-sanitizer counters (repro.lint.sanitize, armed via
    # REPRO_SANITIZE=1)
    "sanitize.*",
})


def is_known_metric(name: str) -> bool:
    """True when ``name`` is registered, verbatim or via a pattern."""
    if name in KNOWN_METRICS:
        return True
    return any(p.endswith(".*") and name.startswith(p[:-1])
               for p in KNOWN_METRICS)


@dataclass
class Counter:
    """A cumulative metric.  ``add`` increments; ``set`` records the
    latest cumulative value published by a component that keeps its own
    running total (never moving backwards)."""

    name: str
    value: int | float = 0

    def add(self, n: int | float = 1) -> None:
        self.value += n

    def set(self, v: int | float) -> None:
        if v > self.value:
            self.value = v


class Histogram:
    """Fixed-bound histogram with count/sum/max, Prometheus-style.

    ``bounds`` are inclusive upper bounds of each bucket; observations
    above the last bound land in the overflow bucket.
    """

    def __init__(self, name: str, bounds=DEFAULT_BOUNDS) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        for i, b in enumerate(self.bounds):
            if value <= b:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-th percentile (0..100) from
        the bucket counts: the smallest bound holding at least ``q``% of
        observations (``max`` for the overflow bucket).  Exact enough for
        the serve daemon's p50/p99 latency gauges."""
        if not self.count:
            return 0.0
        need = self.count * min(max(q, 0.0), 100.0) / 100.0
        seen = 0
        for i, b in enumerate(self.bounds):
            seen += self.buckets[i]
            if seen >= need:
                return float(b)
        return float(self.max)

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "mean": self.mean,
            "max": self.max,
        }


class MetricsRegistry:
    """Named counters + histograms + a stream of timestamped records."""

    def __init__(self, heartbeat_cycles: int = DEFAULT_HEARTBEAT_CYCLES) -> None:
        self.heartbeat_cycles = max(1, int(heartbeat_cycles))
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}
        self.records: list[dict] = []
        self.meta: dict = {}

    # -- metric handles ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def histogram(self, name: str, bounds=DEFAULT_BOUNDS) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, bounds)
        return h

    def observe(self, name: str, value: float, bounds=DEFAULT_BOUNDS) -> None:
        self.histogram(name, bounds).observe(value)

    def set_counters(self, values: dict[str, int | float],
                     prefix: str = "") -> None:
        """Publish a component's cumulative counters under a prefix."""
        for k, v in sorted(values.items()):
            self.counter(f"{prefix}{k}" if prefix else k).set(v)

    # -- record stream -------------------------------------------------------

    def record(self, kind: str, **fields) -> dict:
        rec = {"kind": kind, **fields}
        self.records.append(rec)
        return rec

    def heartbeat(self, cycle: int, gauges: dict,
                  counters: dict | None = None) -> dict:
        return self.record("heartbeat", cycle=cycle, gauges=gauges,
                           counters=counters or {})

    @property
    def heartbeats(self) -> list[dict]:
        return [r for r in self.records if r["kind"] == "heartbeat"]

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict:
        """All counters + histograms as one plain dict."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "histograms": {k: h.as_dict()
                           for k, h in sorted(self.histograms.items())},
        }

    def to_records(self) -> list[dict]:
        """The full export: meta record, stream, then one summary."""
        meta = {"kind": "meta", "schema_version": SCHEMA_VERSION,
                "heartbeat_cycles": self.heartbeat_cycles, **self.meta}
        summary = {"kind": "summary", **self.snapshot()}
        for r in self.records:
            if r["kind"] == "summary":
                # A system already published a structured summary; keep it
                # and fold the registry totals into it.
                merged = dict(r)
                merged.update(summary)
                return [meta] + [x for x in self.records
                                 if x["kind"] != "summary"] + [merged]
        return [meta] + list(self.records) + [summary]

    def export_jsonl(self, path) -> int:
        """Write the JSONL stream; returns the number of records."""
        recs = self.to_records()
        with open(path, "w") as f:
            for r in recs:
                f.write(json.dumps(r, default=_jsonable) + "\n")
        return len(recs)


def _jsonable(obj):
    if isinstance(obj, (set, tuple)):
        return list(obj)
    if hasattr(obj, "as_dict"):
        return obj.as_dict()
    return repr(obj)


def read_jsonl(path) -> list[dict]:
    """Load a metrics export back into a list of records."""
    out = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


@dataclass
class PhaseCycles:
    """Cycle-accounting of the main loop: how simulated time was spent."""

    stepped: int = 0          # cycles advanced one-by-one with live issue
    fast_forwarded: int = 0   # cycles skipped across quiet regions
    epochs: int = 0           # Algorithm 1 epoch boundaries crossed
    events: int = 0           # engine callbacks processed
    heartbeats: int = 0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"stepped": self.stepped,
                "fast_forwarded": self.fast_forwarded,
                "total": self.stepped + self.fast_forwarded,
                "epochs": self.epochs, "events": self.events,
                "heartbeats": self.heartbeats, **self.extra}
