"""Cycle-level discrete-event simulation engine and system wiring."""

from repro.sim.engine import Engine, Link, RateAccumulator
from repro.sim.results import RunResult, StallBreakdown, TrafficBytes

__all__ = [
    "Engine",
    "Link",
    "RateAccumulator",
    "RunResult",
    "StallBreakdown",
    "TrafficBytes",
]
