"""System assembly and the main simulation loop.

``System`` wires the GPU (SMs + caches + links), the HMC stacks, the memory
network, the NSUs and the NDP controller together from a
:class:`~repro.config.SystemConfig`, distributes a workload's warp traces
across the SMs, and runs to completion with epoch-based offload-ratio
updates (Algorithm 1).
"""

from __future__ import annotations


from repro.config import OffloadMode, SystemConfig
from repro.core.decision import DynamicDecider, make_decider
from repro.core.nsu import NSU
from repro.core.offload import NDPController
from repro.gpu.sm import SM
from repro.memory.backend import resolve_backend
from repro.network.fabric import GPULinks, MemoryNetwork
from repro.sim.engine import Engine, LinkCounters, RateAccumulator
from repro.sim.results import RunResult, StallBreakdown, TrafficBytes


class SimulationTimeout(RuntimeError):
    """The run exceeded its cycle budget (lost packet / deadlock guard)."""


class System:
    """A complete simulated node: GPU + stacks + network + NDP.

    Pass ``metrics`` (a :class:`~repro.sim.metrics.MetricsRegistry`) to
    sample component counters on a heartbeat cadence during :meth:`run`
    and publish a structured summary at the end.
    """

    def __init__(self, cfg: SystemConfig, *, config_name: str = "",
                 metrics=None, faults=None, sched: str = "active") -> None:
        if sched not in ("legacy", "active"):
            raise ValueError(f"unknown scheduler {sched!r}; "
                             "choose 'legacy' or 'active'")
        self.cfg = cfg
        self.config_name = config_name or cfg.ndp.mode
        self.metrics = metrics
        # Main-loop scheduling strategy.  "active" ticks only SMs that can
        # make progress (per-component sleep, lazily settled idle
        # accounting); "legacy" ticks every SM every stepped cycle.  Both
        # produce bit-identical results -- the switch is a run-time knob,
        # deliberately NOT part of SystemConfig, so store keys and result
        # digests are scheduler-independent.
        self.sched = sched
        self.sched_stats: dict = {}
        self._wq = None              # WakeQueue while _run_active is live
        self._deferred_integral = 0  # active-warp-cycles owed by sleepers
        self._sm_wakes = 0
        # Structural-reject parking: sm_id -> per-cycle counter cost for
        # SMs parked mid-retry-loop (MSHR-full / inflight-cap spin).  The
        # elided cycles' L1 miss + MSHR reject counters are replayed at
        # wake/settle time; membership also vetoes fast-forward, because
        # the legacy loop steps cycle-by-cycle while any SM can issue.
        self._struct_cost: dict[int, int] = {}
        self._struct_parks = 0
        self._struct_replayed = 0
        self.engine = Engine()
        self.counters = LinkCounters()
        # Memory substrate: every substrate-specific decision (address
        # map geometry, stack objects, link parameters, NDP queue depth,
        # fault sites) routes through the backend; "hmc" reproduces the
        # pre-backend wiring bit-identically.
        self.backend = resolve_backend(cfg.backend)
        self.backend.validate(cfg)
        self.amap = self.backend.make_address_map(cfg)
        self.gpu_links = GPULinks(self.engine, cfg, self.counters,
                                  **self.backend.gpu_link_kwargs(cfg))
        self.network = MemoryNetwork(self.engine, cfg, self.counters,
                                     bpc=self.backend.mem_link_bpc(cfg))
        self.hmcs = self.backend.build_stacks(self.engine, cfg, self.amap,
                                              self.counters)

        from repro.sim.memsys import GPUMemSystem
        self.memsys = GPUMemSystem(self.engine, cfg, amap=self.amap,
                                   gpu_links=self.gpu_links, hmcs=self.hmcs)

        self.decider = make_decider(cfg.ndp, seed=cfg.seed)
        ndp_enabled = cfg.ndp.mode != OffloadMode.OFF
        self.ndp = None
        self.nsus: list[NSU] = []
        if ndp_enabled:
            self.ndp = NDPController(
                self.engine, cfg, amap=self.amap, memsys=self.memsys,
                gpu_links=self.gpu_links, network=self.network,
                hmcs=self.hmcs, counters=self.counters, decider=self.decider,
                backend=self.backend)
            self.nsus = [NSU(self.engine, cfg, i, self.ndp)
                         for i in range(cfg.num_hmcs)]
            self.ndp.nsus = self.nsus
            for hmc, nsu in zip(self.hmcs, self.nsus):
                hmc.nsu = nsu

        g = cfg.gpu
        self.sms = [
            SM(self.engine, i, warps_per_sm=g.warps_per_sm,
               alu_latency=g.alu_latency,
               max_inflight_loads=g.max_inflight_loads_per_warp,
               memsys=self.memsys, ndp=self.ndp, decider=self.decider,
               scheduler=g.scheduler)
            for i in range(g.num_sms)
        ]
        self._nsu_rate = cfg.nsu.cycles_per_sm_cycle(g.sm_clock_mhz)
        self._nsu_accs = [RateAccumulator(self._nsu_rate)
                          for _ in self.nsus]
        self.workload_name = ""
        self._epoch_log: list[tuple[int, float]] = []
        from repro.sim.metrics import PhaseCycles
        self.phases = PhaseCycles()

        # Fault injection (repro.faults): arming is a plain attribute write
        # on each component -- an unarmed system carries ``faults = None``
        # everywhere and its event stream is untouched.
        self.faults_plan = faults
        self.fault_injector = None
        if faults is not None:
            from repro.faults.inject import FaultInjector
            inj = FaultInjector(faults, self.engine)
            self.fault_injector = inj
            self.network.faults = inj
            self.gpu_links.faults = inj
            for vault in self.backend.fault_controllers(self.hmcs):
                vault.faults = inj
            for nsu in self.nsus:
                nsu.faults = inj
            if self.ndp is not None:
                self.ndp.credits.faults = inj
            if faults.recovery is not None and faults.recovery.enabled:
                # One shared tracker so the ACK watchdog (NDP) and the
                # MSHR watchdog (baseline fills) resolve deadlines from
                # the same policy / adaptive EWMA state.
                from repro.faults.recovery import TimeoutTracker
                tracker = TimeoutTracker(faults.recovery)
                self.memsys.recovery = faults.recovery
                self.memsys.timeouts = tracker
                if self.ndp is not None:
                    self.ndp.recovery = faults.recovery
                    self.ndp.timeouts = tracker

    # -- workload loading ----------------------------------------------------------

    def load_workload(self, name: str, traces) -> None:
        """Distribute warp traces round-robin across the SMs."""
        self.workload_name = name
        n = len(self.sms)
        buckets = [[] for _ in range(n)]
        for i, t in enumerate(traces):
            buckets[i % n].append(t)
        for sm, bucket in zip(self.sms, buckets):
            sm.assign(bucket)

    def set_code_layout(self, blocks) -> None:
        if self.ndp is not None:
            self.ndp.set_code_layout(blocks)

    # -- main loop -------------------------------------------------------------------

    def run(self, max_cycles: int = 20_000_000) -> RunResult:
        """Simulate to completion and collect the result.

        Dispatches on ``self.sched``.  Both schedulers walk the exact same
        sequence of stepped and fast-forwarded cycles and produce
        bit-identical :class:`RunResult`\\ s (pinned by the cross-scheduler
        digest tests); ``active`` merely avoids calling ``tick()`` on
        components that provably cannot make progress.
        """
        if self.sched == "active":
            return self._run_active(max_cycles)
        return self._run_legacy(max_cycles)

    def _run_legacy(self, max_cycles: int) -> RunResult:
        engine = self.engine
        sms = self.sms
        nsus = self.nsus
        accs = self._nsu_accs
        epoch = self.cfg.ndp.epoch_cycles
        dyn = isinstance(self.decider, DynamicDecider)
        next_epoch = engine.now + epoch if dyn else None
        last_epoch_at = engine.now
        prev_block_instrs = 0
        # Algorithm 1 compares per-epoch throughput of offload-block
        # instructions.  At our scaled run lengths the warp population
        # ramps down within the run, which would superimpose a monotonic
        # decline on the signal; normalizing by active-warp-cycles makes
        # epochs comparable (the paper's multi-million-cycle runs are in
        # steady state and don't need this).
        active_integral = 0
        prev_active_integral = 0
        metrics = self.metrics
        next_heartbeat = (engine.now + metrics.heartbeat_cycles
                          if metrics is not None else None)
        ndp = self.ndp
        rec = ndp is not None and ndp.recovery is not None
        memsys = self.memsys
        mem_rec = memsys.recovery is not None

        while True:
            engine.process_due()
            if rec:
                ndp.poll_watchdogs(engine.now)
            if mem_rec:
                memsys.poll_watchdogs(engine.now)
            live = 0
            for sm in sms:
                sm.tick()
                live += sm.live_warps
            active_integral += live
            self.phases.stepped += 1
            for nsu, acc in zip(nsus, accs):
                for _ in range(acc.step()):
                    nsu.tick()

            if dyn and engine.now >= next_epoch:
                total = sum(sm.block_instrs_retired for sm in sms)
                d_active = max(1, active_integral - prev_active_integral)
                ipc = (total - prev_block_instrs) / d_active
                prev_block_instrs = total
                prev_active_integral = active_integral
                last_epoch_at = engine.now
                self.decider.end_epoch(ipc)
                self._epoch_log.append((engine.now, self.decider.ratio))
                self.phases.epochs += 1
                next_epoch = engine.now + epoch

            if next_heartbeat is not None and engine.now >= next_heartbeat:
                self._publish_heartbeat()
                next_heartbeat = engine.now + metrics.heartbeat_cycles

            if self._finished():
                break
            if engine.now >= max_cycles:
                raise SimulationTimeout(
                    f"{self.workload_name}/{self.config_name}: exceeded "
                    f"{max_cycles} cycles; "
                    f"{sum(sm.live_warps for sm in sms)} warps live")

            # Fast-forward across quiet regions: nothing can issue until
            # the next event, so jump there and account the idle cycles.
            if (not any(sm.can_issue_now for sm in sms)
                    and not any(n.has_ready for n in nsus)):
                nt = engine.next_event_time()
                if rec:
                    wd = ndp.next_watchdog_deadline()
                    if wd is not None and (nt is None or wd < nt):
                        nt = wd
                if mem_rec:
                    wd = memsys.next_watchdog_deadline()
                    if wd is not None and (nt is None or wd < nt):
                        nt = wd
                if nt is None:
                    # Quiet, no pending events, no watchdog armed, yet not
                    # finished: nothing can ever change.  Without recovery a
                    # lost packet lands here (detect it immediately instead
                    # of crawling to max_cycles one cycle at a time).
                    raise SimulationTimeout(
                        f"{self.workload_name}/{self.config_name}: deadlock "
                        f"at cycle {engine.now}; "
                        f"{sum(sm.live_warps for sm in sms)} warps live")
                if nt > engine.now + 1:
                    skip = nt - engine.now - 1
                    active_integral += skip * sum(
                        sm.live_warps for sm in sms)
                    for sm in sms:
                        sm.classify_idle_bulk(skip)
                    for nsu, acc in zip(nsus, accs):
                        idle_cycles = acc.step_many(skip)
                        if idle_cycles:
                            nsu.account_idle(idle_cycles)
                    engine.now = nt - 1
                    self.phases.fast_forwarded += skip
            engine.now += 1

        self.sched_stats = {"sm_ticks": self.phases.stepped * len(sms),
                            "sm_wakes": 0, "struct_parks": 0,
                            "struct_replayed": 0}
        return self._collect()

    # -- active-set scheduling (see docs/performance.md) ---------------------

    def _wake_sm(self, sm) -> None:
        """Activate a parked SM, settling its deferred idle accounting first.

        Called (via ``sm.waker``) at the TOP of every external wake path,
        before the wake mutates warp state: the slept cycles
        ``[since, now - 1]`` are classified against the frozen pre-wake
        state, exactly as the legacy loop would have classified them one
        cycle at a time.  A wake of an already-active SM is a no-op.
        """
        idx = sm.sm_id
        since = self._wq.wake(idx)
        if since is None:
            return
        self._sm_wakes += 1
        owed = self.engine.now - since
        cost = self._struct_cost.pop(idx, None)
        if owed > 0:
            if cost:
                self.memsys.replay_struct_rejects(idx, owed * cost)
                self._struct_replayed += owed * cost
            sm.classify_idle_bulk(owed)
            self._deferred_integral += owed * sm.live_warps

    def _wake_sm_id(self, sm_id: int) -> None:
        """``memsys.sm_waker`` adapter: L1 fills address SMs by id."""
        self._wake_sm(self.sms[sm_id])

    def _settle_asleep(self, now: int) -> None:
        """Settle every parked SM's idle accounting through ``now``
        *inclusive*, in place (the SMs stay parked).

        Run at every point that observes cross-SM aggregate state --
        Algorithm-1 epoch boundaries (``active_integral`` feeds the IPC
        normalization), heartbeats (stall counters are sampled), and both
        timeout raises (post-mortem state must match legacy) -- so those
        observers see exactly what the legacy loop would have accumulated.
        """
        wq = self._wq
        sms = self.sms
        struct_cost = self._struct_cost
        for idx, since in wq.asleep_items():
            owed = now - since + 1
            if owed > 0:
                sm = sms[idx]
                cost = struct_cost.get(idx)
                if cost:
                    self.memsys.replay_struct_rejects(idx, owed * cost)
                    self._struct_replayed += owed * cost
                sm.classify_idle_bulk(owed)
                self._deferred_integral += owed * sm.live_warps
                wq.set_since(idx, now + 1)

    def _run_active(self, max_cycles: int) -> RunResult:
        """Active-set main loop: tick only components that can progress.

        Equivalence with :meth:`_run_legacy` by construction:

        * The stepped/fast-forwarded cycle sets are identical -- the
          fast-forward predicate ``not wq.active`` equals legacy's
          ``not any(sm.can_issue_now)`` because active membership tracks
          ``can_issue_now`` exactly (parked on False after a tick, woken
          by the same external events that make it True).
        * A parked SM's would-be ticks are pure no-ops except for stall
          classification, and its classification inputs (``ready``,
          ``dep_count``, ``warps``, ``pending_traces``, ``live_warps``)
          are frozen while parked -- so deferring the accounting to wake
          or settle time is exact, not approximate.
        * NSUs never park: the temporal-SIMT ``_busy_subcycles`` countdown
          depends on the global stepped-cycle set, so quiescent NSU ticks
          are elided *eagerly* via :meth:`NSU.account_idle`, which is
          arithmetically identical to the elided ticks.
        """
        engine = self.engine
        sms = self.sms
        nsus = self.nsus
        epoch = self.cfg.ndp.epoch_cycles
        dyn = isinstance(self.decider, DynamicDecider)
        next_epoch = engine.now + epoch if dyn else None
        prev_block_instrs = 0
        active_integral = 0
        prev_active_integral = 0
        metrics = self.metrics
        next_heartbeat = (engine.now + metrics.heartbeat_cycles
                          if metrics is not None else None)
        ndp = self.ndp
        rec = ndp is not None and ndp.recovery is not None
        memsys = self.memsys
        mem_rec = memsys.recovery is not None
        phases = self.phases
        process_due = engine.process_due
        finished = self._finished
        settle = self._settle_asleep

        from repro.sim.engine import WakeQueue
        wq = WakeQueue(len(sms))
        self._wq = wq
        self._deferred_integral = 0
        self._sm_wakes = 0
        wake_sm = self._wake_sm
        for sm in sms:
            sm.waker = wake_sm
        # MSHR-capacity wake hook: a struct-parked SM registers no MSHR
        # waiter, so the L1 fill path must reactivate it explicitly.
        memsys.sm_waker = self._wake_sm_id
        self._struct_cost = {}
        struct_cost = self._struct_cost
        self._struct_parks = 0
        self._struct_replayed = 0
        # Every NSU shares one clock ratio, every accumulator sees the same
        # step/step_many sequence, so their fractional states are always
        # equal: one accumulator decides how many NSU cycles elapse for all
        # of them (the legacy loop advances each separately -- same result).
        acc = self._nsu_accs[0] if nsus else None
        # The hot loop mirrors ``engine.now`` in a local and reads WakeQueue
        # internals directly: both are per-cycle costs on the path this
        # whole subsystem exists to shrink.
        now = engine.now
        act = wq._active       # mutated in place by park/wake; identity stable
        timed = wq._timed
        sm_ticks = 0
        stepped = 0
        fast_forwarded = 0

        try:
            while True:
                process_due()
                if rec:
                    ndp.poll_watchdogs(now)
                if mem_rec:
                    memsys.poll_watchdogs(now)
                if timed:
                    for idx in wq.pop_due(now):
                        wake_sm(sms[idx])

                n_act = len(act)
                if n_act:
                    live = 0
                    since = now + 1
                    parks = None
                    struct_parks = None
                    for idx in act:
                        sm = sms[idx]
                        issued = sm.tick()
                        live += len(sm.warps)
                        if not (sm.ready or (sm.pending_traces
                                             and len(sm.warps)
                                             < sm.warps_per_sm)):
                            if parks is None:
                                parks = [idx]
                            else:
                                parks.append(idx)
                        elif not issued:
                            # Retry loop?  If every warp the scheduler
                            # would try next cycle is a pure structural
                            # load reject, park and replay the elided
                            # cycles' counters at wake time.
                            cost = sm.struct_park_probe()
                            if cost is not None:
                                if struct_parks is None:
                                    struct_parks = [(idx, cost)]
                                else:
                                    struct_parks.append((idx, cost))
                    if len(act) != n_act:   # pragma: no cover - see I3
                        raise RuntimeError(
                            "synchronous cross-SM wake during the tick "
                            "phase; route it through an engine event")
                    if parks is not None:
                        for idx in parks:
                            wq.park(idx, since)
                    if struct_parks is not None:
                        for idx, cost in struct_parks:
                            wq.park(idx, since)
                            struct_cost[idx] = cost
                        self._struct_parks += len(struct_parks)
                    active_integral += live
                    sm_ticks += n_act
                stepped += 1
                if acc is not None:
                    k = acc.step()
                    if k:
                        for nsu in nsus:
                            if nsu._busy_subcycles == 0 and not nsu.ready:
                                nsu.account_idle(k)
                            else:
                                for _ in range(k):
                                    nsu.tick()

                if dyn and now >= next_epoch:
                    settle(now)
                    active_integral += self._deferred_integral
                    self._deferred_integral = 0
                    total = sum(sm.block_instrs_retired for sm in sms)
                    d_active = max(1, active_integral - prev_active_integral)
                    ipc = (total - prev_block_instrs) / d_active
                    prev_block_instrs = total
                    prev_active_integral = active_integral
                    self.decider.end_epoch(ipc)
                    self._epoch_log.append((now, self.decider.ratio))
                    phases.epochs += 1
                    next_epoch = now + epoch

                if next_heartbeat is not None and now >= next_heartbeat:
                    settle(now)
                    self._publish_heartbeat()
                    next_heartbeat = now + metrics.heartbeat_cycles

                if finished():
                    settle(now)
                    break
                if now >= max_cycles:
                    settle(now)
                    raise SimulationTimeout(
                        f"{self.workload_name}/{self.config_name}: exceeded "
                        f"{max_cycles} cycles; "
                        f"{sum(sm.live_warps for sm in sms)} warps live")

                # Generalized fast-forward: with every SM parked and no NSU
                # holding issuable work, jump to the next external stimulus.
                # Struct-parked SMs veto the jump: the legacy loop steps
                # cycle-by-cycle while any SM holds issuable work, and the
                # stepped-cycle sets must stay identical (epoch boundaries
                # land in the digest via the epoch log).
                if not act and not struct_cost and not any(
                        n.has_ready for n in nsus):
                    nt = engine.next_event_time()
                    if rec:
                        wd = ndp.next_watchdog_deadline()
                        if wd is not None and (nt is None or wd < nt):
                            nt = wd
                    if mem_rec:
                        wd = memsys.next_watchdog_deadline()
                        if wd is not None and (nt is None or wd < nt):
                            nt = wd
                    wt = wq.next_time()
                    if wt is not None and (nt is None or wt < nt):
                        nt = wt
                    if nt is None:
                        settle(now)
                        raise SimulationTimeout(
                            f"{self.workload_name}/{self.config_name}: "
                            f"deadlock at cycle {now}; "
                            f"{sum(sm.live_warps for sm in sms)} warps live")
                    if nt > now + 1:
                        skip = nt - now - 1
                        if acc is not None:
                            idle_cycles = acc.step_many(skip)
                            if idle_cycles:
                                for nsu in nsus:
                                    nsu.account_idle(idle_cycles)
                        now = nt - 1
                        fast_forwarded += skip
                now += 1
                engine.now = now
        finally:
            for sm in sms:
                sm.waker = None
            memsys.sm_waker = None
            self._wq = None
            phases.stepped += stepped
            phases.fast_forwarded += fast_forwarded
            self.sched_stats = {"sm_ticks": sm_ticks,
                                "sm_wakes": self._sm_wakes,
                                "struct_parks": self._struct_parks,
                                "struct_replayed": self._struct_replayed}

        return self._collect()

    # -- metrics publishing --------------------------------------------------

    def _publish_heartbeat(self) -> None:
        """Sample every component's counters into the metrics registry."""
        m = self.metrics
        self.phases.heartbeats += 1
        sm_snaps = [sm.metrics_snapshot() for sm in self.sms]
        live = sum(s["live_warps"] for s in sm_snaps)
        ready = sum(s["ready_warps"] for s in sm_snaps)
        vault_q = [h.queue_occupancy for h in self.hmcs]
        nsu_snaps = [n.metrics_snapshot() for n in self.nsus]
        gauges = {
            "sm.live_warps": live,
            "sm.ready_warps": ready,
            "vault.queue_total": sum(vault_q),
            "vault.queue_max": max(vault_q, default=0),
            "engine.pending_events": self.engine.pending,
            "gpu_link.max_queue_delay":
                self.gpu_links.metrics_snapshot()["max_queue_delay"],
            "mem_net.max_queue_delay":
                self.network.metrics_snapshot()["max_queue_delay"],
        }
        counters = {
            "sm.instructions": sum(s["instructions"] for s in sm_snaps),
            "stall.exec_unit_busy":
                sum(s["stall_exec_unit_busy"] for s in sm_snaps),
            "stall.dependency":
                sum(s["stall_dependency"] for s in sm_snaps),
            "stall.warp_idle": sum(s["stall_warp_idle"] for s in sm_snaps),
            "traffic.gpu_link": self.counters.get("gpu_link"),
            "traffic.mem_net": self.counters.get("mem_net"),
            "traffic.intra_hmc": self.counters.get("intra_hmc"),
        }
        if nsu_snaps:
            gauges["nsu.warps"] = sum(s["warps"] for s in nsu_snaps)
            gauges["nsu.cmd_queue"] = sum(s["cmd_queue"] for s in nsu_snaps)
            gauges["nsu.read_buf"] = sum(s["read_buf"] for s in nsu_snaps)
            gauges["nsu.wta_buf"] = sum(s["wta_buf"] for s in nsu_snaps)
            counters["nsu.instructions"] = sum(
                s["instructions"] for s in nsu_snaps)
        if self.ndp is not None:
            # lint: ignore[DET002] -- fills a name-keyed counters dict;
            # registry publication is order-free
            for kind, n in self.ndp.stats.packet_counts().items():
                counters[f"packets.{kind}"] = n
        m.observe("vault.queue_occupancy", sum(vault_q))
        m.observe("sm.live_warps", live)
        if self.nsus:
            m.observe("nsu.warps", gauges["nsu.warps"])
        m.set_counters(counters)
        m.heartbeat(self.engine.now, gauges, counters)

    def _publish_summary(self, res: RunResult) -> None:
        """Final counters + the structured summary record."""
        m = self.metrics
        self.phases.events = self.engine.events_processed
        stalls = res.stalls.as_dict()
        packets = (self.ndp.stats.packet_counts() if self.ndp is not None
                   else {})
        m.set_counters({
            "sm.instructions": res.instructions,
            "nsu.instructions": res.nsu_instructions,
            "warps.completed": res.warps_completed,
            "stall.exec_unit_busy": res.stalls.exec_unit_busy,
            "stall.dependency": res.stalls.dependency_stall,
            "stall.warp_idle": res.stalls.warp_idle,
            "dram.activations": res.dram_activations,
            "l2.misses": res.l2_misses,
        })
        traffic = res.traffic.as_dict()
        # lint: ignore[DET002] -- set_counters stores by name; order-free
        m.set_counters({f"traffic.{k}": v for k, v in traffic.items()})
        # lint: ignore[DET002] -- same: name-keyed counter publication
        m.set_counters({f"packets.{k}": v for k, v in packets.items()})
        if self.fault_injector is not None:
            m.set_counters(self.fault_injector.metrics_counters())
            if self.ndp is not None and self.ndp.recovery is not None:
                m.set_counters(self.ndp.rstats.metrics_counters())
            if self.memsys.recovery is not None:
                m.set_counters(self.memsys.rstats.metrics_counters())
                m.set_counters(self.memsys.timeouts.metrics_counters())
        m.meta.setdefault("workload", res.workload)
        m.meta.setdefault("config", res.config_name)
        m.record("summary", cycle=self.engine.now, stalls=stalls,
                 packets=packets, traffic=res.traffic.as_dict(),
                 phases=self.phases.as_dict(),
                 sched={"mode": self.sched, **self.sched_stats},
                 dram={"activations": res.dram_activations,
                       "reads": res.dram_reads, "writes": res.dram_writes},
                 hmc=[h.metrics_snapshot() for h in self.hmcs],
                 gpu_links=self.gpu_links.metrics_snapshot(),
                 mem_net=self.network.metrics_snapshot(),
                 engine=self.engine.metrics_snapshot())

    def _finished(self) -> bool:
        if self.engine.pending:
            return False
        if any(not sm.done for sm in self.sms):
            return False
        return all(n.idle for n in self.nsus)

    # -- result collection --------------------------------------------------------------

    def _collect(self) -> RunResult:
        stalls = StallBreakdown()
        for sm in self.sms:
            stalls = stalls.merged(sm.stalls)
        dram_acts = sum(h.stats.activations for h in self.hmcs)
        dram_reads = sum(h.stats.read_bytes for h in self.hmcs)
        dram_writes = sum(h.stats.write_bytes for h in self.hmcs)
        traffic = TrafficBytes(
            gpu_link=self.counters.get("gpu_link"),
            mem_net=self.counters.get("mem_net"),
            intra_hmc=self.counters.get("intra_hmc"),
            invalidations=self.memsys.invalidation_bytes,
        )
        nsu_occ = sum(n.occupancy_sum for n in self.nsus)
        nsu_cycles = sum(n.cycles for n in self.nsus)
        icache_touched = sum(len(n.icache_touched) for n in self.nsus)
        icache_total = sum(n.icache_lines for n in self.nsus)
        res = RunResult(
            workload=self.workload_name,
            config_name=self.config_name,
            cycles=self.engine.now,
            instructions=sum(sm.instructions for sm in self.sms),
            nsu_instructions=sum(n.instructions for n in self.nsus),
            warps_completed=sum(sm.warps_completed for sm in self.sms),
            stalls=stalls,
            traffic=traffic,
            dram_activations=dram_acts,
            dram_reads=dram_reads,
            dram_writes=dram_writes,
            l1_hits=self.memsys.l1_stats.hits,
            l1_misses=self.memsys.l1_stats.misses,
            l2_hits=self.memsys.l2_stats.hits,
            l2_misses=self.memsys.l2_stats.misses,
            l1_accesses=self.memsys.l1_stats.accesses
            + self.memsys.l1_stats.accesses_probe,
            l2_accesses=self.memsys.l2_stats.accesses
            + self.memsys.l2_stats.accesses_probe,
            rdf_packets=self.ndp.stats.rdf_packets if self.ndp else 0,
            rdf_cache_hits=self.ndp.stats.rdf_hits if self.ndp else 0,
            offloads_issued=sum(sm.offloads for sm in self.sms),
            offloads_suppressed=getattr(self.decider, "suppressed_count", 0),
            blocks_total=sum(sm.offloads + sm.inlines for sm in self.sms),
            nsu_occupancy_sum=nsu_occ / max(1, self.cfg.nsu.num_warp_slots),
            nsu_cycles=nsu_cycles,
            nsu_icache_lines_touched=icache_touched,
            nsu_icache_lines_total=icache_total,
            gpu_alu_ops=sum(sm.alu_ops for sm in self.sms),
            nsu_alu_ops=sum(n.alu_ops for n in self.nsus),
            extra={
                "epoch_log": list(self._epoch_log),
                "final_ratio": getattr(self.decider, "ratio", None),
            },
        )
        if self.fault_injector is not None:
            res.extra["faults"] = self.fault_injector.snapshot()
            if self.memsys.recovery is not None:
                # Both layers merge into one dict (field names disjoint).
                rec = dict(self.memsys.rstats.as_dict())
                if self.ndp is not None and self.ndp.recovery is not None:
                    rec.update(self.ndp.rstats.as_dict())
                res.extra["recovery"] = rec
                if self.memsys.recovery.adaptive:
                    res.extra["recovery_timeouts"] = (
                        self.memsys.timeouts.snapshot())
            elif self.ndp is not None and self.ndp.recovery is not None:
                res.extra["recovery"] = self.ndp.rstats.as_dict()
        if self.metrics is not None:
            self._publish_summary(res)
        return res
