"""Serialization of run results to/from JSON.

Lets the benchmark harness, CLI and notebooks archive simulation outputs
(`RunResult`) and reload them for later comparison without re-simulating.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from repro.sim.results import RunResult, StallBreakdown, TrafficBytes


def result_to_dict(r: RunResult) -> dict:
    d = dataclasses.asdict(r)
    # ``extra`` may hold tuples (epoch log); normalize to lists for JSON.
    d["extra"] = json.loads(json.dumps(d["extra"], default=list))
    return d


def result_digest(r: RunResult) -> str:
    """Canonical sha256 over the serialized result -- the identity used by
    the pinned digest tests and the bench harness's apples-to-apples check
    (two runs are "the same simulation" iff their digests match)."""
    payload = json.dumps(result_to_dict(r), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def result_from_dict(d: dict) -> RunResult:
    d = dict(d)
    d["stalls"] = StallBreakdown(**d["stalls"])
    d["traffic"] = TrafficBytes(**d["traffic"])
    # Tolerate fields added by newer code: archived results (and store
    # entries written before a field was removed) still load.
    known = {f.name for f in dataclasses.fields(RunResult)}
    # lint: ignore[DET002] -- kwargs construction is order-insensitive
    return RunResult(**{k: v for k, v in d.items() if k in known})


def dump_results(results: dict[str, RunResult] | list[RunResult],
                 path: str) -> None:
    """Write results (a dict keyed by name, or a list) to a JSON file."""
    if isinstance(results, dict):
        payload = {"kind": "dict",
                   "results": {k: result_to_dict(v)
                               for k, v in sorted(results.items())}}
    else:
        payload = {"kind": "list",
                   "results": [result_to_dict(v) for v in results]}
    with open(path, "w") as f:
        json.dump(payload, f, indent=1)


def load_results(path: str):
    """Inverse of :func:`dump_results`."""
    with open(path) as f:
        payload = json.load(f)
    if payload["kind"] == "dict":
        loaded = payload["results"]
        # lint: ignore[DET002] -- preserves the file's own key order
        return {k: result_from_dict(v) for k, v in loaded.items()}
    return [result_from_dict(v) for v in payload["results"]]
