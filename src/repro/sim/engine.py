"""Discrete-event core: event queue, bandwidth-limited links, clock ratios.

The simulator is cycle-granular in the *SM clock domain* (700 MHz).  Latency
and bandwidth of slower/faster domains (NSU at half rate, DRAM at ~1.05x,
crossbar at 1.79x) are expressed by converting to SM cycles; components that
issue work every cycle of their own domain use a :class:`RateAccumulator`.

Links model serialization honestly: a packet of ``size`` bytes occupies the
link for ``ceil(size / bytes_per_cycle)`` cycles and is delivered after an
additional fixed propagation latency.  Queueing is implicit in the
``busy_until`` horizon (an infinite-queue, finite-rate server), which is the
standard first-order model for serdes links; finite NDP buffers -- the ones
the paper's deadlock-avoidance protocol manages -- are modelled explicitly in
:mod:`repro.core`.
"""

from __future__ import annotations

import bisect
import heapq
import math
from typing import Callable

#: Sentinel for "no argument bound" in a pooled event record.  Distinct
#: from ``None`` so callbacks may legitimately receive ``None``.
_NOARG = object()

#: Width of the near-future calendar lane, in cycles.  Events landing
#: within ``(now, now + CAL_SPAN]`` skip the heap entirely: the dominant
#: delays on the dense hot path (L1/L2 latencies, link hops) are small
#: constants, so most events ride the O(1) calendar instead of paying
#: two O(log n) heap operations.
CAL_SPAN = 8


class _EventRecord:
    """A pooled, reusable event.

    Records are recycled through the engine's free list after they fire
    (or after their tombstone drains), so steady-state scheduling does no
    allocation.  ``gen`` is a generation stamp: it increments on every
    recycle, so a stale handle held by a caller can never cancel (or
    observe) a later tenant of the same record -- see :meth:`Engine.cancel`.
    """

    __slots__ = ("time", "seq", "fn", "a", "b", "gen")

    def __init__(self) -> None:
        self.time = 0
        self.seq = 0
        self.fn: Callable | None = None
        self.a = _NOARG
        self.b = _NOARG
        self.gen = 0


def _bucket_time(bucket: "list[_EventRecord]") -> int:
    return bucket[0].time


class Engine:
    """An integer-time event queue with a pooled-record fast path.

    Components call :meth:`at` / :meth:`after` to schedule callbacks; the
    system driver interleaves :meth:`process_due` with per-cycle component
    ticks and may fast-forward over idle regions with :meth:`next_event_time`.

    Two scheduling lanes back the queue, invisible to callers:

    * a **calendar lane** of ``CAL_SPAN`` buckets for events due within
      ``(now, now + CAL_SPAN]`` -- append on schedule, splice on drain;
    * the classic **heap** for same-cycle and far-future events.

    :meth:`process_due` merges both lanes in strict global ``(time, seq)``
    order, so lane placement can never reorder same-cycle events --
    execution order is bit-identical to a single-heap engine.  The bucket
    invariant that makes the merge cheap: outside of :meth:`process_due`
    every bucket holds records of exactly one future time (a half-open
    ``CAL_SPAN`` window meets each residue class once), appended in
    ``seq`` order.

    Hot callers avoid per-event closure allocation with
    :meth:`call_at` / :meth:`call_after`, which bind up to two positional
    arguments directly into the pooled record and hand back a cancellable
    ``(record, generation)`` handle.
    """

    def __init__(self) -> None:
        self.now: int = 0
        # far/same-cycle lane: (time, seq, record) tuples -- seq is unique,
        # so heap comparisons never reach the record (C-speed ordering).
        self._events: list[tuple[int, int, _EventRecord]] = []
        self._cal: list[list[_EventRecord]] = [[] for _ in range(CAL_SPAN)]
        self._cal_count = 0
        self._free: list[_EventRecord] = []
        self._seq = 0
        self.events_processed = 0
        self.events_recycled = 0
        self.events_cancelled = 0
        self.calendar_events = 0
        self.subcycle_delays = 0

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, time: int, fn: Callable, a, b) -> _EventRecord:
        now = self.now
        if time < now:
            raise ValueError(f"cannot schedule at {time} < now {now}")
        free = self._free
        if free:
            rec = free.pop()
        else:
            rec = _EventRecord()
        self._seq += 1
        rec.time = time
        rec.seq = self._seq
        rec.fn = fn
        rec.a = a
        rec.b = b
        if now < time <= now + CAL_SPAN:
            self._cal[time % CAL_SPAN].append(rec)
            self._cal_count += 1
            self.calendar_events += 1
        else:
            heapq.heappush(self._events, (time, rec.seq, rec))
        return rec

    def at(self, time: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute cycle ``time``."""
        self._schedule(int(time), fn, _NOARG, _NOARG)

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` cycles from now (ceil'd).

        ``delay`` must be positive: a zero (or negative) delay would land
        the callback at ``now``, and whether it still runs this cycle then
        depends on where the caller sits relative to ``process_due`` -- the
        classic double-counting hazard for rate-domain callers converting
        fractional clock ratios.  Same-cycle scheduling must be explicit:
        use ``at(engine.now, fn)``.  Sub-cycle delays (0 < delay < 1) are
        legal and round up to one full cycle, but are counted in
        ``subcycle_delays`` so a misconverted clock ratio surfaces in the
        metrics summary instead of silently compressing to zero latency.
        """
        self._schedule(self.now + self._ceil_delay(delay), fn,
                       _NOARG, _NOARG)

    def _ceil_delay(self, delay: float) -> int:
        if delay <= 0:
            raise ValueError(
                f"after() requires a positive delay, got {delay!r}; "
                "use at(engine.now, fn) for explicit same-cycle scheduling")
        if delay < 1:
            self.subcycle_delays += 1
        return math.ceil(delay)

    def call_at(self, time: int, fn: Callable, a=_NOARG,
                b=_NOARG) -> tuple[_EventRecord, int]:
        """Like :meth:`at`, but binds up to two positional arguments into
        the pooled event record -- the allocation-free form hot callers use
        instead of constructing a closure per event.  Returns a
        ``(record, generation)`` handle accepted by :meth:`cancel`."""
        rec = self._schedule(int(time), fn, a, b)
        return rec, rec.gen

    def call_after(self, delay: float, fn: Callable, a=_NOARG,
                   b=_NOARG) -> tuple[_EventRecord, int]:
        """Argument-binding form of :meth:`after`; see :meth:`call_at`."""
        rec = self._schedule(self.now + self._ceil_delay(delay), fn, a, b)
        return rec, rec.gen

    def cancel(self, rec: _EventRecord, gen: int) -> bool:
        """Tombstone a scheduled event via its ``(record, generation)``
        handle.  Returns ``True`` if the event was live and is now dead.

        No allocation and no queue surgery: the record stays in its lane
        and is recycled when its time drains.  A stale handle -- the event
        already fired, was already cancelled, or the record now serves a
        later tenant -- is rejected by the generation stamp and this is a
        no-op, so double-cancel and cancel-after-fire are always safe."""
        if rec.gen != gen or rec.fn is None:
            return False
        rec.fn = None
        rec.a = _NOARG
        rec.b = _NOARG
        self.events_cancelled += 1
        return True

    # -- dispatch ------------------------------------------------------------

    def _recycle(self, rec: _EventRecord) -> None:
        rec.gen += 1
        rec.fn = None
        rec.a = _NOARG
        rec.b = _NOARG
        self._free.append(rec)
        self.events_recycled += 1

    def _take_due_calendar(self) -> list[_EventRecord] | None:
        """Splice out every due calendar bucket, merged in (time, seq)
        order.  Buckets are single-time and seq-ordered (class invariant),
        so this is a bucket sort, not a record sort."""
        now = self.now
        cal = self._cal
        due_buckets: list[list[_EventRecord]] | None = None
        for i in range(CAL_SPAN):
            b = cal[i]
            if b and b[0].time <= now:
                cal[i] = []
                self._cal_count -= len(b)
                if due_buckets is None:
                    due_buckets = [b]
                else:
                    due_buckets.append(b)
        if due_buckets is None:
            return None
        if len(due_buckets) == 1:
            return due_buckets[0]
        due_buckets.sort(key=_bucket_time)
        merged = due_buckets[0]
        for b in due_buckets[1:]:
            merged.extend(b)
        return merged

    def process_due(self) -> int:
        """Run all events scheduled at or before the current cycle, in
        strict global ``(time, seq)`` order across both lanes."""
        now = self.now
        n = 0
        heap = self._events
        due = self._take_due_calendar() if self._cal_count else None
        # After the splice above, callbacks can only add same-cycle events
        # to the heap (``at(now)``) or strictly-future events to either
        # lane, so re-checking the heap head each iteration is sufficient.
        i = 0
        nd = len(due) if due is not None else 0
        while True:
            if i < nd:
                rec = due[i]
                if heap:
                    h = heap[0]
                    ht = h[0]
                    if ht <= now and (ht < rec.time or
                                      (ht == rec.time and h[1] < rec.seq)):
                        rec = heapq.heappop(heap)[2]
                    else:
                        i += 1
                else:
                    i += 1
            elif heap and heap[0][0] <= now:
                rec = heapq.heappop(heap)[2]
            else:
                break
            fn = rec.fn
            if fn is not None:
                a = rec.a
                if a is _NOARG:
                    fn()
                elif rec.b is _NOARG:
                    fn(a)
                else:
                    fn(a, rec.b)
                n += 1
            self._recycle(rec)
        self.events_processed += n
        return n

    def next_event_time(self) -> int | None:
        t = self._events[0][0] if self._events else None
        if self._cal_count:
            for b in self._cal:
                if b:
                    bt = b[0].time
                    if t is None or bt < t:
                        t = bt
        return t

    @property
    def pending(self) -> int:
        """Scheduled-but-undrained events (tombstoned cancellations count
        until their time passes -- they still bound fast-forward)."""
        return len(self._events) + self._cal_count

    def metrics_snapshot(self) -> dict:
        """Counters/gauges published into the metrics registry."""
        return {"cycle": self.now, "pending_events": self.pending,
                "events_processed": self.events_processed,
                "events_recycled": self.events_recycled,
                "events_cancelled": self.events_cancelled,
                "calendar_events": self.calendar_events,
                "event_pool_free": len(self._free),
                "subcycle_delays": self.subcycle_delays}

    def drain(self, limit_cycles: int = 10 ** 9) -> None:
        """Advance time event-to-event until the queue is empty (tests)."""
        deadline = self.now + limit_cycles
        while self.now <= deadline:
            t = self.next_event_time()
            if t is None:
                break
            self.now = max(self.now, t)
            self.process_due()


class WakeQueue:
    """Active-set membership for per-component sleep, alongside the event heap.

    The active scheduler (``System._run_active``) keeps each SM either
    *active* (ticked every stepped cycle) or *parked* (asleep until an
    external event wakes it).  The queue tracks membership plus, per parked
    member, the first simulated cycle whose idle accounting has not been
    settled yet -- the scheduler uses that stamp to classify the slept
    cycles in bulk when the member wakes (see docs/performance.md).

    A timed lane lets callers pre-book a future wake (``wake_at``); the
    driver folds :meth:`next_time` into its fast-forward target and pops
    due entries each cycle.  Entries for members that woke early are
    invalidated lazily -- a spurious wake is harmless by design, because a
    woken component that cannot make progress simply re-parks after one
    ordinary (fully accounted) tick.
    """

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._size = size
        self._active: list[int] = list(range(size))   # sorted member ids
        self._since: dict[int, int] = {}   # parked id -> first unsettled cycle
        self._timed: list[tuple[int, int]] = []       # (cycle, id) min-heap

    @property
    def active(self) -> list[int]:
        """Sorted ids of active members (treat as read-only)."""
        return self._active

    def is_active(self, idx: int) -> bool:
        return idx not in self._since

    def park(self, idx: int, since: int) -> None:
        """Move ``idx`` to the parked set; idle cycles accrue from ``since``."""
        if idx in self._since:
            raise ValueError(f"member {idx} is already parked")
        self._active.remove(idx)
        self._since[idx] = since

    def wake(self, idx: int) -> int | None:
        """Activate ``idx``.  Returns the first unsettled cycle if it was
        parked (the caller owes idle accounting for ``[since, now-1]``), or
        ``None`` if it was already active (spurious wake, no-op)."""
        since = self._since.pop(idx, None)
        if since is None:
            return None
        bisect.insort(self._active, idx)
        return since

    def asleep_items(self) -> list[tuple[int, int]]:
        """``(idx, since)`` for every parked member, sorted by id."""
        return sorted(self._since.items())

    def set_since(self, idx: int, since: int) -> None:
        """Restamp a parked member after settling its idle cycles in place."""
        if idx not in self._since:
            raise KeyError(f"member {idx} is not parked")
        self._since[idx] = since

    # -- timed lane ----------------------------------------------------------

    def wake_at(self, idx: int, cycle: int) -> None:
        """Book a future wake for ``idx`` at ``cycle`` (lazy-invalidated)."""
        heapq.heappush(self._timed, (int(cycle), idx))

    def pop_due(self, now: int) -> list[int]:
        """Parked members whose booked wake time has arrived (deduplicated,
        pop order).  Stale entries (member already active) are discarded."""
        due: list[int] = []
        while self._timed and self._timed[0][0] <= now:
            _, idx = heapq.heappop(self._timed)
            if idx in self._since and idx not in due:
                due.append(idx)
        return due

    def next_time(self) -> int | None:
        """Earliest booked wake of a still-parked member, or ``None``."""
        while self._timed and self._timed[0][1] not in self._since:
            heapq.heappop(self._timed)
        return self._timed[0][0] if self._timed else None


class RateAccumulator:
    """Fractional clock-ratio accumulator.

    ``rate`` is the number of *local* cycles per SM cycle.  Each SM cycle,
    :meth:`step` returns the number of whole local cycles that elapse, so a
    350 MHz NSU (rate 0.5) executes on every other SM cycle and a 1250 MHz
    crossbar (rate ~1.79) gets one or two slots per SM cycle.
    """

    __slots__ = ("rate", "_acc")

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self._acc = 0.0

    def step(self) -> int:
        self._acc += self.rate
        n = int(self._acc)
        self._acc -= n
        return n

    def step_many(self, cycles: int) -> int:
        """Advance ``cycles`` SM cycles at once; returns local cycles elapsed."""
        self._acc += self.rate * cycles
        n = int(self._acc)
        self._acc -= n
        return n


class Link:
    """A unidirectional bandwidth-limited channel.

    ``traffic_class`` tags the link for traffic/energy accounting
    ("gpu_link", "mem_net", "intra_hmc").
    """

    __slots__ = ("engine", "name", "bytes_per_cycle", "latency",
                 "traffic_class", "busy_until", "bytes_sent",
                 "packets_sent", "counters")

    def __init__(self, engine: Engine, name: str, bytes_per_cycle: float,
                 latency: int = 4, traffic_class: str = "gpu_link",
                 counters: "LinkCounters | None" = None) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        self.engine = engine
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self.latency = latency
        self.traffic_class = traffic_class
        self.busy_until = 0
        self.bytes_sent = 0
        self.packets_sent = 0
        self.counters = counters

    def send(self, size_bytes: int, deliver: Callable[..., None],
             arg=_NOARG) -> int:
        """Transmit ``size_bytes``; call ``deliver`` on arrival.

        Returns the delivery cycle.  Serialization queues behind earlier
        packets (``busy_until``); propagation latency is added on top.
        ``arg``, when given, is bound into the pooled event record and
        passed to ``deliver`` -- hot senders use this instead of building
        a closure per packet.
        """
        if size_bytes <= 0:
            raise ValueError("packet size must be positive")
        now = self.engine.now
        start = max(now, self.busy_until)
        ser = math.ceil(size_bytes / self.bytes_per_cycle)
        self.busy_until = start + ser
        arrival = self.busy_until + self.latency
        self.bytes_sent += size_bytes
        self.packets_sent += 1
        if self.counters is not None:
            self.counters.add(self.traffic_class, size_bytes)
        self.engine._schedule(arrival, deliver, arg, _NOARG)
        return arrival

    @property
    def queue_delay(self) -> int:
        """Cycles a packet submitted now would wait before serialization."""
        return max(0, self.busy_until - self.engine.now)

    def utilization(self, elapsed_cycles: int) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.bytes_sent / (self.bytes_per_cycle * elapsed_cycles))


class LinkCounters:
    """Aggregate byte counters per traffic class (feeds the energy model)."""

    __slots__ = ("bytes_by_class",)

    def __init__(self) -> None:
        self.bytes_by_class: dict[str, int] = {}

    def add(self, traffic_class: str, nbytes: int) -> None:
        self.bytes_by_class[traffic_class] = (
            self.bytes_by_class.get(traffic_class, 0) + nbytes)

    def get(self, traffic_class: str) -> int:
        return self.bytes_by_class.get(traffic_class, 0)

    def total(self) -> int:
        return sum(self.bytes_by_class.values())
