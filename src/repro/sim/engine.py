"""Discrete-event core: event queue, bandwidth-limited links, clock ratios.

The simulator is cycle-granular in the *SM clock domain* (700 MHz).  Latency
and bandwidth of slower/faster domains (NSU at half rate, DRAM at ~1.05x,
crossbar at 1.79x) are expressed by converting to SM cycles; components that
issue work every cycle of their own domain use a :class:`RateAccumulator`.

Links model serialization honestly: a packet of ``size`` bytes occupies the
link for ``ceil(size / bytes_per_cycle)`` cycles and is delivered after an
additional fixed propagation latency.  Queueing is implicit in the
``busy_until`` horizon (an infinite-queue, finite-rate server), which is the
standard first-order model for serdes links; finite NDP buffers -- the ones
the paper's deadlock-avoidance protocol manages -- are modelled explicitly in
:mod:`repro.core`.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable


class Engine:
    """A simple integer-time event queue.

    Components call :meth:`at` / :meth:`after` to schedule callbacks; the
    system driver interleaves :meth:`process_due` with per-cycle component
    ticks and may fast-forward over idle regions with :meth:`next_event_time`.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._events: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self.events_processed = 0

    def at(self, time: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute cycle ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        self._seq += 1
        heapq.heappush(self._events, (int(time), self._seq, fn))

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` cycles from now (ceil'd)."""
        self.at(self.now + max(0, math.ceil(delay)), fn)

    def process_due(self) -> int:
        """Run all events scheduled at or before the current cycle."""
        n = 0
        ev = self._events
        while ev and ev[0][0] <= self.now:
            _, _, fn = heapq.heappop(ev)
            fn()
            n += 1
        self.events_processed += n
        return n

    def next_event_time(self) -> int | None:
        return self._events[0][0] if self._events else None

    @property
    def pending(self) -> int:
        return len(self._events)

    def metrics_snapshot(self) -> dict:
        """Counters/gauges published into the metrics registry."""
        return {"cycle": self.now, "pending_events": self.pending,
                "events_processed": self.events_processed}

    def drain(self, limit_cycles: int = 10 ** 9) -> None:
        """Advance time event-to-event until the queue is empty (tests)."""
        deadline = self.now + limit_cycles
        while self._events and self.now <= deadline:
            self.now = max(self.now, self._events[0][0])
            self.process_due()


class RateAccumulator:
    """Fractional clock-ratio accumulator.

    ``rate`` is the number of *local* cycles per SM cycle.  Each SM cycle,
    :meth:`step` returns the number of whole local cycles that elapse, so a
    350 MHz NSU (rate 0.5) executes on every other SM cycle and a 1250 MHz
    crossbar (rate ~1.79) gets one or two slots per SM cycle.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self._acc = 0.0

    def step(self) -> int:
        self._acc += self.rate
        n = int(self._acc)
        self._acc -= n
        return n

    def step_many(self, cycles: int) -> int:
        """Advance ``cycles`` SM cycles at once; returns local cycles elapsed."""
        self._acc += self.rate * cycles
        n = int(self._acc)
        self._acc -= n
        return n


class Link:
    """A unidirectional bandwidth-limited channel.

    ``traffic_class`` tags the link for traffic/energy accounting
    ("gpu_link", "mem_net", "intra_hmc").
    """

    def __init__(self, engine: Engine, name: str, bytes_per_cycle: float,
                 latency: int = 4, traffic_class: str = "gpu_link",
                 counters: "LinkCounters | None" = None) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        self.engine = engine
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self.latency = latency
        self.traffic_class = traffic_class
        self.busy_until = 0
        self.bytes_sent = 0
        self.packets_sent = 0
        self.counters = counters

    def send(self, size_bytes: int, deliver: Callable[[], None]) -> int:
        """Transmit ``size_bytes``; call ``deliver`` on arrival.

        Returns the delivery cycle.  Serialization queues behind earlier
        packets (``busy_until``); propagation latency is added on top.
        """
        if size_bytes <= 0:
            raise ValueError("packet size must be positive")
        now = self.engine.now
        start = max(now, self.busy_until)
        ser = math.ceil(size_bytes / self.bytes_per_cycle)
        self.busy_until = start + ser
        arrival = self.busy_until + self.latency
        self.bytes_sent += size_bytes
        self.packets_sent += 1
        if self.counters is not None:
            self.counters.add(self.traffic_class, size_bytes)
        self.engine.at(arrival, deliver)
        return arrival

    @property
    def queue_delay(self) -> int:
        """Cycles a packet submitted now would wait before serialization."""
        return max(0, self.busy_until - self.engine.now)

    def utilization(self, elapsed_cycles: int) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.bytes_sent / (self.bytes_per_cycle * elapsed_cycles))


class LinkCounters:
    """Aggregate byte counters per traffic class (feeds the energy model)."""

    def __init__(self) -> None:
        self.bytes_by_class: dict[str, int] = {}

    def add(self, traffic_class: str, nbytes: int) -> None:
        self.bytes_by_class[traffic_class] = (
            self.bytes_by_class.get(traffic_class, 0) + nbytes)

    def get(self, traffic_class: str) -> int:
        return self.bytes_by_class.get(traffic_class, 0)

    def total(self) -> int:
        return sum(self.bytes_by_class.values())
