"""Discrete-event core: event queue, bandwidth-limited links, clock ratios.

The simulator is cycle-granular in the *SM clock domain* (700 MHz).  Latency
and bandwidth of slower/faster domains (NSU at half rate, DRAM at ~1.05x,
crossbar at 1.79x) are expressed by converting to SM cycles; components that
issue work every cycle of their own domain use a :class:`RateAccumulator`.

Links model serialization honestly: a packet of ``size`` bytes occupies the
link for ``ceil(size / bytes_per_cycle)`` cycles and is delivered after an
additional fixed propagation latency.  Queueing is implicit in the
``busy_until`` horizon (an infinite-queue, finite-rate server), which is the
standard first-order model for serdes links; finite NDP buffers -- the ones
the paper's deadlock-avoidance protocol manages -- are modelled explicitly in
:mod:`repro.core`.
"""

from __future__ import annotations

import bisect
import heapq
import math
from typing import Callable


class Engine:
    """A simple integer-time event queue.

    Components call :meth:`at` / :meth:`after` to schedule callbacks; the
    system driver interleaves :meth:`process_due` with per-cycle component
    ticks and may fast-forward over idle regions with :meth:`next_event_time`.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._events: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self.events_processed = 0
        self.subcycle_delays = 0

    def at(self, time: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute cycle ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        self._seq += 1
        heapq.heappush(self._events, (int(time), self._seq, fn))

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` cycles from now (ceil'd).

        ``delay`` must be positive: a zero (or negative) delay would land
        the callback at ``now``, and whether it still runs this cycle then
        depends on where the caller sits relative to ``process_due`` -- the
        classic double-counting hazard for rate-domain callers converting
        fractional clock ratios.  Same-cycle scheduling must be explicit:
        use ``at(engine.now, fn)``.  Sub-cycle delays (0 < delay < 1) are
        legal and round up to one full cycle, but are counted in
        ``subcycle_delays`` so a misconverted clock ratio surfaces in the
        metrics summary instead of silently compressing to zero latency.
        """
        if delay <= 0:
            raise ValueError(
                f"after() requires a positive delay, got {delay!r}; "
                "use at(engine.now, fn) for explicit same-cycle scheduling")
        if delay < 1:
            self.subcycle_delays += 1
        self.at(self.now + math.ceil(delay), fn)

    def process_due(self) -> int:
        """Run all events scheduled at or before the current cycle."""
        n = 0
        ev = self._events
        while ev and ev[0][0] <= self.now:
            _, _, fn = heapq.heappop(ev)
            fn()
            n += 1
        self.events_processed += n
        return n

    def next_event_time(self) -> int | None:
        return self._events[0][0] if self._events else None

    @property
    def pending(self) -> int:
        return len(self._events)

    def metrics_snapshot(self) -> dict:
        """Counters/gauges published into the metrics registry."""
        return {"cycle": self.now, "pending_events": self.pending,
                "events_processed": self.events_processed,
                "subcycle_delays": self.subcycle_delays}

    def drain(self, limit_cycles: int = 10 ** 9) -> None:
        """Advance time event-to-event until the queue is empty (tests)."""
        deadline = self.now + limit_cycles
        while self._events and self.now <= deadline:
            self.now = max(self.now, self._events[0][0])
            self.process_due()


class WakeQueue:
    """Active-set membership for per-component sleep, alongside the event heap.

    The active scheduler (``System._run_active``) keeps each SM either
    *active* (ticked every stepped cycle) or *parked* (asleep until an
    external event wakes it).  The queue tracks membership plus, per parked
    member, the first simulated cycle whose idle accounting has not been
    settled yet -- the scheduler uses that stamp to classify the slept
    cycles in bulk when the member wakes (see docs/performance.md).

    A timed lane lets callers pre-book a future wake (``wake_at``); the
    driver folds :meth:`next_time` into its fast-forward target and pops
    due entries each cycle.  Entries for members that woke early are
    invalidated lazily -- a spurious wake is harmless by design, because a
    woken component that cannot make progress simply re-parks after one
    ordinary (fully accounted) tick.
    """

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._size = size
        self._active: list[int] = list(range(size))   # sorted member ids
        self._since: dict[int, int] = {}   # parked id -> first unsettled cycle
        self._timed: list[tuple[int, int]] = []       # (cycle, id) min-heap

    @property
    def active(self) -> list[int]:
        """Sorted ids of active members (treat as read-only)."""
        return self._active

    def is_active(self, idx: int) -> bool:
        return idx not in self._since

    def park(self, idx: int, since: int) -> None:
        """Move ``idx`` to the parked set; idle cycles accrue from ``since``."""
        if idx in self._since:
            raise ValueError(f"member {idx} is already parked")
        self._active.remove(idx)
        self._since[idx] = since

    def wake(self, idx: int) -> int | None:
        """Activate ``idx``.  Returns the first unsettled cycle if it was
        parked (the caller owes idle accounting for ``[since, now-1]``), or
        ``None`` if it was already active (spurious wake, no-op)."""
        since = self._since.pop(idx, None)
        if since is None:
            return None
        bisect.insort(self._active, idx)
        return since

    def asleep_items(self) -> list[tuple[int, int]]:
        """``(idx, since)`` for every parked member, sorted by id."""
        return sorted(self._since.items())

    def set_since(self, idx: int, since: int) -> None:
        """Restamp a parked member after settling its idle cycles in place."""
        if idx not in self._since:
            raise KeyError(f"member {idx} is not parked")
        self._since[idx] = since

    # -- timed lane ----------------------------------------------------------

    def wake_at(self, idx: int, cycle: int) -> None:
        """Book a future wake for ``idx`` at ``cycle`` (lazy-invalidated)."""
        heapq.heappush(self._timed, (int(cycle), idx))

    def pop_due(self, now: int) -> list[int]:
        """Parked members whose booked wake time has arrived (deduplicated,
        pop order).  Stale entries (member already active) are discarded."""
        due: list[int] = []
        while self._timed and self._timed[0][0] <= now:
            _, idx = heapq.heappop(self._timed)
            if idx in self._since and idx not in due:
                due.append(idx)
        return due

    def next_time(self) -> int | None:
        """Earliest booked wake of a still-parked member, or ``None``."""
        while self._timed and self._timed[0][1] not in self._since:
            heapq.heappop(self._timed)
        return self._timed[0][0] if self._timed else None


class RateAccumulator:
    """Fractional clock-ratio accumulator.

    ``rate`` is the number of *local* cycles per SM cycle.  Each SM cycle,
    :meth:`step` returns the number of whole local cycles that elapse, so a
    350 MHz NSU (rate 0.5) executes on every other SM cycle and a 1250 MHz
    crossbar (rate ~1.79) gets one or two slots per SM cycle.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self._acc = 0.0

    def step(self) -> int:
        self._acc += self.rate
        n = int(self._acc)
        self._acc -= n
        return n

    def step_many(self, cycles: int) -> int:
        """Advance ``cycles`` SM cycles at once; returns local cycles elapsed."""
        self._acc += self.rate * cycles
        n = int(self._acc)
        self._acc -= n
        return n


class Link:
    """A unidirectional bandwidth-limited channel.

    ``traffic_class`` tags the link for traffic/energy accounting
    ("gpu_link", "mem_net", "intra_hmc").
    """

    def __init__(self, engine: Engine, name: str, bytes_per_cycle: float,
                 latency: int = 4, traffic_class: str = "gpu_link",
                 counters: "LinkCounters | None" = None) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        self.engine = engine
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self.latency = latency
        self.traffic_class = traffic_class
        self.busy_until = 0
        self.bytes_sent = 0
        self.packets_sent = 0
        self.counters = counters

    def send(self, size_bytes: int, deliver: Callable[[], None]) -> int:
        """Transmit ``size_bytes``; call ``deliver`` on arrival.

        Returns the delivery cycle.  Serialization queues behind earlier
        packets (``busy_until``); propagation latency is added on top.
        """
        if size_bytes <= 0:
            raise ValueError("packet size must be positive")
        now = self.engine.now
        start = max(now, self.busy_until)
        ser = math.ceil(size_bytes / self.bytes_per_cycle)
        self.busy_until = start + ser
        arrival = self.busy_until + self.latency
        self.bytes_sent += size_bytes
        self.packets_sent += 1
        if self.counters is not None:
            self.counters.add(self.traffic_class, size_bytes)
        self.engine.at(arrival, deliver)
        return arrival

    @property
    def queue_delay(self) -> int:
        """Cycles a packet submitted now would wait before serialization."""
        return max(0, self.busy_until - self.engine.now)

    def utilization(self, elapsed_cycles: int) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.bytes_sent / (self.bytes_per_cycle * elapsed_cycles))


class LinkCounters:
    """Aggregate byte counters per traffic class (feeds the energy model)."""

    def __init__(self) -> None:
        self.bytes_by_class: dict[str, int] = {}

    def add(self, traffic_class: str, nbytes: int) -> None:
        self.bytes_by_class[traffic_class] = (
            self.bytes_by_class.get(traffic_class, 0) + nbytes)

    def get(self, traffic_class: str) -> int:
        return self.bytes_by_class.get(traffic_class, 0)

    def total(self) -> int:
        return sum(self.bytes_by_class.values())
