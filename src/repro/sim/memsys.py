"""GPU memory hierarchy: per-SM L1s, per-partition L2 slices, off-chip path.

Baseline memory path (Figure 2(a)): coalesced line access -> L1 (write
through) -> L2 slice of the owning HMC -> GPU link -> vault -> full-line
response back up the same path.  The L2 is sliced per memory partition (one
per HMC, as in GPGPU-sim); slice selection follows the random page->HMC
mapping, so L2 capacity is shared evenly.

The NDP path uses :meth:`rdf_probe` (a tag probe of L1+L2 without fill) and
:meth:`invalidate` (Section 4.2 coherence).
"""

from __future__ import annotations

from typing import Callable

from repro.config import LINE_SIZE, SystemConfig
from repro.core.packets import PacketSizes
from repro.gpu.cache import Cache, CacheStats, MSHRFile
from repro.gpu.coalescer import MemAccess
from repro.memory.address import AddressMap
from repro.memory.hmc import HMCStack
from repro.network.fabric import GPULinks
from repro.sim.engine import Engine

#: Crossbar traversal latency between an SM and an L2 slice (SM cycles).
XBAR_LATENCY = 8
#: Crossbar slot time per request at an L2 slice ingress port: the xbar
#: runs at 1250 MHz (Table 2), one request per xbar cycle per slice.
XBAR_SLOT = 700.0 / 1250.0


class GPUMemSystem:
    """Caches + links + DRAM plumbing for baseline and inline execution."""

    def __init__(self, engine: Engine, cfg: SystemConfig, *,
                 amap: AddressMap, gpu_links: GPULinks,
                 hmcs: list[HMCStack]) -> None:
        self.engine = engine
        self.cfg = cfg
        self.amap = amap
        self.gpu_links = gpu_links
        self.hmcs = hmcs
        self.l1_stats = CacheStats()
        self.l2_stats = CacheStats()
        g = cfg.gpu
        self.l1 = [Cache(g.l1d.size_bytes, g.l1d.assoc, g.l1d.line_size,
                         self.l1_stats) for _ in range(g.num_sms)]
        self.l1_mshr = [MSHRFile(g.l1d.mshr_entries, self.l1_stats)
                        for _ in range(g.num_sms)]
        slice_bytes = max(g.l2.line_size * g.l2.assoc,
                          g.l2.size_bytes // cfg.num_hmcs)
        self.l2 = [Cache(slice_bytes, g.l2.assoc, g.l2.line_size,
                         self.l2_stats) for _ in range(cfg.num_hmcs)]
        self.l2_mshr = [MSHRFile(g.l2.mshr_entries, self.l2_stats)
                        for _ in range(cfg.num_hmcs)]
        self.l1_latency = g.l1d.hit_latency
        self.l2_latency = g.l2.hit_latency
        # Requests parked while an L2 slice's MSHR file is full; retried
        # as fills free entries (a real GPU's memory-partition miss queue).
        self._l2_waiters: list[list[tuple[int, int]]] = [
            [] for _ in range(cfg.num_hmcs)]
        # Per-slice crossbar ingress port occupancy (one request per xbar
        # cycle): requests queue behind earlier arrivals at a hot slice.
        self._xbar_free = [0.0] * cfg.num_hmcs
        self.xbar_queue_cycles = 0
        self.invalidation_bytes = 0
        self.dram_read_requests = 0
        self.store_bytes = 0

    # -- baseline / inline loads --------------------------------------------------

    def load(self, sm, access: MemAccess, on_done: Callable[[], None]) -> bool:
        """One coalesced line load from SM ``sm``.  Returns False on a
        structural reject (L1 MSHR full)."""
        sm_id = sm.sm_id
        line = access.line_addr
        l1 = self.l1[sm_id]
        if l1.lookup(line):
            self.engine.after(self.l1_latency, on_done)
            return True
        status = self.l1_mshr[sm_id].allocate(line, on_done)
        if status == "full":
            return False
        if status == "merged":
            return True
        # Primary L1 miss: cross the interconnect to the owning L2 slice,
        # queueing behind earlier requests at the slice's ingress port.
        part = self.amap.hmc_of(line * LINE_SIZE)
        now = self.engine.now
        start = max(float(now), self._xbar_free[part])
        self._xbar_free[part] = start + XBAR_SLOT
        delay = int(start) - now + XBAR_LATENCY
        self.xbar_queue_cycles += int(start) - now
        self.engine.after(delay, lambda: self._l2_access(sm_id, line))
        return True

    def _l2_access(self, sm_id: int, line: int) -> None:
        part = self.amap.hmc_of(line * LINE_SIZE)
        l2 = self.l2[part]
        if l2.lookup(line):
            self.engine.after(self.l2_latency,
                              lambda: self._fill_l1(sm_id, line))
            return
        status = self.l2_mshr[part].allocate(
            line, lambda: self._fill_l1(sm_id, line))
        if status == "full":
            # Park in the partition's miss queue; retried on fills.
            self._l2_waiters[part].append((sm_id, line))
            return
        if status == "merged":
            return
        self._fetch_from_dram(part, line)

    def _fetch_from_dram(self, part: int, line: int) -> None:
        self.dram_read_requests += 1
        req_size = PacketSizes.mem_read_request()
        resp_size = PacketSizes.mem_read_response()

        def at_hmc() -> None:
            self.hmcs[part].access_line(line, False,
                                        lambda r: send_response())

        def send_response() -> None:
            self.gpu_links.to_gpu(part, resp_size,
                                  lambda: self._fill_l2(part, line))

        self.gpu_links.to_hmc(part, req_size, at_hmc)

    def _fill_l2(self, part: int, line: int) -> None:
        self.l2[part].insert(line)
        self.l2_mshr[part].fill(line)
        waiters = self._l2_waiters[part]
        mshr = self.l2_mshr[part]
        # Admit parked requests while MSHR capacity remains; hits and
        # merges don't consume entries, so keep draining until the file
        # is full again or the queue empties (avoids stranding a waiter
        # behind a request that turned into a late hit).
        while waiters and len(mshr) < mshr.num_entries:
            sm_id, wline = waiters.pop(0)
            self._l2_access(sm_id, wline)

    def _fill_l1(self, sm_id: int, line: int) -> None:
        self.l1[sm_id].insert(line)
        self.l1_mshr[sm_id].fill(line)

    # -- baseline / inline stores ---------------------------------------------------

    def store(self, sm, access: MemAccess) -> bool:
        """Write-through store of one coalesced line access."""
        line = access.line_addr
        self.l1[sm.sm_id].touch_write(line)
        part = self.amap.hmc_of(line * LINE_SIZE)
        self.l2[part].touch_write(line)
        size = PacketSizes.mem_write(access.words)
        self.store_bytes += size
        self.gpu_links.to_hmc(
            part, size,
            lambda: self.hmcs[part].access_line(line, True, lambda r: None,
                                                noc_bytes=size))
        return True

    # -- NDP hooks ---------------------------------------------------------------------

    def rdf_probe(self, sm_id: int, line: int) -> bool:
        """RDF cache check (Section 4.1.1): L1 of the issuing SM, then the
        owning L2 slice.  No fill on miss."""
        if self.l1[sm_id].probe(line):
            return True
        part = self.amap.hmc_of(line * LINE_SIZE)
        return self.l2[part].probe(line)

    def invalidate(self, line: int) -> None:
        """Apply a vault-originated invalidation (Section 4.2)."""
        part = self.amap.hmc_of(line * LINE_SIZE)
        self.l2[part].invalidate(line)
        for l1 in self.l1:
            l1.invalidate(line)

    def count_invalidation_bytes(self, nbytes: int) -> None:
        self.invalidation_bytes += nbytes
