"""GPU memory hierarchy: per-SM L1s, per-partition L2 slices, off-chip path.

Baseline memory path (Figure 2(a)): coalesced line access -> L1 (write
through) -> L2 slice of the owning HMC -> GPU link -> vault -> full-line
response back up the same path.  The L2 is sliced per memory partition (one
per HMC, as in GPGPU-sim); slice selection follows the random page->HMC
mapping, so L2 capacity is shared evenly.

The NDP path uses :meth:`rdf_probe` (a tag probe of L1+L2 without fill) and
:meth:`invalidate` (Section 4.2 coherence).
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.config import LINE_SIZE, SystemConfig
from repro.core.packets import PacketSizes
from repro.faults.recovery import BaselineRecoveryStats
from repro.gpu.cache import Cache, CacheStats, MSHRFile
from repro.gpu.coalescer import MemAccess
from repro.memory.address import AddressMap
from repro.memory.hmc import HMCStack
from repro.network.fabric import GPULinks
from repro.sim.engine import Engine

#: Crossbar traversal latency between an SM and an L2 slice (SM cycles).
XBAR_LATENCY = 8
#: Crossbar slot time per request at an L2 slice ingress port: the xbar
#: runs at 1250 MHz (Table 2), one request per xbar cycle per slice.
XBAR_SLOT = 700.0 / 1250.0


class _FetchState:
    """In-flight recoverable L2 fill: one per primary L2 miss.

    ``attempt`` stamps every packet of the current issue so loss
    notifications for superseded attempts are ignored; ``wd_token``
    invalidates stale watchdog heap entries (the heap is never purged,
    mirroring the offload-recovery pattern in ``repro.core.offload``).
    """

    __slots__ = ("attempt", "retries", "issued_at", "wd_token")

    def __init__(self) -> None:
        self.attempt = 0
        self.retries = 0
        self.issued_at = 0
        self.wd_token = 0


class GPUMemSystem:
    """Caches + links + DRAM plumbing for baseline and inline execution."""

    def __init__(self, engine: Engine, cfg: SystemConfig, *,
                 amap: AddressMap, gpu_links: GPULinks,
                 hmcs: list[HMCStack]) -> None:
        self.engine = engine
        self.cfg = cfg
        self.amap = amap
        self.gpu_links = gpu_links
        self.hmcs = hmcs
        self.l1_stats = CacheStats()
        self.l2_stats = CacheStats()
        g = cfg.gpu
        self.l1 = [Cache(g.l1d.size_bytes, g.l1d.assoc, g.l1d.line_size,
                         self.l1_stats) for _ in range(g.num_sms)]
        self.l1_mshr = [MSHRFile(g.l1d.mshr_entries, self.l1_stats)
                        for _ in range(g.num_sms)]
        slice_bytes = max(g.l2.line_size * g.l2.assoc,
                          g.l2.size_bytes // cfg.num_hmcs)
        self.l2 = [Cache(slice_bytes, g.l2.assoc, g.l2.line_size,
                         self.l2_stats) for _ in range(cfg.num_hmcs)]
        self.l2_mshr = [MSHRFile(g.l2.mshr_entries, self.l2_stats)
                        for _ in range(cfg.num_hmcs)]
        self.l1_latency = g.l1d.hit_latency
        self.l2_latency = g.l2.hit_latency
        # Requests parked while an L2 slice's MSHR file is full; retried
        # as fills free entries (a real GPU's memory-partition miss queue).
        self._l2_waiters: list[list[tuple[int, int]]] = [
            [] for _ in range(cfg.num_hmcs)]
        # Per-slice crossbar ingress port occupancy (one request per xbar
        # cycle): requests queue behind earlier arrivals at a hot slice.
        self._xbar_free = [0.0] * cfg.num_hmcs
        self.xbar_queue_cycles = 0
        self.invalidation_bytes = 0
        self.dram_read_requests = 0
        self.store_bytes = 0
        # Baseline-path recovery (repro.faults): the system arms these
        # together with the fault injector.  ``recovery`` is the plan's
        # RecoveryPolicy and ``timeouts`` the TimeoutTracker shared with
        # the NDP ACK watchdog; both stay None in unarmed runs, whose
        # event stream is untouched.
        self.recovery = None
        self.timeouts = None
        # Wake hook for MSHR-capacity parking: the active scheduler binds
        # this to ``System._wake_sm`` so an L1 fill (which frees an MSHR
        # entry and may insert the line a parked SM spins on) reactivates
        # the owning SM.  Fired *before* the fill mutates cache state, so
        # the settle-before-mutate invariant (I1) holds for the owed-cycle
        # replay (docs/performance.md).
        self.sm_waker: Callable[[int], None] | None = None
        self.rstats = BaselineRecoveryStats()
        self._fetches: dict[tuple[int, int], _FetchState] = {}
        self._watchdogs: list[tuple[int, int, int, int]] = []

    # -- baseline / inline loads --------------------------------------------------

    def load(self, sm, access: MemAccess, on_done: Callable[[], None]) -> bool:
        """One coalesced line load from SM ``sm``.  Returns False on a
        structural reject (L1 MSHR full)."""
        sm_id = sm.sm_id
        line = access.line_addr
        l1 = self.l1[sm_id]
        if l1.lookup(line):
            self.engine.after(self.l1_latency, on_done)
            return True
        status = self.l1_mshr[sm_id].allocate(line, on_done)
        if status == "full":
            return False
        if status == "merged":
            return True
        # Primary L1 miss: cross the interconnect to the owning L2 slice,
        # queueing behind earlier requests at the slice's ingress port.
        part = self.amap.hmc_of(line * LINE_SIZE)
        now = self.engine.now
        start = max(float(now), self._xbar_free[part])
        self._xbar_free[part] = start + XBAR_SLOT
        delay = int(start) - now + XBAR_LATENCY
        self.xbar_queue_cycles += int(start) - now
        self.engine.call_after(delay, self._l2_access, sm_id, line)
        return True

    def l1_would_reject(self, sm_id: int, line: int) -> bool:
        """Side-effect-free pre-probe of the :meth:`load` admission path:
        True iff a load of ``line`` from SM ``sm_id`` would be
        structurally rejected right now (L1 miss + no outstanding MSHR
        entry to merge into + MSHR file full).  Touches no counters and
        no LRU state -- the active scheduler's park probe uses it to
        decide whether a retry loop is pure spin (docs/performance.md).
        """
        if self.l1[sm_id].contains(line):
            return False
        mshr = self.l1_mshr[sm_id]
        if mshr.outstanding(line):
            return False
        return len(mshr) >= mshr.num_entries

    def replay_struct_rejects(self, sm_id: int, count: int) -> None:
        """Account ``count`` elided MSHR-full retry attempts exactly as
        the per-cycle loop would have: each is one L1 lookup miss plus one
        MSHR reject.  Valid because a struct-parked SM's state is frozen
        (any mutation wakes it first), so every elided retry is identical
        to the last real one -- rejected lookups touch no LRU state."""
        stats = self.l1_stats
        stats.misses += count
        stats.mshr_rejects += count

    def _l2_access(self, sm_id: int, line: int) -> None:
        part = self.amap.hmc_of(line * LINE_SIZE)
        l2 = self.l2[part]
        if l2.lookup(line):
            self.engine.call_after(self.l2_latency, self._fill_l1,
                                   sm_id, line)
            return
        status = self.l2_mshr[part].allocate(
            line, lambda: self._fill_l1(sm_id, line))
        if status == "full":
            # Park in the partition's miss queue; retried on fills.
            self._l2_waiters[part].append((sm_id, line))
            return
        if status == "merged":
            return
        self._fetch_from_dram(part, line)

    def _fetch_from_dram(self, part: int, line: int) -> None:
        if self.recovery is not None:
            st = _FetchState()
            self._fetches[(part, line)] = st
            self._issue_fetch(part, line, st)
            self._arm_watchdog(part, line, st)
            return
        self.dram_read_requests += 1
        req_size = PacketSizes.mem_read_request()
        resp_size = PacketSizes.mem_read_response()

        def at_hmc() -> None:
            self.hmcs[part].access_line(line, False,
                                        lambda r: send_response())

        def send_response() -> None:
            self.gpu_links.to_gpu(part, resp_size,
                                  lambda: self._fill_l2(part, line))

        self.gpu_links.to_hmc(part, req_size, at_hmc)

    # -- recoverable fetch path (armed runs only) ---------------------------

    def _issue_fetch(self, part: int, line: int, st: _FetchState) -> None:
        """One (re)issue of a recoverable L2 fill.  Every packet of the
        chain carries a ``lost`` callback stamped with the attempt, so a
        drop anywhere (down-link, vault read, up-link) notifies us and a
        notification for a superseded attempt is ignored."""
        self.dram_read_requests += 1
        self.rstats.fetch_attempts += 1
        st.issued_at = self.engine.now
        attempt = st.attempt
        req_size = PacketSizes.mem_read_request()
        resp_size = PacketSizes.mem_read_response()

        def lost() -> None:
            self._fetch_lost(part, line, attempt)

        def at_hmc() -> None:
            self.hmcs[part].access_line(line, False,
                                        lambda r: send_response(),
                                        on_lost=lambda r: lost())

        def send_response() -> None:
            self.gpu_links.to_gpu(part, resp_size,
                                  lambda: self._fill_l2(part, line),
                                  lost=lost)

        self.gpu_links.to_hmc(part, req_size, at_hmc, lost=lost)

    def _fetch_lost(self, part: int, line: int, attempt: int) -> None:
        """A request/response of fill attempt ``attempt`` died in flight.
        Reissue immediately unless a newer attempt (or the fill itself)
        already superseded this one."""
        self.rstats.fills_lost += 1
        st = self._fetches.get((part, line))
        if st is None or st.attempt != attempt:
            return
        self._reissue(part, line, st)

    def _reissue(self, part: int, line: int, st: _FetchState) -> None:
        if st.retries >= self.recovery.mshr_max_retries:
            # Abandon: the fill can never complete, so the run surfaces
            # as a deadlock (chaos outcome "fatal") instead of spinning.
            self.rstats.mshr_gaveup += 1
            return
        st.retries += 1
        st.attempt += 1
        self.rstats.mshr_reissues += 1
        self._issue_fetch(part, line, st)
        self._arm_watchdog(part, line, st)

    def _arm_watchdog(self, part: int, line: int, st: _FetchState) -> None:
        st.wd_token += 1
        deadline = self.engine.now + self.timeouts.timeout("mshr")
        heapq.heappush(self._watchdogs, (deadline, part, line, st.wd_token))

    def next_watchdog_deadline(self) -> int | None:
        """Earliest pending fill deadline (folded into the system loop's
        fast-forward so quiet regions don't skip watchdog polls)."""
        return self._watchdogs[0][0] if self._watchdogs else None

    def poll_watchdogs(self, now: int) -> None:
        """Reissue fills whose deadline expired; called by ``System.run``
        each polled cycle, like the NDP ACK watchdog."""
        wd = self._watchdogs
        while wd and wd[0][0] <= now:
            _, part, line, token = heapq.heappop(wd)
            st = self._fetches.get((part, line))
            if st is None or token != st.wd_token:
                continue   # filled or superseded; stale heap entry
            self.rstats.mshr_watchdog_fires += 1
            self._reissue(part, line, st)

    def _fill_l2(self, part: int, line: int) -> None:
        if self.recovery is not None:
            st = self._fetches.pop((part, line), None)
            if st is None:
                # A reissue and the (delayed) original both arrived; the
                # first response already filled the MSHR.  Exactly-once:
                # count and drop the duplicate.
                self.rstats.fills_dup += 1
                return
            self.rstats.fills += 1
            self.timeouts.observe("mshr", self.engine.now - st.issued_at)
        self.l2[part].insert(line)
        self.l2_mshr[part].fill(line)
        waiters = self._l2_waiters[part]
        mshr = self.l2_mshr[part]
        # Admit parked requests while MSHR capacity remains; hits and
        # merges don't consume entries, so keep draining until the file
        # is full again or the queue empties (avoids stranding a waiter
        # behind a request that turned into a late hit).
        while waiters and len(mshr) < mshr.num_entries:
            sm_id, wline = waiters.pop(0)
            self._l2_access(sm_id, wline)

    def _fill_l1(self, sm_id: int, line: int) -> None:
        # Fills always run as engine events, and the resulting warp
        # wake-ups funnel through SM.wake_warp — the active scheduler's
        # waker hook (invariants I1/I3, docs/performance.md).  Never call
        # this synchronously from another SM's tick.
        #
        # The explicit sm_waker fires first (settle against the frozen
        # pre-fill state, I1): a struct-parked SM has no MSHR waiter
        # registered for this line, so without it the freed entry/fresh
        # line would never reactivate the SM.
        if self.sm_waker is not None:
            self.sm_waker(sm_id)
        self.l1[sm_id].insert(line)
        self.l1_mshr[sm_id].fill(line)

    # -- baseline / inline stores ---------------------------------------------------

    def store(self, sm, access: MemAccess) -> bool:
        """Write-through store of one coalesced line access."""
        line = access.line_addr
        self.l1[sm.sm_id].touch_write(line)
        part = self.amap.hmc_of(line * LINE_SIZE)
        self.l2[part].touch_write(line)
        size = PacketSizes.mem_write(access.words)
        self.store_bytes += size
        self.gpu_links.to_hmc(
            part, size,
            lambda: self.hmcs[part].access_line(line, True, lambda r: None,
                                                noc_bytes=size))
        return True

    # -- NDP hooks ---------------------------------------------------------------------

    def rdf_probe(self, sm_id: int, line: int) -> bool:
        """RDF cache check (Section 4.1.1): L1 of the issuing SM, then the
        owning L2 slice.  No fill on miss."""
        if self.l1[sm_id].probe(line):
            return True
        part = self.amap.hmc_of(line * LINE_SIZE)
        return self.l2[part].probe(line)

    def invalidate(self, line: int) -> None:
        """Apply a vault-originated invalidation (Section 4.2)."""
        part = self.amap.hmc_of(line * LINE_SIZE)
        self.l2[part].invalidate(line)
        for l1 in self.l1:
            l1.invalidate(line)

    def count_invalidation_bytes(self, nbytes: int) -> None:
        self.invalidation_bytes += nbytes
