"""Result records produced by a simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StallBreakdown:
    """Per-GPU no-issue-cycle classification (paper Figure 8).

    One SM-cycle with no instruction issued is attributed to exactly one
    category:

    * ``exec_unit_busy`` -- a warp had a ready instruction but the execution
      unit / memory pipeline could not accept it (MSHR full, NDP packet
      buffer full, port conflict).
    * ``dependency_stall`` -- every otherwise-runnable warp was waiting for
      an operand (cache/DRAM access in flight, ALU latency).
    * ``warp_idle`` -- no warp had a valid instruction to issue: empty warp
      slot, finished warp, or a warp blocked at ``OFLD.END`` waiting for the
      offload acknowledgment (the dominant NaiveNDP effect).
    """

    exec_unit_busy: int = 0
    dependency_stall: int = 0
    warp_idle: int = 0

    @property
    def total(self) -> int:
        return self.exec_unit_busy + self.dependency_stall + self.warp_idle

    def merged(self, other: "StallBreakdown") -> "StallBreakdown":
        return StallBreakdown(
            self.exec_unit_busy + other.exec_unit_busy,
            self.dependency_stall + other.dependency_stall,
            self.warp_idle + other.warp_idle,
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "ExecUnitBusy": self.exec_unit_busy,
            "DependencyStall": self.dependency_stall,
            "WarpIdle": self.warp_idle,
        }


@dataclass
class TrafficBytes:
    """Byte counts by traffic class."""

    gpu_link: int = 0       # GPU off-chip links (both directions)
    mem_net: int = 0        # inter-HMC memory network
    intra_hmc: int = 0      # logic-layer NoC between I/O, vaults and NSU
    invalidations: int = 0  # subset of gpu_link used by INV packets (§4.2)

    def as_dict(self) -> dict[str, int]:
        return {
            "gpu_link": self.gpu_link,
            "mem_net": self.mem_net,
            "intra_hmc": self.intra_hmc,
            "invalidations": self.invalidations,
        }


@dataclass
class RunResult:
    """Everything a single simulation run reports."""

    workload: str
    config_name: str
    cycles: int
    instructions: int            # warp-instructions retired on the GPU
    nsu_instructions: int        # warp-instructions retired on NSUs
    warps_completed: int
    stalls: StallBreakdown
    traffic: TrafficBytes
    dram_activations: int
    dram_reads: int              # bytes
    dram_writes: int             # bytes
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    rdf_packets: int = 0
    rdf_cache_hits: int = 0
    offloads_issued: int = 0
    offloads_suppressed: int = 0
    blocks_total: int = 0        # offload-block instances encountered
    nsu_occupancy_sum: float = 0.0   # sum over NSU-cycles of busy warp slots
    nsu_cycles: int = 0
    nsu_icache_lines_touched: int = 0
    nsu_icache_lines_total: int = 0
    gpu_alu_ops: int = 0
    nsu_alu_ops: int = 0
    l1_accesses: int = 0
    l2_accesses: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """GPU-side instructions per cycle (the paper's performance metric
        normalizes runtime; at fixed work 1/cycles and IPC rank equally)."""
        return self.instructions / max(1, self.cycles)

    @property
    def avg_nsu_occupancy(self) -> float:
        """Average busy warp slots per NSU cycle (Figure 11)."""
        return self.nsu_occupancy_sum / max(1, self.nsu_cycles)

    @property
    def nsu_icache_utilization(self) -> float:
        """Fraction of NSU I-cache lines ever touched (Figure 11)."""
        return self.nsu_icache_lines_touched / max(1, self.nsu_icache_lines_total)

    @property
    def invalidation_overhead(self) -> float:
        """INV bytes as a fraction of all GPU off-chip traffic (§4.2)."""
        return self.traffic.invalidations / max(1, self.traffic.gpu_link)

    def speedup_over(self, baseline: "RunResult") -> float:
        """Runtime speedup vs. a baseline run of the same workload."""
        if self.workload != baseline.workload:
            raise ValueError("speedup comparison across different workloads")
        return baseline.cycles / max(1, self.cycles)
