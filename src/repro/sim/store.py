"""Content-addressed on-disk store for simulation results.

Every evaluation artifact (figures 7-11, the report, the benchmark suite)
is a grid of (workload, configuration) simulations.  The store memoizes
each cell on disk, keyed by a stable SHA-256 of everything that determines
the outcome:

* the workload name,
* the configuration name *and* the full base :class:`SystemConfig`
  (so ``--sms``/``--nsu-mhz``/``--ro-cache`` overrides produce distinct
  keys),
* the scale preset (or custom :class:`~repro.workloads.base.Scale`),
* ``max_cycles``,
* a code-version salt (:data:`CODE_VERSION_SALT`) bumped whenever the
  simulator's semantics change, which invalidates every prior entry.

Entries are one JSON file each under ``root/<key[:2]>/<key>.json``, written
atomically (temp file + rename) so a killed run never leaves a torn entry.
Corrupted or stale-schema entries are treated as misses and deleted.

Concurrent writers are safe by construction: the write-then-rename means a
reader either sees no entry or a complete one, and two processes racing
the same key converge on identical bytes (the simulator is deterministic).
To avoid paying for the duplicate simulation at all, :meth:`ResultStore.
reserve` hands out a cross-process key reservation (an ``O_EXCL`` lock
file): the winner simulates and publishes, losers :meth:`ResultStore.wait`
for the entry to appear.  The ``repro serve`` shard workers run this
protocol on every cell.

The simulator is deterministic (seeded RNG, integer-time engine), so a
stored cell is byte-for-byte equivalent to re-simulating it.

Key-reuse audit (who shares keys with whom)
-------------------------------------------

Three producers write through :func:`cell_key` and must stay coherent:

* sweeps/figures (:class:`~repro.analysis.figures.ExperimentRunner`)
  use the **plain** key -- no extra salt;
* chaos grids salt the key with the fault-plan fingerprint
  (``ExperimentRunner.chaos_store_key``) because a faulted result is a
  different outcome for the same inputs;
* design-space exploration (:mod:`repro.explore`) **deliberately reuses
  the plain key**: a candidate materializes to an ordinary
  ``(config name, base config)`` cell, so explore runs dedupe against
  each other, across agents, and against any sweep or figure that ever
  visited the same configuration.  Anything that would make the same
  key yield a different result (a new scheduler mode, a new workload
  parameter) must therefore go *into* the key -- or bump
  :data:`CODE_VERSION_SALT` -- never be left out "because only explore
  uses it".

One sanctioned exception: :func:`config_fingerprint` strips the
``backend``/``cxl`` fields when ``backend == "hmc"``.  The hmc substrate
is bit-identical to the pre-backend simulator, so pre-existing store
entries stay valid; any non-hmc backend keeps both fields in the key.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time

from repro.config import SystemConfig
from repro.sim.results import RunResult
from repro.sim.serialize import result_from_dict, result_to_dict

#: Bump to invalidate every stored result after a semantic simulator change.
CODE_VERSION_SALT = "ndp-sim-v1"

#: Store format version; entries with a different version are misses.
STORE_FORMAT = 1


def config_fingerprint(cfg: SystemConfig) -> str:
    """Canonical JSON of the full configuration tree.

    Back-compat rule for the memory-backend fields: on the default
    ``backend="hmc"`` substrate, ``backend`` and the (then irrelevant)
    ``cxl`` parameter block are stripped from the fingerprint, so every
    key minted before the backend abstraction existed still resolves to
    the same entry.  Non-default backends keep both fields, which is
    what separates their keys from the hmc ones.
    """
    d = dataclasses.asdict(cfg)
    if d.get("backend", "hmc") == "hmc":
        d.pop("backend", None)
        d.pop("cxl", None)
    return json.dumps(d, sort_keys=True)


def _scale_token(scale) -> str:
    """Stable token for a scale preset name or a custom Scale object."""
    if isinstance(scale, str):
        return scale
    if dataclasses.is_dataclass(scale):
        return json.dumps(dataclasses.asdict(scale), sort_keys=True)
    return repr(scale)


def cell_key(workload: str, config_name: str, base: SystemConfig,
             scale, max_cycles: int,
             salt: str = CODE_VERSION_SALT) -> str:
    """SHA-256 key of one (workload, config) simulation cell."""
    payload = "\n".join([
        salt,
        workload,
        config_name,
        config_fingerprint(base),
        _scale_token(scale),
        str(max_cycles),
    ])
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultStore:
    """A directory of content-addressed :class:`RunResult` entries."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(os.path.expanduser(str(root)))
        os.makedirs(self.root, exist_ok=True)
        # Concurrency contract: stores are shared *across processes* via
        # atomic renames and O_EXCL reservation files, never via
        # in-process locks -- each thread/process binds its own
        # ResultStore.  The counters below are per-instance diagnostics,
        # not shared state.
        self.hits = 0     # guarded-by: none -- per-instance diagnostic
        self.misses = 0   # guarded-by: none -- per-instance diagnostic
        self.corrupt = 0  # guarded-by: none -- per-instance diagnostic

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    # -- read ---------------------------------------------------------------

    def get(self, key: str) -> RunResult | None:
        """Load a stored result, or None.  A corrupted, truncated or
        stale-format entry counts as a miss and is removed."""
        path = self._path(key)
        try:
            with open(path) as f:
                payload = json.load(f)
            if (payload.get("format") != STORE_FORMAT
                    or payload.get("key") != key):
                raise ValueError("stale or mismatched entry")
            result = result_from_dict(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.corrupt += 1
            self.misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    # -- write --------------------------------------------------------------

    def put(self, key: str, result: RunResult,
            meta: dict | None = None) -> str:
        """Atomically persist one result; returns the entry path."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "format": STORE_FORMAT,
            "key": key,
            "salt": CODE_VERSION_SALT,
            # lint: ignore[DET005] -- store metadata only; never read
            # back into a RunResult
            "created": time.time(),
            "meta": {"workload": result.workload,
                     "config": result.config_name, **(meta or {})},
            "result": result_to_dict(result),
        }
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        return path

    # -- cross-process key reservation --------------------------------------

    def reserve(self, key: str,
                stale_after: float = 3600.0) -> "StoreReservation":
        """Claim the right to simulate ``key`` across processes.

        Returns a :class:`StoreReservation` context manager; exactly one
        concurrent caller gets ``acquired=True`` (an ``O_EXCL`` lock file
        next to the entry).  Losers should :meth:`wait` for the entry, or
        simulate anyway -- the atomic :meth:`put` keeps duplicates
        harmless.  A lock older than ``stale_after`` seconds is presumed
        abandoned (crashed holder) and stolen once.

        Callers that acquire the reservation must re-check :meth:`get`
        before simulating: the previous holder may have published between
        our miss and our acquisition (double-checked locking).
        """
        lock = self._path(key) + ".lock"
        os.makedirs(os.path.dirname(lock), exist_ok=True)
        for attempt in (0, 1):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if attempt:
                    break
                try:
                    # lint: ignore[DET005] -- lock-staleness bookkeeping
                    # only; never reaches a result or a key
                    age = time.time() - os.path.getmtime(lock)
                except OSError:
                    continue       # holder released between EXCL and stat
                if age <= stale_after:
                    break
                # Presumed-dead holder; steal the lock and retry once.
                try:
                    os.remove(lock)
                except OSError:
                    break
            else:
                with os.fdopen(fd, "w") as f:
                    f.write(str(os.getpid()))
                return StoreReservation(self, key, lock, acquired=True)
        return StoreReservation(self, key, lock, acquired=False)

    def wait(self, key: str, timeout: float = 300.0,
             poll: float = 0.05) -> RunResult | None:
        """Block until ``key`` has an entry (another process is
        publishing it) or ``timeout`` elapses; returns the result or
        None.  Misses during the wait are not counted in :attr:`misses`
        -- only the final outcome is."""
        # lint: ignore[DET005] -- host-side wait deadline; the simulated
        # result is whatever the publishing process stored
        deadline = time.monotonic() + timeout
        while True:
            path = self._path(key)
            if os.path.exists(path):
                return self.get(key)
            # lint: ignore[DET005] -- same host-side deadline check
            if time.monotonic() >= deadline:
                return None
            time.sleep(poll)

    # -- maintenance --------------------------------------------------------

    def _entry_paths(self) -> list[str]:
        out = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for fn in filenames:
                if fn.endswith(".json"):
                    out.append(os.path.join(dirpath, fn))
        return sorted(out)

    def ls(self) -> list[dict]:
        """Metadata of every entry: key, workload, config, age, size."""
        out = []
        for path in self._entry_paths():
            entry = {"key": os.path.basename(path)[:-len(".json")],
                     "size_bytes": os.path.getsize(path)}
            try:
                with open(path) as f:
                    payload = json.load(f)
                entry.update(payload.get("meta", {}))
                entry["created"] = payload.get("created")
                entry["salt"] = payload.get("salt")
            except Exception:
                entry["corrupt"] = True
            out.append(entry)
        return out

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        for path in self._entry_paths():
            try:
                os.remove(path)
                n += 1
            except OSError:
                pass
        return n

    def __len__(self) -> int:
        return len(self._entry_paths())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultStore({self.root!r}, entries={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")


class StoreReservation:
    """One cross-process claim on a store key (see
    :meth:`ResultStore.reserve`).  Use as a context manager so the lock
    file is released even when the simulation raises."""

    def __init__(self, store: ResultStore, key: str, lock_path: str,
                 acquired: bool) -> None:
        self.store = store
        self.key = key
        self.lock_path = lock_path
        self.acquired = acquired

    def release(self) -> None:
        if self.acquired:
            self.acquired = False
            try:
                os.remove(self.lock_path)
            except OSError:
                pass

    def __enter__(self) -> "StoreReservation":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StoreReservation({self.key[:12]}..., "
                f"acquired={self.acquired})")
