"""Post-run consistency auditing.

``audit_system`` inspects a finished :class:`~repro.sim.system.System` and
its :class:`~repro.sim.results.RunResult` for conservation violations --
lost packets, leaked buffer entries, unbalanced credits, impossible
counters.  The integration tests run it after every simulated
configuration; it is also available to users via
``run_workload(..., audit=True)``-style wrappers in their own harnesses.
"""

from __future__ import annotations

from repro.sim.results import RunResult


class AuditError(AssertionError):
    """A conservation invariant failed after a run."""


def _check(ok: bool, msg: str, failures: list[str]) -> None:
    if not ok:
        failures.append(msg)


def audit_system(system, result: RunResult) -> list[str]:
    """Return a list of invariant violations (empty = clean)."""
    failures: list[str] = []
    cfg = system.cfg

    # -- engine drained -------------------------------------------------------
    _check(system.engine.pending == 0,
           f"{system.engine.pending} events still pending", failures)

    # -- GPU side -------------------------------------------------------------
    for sm in system.sms:
        _check(sm.done, f"SM {sm.sm_id} still has live warps", failures)
        _check(sm.dep_count == 0,
               f"SM {sm.sm_id} leaks dep_count={sm.dep_count}", failures)
        _check(sm.pending_replays == 0,
               f"SM {sm.sm_id} leaks load replays", failures)
    for part, w in enumerate(system.memsys._l2_waiters):
        _check(not w, f"L2 slice {part} leaks {len(w)} parked requests",
               failures)
    for part, m in enumerate(system.memsys.l2_mshr):
        _check(len(m) == 0, f"L2 slice {part} leaks MSHR entries", failures)
    for sm_id, m in enumerate(system.memsys.l1_mshr):
        _check(len(m) == 0, f"L1 {sm_id} leaks MSHR entries", failures)

    # -- baseline fill recovery ------------------------------------------------
    ms = system.memsys
    _check(not ms._fetches,
           f"{len(ms._fetches)} baseline fills still tracked", failures)
    if ms.recovery is not None:
        b = ms.rstats
        # Every issued fetch attempt resolves exactly one way: it fills
        # the L2, its packet is reported lost, or it arrives late as a
        # duplicate.  In-flight responses and loss notifications are
        # engine events, so a drained engine implies no fourth state.
        _check(b.fetch_attempts == b.fills + b.fills_lost + b.fills_dup,
               f"fill conservation: attempts {b.fetch_attempts} != fills "
               f"{b.fills} + lost {b.fills_lost} + dup {b.fills_dup}",
               failures)
        _check(b.fetch_attempts == ms.dram_read_requests,
               f"fetch attempts {b.fetch_attempts} != DRAM read requests "
               f"{ms.dram_read_requests}", failures)

    # -- NDP side -------------------------------------------------------------
    if system.ndp is not None:
        s = system.ndp.stats
        # Under fault injection an offload may complete via inline fallback
        # (no ACK) and an NDP write's invalidation may be dropped; the
        # recovery stats account for both so conservation still holds.
        rstats = getattr(system.ndp, "rstats", None)
        fallbacks = rstats.fallbacks if rstats is not None else 0
        writes_lost = rstats.writes_lost if rstats is not None else 0
        _check(s.acks + fallbacks == s.offloads,
               f"ACKs {s.acks} + fallbacks {fallbacks} != "
               f"offloads {s.offloads}", failures)
        _check(s.invalidations_sent + writes_lost == s.ndp_writes,
               "one INV per NDP write violated", failures)
        _check(all(v == 0 for v in system.ndp.wta_inflight),
               f"in-flight WTA counters leak: {system.ndp.wta_inflight}",
               failures)
        _check(all(p == 0 for p in system.ndp.pending),
               f"SM pending buffers leak: {system.ndp.pending}", failures)
        try:
            system.ndp.credits.assert_conserved()
        except AssertionError as e:
            failures.append(str(e))
        for hmc in range(cfg.num_hmcs):
            got = system.ndp.credits.available(hmc)
            # Command-queue depth is a backend decision (hmc: the NSU
            # buffer; cxl: the expander-port queue) -- see backends.md.
            want = (system.backend.ndp_cmd_entries(cfg),
                    cfg.nsu.read_data_entries,
                    cfg.nsu.write_addr_entries)
            _check(got == want,
                   f"HMC {hmc} credits {got} != capacity {want}", failures)
        for nsu in system.nsus:
            _check(nsu.idle, f"NSU {nsu.hmc_id} not idle", failures)
            _check(len(nsu.read_buf) == 0,
                   f"NSU {nsu.hmc_id} read buffer leaks", failures)
            _check(len(nsu.wta_buf) == 0,
                   f"NSU {nsu.hmc_id} WTA buffer leaks", failures)
            _check(not nsu._wta_arrived and not nsu._wta_expected,
                   f"NSU {nsu.hmc_id} partial WTA state leaks", failures)

    # -- result-level sanity ----------------------------------------------------
    _check(result.stalls.total >= 0, "negative stall total", failures)
    _check(result.l1_hits + result.l1_misses <= result.l1_accesses,
           "L1 demand accesses exceed total accesses", failures)
    _check(result.rdf_cache_hits <= result.rdf_packets,
           "more RDF hits than packets", failures)
    _check(result.dram_reads % 128 == 0 and result.dram_writes % 128 == 0,
           "DRAM byte counters not line-aligned", failures)
    return failures


def assert_clean(system, result: RunResult) -> None:
    failures = audit_system(system, result)
    if failures:
        raise AuditError("; ".join(failures))
