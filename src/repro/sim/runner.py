"""Run helpers: named configurations and workload execution.

The configuration names follow the paper's figures:

* ``Baseline``             -- 64 SMs, no NDP (Figure 7/9 reference)
* ``Baseline_MoreCore``    -- +8 SMs instead of the 8 NSUs (Section 6)
* ``NaiveNDP``             -- offload every block instance (Section 6)
* ``NDP(x)``               -- static offload ratio x (Section 7.1)
* ``NDP(Dyn)``             -- Algorithm 1 (Section 7.2)
* ``NDP(Dyn)_Cache``       -- + cache-locality filter (Section 7.3)
"""

from __future__ import annotations

from repro.config import OffloadMode, SystemConfig, paper_config
from repro.sim.results import RunResult
from repro.sim.system import System
from repro.workloads import WorkloadModel, get_workload


def config_variants(base: SystemConfig) -> dict[str, SystemConfig]:
    """All named system variants derived from a base configuration."""
    out = {
        "Baseline": base.with_mode(OffloadMode.OFF),
        "Baseline_MoreCore": base.with_mode(OffloadMode.OFF).scaled_gpu(
            num_sms=base.gpu.num_sms + base.num_hmcs),
        "NaiveNDP": base.with_mode(OffloadMode.NAIVE),
        "NDP(Dyn)": base.with_mode(OffloadMode.DYNAMIC),
        "NDP(Dyn)_Cache": base.with_mode(OffloadMode.DYNAMIC_CACHE),
    }
    for r in (0.2, 0.4, 0.6, 0.8, 1.0):
        out[f"NDP({r:.1f})"] = base.with_mode(OffloadMode.STATIC,
                                              static_ratio=r)
    return out


def make_config(name: str, base: SystemConfig | None = None) -> SystemConfig:
    base = base or paper_config()
    variants = config_variants(base)
    try:
        return variants[name]
    except KeyError:
        raise KeyError(f"unknown config {name!r}; choose from "
                       f"{sorted(variants)}") from None


#: Epoch lengths matched to each scale's run length.  The paper's 30,000
#: cycles assume multi-million-cycle workloads; scaled-down runs need
#: proportionally shorter epochs so Algorithm 1 gets enough steps (a few
#: thousand cycles still retire plenty of block instructions across 64
#: SMs, so the per-epoch IPC signal stays clean).
EPOCH_BY_SCALE = {"ci": 400, "bench": 1000, "paper": 2500}


def scaled_config(config_name: str, base: SystemConfig | None,
                  scale) -> SystemConfig:
    """Resolve a named variant and match its epoch length to the scale."""
    import dataclasses

    cfg = make_config(config_name, base)
    scale_name = scale if isinstance(scale, str) else scale.name
    epoch = EPOCH_BY_SCALE.get(scale_name)
    if epoch is not None and cfg.ndp.epoch_cycles != epoch:
        cfg = dataclasses.replace(
            cfg, ndp=dataclasses.replace(cfg.ndp, epoch_cycles=epoch))
    return cfg


def build_system(workload: str | WorkloadModel, config_name: str,
                 *, base: SystemConfig | None = None, scale="ci",
                 metrics=None, faults=None, sched: str = "active") -> System:
    """Assemble a ready-to-run system with its workload loaded.

    ``metrics`` is an optional :class:`~repro.sim.metrics.MetricsRegistry`
    the system will publish heartbeats and a summary into.  ``faults`` is
    an optional :class:`~repro.faults.FaultPlan`; passing one arms the
    fault injector and (unless the plan disables it) protocol recovery.
    ``sched`` picks the main-loop scheduler ("active" or "legacy"; both
    are bit-identical -- see docs/performance.md).
    """
    model = (get_workload(workload) if isinstance(workload, str)
             else workload)
    cfg = scaled_config(config_name, base, scale)
    system = System(cfg, config_name=config_name, metrics=metrics,
                    faults=faults, sched=sched)
    instance = model.build(cfg, scale)
    system.set_code_layout(instance.blocks)
    system.load_workload(instance.name, instance.traces)
    if metrics is not None:
        metrics.meta.update({
            "workload": instance.name, "config": config_name,
            "scale": scale if isinstance(scale, str) else scale.name})
    return system


def run_workload(workload: str | WorkloadModel, config_name: str,
                 *, base: SystemConfig | None = None,
                 scale="ci",
                 max_cycles: int = 20_000_000,
                 metrics=None, faults=None,
                 sched: str = "active") -> RunResult:
    """Build the system + workload and simulate to completion.

    ``scale`` is a preset name ("ci"/"bench"/"paper") or a custom
    :class:`~repro.workloads.Scale`.
    """
    system = build_system(workload, config_name, base=base, scale=scale,
                          metrics=metrics, faults=faults, sched=sched)
    return system.run(max_cycles=max_cycles)
