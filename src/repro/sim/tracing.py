"""Packet-level message tracing (the paper's Figure 2/6 timelines).

Attach a :class:`MessageTrace` to an :class:`~repro.core.offload.NDPController`
(``controller.trace = MessageTrace()``) and every NDP message records a
``(cycle, kind, src, dst, bytes, uid)`` event at *send* time.  ``timeline``
renders the message sequence of one offload-block instance, which is the
Figure 6 diagram in text form; the quickstart example prints one.

Tracing is strictly additive: with no trace attached the controller pays a
single attribute check per message.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TraceEvent:
    cycle: int
    kind: str        # CMD | RDF | RDF_HIT_RESP | RDF_RESP | WTA | WRITE
                     # | INV | WRITE_ACK | ACK
    src: str
    dst: str
    size: int
    uid: tuple | None = None
    info: str = ""


class MessageTrace:
    """Collects NDP message events; bounded to protect long runs."""

    def __init__(self, max_events: int = 100_000) -> None:
        self.events: list[TraceEvent] = []
        self.max_events = max_events
        self.dropped = 0

    def record(self, cycle: int, kind: str, src: str, dst: str, size: int,
               uid: tuple | None = None, info: str = "") -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(cycle, kind, src, dst, size, uid,
                                      info))

    def for_instance(self, uid: tuple) -> list[TraceEvent]:
        return [e for e in self.events if e.uid == uid]

    def instances(self) -> list[tuple]:
        seen: dict[tuple, None] = {}
        for e in self.events:
            if e.uid is not None:
                seen.setdefault(e.uid)
        return list(seen)

    def timeline(self, uid: tuple) -> str:
        """Figure 6-style rendering of one offload block's messages."""
        evs = self.for_instance(uid)
        if not evs:
            return f"(no events for instance {uid})"
        t0 = evs[0].cycle
        lines = [f"offload instance {uid} (t0 = cycle {t0}):"]
        for e in evs:
            arrow = f"{e.src:>8s} -> {e.dst:<8s}"
            extra = f"  {e.info}" if e.info else ""
            lines.append(f"  +{e.cycle - t0:5d}  {e.kind:<13s} {arrow} "
                         f"{e.size:4d} B{extra}")
        return "\n".join(lines)

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    def summary(self) -> dict[str, tuple[int, int]]:
        """kind -> (count, total bytes).

        When the ``max_events`` bound was hit, a ``DROPPED`` pseudo-kind
        reports how many events were discarded (with 0 bytes, since
        dropped events are not measured) so truncated timelines are never
        mistaken for complete ones.
        """
        out: dict[str, list[int]] = {}
        for e in self.events:
            c = out.setdefault(e.kind, [0, 0])
            c[0] += 1
            c[1] += e.size
        result = {k: (v[0], v[1]) for k, v in sorted(out.items())}
        if self.dropped:
            result["DROPPED"] = (self.dropped, 0)
        return result
