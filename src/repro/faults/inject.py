"""Runtime fault injection: evaluate a :class:`~repro.faults.plan.FaultPlan`
against the simulation's event streams.

One :class:`FaultInjector` is armed per system; the hooked components
(fabrics, vaults, NSUs, the credit manager) each hold a reference that is
``None`` when no plan is armed, so the clean path costs a single attribute
test and stays cycle-exact.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Callable

from repro.faults.plan import FaultPlan, FaultSpec

#: Cycles after the injection decision at which a ``lost`` callback fires
#: (models the packet dying some hops into its route).
LOSS_NOTIFY_DELAY = 20


class _SpecState:
    """Mutable per-run state of one FaultSpec: its RNG and counters."""

    __slots__ = ("spec", "rng", "seen", "fired")

    def __init__(self, spec: FaultSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng
        self.seen = 0       # events observed at the site
        self.fired = 0      # faults actually injected

    def fires(self, now: int) -> bool:
        self.seen += 1
        s = self.spec
        if s.max_events and self.fired >= s.max_events:
            return False
        if s.window is not None and not (s.window[0] <= now < s.window[1]):
            return False
        hit = (self.seen in s.at_events
               or (s.every and self.seen % s.every == 0)
               or (s.rate and self.rng.random() < s.rate))
        if hit:
            self.fired += 1
        return hit


class FaultInjector:
    """Evaluates an armed plan at each hooked site."""

    def __init__(self, plan: FaultPlan, engine) -> None:
        self.plan = plan
        self.engine = engine
        self._by_site: dict[str, list[_SpecState]] = defaultdict(list)
        for i, spec in enumerate(plan.specs):
            rng = random.Random(f"{plan.seed}:{spec.site}:{i}")
            self._by_site[spec.site].append(_SpecState(spec, rng))
        self.fired: dict[tuple[str, str], int] = defaultdict(int)

    # -- decision ----------------------------------------------------------

    def decide(self, site: str) -> FaultSpec | None:
        """Count one event at ``site``; return the winning spec (first in
        plan order) if a fault fires, else None."""
        states = self._by_site.get(site)
        if not states:
            return None
        now = self.engine.now
        winner = None
        for st in states:
            if st.fires(now) and winner is None:
                winner = st.spec
        if winner is not None:
            self.fired[(site, winner.kind)] += 1
        return winner

    def packet(self, site: str, deliver: Callable[[], None],
               lost: Callable[[], None] | None = None):
        """Filter one packet send.  Returns the (possibly wrapped)
        ``deliver`` callback, or None when the packet is dropped -- in
        which case ``lost`` is scheduled so the sender can reconcile
        conservation counters."""
        spec = self.decide(site)
        if spec is None:
            return deliver
        if spec.kind == "delay":
            d = spec.delay_cycles
            return lambda: self.engine.after(d, deliver)
        # drop / corrupt: the receiver never sees the packet.
        if lost is not None:
            self.engine.after(LOSS_NOTIFY_DELAY, lost)
        return None

    # -- introspection -----------------------------------------------------

    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())

    def snapshot(self) -> dict:
        """Per-site event/fire counts for RunResult.extra and metrics."""
        events = {site: sum(st.seen for st in states)
                  for site, states in sorted(self._by_site.items())}
        fired = {f"{site}.{kind}": n
                 for (site, kind), n in sorted(self.fired.items())}
        return {"plan": self.plan.name, "seed": self.plan.seed,
                "events": events, "fired": fired,
                "total_fired": self.total_fired}

    def metrics_counters(self) -> dict[str, int]:
        return {f"faults.{site}.{kind}": n
                for (site, kind), n in sorted(self.fired.items())}
