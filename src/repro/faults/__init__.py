"""Deterministic fault injection and protocol recovery for the NDP
protocol (RDF/WTA/CMD/ACK/credit traffic).

See ``docs/fault-injection.md`` for the schema, the scenario registry and
the recovery semantics, and ``repro chaos --help`` for the sweep CLI.
"""

from repro.faults.inject import FaultInjector
from repro.faults.plan import (FaultPlan, FaultSpec, RecoveryPolicy,
                               get_scenario, scenario_names)
from repro.faults.recovery import (BaselineRecoveryStats, RecoveryStats,
                                   TimeoutTracker)

__all__ = ["BaselineRecoveryStats", "FaultInjector", "FaultPlan",
           "FaultSpec", "RecoveryPolicy", "RecoveryStats",
           "TimeoutTracker", "get_scenario", "scenario_names"]
