"""Protocol-recovery bookkeeping.

The recovery mechanics live in :class:`~repro.core.offload.NDPController`
(watchdogs, replay, inline fallback, credit reconciliation); this module
holds the counters they surface.  The counters exist on every controller
so the post-run audit can read them unconditionally, but they only move
when a fault plan with a recovery policy is armed.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class RecoveryStats:
    """Counters for the watchdog/replay/fallback/reconciliation paths."""

    watchdog_fires: int = 0     # no-progress timeouts acted upon
    retries: int = 0            # block replays (reservation or full)
    fallbacks: int = 0          # blocks re-executed inline on the SM
    credits_reclaimed: int = 0  # credit entries restored by reconciliation
    stale_cmds: int = 0         # packets of an aborted attempt discarded
    stale_reads: int = 0
    stale_wta: int = 0
    stale_acks: int = 0
    wta_purged: int = 0         # WTA accesses removed at block abort
    wta_lost: int = 0           # WTA packets dropped in flight
    writes_lost: int = 0        # NDP write packets dropped in flight
    write_acks_lost: int = 0    # write acknowledgments dropped in flight
    invs_lost: int = 0          # invalidations dropped in flight

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def metrics_counters(self) -> dict[str, int]:
        return {f"recovery.{k}": v for k, v in self.as_dict().items()}
