"""Recovery bookkeeping shared by both recovery layers.

The recovery mechanics live in :class:`~repro.core.offload.NDPController`
(ACK watchdogs, replay, inline fallback, credit reconciliation) and
:class:`~repro.sim.memsys.GPUMemSystem` (MSHR fill watchdogs, bounded
reissue); this module holds the counters they surface and the
:class:`TimeoutTracker` that resolves their deadlines.  The counters
exist on every component so the post-run audit can read them
unconditionally, but they only move when a fault plan with a recovery
policy is armed.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.faults.plan import RecoveryPolicy


@dataclass
class RecoveryStats:
    """Counters for the watchdog/replay/fallback/reconciliation paths."""

    watchdog_fires: int = 0     # no-progress timeouts acted upon
    retries: int = 0            # block replays (reservation or full)
    fallbacks: int = 0          # blocks re-executed inline on the SM
    credits_reclaimed: int = 0  # credit entries restored by reconciliation
    stale_cmds: int = 0         # packets of an aborted attempt discarded
    stale_reads: int = 0
    stale_wta: int = 0
    stale_acks: int = 0
    wta_purged: int = 0         # WTA accesses removed at block abort
    wta_lost: int = 0           # WTA packets dropped in flight
    writes_lost: int = 0        # NDP write packets dropped in flight
    write_acks_lost: int = 0    # write acknowledgments dropped in flight
    invs_lost: int = 0          # invalidations dropped in flight

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def metrics_counters(self) -> dict[str, int]:
        # lint: ignore[DET002] -- dataclass field order is fixed at class
        # definition; the dict feeds a name-keyed registry anyway
        return {f"recovery.{k}": v for k, v in self.as_dict().items()}


@dataclass
class BaselineRecoveryStats:
    """Counters for the baseline-load (MSHR fill) recovery path.

    Field names are disjoint from :class:`RecoveryStats` because both end
    up merged into one ``extra["recovery"]`` dict on the run result.
    Conservation: every issued fetch attempt ends exactly one way, so
    ``fetch_attempts == fills + fills_lost + fills_dup`` (audited).
    """

    fetch_attempts: int = 0       # DRAM fetches issued (incl. reissues)
    fills: int = 0                # attempts whose response filled the L2
    fills_lost: int = 0           # attempts whose packet died in flight
    fills_dup: int = 0            # late duplicate responses, dropped
    mshr_watchdog_fires: int = 0  # fill deadlines that expired
    mshr_reissues: int = 0        # reissues (loss-notified or watchdog)
    mshr_gaveup: int = 0          # fills abandoned after mshr_max_retries

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def metrics_counters(self) -> dict[str, int]:
        # lint: ignore[DET002] -- dataclass field order is fixed at class
        # definition; the dict feeds a name-keyed registry anyway
        return {f"recovery.{k}": v for k, v in self.as_dict().items()}


class TimeoutTracker:
    """Per-site recovery deadlines: static, overridden, or adaptive.

    One tracker is built per armed system and shared by the ACK watchdog
    (site ``"ack"``) and the MSHR watchdog (site ``"mshr"``), so both
    resolve deadlines through the same policy.  In adaptive mode each
    site's observed completion latencies feed an EWMA and the deadline
    becomes ``max(min_timeout, timeout_scale * ewma)`` -- deliberately
    unclamped above so sustained congestion widens the deadline instead
    of triggering retry storms.  Until a site has an observation it uses
    its static deadline.
    """

    def __init__(self, policy: RecoveryPolicy) -> None:
        self.policy = policy
        self._ewma: dict[str, float] = {}
        self._observations: dict[str, int] = {}

    def observe(self, site: str, latency: int) -> None:
        """Record one completed round-trip (a no-op unless adaptive)."""
        if not self.policy.adaptive:
            return
        prev = self._ewma.get(site)
        if prev is None:
            self._ewma[site] = float(latency)
        else:
            a = self.policy.ewma_alpha
            self._ewma[site] = (1.0 - a) * prev + a * float(latency)
        self._observations[site] = self._observations.get(site, 0) + 1

    def timeout(self, site: str) -> int:
        p = self.policy
        if p.adaptive:
            ewma = self._ewma.get(site)
            if ewma is not None:
                return max(p.min_timeout, int(round(p.timeout_scale * ewma)))
        return p.timeout_for(site)

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Current deadline + EWMA state per observed/configured site."""
        from repro.faults.plan import WATCHDOG_SITES
        out: dict[str, dict[str, int]] = {}
        for site in WATCHDOG_SITES:
            entry = {"timeout": self.timeout(site),
                     "observations": self._observations.get(site, 0)}
            ewma = self._ewma.get(site)
            if ewma is not None:
                entry["ewma"] = int(round(ewma))
            out[site] = entry
        return out

    def metrics_counters(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for site, entry in sorted(self.snapshot().items()):
            out[f"recovery.timeout.{site}"] = entry["timeout"]
            if "ewma" in entry:
                out[f"recovery.ewma.{site}"] = entry["ewma"]
        return out
