"""Deterministic, seeded fault plans.

A :class:`FaultPlan` is a declarative description of the faults to inject
into one simulation: which *site* misbehaves (a fabric, the vault read
path, the NSU buffers, the credit-return channel), *how* (drop, delay,
corrupt), and *when* (a per-event probability, a fixed cadence, exact
event indices, or a cycle window).  Every probabilistic choice draws from
a per-spec :class:`random.Random` seeded from the plan seed, the site and
the spec index, so a plan replays identically across runs and processes.

Sites
-----

``mem_net``        inter-HMC packets (RDF response forwarding, NDP writes,
                   write acknowledgments)
``gpu_link_down``  GPU -> HMC packets (CMD, RDF requests, WTA, hit data)
``gpu_link_up``    HMC -> GPU packets (ACK, invalidations, memory fills)
``vault_read``     a vault read completes but its response is lost
``nsu_buffer``     an NSU read-data / write-address delivery is corrupted
                   (detected by ECC and discarded)
``credit``         a piggybacked credit-return message is lost

Plans optionally carry a :class:`RecoveryPolicy`; when present the NDP
controller arms ACK watchdogs and recovers via bounded replay and inline
fallback (see ``docs/fault-injection.md``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

#: Sites packets flow through (hooked in repro.network.fabric).
PACKET_SITES = ("mem_net", "gpu_link_down", "gpu_link_up")
#: All injectable sites.
SITES = PACKET_SITES + ("vault_read", "nsu_buffer", "credit")
#: Fault kinds.  Non-packet sites support "drop" (vault/credit) and
#: "corrupt" (nsu_buffer); corruption is detected and the delivery
#: discarded, so both degrade to a lost message with distinct counters.
KINDS = ("drop", "delay", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault source.

    A spec fires on an event at its site when the event index is listed
    in ``at_events``, or falls on the ``every`` cadence, or wins a
    ``rate`` coin flip -- always gated by the ``window`` cycle range and
    the ``max_events`` budget.
    """

    site: str
    kind: str = "drop"
    rate: float = 0.0                 # per-event probability
    every: int = 0                    # fire every Nth event (0 = off)
    at_events: tuple[int, ...] = ()   # exact 1-based event indices
    window: tuple[int, int] | None = None   # (start, end) cycles, end excl.
    delay_cycles: int = 200           # for kind == "delay"
    max_events: int = 0               # cap on fires (0 = unbounded)

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; "
                             f"choose from {SITES}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {KINDS}")
        if self.kind == "delay" and self.site not in PACKET_SITES:
            raise ValueError(f"site {self.site!r} cannot delay; only "
                             f"packet sites {PACKET_SITES} can")
        if self.kind == "delay" and self.delay_cycles <= 0:
            # Engine.after() rejects non-positive delays; fail at plan
            # construction instead of mid-simulation.
            raise ValueError(f"delay_cycles must be positive for delay "
                             f"faults, got {self.delay_cycles}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate {self.rate} outside [0, 1]")


#: Watchdog sites sharing one policy: "ack" guards offload instances on
#: the NDP controller, "mshr" guards baseline L2 fills on the GPU memory
#: system (see repro.sim.memsys).
WATCHDOG_SITES = ("ack", "mshr")


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounds and timeout model for both recovery layers.

    Two watchdog *sites* share one policy: ``"ack"`` (offload ACK
    watchdogs on the NDP controller, PR 2) and ``"mshr"`` (baseline
    L2-fill watchdogs on the GPU memory system).  ``timeout_for`` resolves
    the static deadline per site -- ``site_timeouts`` overrides win,
    otherwise both sites fall back to ``ack_timeout``.  With ``adaptive``
    set, a runtime :class:`~repro.faults.recovery.TimeoutTracker` replaces
    the static deadline by ``timeout_scale`` times an EWMA of the site's
    observed completion latencies (floored at ``min_timeout``), so slow
    congested runs stop retrying healthy packets and fast runs detect
    losses sooner.
    """

    ack_timeout: int = 3000     # SM cycles without progress before acting
    max_retries: int = 3        # replay attempts before inline fallback
    enabled: bool = True
    mshr_max_retries: int = 12  # baseline fill reissues before giving up
    site_timeouts: tuple[tuple[str, int], ...] = ()  # (site, cycles) pairs
    adaptive: bool = False      # derive deadlines from observed latency
    ewma_alpha: float = 0.25    # smoothing for observed latencies
    timeout_scale: float = 4.0  # adaptive deadline = scale * EWMA latency
    min_timeout: int = 100      # adaptive deadlines never drop below this

    def __post_init__(self) -> None:
        for site, cycles in self.site_timeouts:
            if site not in WATCHDOG_SITES:
                raise ValueError(f"unknown watchdog site {site!r}; "
                                 f"choose from {WATCHDOG_SITES}")
            if cycles <= 0:
                raise ValueError(f"timeout for {site!r} must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha {self.ewma_alpha} outside (0, 1]")
        if self.timeout_scale <= 0:
            raise ValueError("timeout_scale must be positive")

    def timeout_for(self, site: str) -> int:
        """Static deadline for ``site`` (override, else ``ack_timeout``)."""
        for name, cycles in self.site_timeouts:
            if name == site:
                return cycles
        return self.ack_timeout

    def with_site_timeout(self, site: str, cycles: int) -> RecoveryPolicy:
        """A copy with ``site``'s static deadline overridden."""
        kept = tuple((n, c) for n, c in self.site_timeouts if n != site)
        return replace(self, site_timeouts=kept + ((site, cycles),))


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault specs plus an optional recovery
    policy.  Immutable so one plan can parameterize many runs."""

    name: str
    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()
    recovery: RecoveryPolicy | None = field(default_factory=RecoveryPolicy)

    def fingerprint(self) -> str:
        """Stable content hash -- salts store cache keys so faulted
        results never collide with clean ones."""
        blob = json.dumps(asdict(self), sort_keys=True, default=list)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


# -- scenario registry ---------------------------------------------------------

def _plan(name: str, seed: int, *specs: FaultSpec,
          recovery: RecoveryPolicy | None = None) -> FaultPlan:
    return FaultPlan(name=name, seed=seed, specs=tuple(specs),
                     recovery=recovery or RecoveryPolicy())


def _scenario_specs(rate: float) -> dict[str, tuple[FaultSpec, ...]]:
    return {
        # The flagship case: RDF responses forwarded over the memory
        # network vanish; the ACK watchdog replays the block.
        "rdf-drop": (FaultSpec("mem_net", "drop", rate=rate),),
        "rdf-delay": (FaultSpec("mem_net", "delay", rate=rate,
                                delay_cycles=500),),
        "link-corrupt": (FaultSpec("gpu_link_down", "corrupt", rate=rate),),
        "ack-drop": (FaultSpec("gpu_link_up", "drop", rate=rate),),
        "vault-read-loss": (FaultSpec("vault_read", "drop", rate=rate),),
        "nsu-corrupt": (FaultSpec("nsu_buffer", "corrupt", rate=rate),),
        # One credit-return message lost early in the run; recovery
        # reconciles the ledger when the victim instance completes.
        "credit-loss": (FaultSpec("credit", "drop", at_events=(1,)),),
        "mixed": (FaultSpec("mem_net", "drop", rate=rate),
                  FaultSpec("credit", "drop", at_events=(1,)),
                  FaultSpec("nsu_buffer", "corrupt", rate=rate / 2)),
    }


def scenario_names() -> tuple[str, ...]:
    return tuple(sorted(_scenario_specs(0.0)))


def get_scenario(name: str, *, rate: float = 0.01, seed: int = 0,
                 recovery: RecoveryPolicy | None = None) -> FaultPlan:
    """Build a named fault scenario parameterized by rate and seed."""
    table = _scenario_specs(rate)
    try:
        specs = table[name]
    except KeyError:
        raise KeyError(f"unknown fault scenario {name!r}; choose from "
                       f"{sorted(table)}") from None
    return _plan(f"{name}@{rate:g}", seed, *specs, recovery=recovery)
