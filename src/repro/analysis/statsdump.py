"""Hierarchical statistics dump of a finished system (gem5-style).

``dump_stats(system, result)`` renders every component's counters as an
indented text tree -- caches, MSHRs, links, vaults, NSUs, NDP controller --
for debugging and for archaeology on archived runs.  Available from the
CLI via ``python -m repro run ... --stats``.
"""

from __future__ import annotations

import io

from repro.sim.results import RunResult


def _w(buf: io.StringIO, depth: int, key: str, value) -> None:
    pad = "  " * depth
    if isinstance(value, float):
        value = f"{value:.4f}"
    buf.write(f"{pad}{key:<34s} {value}\n")


def dump_stats(system, result: RunResult) -> str:
    buf = io.StringIO()
    cfg = system.cfg
    buf.write(f"==== {result.workload} / {result.config_name} ====\n")
    _w(buf, 0, "cycles", result.cycles)
    _w(buf, 0, "instructions(gpu)", result.instructions)
    _w(buf, 0, "instructions(nsu)", result.nsu_instructions)
    _w(buf, 0, "ipc", result.ipc)
    _w(buf, 0, "warps_completed", result.warps_completed)

    buf.write("stalls:\n")
    for k, v in result.stalls.as_dict().items():  # lint: ignore[DET002] -- stall-dataclass field order, text dump only
        _w(buf, 1, k, v)

    buf.write("gpu.caches:\n")
    l1, l2 = system.memsys.l1_stats, system.memsys.l2_stats
    for name, s in (("l1", l1), ("l2", l2)):
        _w(buf, 1, f"{name}.hits", s.hits)
        _w(buf, 1, f"{name}.misses", s.misses)
        _w(buf, 1, f"{name}.hit_rate", s.hit_rate)
        _w(buf, 1, f"{name}.mshr_merges", s.mshr_merges)
        _w(buf, 1, f"{name}.mshr_rejects", s.mshr_rejects)
        _w(buf, 1, f"{name}.probes", s.accesses_probe)
        _w(buf, 1, f"{name}.invalidations", s.invalidations)

    buf.write("gpu.links:\n")
    for i, (dn, up) in enumerate(zip(system.gpu_links.down,
                                     system.gpu_links.up)):
        _w(buf, 1, f"link{i}.down.bytes", dn.bytes_sent)
        _w(buf, 1, f"link{i}.down.util", dn.utilization(result.cycles))
        _w(buf, 1, f"link{i}.up.bytes", up.bytes_sent)
        _w(buf, 1, f"link{i}.up.util", up.utilization(result.cycles))

    buf.write("memory_network:\n")
    _w(buf, 1, "total_bytes", system.network.total_bytes())
    for (a, b), link in sorted(system.network._links.items()):
        if link.bytes_sent:
            _w(buf, 1, f"net{a}->{b}.bytes", link.bytes_sent)

    buf.write("dram:\n")
    for h in system.hmcs:
        s = h.stats
        _w(buf, 1, f"hmc{h.hmc_id}.reads", s.reads)
        _w(buf, 1, f"hmc{h.hmc_id}.writes", s.writes)
        _w(buf, 1, f"hmc{h.hmc_id}.activations", s.activations)
        _w(buf, 1, f"hmc{h.hmc_id}.row_hit_rate", s.row_hit_rate)
        _w(buf, 1, f"hmc{h.hmc_id}.queue_peak", s.queue_peak)

    if system.ndp is not None:
        buf.write("ndp:\n")
        st = system.ndp.stats
        for k in ("offloads", "acks", "rdf_packets", "rdf_hits",
                  "wta_packets", "ndp_writes", "invalidations_sent",
                  "pending_peak", "pending_rejects"):
            _w(buf, 1, k, getattr(st, k))
        _w(buf, 1, "reservations_granted",
           system.ndp.credits.reservations_granted)
        _w(buf, 1, "reservations_queued",
           system.ndp.credits.reservations_queued)
        buf.write("nsu:\n")
        for nsu in system.nsus:
            _w(buf, 1, f"nsu{nsu.hmc_id}.instructions", nsu.instructions)
            _w(buf, 1, f"nsu{nsu.hmc_id}.cmds", nsu.cmds_received)
            _w(buf, 1, f"nsu{nsu.hmc_id}.avg_occupancy",
               nsu.avg_occupancy / max(1, nsu.num_slots))
            _w(buf, 1, f"nsu{nsu.hmc_id}.icache_util",
               nsu.icache_utilization)
            _w(buf, 1, f"nsu{nsu.hmc_id}.readbuf_peak", nsu.read_buf.peak)
            _w(buf, 1, f"nsu{nsu.hmc_id}.wtabuf_peak", nsu.wta_buf.peak)

    buf.write("traffic:\n")
    for k, v in result.traffic.as_dict().items():  # lint: ignore[DET002] -- traffic-dataclass field order, text dump only
        _w(buf, 1, k, v)
    return buf.getvalue()
