"""Full reproduction report: every table/figure rendered as markdown.

Used by ``python -m repro report`` and by the repository's EXPERIMENTS.md
regeneration.  The report leans on the shared
:class:`~repro.analysis.figures.ExperimentRunner` cache, so generating all
artifacts costs one simulation per (workload, configuration).
"""

from __future__ import annotations

import io

from repro.analysis import figures as F
from repro.analysis import tables as T


#: Paper reference numbers quoted in the report (speedup over Baseline).
PAPER_HEADLINES = {
    "max_speedup": 1.668,          # KMN, NDP(Dyn)
    "avg_speedup_dyn": 1.149,
    "avg_speedup_dyn_cache": 1.179,
    "max_energy_saving": 0.376,    # KMN
    "avg_energy_saving": 0.086,    # NDP(Dyn)_Cache
    "inv_overhead_avg": 0.0038,
    "icache_util_avg": 0.237,
    "occupancy_avg": 0.221,
}


def _md_table(rows: list[dict]) -> str:
    if not rows:
        return ""
    cols = list(rows[0].keys())
    out = ["| " + " | ".join(cols) + " |",
           "|" + "|".join("---" for _ in cols) + "|"]
    for r in rows:
        out.append("| " + " | ".join(str(r[c]) for c in cols) + " |")
    return "\n".join(out)


def _fmt(x: float) -> str:
    return f"{x:.2f}"


def generate_report(runner: F.ExperimentRunner) -> str:
    """Render the full paper-vs-measured report as markdown."""
    buf = io.StringIO()
    w = buf.write

    w("# Reproduction report\n\n")
    w(f"Scale: `{runner.scale}`; base config: "
      f"{runner.base.gpu.num_sms} SMs, {runner.base.num_hmcs} HMCs.\n\n")

    # Table 1 -------------------------------------------------------------
    w("## Table 1 — workloads\n\n")
    w(_md_table(T.table1()))
    w("\n\n")

    # Figure 5 ------------------------------------------------------------
    w("## Figure 5 — target-NSU selection policy\n\n")
    f5 = F.figure5(trials=5000)
    w(f"- first-HMC policy worst-case traffic overhead vs optimal: "
      f"{(f5['ratio'].max() - 1):.1%} (paper: <=15%)\n")
    w(f"- overhead at 64 accesses: {(f5['ratio'][-1] - 1):.1%} "
      f"(diminishes with block size, as in the paper)\n\n")

    # Figure 7 ------------------------------------------------------------
    w("## Figure 7 — naive NDP\n\n")
    f7 = F.figure7(runner)
    rows = [{"workload": wl,
             **{k: _fmt(v) for k, v in row.items()}}  # lint: ignore[DET002] -- figure column order, markdown text only
            for wl, row in f7.items()]  # lint: ignore[DET002] -- workload-registry row order, markdown text only
    w(_md_table(rows))
    w(f"\n\nNaiveNDP GMEAN speedup {f7['GMEAN']['NaiveNDP']:.2f} "
      f"(paper: 0.48, i.e. 52% average degradation).\n\n")

    # Figure 8 ------------------------------------------------------------
    w("## Figure 8 — no-issue cycle breakdown\n\n")
    f8 = F.figure8(runner)
    rows = []
    for wl, configs in f8.items():  # lint: ignore[DET002] -- workload-registry row order, markdown text only
        for cfg, b in configs.items():  # lint: ignore[DET002] -- figure config-column order, markdown text only
            rows.append({"workload": wl, "config": cfg,
                         **{k: _fmt(v) for k, v in b.items()}})  # lint: ignore[DET002] -- stall-dataclass field order, markdown text only
    w(_md_table(rows))
    w("\n\n")

    # Figure 9 ------------------------------------------------------------
    w("## Figure 9 — offload-ratio sweep + dynamic decision\n\n")
    f9 = F.figure9(runner)
    rows = [{"workload": wl,
             **{k: _fmt(v) for k, v in row.items()}}  # lint: ignore[DET002] -- figure column order, markdown text only
            for wl, row in f9.items()]  # lint: ignore[DET002] -- workload-registry row order, markdown text only
    w(_md_table(rows))
    gm = f9["GMEAN"]
    w(f"\n\nNDP(Dyn) GMEAN {gm['NDP(Dyn)']:.3f} (paper +14.9%); "
      f"NDP(Dyn)_Cache GMEAN {gm['NDP(Dyn)_Cache']:.3f} (paper +17.9%).\n\n")

    # Figure 10 -----------------------------------------------------------
    w("## Figure 10 — energy\n\n")
    f10 = F.figure10(runner)
    rows = []
    for wl in runner.workloads:
        for cfg in F.FIG10_CONFIGS:
            comp = f10[wl][cfg]
            rows.append({"workload": wl, "config": cfg,
                         **{k: f"{v:.3f}" for k, v in comp.items()}})  # lint: ignore[DET002] -- energy-component order, markdown text only
    w(_md_table(rows))
    w(f"\n\nNDP(Dyn)_Cache total-energy GMEAN "
      f"{f10['GMEAN']['NDP(Dyn)_Cache']['Total']:.3f} "
      f"(paper: 0.914, an 8.6% average saving).\n\n")

    # Figure 11 -----------------------------------------------------------
    w("## Figure 11 — NSU utilization\n\n")
    f11 = F.figure11(runner)
    rows = [{"workload": wl,
             "I-cache util": f"{v['icache_utilization']:.1%}",
             "warp occupancy": f"{v['warp_occupancy']:.1%}"}
            for wl, v in f11.items()]  # lint: ignore[DET002] -- workload-registry row order, markdown text only
    w(_md_table(rows))
    w(f"\n\n(paper averages: 23.7% I-cache, 22.1% occupancy)\n\n")

    # Section 4.2 ---------------------------------------------------------
    w("## Section 4.2 — invalidation overhead\n\n")
    cov = F.coherence_overhead(runner)
    rows = [{"workload": wl, "INV share of GPU traffic": f"{v:.2%}"}
            for wl, v in cov.items()]  # lint: ignore[DET002] -- workload-registry row order, markdown text only
    w(_md_table(rows))
    w("\n\n(paper: up to 1.42%, average 0.38%)\n\n")

    # Section 7.5 ---------------------------------------------------------
    w("## Section 7.5 — hardware overhead\n\n")
    hw = T.hardware_overhead(runner.base)
    w(f"- per-SM pending+ready packet buffers: {hw['per_sm_kb']:.2f} KB "
      f"(paper: 2.84 KB)\n")
    w(f"- share of on-chip storage: {hw['overhead_fraction']:.1%} "
      f"(paper: 1.8%)\n")

    return buf.getvalue()
