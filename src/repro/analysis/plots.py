"""Terminal-friendly chart rendering for the figure regenerators.

The paper's figures are bar charts and line plots; these helpers render
them as aligned ASCII so the CLI and the benchmark output are readable
without matplotlib (which this environment does not ship).
"""

from __future__ import annotations


def hbar(value: float, vmax: float, width: int = 40, fill: str = "#") -> str:
    """One horizontal bar scaled to ``vmax``."""
    if vmax <= 0:
        return ""
    n = int(round(min(value, vmax) / vmax * width))
    return fill * n


def bar_chart(series: dict[str, float], *, width: int = 40,
              title: str = "", fmt: str = "{:.2f}",
              baseline: float | None = None) -> str:
    """Render ``label -> value`` as a horizontal bar chart.

    ``baseline`` draws a reference tick (e.g. 1.0 for speedup charts).
    """
    if not series:
        return title
    vmax = max(max(series.values()), baseline or 0.0)
    label_w = max(len(str(k)) for k in series)
    lines = [title] if title else []
    # lint: ignore[DET002] -- bars render in the caller's series order
    for k, v in series.items():
        bar = hbar(v, vmax, width)
        mark = ""
        if baseline is not None:
            tick = int(round(baseline / vmax * width))
            if tick >= len(bar):
                bar = bar + " " * (tick - len(bar)) + "|"
            else:
                bar = bar[:tick] + "|" + bar[tick + 1:]
            mark = ""
        lines.append(f"{k:<{label_w}} {fmt.format(v):>7} {bar}{mark}")
    return "\n".join(lines)


def grouped_bar_chart(data: dict[str, dict[str, float]], *,
                      width: int = 30, title: str = "",
                      fmt: str = "{:.2f}") -> str:
    """Render ``group -> {label -> value}`` (e.g. workload -> config)."""
    lines = [title] if title else []
    vmax = max((v for row in data.values() for v in row.values()),
               default=1.0)
    label_w = max((len(k) for row in data.values() for k in row), default=4)
    # lint: ignore[DET002] -- groups render in the caller's order
    for group, row in data.items():
        lines.append(f"{group}:")
        # lint: ignore[DET002] -- and bars in the row's order
        for k, v in row.items():
            lines.append(f"  {k:<{label_w}} {fmt.format(v):>7} "
                         f"{hbar(v, vmax, width)}")
    return "\n".join(lines)


def best_so_far_plot(records: list[dict], *, height: int = 12,
                     width: int = 64, title: str | None = None) -> str:
    """ArchGym-style search-progress curve from ``trajectory.jsonl``
    records (and nothing else): per-evaluation fitness plus the running
    best-so-far, lower is better.

    ``records`` is the parsed JSONL stream written by ``repro explore``
    (one ``explore-meta`` record, then ``evaluation`` records; see
    docs/design-space.md).  Fatal candidates carry ``fitness: null`` and
    are skipped.  Raises :class:`ValueError` when no plottable
    evaluation records are present.
    """
    meta = next((r for r in records if r.get("kind") == "explore-meta"), {})
    xs: list[int] = []
    fitness: list[float] = []
    for i, rec in enumerate(r for r in records
                            if r.get("kind") == "evaluation"):
        if rec.get("fitness") is None:
            continue
        xs.append(i + 1)
        fitness.append(float(rec["fitness"]))
    if not xs:
        raise ValueError("no evaluation records with a fitness value in "
                         "the trajectory; nothing to plot")
    best: list[float] = []
    for f in fitness:
        best.append(f if not best else min(best[-1], f))
    if title is None:
        title = (f"best-so-far {meta.get('fitness', 'fitness')} over "
                 f"{len(xs)} evaluations "
                 f"({meta.get('agent', '?')} agent, "
                 f"seed {meta.get('seed', '?')})")
    chart = line_plot(xs, {"best-so-far": best, "evaluation": fitness},
                      height=height, width=width, title=title)
    return (chart + f"\n{' ' * 10}final best "
            f"{best[-1]:g} (from {fitness[0]:g} at evaluation 1)")


def line_plot(xs, ys_by_series: dict[str, list], *, height: int = 12,
              width: int = 64, title: str = "") -> str:
    """Plot one or more series as ASCII scatter lines over shared axes."""
    # lint: ignore[DET002] -- min/max scan only; order cannot reach output
    pts = [v for ys in ys_by_series.values() for v in ys]
    if not pts:
        return title
    ymin, ymax = min(pts), max(pts)
    if ymax == ymin:
        ymax = ymin + 1.0
    xmin, xmax = min(xs), max(xs)
    grid = [[" "] * width for _ in range(height)]
    marks = "*+ox@"
    for si, (name, ys) in enumerate(ys_by_series.items()):
        m = marks[si % len(marks)]
        for x, y in zip(xs, ys):
            col = int((x - xmin) / max(1e-12, xmax - xmin) * (width - 1))
            row = int((y - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = m
    lines = [title] if title else []
    lines.append(f"{ymax:8.3f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row))
    lines.append(f"{ymin:8.3f} +" + "-" * width)
    lines.append(" " * 10 + f"{xmin:<8g}" + " " * (width - 16) + f"{xmax:>8g}")
    legend = "   ".join(f"{marks[i % len(marks)]} {name}"
                        for i, name in enumerate(ys_by_series))
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
