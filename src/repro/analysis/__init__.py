"""Experiment harness: one regenerator per paper table/figure."""

from repro.analysis.figures import (
    ExperimentRunner,
    figure5,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    coherence_overhead,
    bigger_gpu,
    nsu_frequency,
    geomean,
)
from repro.analysis.tables import (
    table1,
    table2,
    hardware_overhead,
    format_table,
)

__all__ = [
    "ExperimentRunner",
    "figure5",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "coherence_overhead",
    "bigger_gpu",
    "nsu_frequency",
    "geomean",
    "table1",
    "table2",
    "hardware_overhead",
    "format_table",
]
