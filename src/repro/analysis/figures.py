"""Regenerators for every figure of the paper's evaluation.

Each ``figureN`` function returns plain dicts of series, in the same shape
the paper plots; the benchmark harness prints them and asserts the
qualitative claims.  :class:`ExperimentRunner` caches simulation results so
figures that share runs (7, 8, 9, 10, 11 all reuse the same sweeps) only
simulate once per (workload, config).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

from repro.config import SystemConfig, paper_config
from repro.core.target_select import target_policy_traffic_study
from repro.energy import compute_energy
from repro.sim.results import RunResult
from repro.sim.runner import make_config, run_workload
from repro.sim.store import ResultStore, cell_key
from repro.workloads import workload_names

#: Figure 9's configuration columns, in plot order.
FIG9_CONFIGS = ("Baseline", "Baseline_MoreCore", "NDP(0.2)", "NDP(0.4)",
                "NDP(0.6)", "NDP(0.8)", "NDP(1.0)", "NDP(Dyn)",
                "NDP(Dyn)_Cache")


def geomean(values) -> float:
    vals = [v for v in values]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def _run_cell(args) -> "RunResult":
    """Module-level worker for parallel prefetching (must be picklable).

    ``args`` is ``(workload, config, base, scale, max_cycles)`` plus
    optional trailing audit flag and scheduler name (older 5-/6-tuples
    still work).  With audit on, the invariant audit runs in the worker
    -- the ``System`` cannot cross the pool boundary -- and its failures
    ride back on ``result.extra["audit"]``.
    """
    workload, config, base, scale, max_cycles, *rest = args
    audit = bool(rest[0]) if rest else False
    sched = rest[1] if len(rest) > 1 else "active"
    if not audit:
        return run_workload(workload, config, base=base, scale=scale,
                            max_cycles=max_cycles, sched=sched)
    from repro.sim.runner import build_system
    from repro.sim.validate import audit_system
    system = build_system(workload, config, base=base, scale=scale,
                          sched=sched)
    result = system.run(max_cycles=max_cycles)
    result.extra["audit"] = {"failures": audit_system(system, result)}
    return result


def _run_chaos_cell(args) -> tuple[str, "RunResult | None"]:
    """Module-level worker for parallel chaos sweeps.

    Builds, runs and audits in one process (a ``System`` cannot cross the
    pool boundary) and returns ``(outcome, result)`` with the chaos
    outcome vocabulary: ``clean`` / ``recovered`` / ``audit-fail`` /
    ``fatal`` (result is None for fatal -- the run deadlocked).  An
    optional trailing scheduler name follows the plan (older 6-tuples
    still work).
    """
    workload, config, base, scale, max_cycles, plan, *rest = args
    sched = rest[0] if rest else "active"
    from repro.sim.runner import build_system
    from repro.sim.system import SimulationTimeout
    from repro.sim.validate import audit_system
    system = build_system(workload, config, base=base, scale=scale,
                          faults=plan, sched=sched)
    try:
        result = system.run(max_cycles=max_cycles)
    except SimulationTimeout:
        return "fatal", None
    if audit_system(system, result):
        return "audit-fail", result
    fired = result.extra.get("faults", {}).get("total_fired", 0)
    return ("recovered" if fired else "clean"), result


@dataclass
class RunnerStats:
    """Where each requested cell came from (the cache-hit counters the
    CLI prints after ``figure``/``sweep``/``report``)."""

    sim_runs: int = 0       # cells actually simulated this process
    memory_hits: int = 0    # served from the in-process cache
    store_hits: int = 0     # served from the persistent store
    worker_failures: int = 0
    worker_retries: int = 0
    serial_fallbacks: int = 0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"sim_runs": self.sim_runs, "memory_hits": self.memory_hits,
                "store_hits": self.store_hits,
                "worker_failures": self.worker_failures,
                "worker_retries": self.worker_retries,
                "serial_fallbacks": self.serial_fallbacks}


class ExperimentRunner:
    """Caches one simulation per (workload, config name).

    Three cache levels: the in-process dict, an optional persistent
    :class:`~repro.sim.store.ResultStore` (``store=`` path or instance),
    and -- with ``parallel > 1`` -- a process pool that :meth:`prefetch`
    fans independent cells out over.  Parallel sweeps are hardened: each
    worker gets ``worker_timeout`` seconds, failed cells are retried once
    in a fresh pool, and anything still missing falls back to serial
    execution with a warning instead of hanging the sweep.
    """

    def __init__(self, base: SystemConfig | None = None,
                 scale: str = "bench", workloads=None,
                 max_cycles: int = 20_000_000, verbose: bool = False,
                 parallel: int = 1, store=None,
                 worker_timeout: float = 900.0,
                 audit: bool = False, sched: str = "active") -> None:
        self.base = base or paper_config()
        self.scale = scale
        self.workloads = list(workloads or workload_names())
        self.max_cycles = max_cycles
        self.verbose = verbose
        self.parallel = max(1, parallel)
        # Audit every simulated cell (fault-free grid cells included) and
        # stash failures on result.extra["audit"]; failing results are
        # never persisted.  Store/memory hits are served as-is: anything
        # already persisted passed its audit (or predates auditing).
        self.audit = audit
        # Main-loop scheduler for simulated cells ("active"/"legacy").
        # Deliberately NOT part of the store key: both schedulers are
        # bit-identical (docs/performance.md), so cached results are
        # valid for either.
        self.sched = sched
        self.store = (store if (store is None
                                or isinstance(store, ResultStore))
                      else ResultStore(store))
        self.worker_timeout = worker_timeout
        self.stats = RunnerStats()
        self._cache: dict[tuple[str, str], RunResult] = {}
        # Test seams: a fake executor factory / worker fn can be injected
        # to exercise the timeout/crash recovery paths deterministically.
        self._executor_factory = None
        self._worker = _run_cell
        self._chaos_worker = _run_chaos_cell

    # -- store plumbing ------------------------------------------------------

    def store_key(self, workload: str, config: str) -> str:
        return cell_key(workload, config, self.base, self.scale,
                        self.max_cycles)

    def _store_get(self, workload: str, config: str) -> RunResult | None:
        if self.store is None:
            return None
        return self.store.get(self.store_key(workload, config))

    def _store_put(self, workload: str, config: str,
                   result: RunResult) -> None:
        if self.store is not None:
            self.store.put(self.store_key(workload, config), result,
                           meta={"scale": str(self.scale),
                                 "max_cycles": self.max_cycles})

    def _remember(self, workload: str, config: str,
                  result: RunResult, *, persist: bool = True) -> None:
        self._cache[(workload, config)] = result
        if persist:
            self._store_put(workload, config, result)

    # -- cell access ---------------------------------------------------------

    def _cell_args(self, workload: str, config: str) -> tuple:
        """The ``_run_cell`` argument tuple for one grid cell."""
        return (workload, config, self.base, self.scale, self.max_cycles,
                self.audit, self.sched)

    def result(self, workload: str, config: str) -> RunResult:
        key = (workload, config)
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.memory_hits += 1
            return cached
        stored = self._store_get(workload, config)
        if stored is not None:
            self.stats.store_hits += 1
            self._cache[key] = stored
            return stored
        if self.verbose:  # pragma: no cover - progress chatter
            print(f"  simulating {workload} / {config} ...", flush=True)
        self.stats.sim_runs += 1
        # The real in-process path, deliberately not self._worker: the
        # test seams only redirect the pool, never serial execution.
        res = _run_cell(self._cell_args(workload, config))
        self._remember(workload, config, res,
                       persist=not self._audit_failures(res))
        return res

    @staticmethod
    def _audit_failures(result: RunResult) -> list:
        return result.extra.get("audit", {}).get("failures", [])

    def prefetch(self, configs, workloads=None) -> None:
        """Simulate a grid of cells up-front, in parallel when enabled."""
        workloads = list(workloads or self.workloads)
        todo = [(w, c) for w in workloads for c in configs
                if (w, c) not in self._cache]
        # Serve what the persistent store already has before fanning out.
        if self.store is not None:
            remaining = []
            for w, c in todo:
                stored = self._store_get(w, c)
                if stored is not None:
                    self.stats.store_hits += 1
                    self._cache[(w, c)] = stored
                else:
                    remaining.append((w, c))
            todo = remaining
        if not todo:
            return
        if self.parallel > 1:
            def remember(key, res):
                self.stats.sim_runs += 1
                self._remember(key[0], key[1], res,
                               persist=not self._audit_failures(res))

            def make_arg(key):
                return self._cell_args(key[0], key[1])

            todo = self._parallel_map(todo, make_arg, self._worker,
                                      remember, what="prefetch")
        for w, c in todo:
            self.result(w, c)

    def eval_cells(self, cells) -> dict:
        """Evaluate heterogeneous cells -- ``(workload, config_name,
        base_config)`` triples, each with its *own* base -- and return
        ``{store_key: RunResult | None}`` (None marks a fatal cell that
        deadlocked).

        This is the exploration driver's evaluation path
        (:mod:`repro.explore.driver`): unlike :meth:`result`/:meth:`prefetch`
        the per-cell base varies, so cells are identified by their full
        content-addressed store key rather than ``(workload, config)``.
        Keys are the *plain* :func:`~repro.sim.store.cell_key` -- no
        explore-specific salt -- so candidates dedupe against every sweep
        and figure cell ever stored (see the key-reuse note in
        ``sim/store.py``).  Misses ride the same hardened pool as
        :meth:`prefetch`; a cell that times out in the serial fallback is
        recorded as None instead of aborting the batch.
        """
        from repro.sim.system import SimulationTimeout

        out: dict[str, RunResult | None] = {}
        by_key: dict[str, tuple] = {}
        todo: list[tuple] = []
        for workload, config, base in cells:
            key = cell_key(workload, config, base, self.scale,
                           self.max_cycles)
            if key in out or key in by_key:
                continue
            stored = self.store.get(key) if self.store is not None else None
            if stored is not None:
                self.stats.store_hits += 1
                out[key] = stored
            else:
                by_key[key] = (workload, config, base)
                todo.append((workload, config, key))

        def make_arg(item):
            workload, config, base = by_key[item[2]]
            return (workload, config, base, self.scale, self.max_cycles,
                    self.audit, self.sched)

        def record(item, res):
            self.stats.sim_runs += 1
            out[item[2]] = res
            if self.store is not None and not self._audit_failures(res):
                self.store.put(item[2], res,
                               meta={"scale": str(self.scale),
                                     "max_cycles": self.max_cycles})

        if self.parallel > 1 and len(todo) > 1:
            todo = self._parallel_map(todo, make_arg, self._worker,
                                      record, what="explore")
        for item in todo:
            try:
                res = _run_cell(make_arg(item))
            except SimulationTimeout:
                self.stats.sim_runs += 1
                out[item[2]] = None
                continue
            record(item, res)
        return out

    # -- hardened parallel fan-out (shared by prefetch and chaos) ------------

    def _parallel_map(self, keys: list, make_arg, worker, on_result,
                      what: str = "map") -> list:
        """Fan ``keys`` over a process pool: ``worker(make_arg(key))`` per
        key, ``on_result(key, value)`` per success.  Failed keys (worker
        timeout or crash) are retried once in a fresh pool; whatever still
        fails is returned for the caller to run serially.

        Concurrency contract (checked by the CONC lint rules): workers
        are *processes*, so ``worker`` must stay a module-level picklable
        callable that reaches the simulator only through the ``repro.api``
        facade / ``_run_cell`` -- never a closure mutating runner state.
        ``self.stats`` and ``on_result`` run solely on the coordinating
        thread (future results are consumed here, one at a time), i.e.
        guarded-by: none -- single-thread access by construction."""
        import concurrent.futures as cf

        factory = self._executor_factory or cf.ProcessPoolExecutor
        pending = list(keys)
        for attempt in (0, 1):
            if not pending:
                break
            if attempt:
                self.stats.worker_retries += len(pending)
                warnings.warn(
                    f"parallel {what}: retrying {len(pending)} failed "
                    f"cell(s) in a fresh worker pool", RuntimeWarning,
                    stacklevel=3)
            pending = self._parallel_attempt(factory, pending, cf,
                                             make_arg, worker, on_result)
        if pending:
            self.stats.serial_fallbacks += len(pending)
            warnings.warn(
                f"parallel {what}: {len(pending)} cell(s) failed twice; "
                f"falling back to serial simulation", RuntimeWarning,
                stacklevel=3)
        return pending

    def _parallel_attempt(self, factory, keys, cf, make_arg, worker,
                          on_result) -> list:
        """One pool pass over ``keys``; returns the keys that failed
        (worker timeout or crash)."""
        pool = factory(max_workers=min(self.parallel, len(keys)))
        failed: list = []
        futures = {}
        try:
            for key in keys:
                futures[key] = pool.submit(worker, make_arg(key))
            # lint: ignore[DET002] -- mirrors the deterministic keys list
            for key, fut in futures.items():
                try:
                    res = fut.result(timeout=self.worker_timeout)
                except cf.TimeoutError:
                    self.stats.worker_failures += 1
                    failed.append(key)
                except Exception:
                    # Worker crash (BrokenProcessPool) or a simulation
                    # error; both are retried, then surfaced serially.
                    self.stats.worker_failures += 1
                    failed.append(key)
                else:
                    if self.verbose:  # pragma: no cover
                        label = " / ".join(str(p) for p in key)
                        print(f"  [parallel] {label} done", flush=True)
                    on_result(key, res)
        finally:
            # Never wait for a hung worker: cancel what has not started
            # and leave stragglers to die with the pool's processes.
            pool.shutdown(wait=False, cancel_futures=True)
        return failed

    # -- chaos grids ---------------------------------------------------------

    def chaos_store_key(self, workload: str, config: str, plan) -> str:
        """Chaos cells are cached under keys salted with the plan
        fingerprint so faulted results never collide with clean ones."""
        from repro.sim.store import CODE_VERSION_SALT
        salt = f"{CODE_VERSION_SALT}|chaos|{plan.fingerprint()}"
        return cell_key(workload, config, self.base, self.scale,
                        self.max_cycles, salt=salt)

    def chaos_grid(self, plans: dict, configs, workloads=None
                   ) -> dict:
        """Run every (workload, config, plan-key) chaos cell and return
        ``{(workload, config, key): (outcome, result)}``.

        ``plans`` maps an opaque key (e.g. a fault rate) to a
        :class:`~repro.faults.FaultPlan`.  Cells ride the same hardened
        pool as :meth:`prefetch` when ``parallel > 1``; only ``clean`` and
        ``recovered`` outcomes are persisted (``audit-fail`` and ``fatal``
        are never cached).
        """
        workloads = list(workloads or self.workloads)
        out: dict = {}
        todo: list = []
        for w in workloads:
            for c in configs:
                # lint: ignore[DET002] -- plan grid is built in
                # scenario-declaration order, stable by construction
                for pkey, plan in plans.items():
                    stored = (self.store.get(self.chaos_store_key(w, c, plan))
                              if self.store is not None else None)
                    if stored is not None:
                        self.stats.store_hits += 1
                        fired = stored.extra.get("faults", {}).get(
                            "total_fired", 0)
                        out[(w, c, pkey)] = (
                            "recovered" if fired else "clean", stored)
                    else:
                        todo.append((w, c, pkey))

        def make_arg(key):
            w, c, pkey = key
            return (w, c, self.base, self.scale, self.max_cycles,
                    plans[pkey], self.sched)

        def record(key, value):
            outcome, res = value
            self.stats.sim_runs += 1
            out[key] = value
            if (res is not None and outcome in ("clean", "recovered")
                    and self.store is not None):
                w, c, pkey = key
                self.store.put(self.chaos_store_key(w, c, plans[pkey]), res,
                               meta={"scale": str(self.scale),
                                     "max_cycles": self.max_cycles,
                                     "chaos": plans[pkey].name})

        if self.parallel > 1 and len(todo) > 1:
            todo = self._parallel_map(todo, make_arg, self._chaos_worker,
                                      record, what="chaos")
        for key in todo:
            record(key, self._chaos_worker(make_arg(key)))
        return out

    def speedup(self, workload: str, config: str) -> float:
        return self.result(workload, config).speedup_over(
            self.result(workload, "Baseline"))

    def config(self, name: str) -> SystemConfig:
        return make_config(name, self.base)


# ---------------------------------------------------------------------------
# Figure 5: target-NSU selection policy vs. traffic
# ---------------------------------------------------------------------------

def figure5(num_hmcs: int = 8, trials: int = 20_000) -> dict:
    """Normalized inter-stack traffic of the first-HMC policy vs. the
    optimal policy as the number of memory accesses per block varies."""
    return target_policy_traffic_study(
        num_hmcs=num_hmcs,
        access_counts=tuple(range(1, 65)),
        trials=trials)


# ---------------------------------------------------------------------------
# Figure 7: naive NDP vs. baselines
# ---------------------------------------------------------------------------

def figure7(runner: ExperimentRunner) -> dict:
    """Speedup (runtime ratio vs. Baseline) of Baseline_MoreCore and
    NaiveNDP for every workload, plus the geometric mean row."""
    configs = ("Baseline", "Baseline_MoreCore", "NaiveNDP")
    runner.prefetch(configs)
    out: dict[str, dict[str, float]] = {}
    for w in runner.workloads:
        out[w] = {c: runner.speedup(w, c) for c in configs}
    out["GMEAN"] = {
        c: geomean(out[w][c] for w in runner.workloads) for c in configs}
    return out


# ---------------------------------------------------------------------------
# Figure 8: no-issue cycle breakdown
# ---------------------------------------------------------------------------

def figure8(runner: ExperimentRunner) -> dict:
    """Per-workload, per-config no-issue-cycle breakdown normalized to the
    Baseline's total no-issue cycles (the figure's y axis)."""
    configs = ("Baseline", "Baseline_MoreCore", "NaiveNDP")
    out: dict[str, dict[str, dict[str, float]]] = {}
    for w in runner.workloads:
        base_total = max(1, runner.result(w, "Baseline").stalls.total)
        out[w] = {}
        for c in configs:
            s = runner.result(w, c).stalls
            # lint: ignore[DET002] -- Figure 8 columns keep the stall
            # dataclass's field order (exec busy, dependency, idle)
            out[w][c] = {k: v / base_total for k, v in s.as_dict().items()}
    return out


# ---------------------------------------------------------------------------
# Figure 9: offload-ratio sweep + dynamic mechanisms
# ---------------------------------------------------------------------------

def figure9(runner: ExperimentRunner) -> dict:
    runner.prefetch(FIG9_CONFIGS)
    out: dict[str, dict[str, float]] = {}
    for w in runner.workloads:
        out[w] = {c: runner.speedup(w, c) for c in FIG9_CONFIGS}
    out["GMEAN"] = {
        c: geomean(out[w][c] for w in runner.workloads)
        for c in FIG9_CONFIGS}
    return out


# ---------------------------------------------------------------------------
# Figure 10: energy
# ---------------------------------------------------------------------------

FIG10_CONFIGS = ("Baseline", "Baseline_MoreCore", "NDP(Dyn)",
                 "NDP(Dyn)_Cache")


def figure10(runner: ExperimentRunner) -> dict:
    """Energy breakdown per workload and config, normalized to the
    workload's Baseline total (the Figure 10 stacks)."""
    out: dict[str, dict[str, dict[str, float]]] = {}
    for w in runner.workloads:
        base_cfg = runner.config("Baseline")
        base_e = compute_energy(runner.result(w, "Baseline"), base_cfg)
        out[w] = {}
        for c in FIG10_CONFIGS:
            e = compute_energy(runner.result(w, c), runner.config(c))
            out[w][c] = e.normalized_to(base_e)
    gm = {}
    for c in FIG10_CONFIGS:
        gm[c] = {"Total": geomean(out[w][c]["Total"]
                                  for w in runner.workloads)}
    out["GMEAN"] = gm
    return out


# ---------------------------------------------------------------------------
# Figure 11: NSU I-cache utilization and warp occupancy
# ---------------------------------------------------------------------------

def figure11(runner: ExperimentRunner, config: str = "NDP(Dyn)_Cache") -> dict:
    out: dict[str, dict[str, float]] = {}
    for w in runner.workloads:
        r = runner.result(w, config)
        out[w] = {
            "icache_utilization": r.nsu_icache_utilization,
            "warp_occupancy": r.avg_nsu_occupancy,
        }
    out["AVG"] = {
        k: sum(out[w][k] for w in runner.workloads) / len(runner.workloads)
        for k in ("icache_utilization", "warp_occupancy")}
    return out


# ---------------------------------------------------------------------------
# Section 4.2: invalidation traffic overhead
# ---------------------------------------------------------------------------

def coherence_overhead(runner: ExperimentRunner,
                       config: str = "NDP(Dyn)_Cache") -> dict:
    out = {w: runner.result(w, config).invalidation_overhead
           for w in runner.workloads}
    out["AVG"] = sum(out[w] for w in runner.workloads) / len(runner.workloads)
    return out


# ---------------------------------------------------------------------------
# Section 7.3: a more powerful GPU (2x compute units)
# ---------------------------------------------------------------------------

def bigger_gpu(runner_factory=None, base: SystemConfig | None = None,
               scale: str = "bench", workloads=None) -> dict:
    """Speedup of NDP(Dyn)_Cache over Baseline when the SM count doubles."""
    if runner_factory is not None:
        import warnings

        warnings.warn(
            "bigger_gpu(runner_factory=...) is ignored and deprecated; "
            "pass base/scale/workloads or use repro.api.make_runner",
            DeprecationWarning, stacklevel=2)
    base = base or paper_config()
    big = base.scaled_gpu(num_sms=base.gpu.num_sms * 2)
    runner = ExperimentRunner(base=big, scale=scale, workloads=workloads)
    out = {w: runner.speedup(w, "NDP(Dyn)_Cache") for w in runner.workloads}
    out["GMEAN"] = geomean(out[w] for w in runner.workloads)
    return out


# ---------------------------------------------------------------------------
# Section 7.6: NSU frequency sensitivity (350 -> 175 MHz)
# ---------------------------------------------------------------------------

def nsu_frequency(base: SystemConfig | None = None, scale: str = "bench",
                  workloads=None, clock_mhz: float = 175.0) -> dict:
    base = base or paper_config()
    slow = base.with_nsu_clock(clock_mhz)
    runner = ExperimentRunner(base=slow, scale=scale, workloads=workloads)
    out = {w: runner.speedup(w, "NDP(Dyn)_Cache") for w in runner.workloads}
    out["GMEAN"] = geomean(out[w] for w in runner.workloads)
    return out
