"""Regenerators for every figure of the paper's evaluation.

Each ``figureN`` function returns plain dicts of series, in the same shape
the paper plots; the benchmark harness prints them and asserts the
qualitative claims.  :class:`ExperimentRunner` caches simulation results so
figures that share runs (7, 8, 9, 10, 11 all reuse the same sweeps) only
simulate once per (workload, config).
"""

from __future__ import annotations

import math

from repro.config import SystemConfig, paper_config
from repro.core.target_select import target_policy_traffic_study
from repro.energy import compute_energy
from repro.sim.results import RunResult
from repro.sim.runner import make_config, run_workload
from repro.workloads import workload_names

#: Figure 9's configuration columns, in plot order.
FIG9_CONFIGS = ("Baseline", "Baseline_MoreCore", "NDP(0.2)", "NDP(0.4)",
                "NDP(0.6)", "NDP(0.8)", "NDP(1.0)", "NDP(Dyn)",
                "NDP(Dyn)_Cache")


def geomean(values) -> float:
    vals = [v for v in values]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def _run_cell(args) -> "RunResult":
    """Module-level worker for parallel prefetching (must be picklable)."""
    workload, config, base, scale, max_cycles = args
    return run_workload(workload, config, base=base, scale=scale,
                        max_cycles=max_cycles)


class ExperimentRunner:
    """Caches one simulation per (workload, config name).

    With ``parallel > 1`` the :meth:`prefetch` method fans independent
    (workload, config) cells out over a process pool; on a single-core
    machine it degrades to serial execution.
    """

    def __init__(self, base: SystemConfig | None = None,
                 scale: str = "bench", workloads=None,
                 max_cycles: int = 20_000_000, verbose: bool = False,
                 parallel: int = 1) -> None:
        self.base = base or paper_config()
        self.scale = scale
        self.workloads = list(workloads or workload_names())
        self.max_cycles = max_cycles
        self.verbose = verbose
        self.parallel = max(1, parallel)
        self._cache: dict[tuple[str, str], RunResult] = {}

    def result(self, workload: str, config: str) -> RunResult:
        key = (workload, config)
        if key not in self._cache:
            if self.verbose:  # pragma: no cover - progress chatter
                print(f"  simulating {workload} / {config} ...", flush=True)
            self._cache[key] = run_workload(
                workload, config, base=self.base, scale=self.scale,
                max_cycles=self.max_cycles)
        return self._cache[key]

    def prefetch(self, configs, workloads=None) -> None:
        """Simulate a grid of cells up-front, in parallel when enabled."""
        workloads = list(workloads or self.workloads)
        todo = [(w, c) for w in workloads for c in configs
                if (w, c) not in self._cache]
        if not todo:
            return
        if self.parallel <= 1:
            for w, c in todo:
                self.result(w, c)
            return
        import concurrent.futures as cf

        args = [(w, c, self.base, self.scale, self.max_cycles)
                for w, c in todo]
        with cf.ProcessPoolExecutor(max_workers=self.parallel) as pool:
            for (w, c), res in zip(todo, pool.map(_run_cell, args)):
                if self.verbose:  # pragma: no cover
                    print(f"  [parallel] {w} / {c} done", flush=True)
                self._cache[(w, c)] = res

    def speedup(self, workload: str, config: str) -> float:
        return self.result(workload, config).speedup_over(
            self.result(workload, "Baseline"))

    def config(self, name: str) -> SystemConfig:
        return make_config(name, self.base)


# ---------------------------------------------------------------------------
# Figure 5: target-NSU selection policy vs. traffic
# ---------------------------------------------------------------------------

def figure5(num_hmcs: int = 8, trials: int = 20_000) -> dict:
    """Normalized inter-stack traffic of the first-HMC policy vs. the
    optimal policy as the number of memory accesses per block varies."""
    return target_policy_traffic_study(
        num_hmcs=num_hmcs,
        access_counts=tuple(range(1, 65)),
        trials=trials)


# ---------------------------------------------------------------------------
# Figure 7: naive NDP vs. baselines
# ---------------------------------------------------------------------------

def figure7(runner: ExperimentRunner) -> dict:
    """Speedup (runtime ratio vs. Baseline) of Baseline_MoreCore and
    NaiveNDP for every workload, plus the geometric mean row."""
    configs = ("Baseline", "Baseline_MoreCore", "NaiveNDP")
    runner.prefetch(configs)
    out: dict[str, dict[str, float]] = {}
    for w in runner.workloads:
        out[w] = {c: runner.speedup(w, c) for c in configs}
    out["GMEAN"] = {
        c: geomean(out[w][c] for w in runner.workloads) for c in configs}
    return out


# ---------------------------------------------------------------------------
# Figure 8: no-issue cycle breakdown
# ---------------------------------------------------------------------------

def figure8(runner: ExperimentRunner) -> dict:
    """Per-workload, per-config no-issue-cycle breakdown normalized to the
    Baseline's total no-issue cycles (the figure's y axis)."""
    configs = ("Baseline", "Baseline_MoreCore", "NaiveNDP")
    out: dict[str, dict[str, dict[str, float]]] = {}
    for w in runner.workloads:
        base_total = max(1, runner.result(w, "Baseline").stalls.total)
        out[w] = {}
        for c in configs:
            s = runner.result(w, c).stalls
            out[w][c] = {k: v / base_total for k, v in s.as_dict().items()}
    return out


# ---------------------------------------------------------------------------
# Figure 9: offload-ratio sweep + dynamic mechanisms
# ---------------------------------------------------------------------------

def figure9(runner: ExperimentRunner) -> dict:
    runner.prefetch(FIG9_CONFIGS)
    out: dict[str, dict[str, float]] = {}
    for w in runner.workloads:
        out[w] = {c: runner.speedup(w, c) for c in FIG9_CONFIGS}
    out["GMEAN"] = {
        c: geomean(out[w][c] for w in runner.workloads)
        for c in FIG9_CONFIGS}
    return out


# ---------------------------------------------------------------------------
# Figure 10: energy
# ---------------------------------------------------------------------------

FIG10_CONFIGS = ("Baseline", "Baseline_MoreCore", "NDP(Dyn)",
                 "NDP(Dyn)_Cache")


def figure10(runner: ExperimentRunner) -> dict:
    """Energy breakdown per workload and config, normalized to the
    workload's Baseline total (the Figure 10 stacks)."""
    out: dict[str, dict[str, dict[str, float]]] = {}
    for w in runner.workloads:
        base_cfg = runner.config("Baseline")
        base_e = compute_energy(runner.result(w, "Baseline"), base_cfg)
        out[w] = {}
        for c in FIG10_CONFIGS:
            e = compute_energy(runner.result(w, c), runner.config(c))
            out[w][c] = e.normalized_to(base_e)
    gm = {}
    for c in FIG10_CONFIGS:
        gm[c] = {"Total": geomean(out[w][c]["Total"]
                                  for w in runner.workloads)}
    out["GMEAN"] = gm
    return out


# ---------------------------------------------------------------------------
# Figure 11: NSU I-cache utilization and warp occupancy
# ---------------------------------------------------------------------------

def figure11(runner: ExperimentRunner, config: str = "NDP(Dyn)_Cache") -> dict:
    out: dict[str, dict[str, float]] = {}
    for w in runner.workloads:
        r = runner.result(w, config)
        out[w] = {
            "icache_utilization": r.nsu_icache_utilization,
            "warp_occupancy": r.avg_nsu_occupancy,
        }
    out["AVG"] = {
        k: sum(out[w][k] for w in runner.workloads) / len(runner.workloads)
        for k in ("icache_utilization", "warp_occupancy")}
    return out


# ---------------------------------------------------------------------------
# Section 4.2: invalidation traffic overhead
# ---------------------------------------------------------------------------

def coherence_overhead(runner: ExperimentRunner,
                       config: str = "NDP(Dyn)_Cache") -> dict:
    out = {w: runner.result(w, config).invalidation_overhead
           for w in runner.workloads}
    out["AVG"] = sum(out[w] for w in runner.workloads) / len(runner.workloads)
    return out


# ---------------------------------------------------------------------------
# Section 7.3: a more powerful GPU (2x compute units)
# ---------------------------------------------------------------------------

def bigger_gpu(runner_factory=None, base: SystemConfig | None = None,
               scale: str = "bench", workloads=None) -> dict:
    """Speedup of NDP(Dyn)_Cache over Baseline when the SM count doubles."""
    base = base or paper_config()
    big = base.scaled_gpu(num_sms=base.gpu.num_sms * 2)
    runner = ExperimentRunner(base=big, scale=scale, workloads=workloads)
    out = {w: runner.speedup(w, "NDP(Dyn)_Cache") for w in runner.workloads}
    out["GMEAN"] = geomean(out[w] for w in runner.workloads)
    return out


# ---------------------------------------------------------------------------
# Section 7.6: NSU frequency sensitivity (350 -> 175 MHz)
# ---------------------------------------------------------------------------

def nsu_frequency(base: SystemConfig | None = None, scale: str = "bench",
                  workloads=None, clock_mhz: float = 175.0) -> dict:
    base = base or paper_config()
    slow = base.with_nsu_clock(clock_mhz)
    runner = ExperimentRunner(base=slow, scale=scale, workloads=workloads)
    out = {w: runner.speedup(w, "NDP(Dyn)_Cache") for w in runner.workloads}
    out["GMEAN"] = geomean(out[w] for w in runner.workloads)
    return out
