"""Regenerators for the paper's tables and the §7.5 overhead numbers."""

from __future__ import annotations

from repro.config import SystemConfig, onchip_storage_bytes, paper_config
from repro.workloads import get_workload, workload_names

#: Table 1 reference data: description and input problem (for the printed
#: table; the instruction counts are *computed* from the models).
TABLE1_META = {
    "BPROP": ("512K points", "Back Propagation [Rodinia]"),
    "BFS": ("1M nodes", "Breadth-first search [Rodinia]"),
    "BICG": ("6Kx6K", "BiCGStab solver [Polybench]"),
    "FWT": ("data: 2^22, kernel: 2^17", "Fast Walsh Transform [CUDA SDK]"),
    "KMN": ("28k obj, 138 feat.", "K-means [Rodinia]"),
    "MiniFE": ("128x64x64", "Finite element method [Mantevo]"),
    "SP": ("512 32K-vectors", "Scalar product [CUDA SDK]"),
    "STN": ("512x512x64 grid", "Stencil [Parboil]"),
    "STCL": ("16k pts/blk, 1 blk", "Streamcluster [Rodinia]"),
    "VADD": ("50M elements", "Vector addition [CUDA SDK]"),
}


def table1() -> list[dict]:
    """Workloads with their *extracted* NSU instruction counts per block."""
    from repro.config import ci_config

    cfg = ci_config()
    rows = []
    for name in workload_names():
        model = get_workload(name)
        inst = model.build(cfg, "ci")
        input_problem, desc = TABLE1_META[name]
        rows.append({
            "Abbr.": name,
            "Input problem": input_problem,
            "Description": desc,
            "# of instr. in offload blocks": ",".join(
                str(n) for n in inst.analyzed.nsu_body_lengths),
        })
    return rows


def table2(cfg: SystemConfig | None = None) -> list[dict]:
    """System configuration rows (the Table 2 content, from the config)."""
    cfg = cfg or paper_config()
    g, h, n = cfg.gpu, cfg.hmc, cfg.nsu
    rows = [
        ("# of SMs", f"{g.num_sms} SMs"),
        ("# of HMCs", str(cfg.num_hmcs)),
        ("Off-chip link BW",
         f"{g.link_gbps_per_dir:.0f} GB/s per direction, "
         f"{g.num_links} bidirectional links"),
        ("SM", f"{g.warps_per_sm * g.warp_width} threads, "
               f"{g.max_ctas_per_sm} CTAs, {g.registers_per_sm} registers, "
               f"{g.scratchpad_bytes // 1024} KB scratchpad, "
               f"warp width: {g.warp_width}"),
        ("L1 inst. cache", f"{g.l1i.size_bytes // 1024} KB, {g.l1i.assoc}-way, "
                           f"{g.l1i.line_size} B line, MSHR: {g.l1i.mshr_entries}"),
        ("L1 data cache", f"{g.l1d.size_bytes // 1024} KB, {g.l1d.assoc}-way, "
                          f"{g.l1d.line_size} B line, MSHR: {g.l1d.mshr_entries}"),
        ("L2 cache", f"{g.l2.size_bytes // (1024 * 1024)} MB, {g.l2.assoc}-way, "
                     f"{g.l2.line_size} B line, MSHR: {g.l2.mshr_entries}"),
        ("SM, Xbar, L2 clock", f"{g.sm_clock_mhz:.0f}, {g.xbar_clock_mhz:.0f}, "
                               f"{g.l2_clock_mhz:.0f} MHz"),
        ("HMC organization", f"{h.num_layers} layers x {h.num_vaults} vaults, "
                             f"{h.banks_per_vault} banks/vault"),
        ("HMC memory size", f"{h.memory_bytes // 1024 ** 3} GB"),
        ("Memory scheduler", f"FR-FCFS, vault request queue: {h.vault_queue_size}"),
        ("DRAM timing", f"tCK={h.timing.tck_ns:.2f}ns, tRP={h.timing.tRP}, "
                        f"tCCD={h.timing.tCCD}, tRCD={h.timing.tRCD}, "
                        f"tCL={h.timing.tCL}, tWR={h.timing.tWR}, "
                        f"tRAS={h.timing.tRAS}"),
        ("HMC off-chip link BW", f"{h.link_gbps_per_dir:.0f} GB/s per direction, "
                                 f"{h.num_links} bidirectional links"),
        ("NSU", f"{n.clock_mhz:.0f} MHz, {n.num_warp_slots} warps, "
                f"warp width: {n.warp_width}, "
                f"{n.const_cache_bytes // 1024} KB constant cache, "
                f"{n.icache_bytes // 1024} KB instruction cache"),
        ("Buffers in GPU SM",
         f"8 B x {cfg.sm_buffers.pending_entries} pending, "
         f"8 B x {cfg.sm_buffers.ready_entries} ready"),
        ("Buffers in NSU",
         f"128 B x {n.read_data_entries} read data, "
         f"128 B x {n.write_addr_entries} write address, "
         f"{n.cmd_buffer_entries} offload command"),
    ]
    return [{"Parameter": k, "Value": v} for k, v in rows]


def hardware_overhead(cfg: SystemConfig | None = None) -> dict:
    """Section 7.5: per-SM NDP buffer storage and its share of on-chip
    storage (paper: 2.84 KB/SM, 1.8% of total)."""
    cfg = cfg or paper_config()
    per_sm = cfg.sm_buffers.storage_bytes
    total_ndp = per_sm * cfg.gpu.num_sms
    onchip = onchip_storage_bytes(cfg)
    return {
        "per_sm_bytes": per_sm,
        "per_sm_kb": per_sm / 1024,
        "total_ndp_bytes": total_ndp,
        "onchip_storage_bytes": onchip,
        "overhead_fraction": total_ndp / (onchip + total_ndp),
    }


def format_table(rows: list[dict], title: str = "") -> str:
    """Render a list of homogeneous dicts as an aligned text table."""
    if not rows:
        return title
    cols = list(rows[0].keys())
    widths = {c: max(len(str(c)), *(len(str(r[c])) for r in rows))
              for c in cols}
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(f"{c:<{widths[c]}}" for c in cols)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in cols))
    for r in rows:
        lines.append(" | ".join(f"{str(r[c]):<{widths[c]}}" for c in cols))
    return "\n".join(lines)
