"""System configuration for the NDP-enabled GPU system (paper Table 2).

All clock-domain quantities are normalized to *SM cycles* (the 700 MHz GPU
core clock) inside the simulator.  This module holds the raw physical
parameters and provides the derived per-SM-cycle rates.

Two scale presets are provided:

* ``paper``  -- the full Table 2 system (64 SMs, 8 HMCs).  Used by the
  benchmark harness that regenerates the paper's figures.
* ``ci``     -- a scaled-down system (8 SMs, 4 HMCs) with identical
  bandwidth *ratios*, used by the unit/integration test suite so the
  whole suite runs in seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

#: Cache line size used throughout the system (bytes).
LINE_SIZE = 128

#: Word size for data elements (bytes) -- 32-bit floats/ints as in the
#: evaluated CUDA workloads.
WORD_SIZE = 4

#: Page size for the random page->HMC mapping (bytes).
PAGE_SIZE = 4096

#: Register size transferred in offload command / ack packets (bytes).
REG_SIZE = 4

#: Fixed header overhead of every packet (bytes): routing info, offload
#: packet ID (SM id, warp id, sequence number), type/flag fields.
PKT_HEADER = 16

#: Bytes per memory address carried in request/WTA packets.
ADDR_SIZE = 8


@dataclass(frozen=True)
class CacheConfig:
    """Set-associative cache geometry and MSHR capacity."""

    size_bytes: int
    assoc: int
    line_size: int = LINE_SIZE
    mshr_entries: int = 48
    hit_latency: int = 1  # in SM cycles

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.assoc * self.line_size)
        if sets < 1:
            raise ValueError("cache too small for its associativity/line size")
        return sets

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_size):
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by "
                f"assoc*line ({self.assoc}*{self.line_size})"
            )


@dataclass(frozen=True)
class DRAMTiming:
    """DRAM timing parameters in DRAM cycles (Table 2: DDR3-1333H-like)."""

    tck_ns: float = 1.50
    tRP: int = 9
    tCCD: int = 4
    tRCD: int = 9
    tCL: int = 9
    tWR: int = 12
    tRAS: int = 24
    # Refresh: every tREFI the vault stalls all banks for tRFC (values in
    # DRAM cycles; ~7.8 us / ~260 ns for a DDR3-class 4Gb device).  Set
    # tREFI to 0 to disable refresh modelling.
    tREFI: int = 5200
    tRFC: int = 174

    def to_sm_cycles(self, dram_cycles: float, sm_clock_mhz: float) -> float:
        """Convert a DRAM-cycle count to (fractional) SM cycles."""
        ns = dram_cycles * self.tck_ns
        return ns * sm_clock_mhz * 1e-6 * 1e3  # ns * cycles/ns


@dataclass(frozen=True)
class GPUConfig:
    """Host GPU configuration (Table 2, 'GPU' section)."""

    num_sms: int = 64
    warps_per_sm: int = 48          # 1536 threads / warp width 32
    warp_width: int = 32
    max_ctas_per_sm: int = 8
    registers_per_sm: int = 32768
    scratchpad_bytes: int = 48 * 1024
    sm_clock_mhz: float = 700.0
    xbar_clock_mhz: float = 1250.0
    l2_clock_mhz: float = 700.0
    # 8 bidirectional off-chip links, 20 GB/s in each direction per link.
    num_links: int = 8
    link_gbps_per_dir: float = 20.0
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(4 * 1024, 4, mshr_entries=2)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            32 * 1024, 4, mshr_entries=48, hit_latency=20
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            2 * 1024 * 1024, 16, mshr_entries=48, hit_latency=80
        )
    )
    alu_latency: int = 4            # SM cycles until result is ready
    max_inflight_loads_per_warp: int = 6
    # Warp scheduling policy: "gto" (greedy-then-oldest, the GPGPU-sim
    # default the paper inherits) or "lrr" (loose round-robin).
    scheduler: str = "gto"
    # Graphics-era SRAM the NSU drops (Section 4.5) but the GPU carries;
    # counted in the Section 7.5 on-chip storage total.
    const_cache_bytes: int = 8 * 1024
    tex_cache_bytes: int = 24 * 1024

    @property
    def link_bytes_per_sm_cycle(self) -> float:
        """Per-link per-direction bandwidth in bytes per SM cycle."""
        return self.link_gbps_per_dir * 1e9 / (self.sm_clock_mhz * 1e6)

    @property
    def total_offchip_bytes_per_sm_cycle(self) -> float:
        return self.num_links * self.link_bytes_per_sm_cycle


@dataclass(frozen=True)
class HMCConfig:
    """Per-stack HMC configuration (Table 2, 'HMC' section)."""

    num_vaults: int = 16
    banks_per_vault: int = 16
    num_layers: int = 8
    memory_bytes: int = 4 * 1024 ** 3
    vault_queue_size: int = 64
    timing: DRAMTiming = field(default_factory=DRAMTiming)
    # Off-chip serdes links per HMC: 4 bidirectional, 20 GB/s each direction.
    num_links: int = 4
    link_gbps_per_dir: float = 20.0
    # DRAM data bus: 32B/DRAM-cycle per vault gives ~20 GB/s/vault
    # (320 GB/s/stack peak as in the HMC 2.1 spec cited by the paper).
    vault_bus_bytes_per_dram_cycle: int = 32
    row_bytes: int = 4096

    def link_bytes_per_sm_cycle(self, sm_clock_mhz: float) -> float:
        return self.link_gbps_per_dir * 1e9 / (sm_clock_mhz * 1e6)


@dataclass(frozen=True)
class CXLConfig:
    """CXL memory-expander backend parameters (the ``cxl`` entry of the
    :data:`repro.memory.backend.BACKENDS` registry; see docs/backends.md).

    Departures from the HMC substrate, all deliberate:

    * the host link is **asymmetric** -- CXL.mem read/write flows share
      PCIe lanes but pay different protocol overheads, so the down
      (host->device) and up (device->host) directions carry their own
      bandwidth and latency;
    * there is **no intra-stack NoC** -- DDR channel controllers hang
      directly off the expander controller, so local accesses pay a flat
      ``port_latency`` and charge no intra-stack NoC bytes;
    * the expander-side NDP unit sits behind a **device command queue**
      (``ndp_cmd_queue``) sized independently of the NSU's own buffers.
    """

    num_channels: int = 8           # DDR channels per expander
    banks_per_channel: int = 16
    channel_queue_size: int = 64
    # Host CXL port, per expander: asymmetric effective bandwidth.
    host_link_gbps_down: float = 16.0
    host_link_gbps_up: float = 24.0
    link_latency_down: int = 40     # SM cycles (CXL port + flit framing)
    link_latency_up: int = 30
    # Inter-expander fabric (CXL switch), per link per direction.
    fabric_gbps_per_dir: float = 12.0
    # Expander controller traversal for a local channel access.
    port_latency: int = 10
    # Expander-side NDP command queue entries (credits per device).
    ndp_cmd_queue: int = 16
    # DDR5-class channel: narrower bus, larger rows than an HMC vault.
    channel_bus_bytes_per_dram_cycle: int = 16
    row_bytes: int = 8192
    timing: DRAMTiming = field(default_factory=DRAMTiming)

    def host_link_bytes_per_sm_cycle(self, sm_clock_mhz: float
                                     ) -> tuple[float, float]:
        scale = 1e9 / (sm_clock_mhz * 1e6)
        return (self.host_link_gbps_down * scale,
                self.host_link_gbps_up * scale)

    def fabric_bytes_per_sm_cycle(self, sm_clock_mhz: float) -> float:
        return self.fabric_gbps_per_dir * 1e9 / (sm_clock_mhz * 1e6)


@dataclass(frozen=True)
class NSUConfig:
    """Near-data-processing SIMD Unit configuration (Table 2, NDP section)."""

    clock_mhz: float = 350.0
    num_warp_slots: int = 48
    warp_width: int = 32
    # Physical SIMD lanes (Section 4.5: "the physical SIMD width of the
    # NSU can be made small while supporting larger or variable logical
    # SIMD width through temporal SIMT").  A 32-wide warp instruction
    # occupies ceil(32 / simd_width) issue slots.
    simd_width: int = 32
    icache_bytes: int = 4 * 1024
    icache_line: int = 64
    const_cache_bytes: int = 4 * 1024
    alu_latency: int = 4            # NSU cycles
    # NSU-side NDP buffers.
    read_data_entries: int = 256    # 128 B each
    write_addr_entries: int = 256   # 128 B each
    cmd_buffer_entries: int = 10
    # Optional extension (paper Section 7.1: workloads like BPROP "can
    # benefit from adding a small read-only cache to each NSU"): when
    # non-zero, RDF responses for GPU-cache hits are cached at the NSU so
    # repeat hits ship only a header instead of the data.
    ro_cache_bytes: int = 0

    def cycles_per_sm_cycle(self, sm_clock_mhz: float) -> float:
        """NSU cycles that elapse per SM cycle (<1 when NSU is slower)."""
        return self.clock_mhz / sm_clock_mhz


@dataclass(frozen=True)
class SMBufferConfig:
    """Per-SM NDP packet buffers (Section 4.1.1 / Section 7.5)."""

    pending_entries: int = 300      # 8 B each
    ready_entries: int = 64         # 8 B each
    entry_bytes: int = 8

    @property
    def storage_bytes(self) -> int:
        return (self.pending_entries + self.ready_entries) * self.entry_bytes


#: Target-NSU selection policies (see repro.core.target_select).
TARGET_POLICIES = ("first", "optimal", "coda")

#: Memory-substrate backend names; the implementations live in the
#: repro.memory.backend registry (kept as a plain tuple here so the
#: config layer never imports the memory layer).
BACKEND_NAMES = ("hmc", "cxl")


class OffloadMode:
    """Named offload-decision policies evaluated in the paper."""

    OFF = "off"                  # Baseline: never offload
    NAIVE = "naive"              # Section 6: offload every block instance
    STATIC = "static"            # Section 7.1: fixed random ratio
    DYNAMIC = "dynamic"          # Section 7.2: hill-climbing ratio
    DYNAMIC_CACHE = "dynamic_cache"  # Section 7.3: + cache-locality filter

    ALL = (OFF, NAIVE, STATIC, DYNAMIC, DYNAMIC_CACHE)


@dataclass(frozen=True)
class NDPConfig:
    """Offload decision parameters (Algorithm 1 defaults from Section 7.2)."""

    mode: str = OffloadMode.OFF
    static_ratio: float = 1.0
    epoch_cycles: int = 30_000
    ratio_init: float = 0.1
    step_init: float = 0.15
    step_unit: float = 0.05
    step_min: float = 0.05
    step_max: float = 0.15
    history_window: int = 4
    seq_num_bits: int = 6           # bounds #LD/ST per offload block
    # Target-NSU selection: "first" (the paper's policy, Section 4.1.1),
    # "optimal" (the oracle alternative of Figure 5; needs unbounded
    # address buffering in real hardware, modelled here for the ablation)
    # or "coda" (CODA-style compute/data co-location: weight the block's
    # write set so compute lands with the data it will mutate).
    target_policy: str = "first"

    def __post_init__(self) -> None:
        if self.mode not in OffloadMode.ALL:
            raise ValueError(f"unknown offload mode {self.mode!r}")
        if not 0.0 <= self.static_ratio <= 1.0:
            raise ValueError("static_ratio must be in [0, 1]")
        if self.target_policy not in TARGET_POLICIES:
            raise ValueError(f"unknown target policy {self.target_policy!r}")

    @property
    def max_mem_instrs_per_block(self) -> int:
        return 2 ** self.seq_num_bits


@dataclass(frozen=True)
class SystemConfig:
    """Complete system: GPU + HMC stacks + memory network + NDP policy."""

    gpu: GPUConfig = field(default_factory=GPUConfig)
    hmc: HMCConfig = field(default_factory=HMCConfig)
    nsu: NSUConfig = field(default_factory=NSUConfig)
    sm_buffers: SMBufferConfig = field(default_factory=SMBufferConfig)
    ndp: NDPConfig = field(default_factory=NDPConfig)
    num_hmcs: int = 8
    # Memory-network links per HMC used for the hypercube (Table 2 footnote:
    # 3 links of the HMC's 4 are used for the 3D hypercube of 8 stacks).
    seed: int = 1
    # Memory substrate: "hmc" (the paper's stacks, the default) or "cxl"
    # (memory expanders; parameters in ``cxl``).  ``num_hmcs`` counts
    # devices for either substrate.  The store key strips these two
    # fields at their defaults so every pre-backend key survives
    # (see repro.sim.store.config_fingerprint).
    backend: str = "hmc"
    cxl: CXLConfig = field(default_factory=CXLConfig)

    def __post_init__(self) -> None:
        if self.num_hmcs & (self.num_hmcs - 1):
            raise ValueError("num_hmcs must be a power of two (hypercube)")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(f"unknown memory backend {self.backend!r}; "
                             f"choose from {', '.join(BACKEND_NAMES)}")

    @property
    def hypercube_dim(self) -> int:
        return int(math.log2(self.num_hmcs))

    @property
    def dram_cycles_per_sm_cycle(self) -> float:
        dram_mhz = 1e3 / self.hmc.timing.tck_ns
        return dram_mhz / self.gpu.sm_clock_mhz

    def with_mode(self, mode: str, *, static_ratio: float | None = None) -> "SystemConfig":
        """Return a copy of this config with a different offload policy."""
        ndp = replace(
            self.ndp,
            mode=mode,
            static_ratio=self.ndp.static_ratio if static_ratio is None else static_ratio,
        )
        return replace(self, ndp=ndp)

    def scaled_gpu(self, *, num_sms: int | None = None) -> "SystemConfig":
        """Return a copy with a different SM count (Baseline_MoreCore, §7.3)."""
        gpu = replace(self.gpu, num_sms=num_sms if num_sms is not None else self.gpu.num_sms)
        return replace(self, gpu=gpu)

    def with_nsu_clock(self, clock_mhz: float) -> "SystemConfig":
        """Return a copy with a different NSU frequency (§7.6)."""
        return replace(self, nsu=replace(self.nsu, clock_mhz=clock_mhz))

    def with_ro_cache(self, nbytes: int) -> "SystemConfig":
        """Return a copy with the optional NSU read-only cache (§7.1)."""
        return replace(self, nsu=replace(self.nsu, ro_cache_bytes=nbytes))

    def with_nsu_simd_width(self, width: int) -> "SystemConfig":
        """Return a copy with a narrower NSU datapath (temporal SIMT,
        §4.5)."""
        return replace(self, nsu=replace(self.nsu, simd_width=width))

    def with_target_policy(self, policy: str) -> "SystemConfig":
        """Return a copy using "first", "optimal" or "coda" target
        selection."""
        return replace(self, ndp=replace(self.ndp, target_policy=policy))

    def with_backend(self, name: str,
                     cxl: CXLConfig | None = None) -> "SystemConfig":
        """Return a copy on a different memory substrate ("hmc"/"cxl");
        ``cxl`` optionally replaces the expander parameters too."""
        return replace(self, backend=name,
                       cxl=cxl if cxl is not None else self.cxl)


def paper_config(mode: str = OffloadMode.OFF, **kwargs) -> SystemConfig:
    """The full Table 2 configuration: 64 SMs, 8 HMCs."""
    cfg = SystemConfig(num_hmcs=8)
    cfg = cfg.with_mode(mode, **kwargs)
    return cfg


def ci_config(mode: str = OffloadMode.OFF, **kwargs) -> SystemConfig:
    """A scaled-down configuration for fast tests: 16 SMs, 2 HMCs.

    The GPU:NSU ratio (8 SMs per stack) and the per-link bandwidths are
    kept identical to the paper configuration so the qualitative
    behaviour (GPU bandwidth bottleneck, NSU saturation under naive
    offload) is preserved at the smaller scale.
    """
    gpu = GPUConfig(num_sms=16, num_links=2)
    cfg = SystemConfig(gpu=gpu, num_hmcs=2)
    cfg = cfg.with_mode(mode, **kwargs)
    return cfg


def onchip_storage_bytes(cfg: SystemConfig) -> int:
    """Total per-GPU on-chip storage used for the §7.5 overhead ratio.

    Counts per-SM L1I + L1D + scratchpad + constant + texture caches plus
    the shared L2 (the storage classes the paper enumerates).
    """
    per_sm = (cfg.gpu.l1i.size_bytes + cfg.gpu.l1d.size_bytes
              + cfg.gpu.scratchpad_bytes + cfg.gpu.const_cache_bytes
              + cfg.gpu.tex_cache_bytes)
    return cfg.gpu.num_sms * per_sm + cfg.gpu.l2.size_bytes
