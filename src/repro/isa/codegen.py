"""Partitioned code generation for offload blocks (paper Section 3.2).

For each :class:`~repro.isa.analyzer.CandidateBlock` we produce an
:class:`OffloadBlock` carrying all three views the machine needs:

* the *original* instruction sequence (executed when the offload decision
  is negative),
* the *GPU-side* sequence under partitioned execution -- ``OFLD.BEG``,
  address-calculation ALUs, loads turned into RDF packet generation,
  stores turned into WTA packet generation, offloaded ALUs replaced by
  NOPs, and ``OFLD.END``,
* the *NSU-side* sequence -- ``OFLD.BEG`` (register init), loads popping
  the read-data buffer, the offloaded ALUs, stores consuming write-address
  buffer entries, and ``OFLD.END`` (register return + ACK).

The NSU-side body length is exactly the "# of instr. in offload blocks"
column of Table 1 for the evaluated workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.analyzer import (
    CandidateBlock,
    live_in_regs,
    live_out_regs,
    _later_reads,
)
from repro.isa.instructions import Instr, Opcode
from repro.isa.kernel import Kernel


@dataclass(frozen=True)
class GPUInstr:
    """One GPU-side instruction of the partitioned block (Figure 3(a))."""

    kind: str               # beg | rdf | wta | addr_alu | nop | end
    region_index: int       # index into the original region, -1 for beg/end
    instr: Instr | None = None

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind:9s} {self.instr if self.instr else ''}"


@dataclass(frozen=True)
class NSUInstr:
    """One NSU-side instruction of the partitioned block (Figure 3(b))."""

    kind: str               # beg | ld | alu | st | end
    region_index: int
    instr: Instr | None = None
    seq: int = -1           # memory sequence number for ld/st

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind:4s} seq={self.seq} {self.instr if self.instr else ''}"


@dataclass(frozen=True)
class OffloadBlock:
    """A fully code-generated offload block."""

    block_id: int
    kernel_name: str
    candidate: CandidateBlock
    gpu_code: tuple[GPUInstr, ...]
    nsu_code: tuple[NSUInstr, ...]
    send_regs: frozenset[int]   # live-ins shipped in the offload command
    ret_regs: frozenset[int]    # live-outs returned in the ACK
    num_loads: int
    num_stores: int

    @property
    def instrs(self) -> tuple[Instr, ...]:
        """Original (unpartitioned) region instructions."""
        return self.candidate.instrs

    @property
    def nsu_body_len(self) -> int:
        """NSU instructions excluding OFLD.BEG/OFLD.END (Table 1 column)."""
        return len(self.nsu_code) - 2

    @property
    def score(self) -> float:
        return self.candidate.score

    @property
    def has_indirect_load(self) -> bool:
        return any(i.op is Opcode.LD and i.indirect for i in self.instrs)

    def listing(self) -> str:
        """Figure 3-style side-by-side listing (for examples / debugging)."""
        lines = [f"offload block {self.block_id} ({self.kernel_name}), "
                 f"score={self.score:+.0f}B, send={sorted(self.send_regs)}, "
                 f"ret={sorted(self.ret_regs)}"]
        lines.append(" GPU code:")
        lines.extend(f"  {g}" for g in self.gpu_code)
        lines.append(" NSU code:")
        lines.extend(f"  {n}" for n in self.nsu_code)
        return "\n".join(lines)


def generate_offload_block(kernel: Kernel, cand: CandidateBlock,
                           block_id: int) -> OffloadBlock:
    """Translate a candidate region into partitioned GPU/NSU code."""
    instrs = cand.instrs
    addr_calc = cand.addr_calc
    later = _later_reads(kernel, cand.block_index, cand.stop)
    send = live_in_regs(instrs, addr_calc)
    ret = live_out_regs(instrs, addr_calc, later)

    gpu: list[GPUInstr] = [GPUInstr("beg", -1)]
    nsu: list[NSUInstr] = [NSUInstr("beg", -1)]
    seq = 0
    n_ld = n_st = 0
    for idx, ins in enumerate(instrs):
        if ins.op is Opcode.LD:
            gpu.append(GPUInstr("rdf", idx, ins))
            nsu.append(NSUInstr("ld", idx, ins, seq=seq))
            seq += 1
            n_ld += 1
        elif ins.op is Opcode.ST:
            gpu.append(GPUInstr("wta", idx, ins))
            nsu.append(NSUInstr("st", idx, ins, seq=seq))
            seq += 1
            n_st += 1
        elif idx in addr_calc:
            gpu.append(GPUInstr("addr_alu", idx, ins))
            # Address ALUs are removed from the NSU code (Section 3.2).
        else:
            gpu.append(GPUInstr("nop", idx, ins))   # "@NSU"-marked on GPU
            nsu.append(NSUInstr("alu", idx, ins))
    gpu.append(GPUInstr("end", -1))
    nsu.append(NSUInstr("end", -1))

    return OffloadBlock(
        block_id=block_id,
        kernel_name=kernel.name,
        candidate=cand,
        gpu_code=tuple(gpu),
        nsu_code=tuple(nsu),
        send_regs=send,
        ret_regs=ret,
        num_loads=n_ld,
        num_stores=n_st,
    )
