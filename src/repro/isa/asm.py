"""A textual assembly format for the kernel IR.

Lets kernels be written as PTX-flavoured text instead of constructor
calls -- handy for examples, tests, and users porting real kernels.  The
grammar (one instruction per line, ``#`` comments):

.. code-block:: text

    .kernel vadd
    .live_out r8
    .block entry
        ld      r4, [A + r0]        # global load:  r4 = A[r0]
        ld.ind  r5, [B + r4]        # indirect load (address from data)
        ld.b8   r6, [C + r1]        # 8-byte per-thread access
        add     r6, r4, r5          # any ALU mnemonic: add/sub/mul/...
        rsqrt   r7, r6              # SFU mnemonics: rsqrt/exp/log/sin/cos
        shld    r9, r2              # scratchpad load / shst store
        st      [D + r10], r6       # global store: D[r10] = r6
        sync                        # barrier (ends any offload region)
        bra     r7                  # branch (terminal in a block)

``.block NAME`` starts a new basic block; ``.live_out rX [rY ...]``
declares kernel live-outs.  :func:`assemble` parses text into a
:class:`~repro.isa.kernel.Kernel`; :func:`disassemble` is its inverse
(round-trip stable up to whitespace).
"""

from __future__ import annotations

import re

from repro.isa.instructions import (
    Instr,
    Opcode,
    alu,
    branch,
    ld,
    sfu,
    shmem_ld,
    shmem_st,
    st,
    sync,
)
from repro.isa.kernel import BasicBlock, Kernel

#: SFU (special-function) mnemonics.
SFU_OPS = frozenset({"rsqrt", "sqrt", "exp", "log", "sin", "cos", "rcp"})

#: Everything else alphabetic that is not a keyword parses as a plain ALU.
_KEYWORDS = frozenset({"ld", "st", "shld", "shst", "sync", "bra", "nop"})

_REG = re.compile(r"^r(\d+)$")
_MEM = re.compile(r"^\[\s*(\w+)\s*\+\s*r(\d+)\s*\]$")


class AsmError(ValueError):
    """A parse error, annotated with the line number."""

    def __init__(self, lineno: int, msg: str) -> None:
        super().__init__(f"line {lineno}: {msg}")
        self.lineno = lineno


def _reg(tok: str, lineno: int) -> int:
    m = _REG.match(tok.strip())
    if not m:
        raise AsmError(lineno, f"expected a register, got {tok!r}")
    return int(m.group(1))


def _mem(tok: str, lineno: int) -> tuple[str, int]:
    m = _MEM.match(tok.strip())
    if not m:
        raise AsmError(lineno, f"expected [array + rN], got {tok!r}")
    return m.group(1), int(m.group(2))


def _split_operands(rest: str) -> list[str]:
    """Split on commas that are not inside brackets."""
    out, depth, cur = [], 0, []
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        out.append(tail)
    return out


def _parse_instr(mnemonic: str, rest: str, lineno: int) -> Instr:
    base, _, suffix = mnemonic.partition(".")
    ops = _split_operands(rest) if rest else []

    if base == "ld":
        if len(ops) != 2:
            raise AsmError(lineno, "ld needs: dst, [array + rN]")
        dst = _reg(ops[0], lineno)
        array, addr = _mem(ops[1], lineno)
        indirect = False
        dtype = 4
        for part in suffix.split(".") if suffix else []:
            if part == "ind":
                indirect = True
            elif part.startswith("b") and part[1:].isdigit():
                dtype = int(part[1:])
            elif part:
                raise AsmError(lineno, f"unknown ld suffix {part!r}")
        return ld(dst, addr, array, indirect=indirect, dtype_bytes=dtype)

    if base == "st":
        if len(ops) != 2:
            raise AsmError(lineno, "st needs: [array + rN], src")
        array, addr = _mem(ops[0], lineno)
        data = _reg(ops[1], lineno)
        dtype = 4
        if suffix:
            if suffix.startswith("b") and suffix[1:].isdigit():
                dtype = int(suffix[1:])
            else:
                raise AsmError(lineno, f"unknown st suffix {suffix!r}")
        return st(data, addr, array, dtype_bytes=dtype)

    if base == "shld":
        if len(ops) != 2:
            raise AsmError(lineno, "shld needs: dst, rAddr")
        return shmem_ld(_reg(ops[0], lineno), _reg(ops[1], lineno))

    if base == "shst":
        if len(ops) != 2:
            raise AsmError(lineno, "shst needs: rData, rAddr")
        return shmem_st(_reg(ops[0], lineno), _reg(ops[1], lineno))

    if base == "sync":
        return sync()

    if base == "bra":
        if len(ops) > 1:
            raise AsmError(lineno, "bra takes at most one register")
        cond = _reg(ops[0], lineno) if ops else None
        return branch(cond)

    if base == "nop":
        return Instr(Opcode.NOP)

    # Generic ALU/SFU: MNEMONIC dst, src...
    if not base.isalpha():
        raise AsmError(lineno, f"unknown mnemonic {mnemonic!r}")
    if not ops:
        raise AsmError(lineno, f"{base} needs a destination register")
    dst = _reg(ops[0], lineno)
    srcs = [_reg(o, lineno) for o in ops[1:]]
    if base in SFU_OPS:
        return sfu(dst, *srcs, tag=base)
    return alu(dst, *srcs, tag=base)


def assemble(text: str) -> Kernel:
    """Parse assembly text into a :class:`Kernel`."""
    name = "kernel"
    live_out: set[int] = set()
    blocks: list[BasicBlock] = []
    cur: list[Instr] = []
    cur_label = "b0"
    saw_any = False

    def flush() -> None:
        nonlocal cur, cur_label
        if cur:
            blocks.append(BasicBlock(cur, label=cur_label))
            cur = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        saw_any = True
        if line.startswith(".kernel"):
            parts = line.split()
            if len(parts) != 2:
                raise AsmError(lineno, ".kernel needs a name")
            name = parts[1]
        elif line.startswith(".live_out"):
            for tok in line.split()[1:]:
                live_out.add(_reg(tok, lineno))
        elif line.startswith(".block"):
            flush()
            parts = line.split()
            cur_label = parts[1] if len(parts) > 1 else f"b{len(blocks)}"
        elif line.startswith("."):
            raise AsmError(lineno, f"unknown directive {line.split()[0]!r}")
        else:
            parts = line.split(None, 1)
            mnemonic = parts[0]
            rest = parts[1] if len(parts) > 1 else ""
            cur.append(_parse_instr(mnemonic, rest, lineno))
    flush()
    if not saw_any or not blocks:
        raise AsmError(0, "empty kernel")
    return Kernel(name, blocks, live_out=frozenset(live_out))


def _fmt_instr(ins: Instr) -> str:
    op = ins.op
    if op is Opcode.LD:
        suffix = ""
        if ins.indirect:
            suffix += ".ind"
        if ins.dtype_bytes != 4:
            suffix += f".b{ins.dtype_bytes}"
        return (f"ld{suffix} r{ins.dst}, [{ins.array} + r{ins.addr_src}]")
    if op is Opcode.ST:
        suffix = f".b{ins.dtype_bytes}" if ins.dtype_bytes != 4 else ""
        return f"st{suffix} [{ins.array} + r{ins.addr_src}], r{ins.srcs[0]}"
    if op is Opcode.SHMEM_LD:
        return f"shld r{ins.dst}, r{ins.srcs[0]}"
    if op is Opcode.SHMEM_ST:
        return f"shst r{ins.srcs[0]}, r{ins.srcs[1]}"
    if op is Opcode.SYNC:
        return "sync"
    if op is Opcode.BRANCH:
        return f"bra r{ins.srcs[0]}" if ins.srcs else "bra"
    if op is Opcode.NOP:
        return "nop"
    mnemonic = ins.tag if (ins.tag and ins.tag.isalpha()) else (
        "sfu" if op is Opcode.SFU else "add")
    operands = ", ".join([f"r{ins.dst}"] + [f"r{s}" for s in ins.srcs])
    return f"{mnemonic} {operands}"


def disassemble(kernel: Kernel) -> str:
    """Render a kernel back to assembly text."""
    lines = [f".kernel {kernel.name}"]
    if kernel.live_out:
        regs = " ".join(f"r{r}" for r in sorted(kernel.live_out))
        lines.append(f".live_out {regs}")
    for bb in kernel.blocks:
        lines.append(f".block {bb.label or 'b'}")
        for ins in bb.instrs:
            lines.append(f"    {_fmt_instr(ins)}")
    return "\n".join(lines)
