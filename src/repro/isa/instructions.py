"""A small PTX-like instruction set used to author the evaluated workloads.

The IR is deliberately minimal: the offload-block analyzer only needs to see
register def-use, memory accesses, and the instruction classes that the paper
excludes from offload blocks (scratchpad accesses, synchronization, control
flow).  Register IDs are plain integers; each instruction writes at most one
register.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Opcode(enum.Enum):
    """Instruction classes distinguished by the static analyzer."""

    LD = "ld"            # global-memory load
    ST = "st"            # global-memory store
    ALU = "alu"          # integer/FP arithmetic
    SFU = "sfu"          # special-function (transcendental) op
    SHMEM_LD = "shld"    # scratchpad ("shared memory") load
    SHMEM_ST = "shst"    # scratchpad store
    SYNC = "sync"        # barrier / __syncthreads
    BRANCH = "bra"       # control flow (ends a basic block)
    OFLD_BEG = "ofld.beg"
    OFLD_END = "ofld.end"
    NOP = "nop"


#: Opcodes allowed inside an offload block (Section 3.1): simple loads,
#: stores and ALU instructions only.
OFFLOADABLE = frozenset({Opcode.LD, Opcode.ST, Opcode.ALU})

#: Opcodes that access memory through the global address space.
MEMORY_OPS = frozenset({Opcode.LD, Opcode.ST})


@dataclass(frozen=True, slots=True)
class Instr:
    """One static instruction.

    Attributes
    ----------
    op:
        Instruction class.
    dst:
        Destination register ID, or ``None`` for instructions that do not
        write a register (ST, SYNC, BRANCH, ...).
    srcs:
        Source register IDs read by the instruction.  For a ST this
        includes the data register; the address register is listed
        separately in ``addr_src`` (and is *also* a source).
    addr_src:
        For LD/ST: the register holding the (virtual) memory address.
    array:
        Symbolic name of the array accessed (LD/ST only); the workload's
        trace generator keys on this to produce concrete addresses.
    indirect:
        True for a load whose address was computed from the value of a
        previous load (the ``x = B[A[i]]`` pattern of Section 4.4).
    dtype_bytes:
        Per-thread access size for LD/ST (default one 32-bit word).
    latency_class:
        "alu" or "sfu"; lets workloads mark slow ops without new opcodes.
    tag:
        Free-form annotation used by tests and debug dumps.
    """

    op: Opcode
    dst: int | None = None
    srcs: tuple[int, ...] = ()
    addr_src: int | None = None
    array: str | None = None
    indirect: bool = False
    dtype_bytes: int = 4
    latency_class: str = "alu"
    tag: str = ""

    #: Set in ``__post_init__``: instructions are immutable, and the SM
    #: issue path reads these every attempt, so they are plain attributes
    #: rather than recomputed properties.
    is_mem: bool = field(init=False, compare=False, repr=False)
    reads: tuple[int, ...] = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.op in MEMORY_OPS and self.array is None:
            raise ValueError(f"{self.op} requires an array symbol")
        if self.op is Opcode.LD and self.dst is None:
            raise ValueError("LD requires a destination register")
        if self.op is Opcode.ST and self.dst is not None:
            raise ValueError("ST must not write a register")
        object.__setattr__(self, "is_mem", self.op in MEMORY_OPS)
        # ``reads`` is every register ID read, including the address reg.
        reads = self.srcs
        if self.addr_src is not None and self.addr_src not in self.srcs:
            reads = self.srcs + (self.addr_src,)
        object.__setattr__(self, "reads", reads)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        dst = f"R{self.dst}" if self.dst is not None else "-"
        srcs = ",".join(f"R{r}" for r in self.srcs)
        mem = f" [{self.array}@R{self.addr_src}]" if self.is_mem else ""
        ind = " (indirect)" if self.indirect else ""
        return f"{self.op.value:8s} {dst} <- {srcs}{mem}{ind} {self.tag}"


# ---------------------------------------------------------------------------
# Concise constructors used by the workload definitions.
# ---------------------------------------------------------------------------

def ld(dst: int, addr: int, array: str, *, indirect: bool = False,
       dtype_bytes: int = 4, tag: str = "") -> Instr:
    """Global load: ``dst = array[addr]``."""
    return Instr(Opcode.LD, dst=dst, addr_src=addr, array=array,
                 indirect=indirect, dtype_bytes=dtype_bytes, tag=tag)


def st(data: int, addr: int, array: str, *, dtype_bytes: int = 4,
       tag: str = "") -> Instr:
    """Global store: ``array[addr] = data``."""
    return Instr(Opcode.ST, srcs=(data,), addr_src=addr, array=array,
                 dtype_bytes=dtype_bytes, tag=tag)


def alu(dst: int, *srcs: int, tag: str = "") -> Instr:
    """Arithmetic op: ``dst = f(srcs...)``."""
    return Instr(Opcode.ALU, dst=dst, srcs=tuple(srcs), tag=tag)


def sfu(dst: int, *srcs: int, tag: str = "") -> Instr:
    """Special-function op (exp/log/...): slow-latency ALU."""
    return Instr(Opcode.SFU, dst=dst, srcs=tuple(srcs),
                 latency_class="sfu", tag=tag)


def shmem_ld(dst: int, addr: int, tag: str = "") -> Instr:
    return Instr(Opcode.SHMEM_LD, dst=dst, srcs=(addr,), tag=tag)


def shmem_st(data: int, addr: int, tag: str = "") -> Instr:
    return Instr(Opcode.SHMEM_ST, srcs=(data, addr), tag=tag)


def sync(tag: str = "") -> Instr:
    return Instr(Opcode.SYNC, tag=tag)


def branch(cond: int | None = None, tag: str = "") -> Instr:
    srcs = (cond,) if cond is not None else ()
    return Instr(Opcode.BRANCH, srcs=tuple(s for s in srcs if s is not None),
                 tag=tag)
