"""Static offload-block analysis (paper Section 3.1).

The analyzer scans each basic block for maximal runs of offloadable
instructions (simple LD/ST/ALU -- no scratchpad accesses, synchronization or
control flow), computes the Eq. (1) score

    Score = GPUTrafficReduction - OffloadOverhead

and keeps runs with a positive score as offload blocks.  Independently of the
score, every *indirect* load (``x = B[A[i]]``, Section 4.4) is extracted as a
single-instruction offload block because offloading it avoids fetching whole
divergent cache lines to the GPU.

Address-calculation instructions (the backward slice feeding LD/ST address
registers) stay on the GPU under partitioned execution and are therefore
excluded from both the NSU instruction stream and the register-transfer
overhead (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import REG_SIZE
from repro.isa.instructions import Instr, Opcode, OFFLOADABLE
from repro.isa.kernel import BasicBlock, Kernel


def address_calc_indices(instrs: list[Instr] | tuple[Instr, ...]) -> frozenset[int]:
    """Indices of ALU instructions that only serve address computation.

    Computed as the backward register slice from every LD/ST ``addr_src``
    within the region.  Loads feeding an address (the producer in an
    indirect-load pair) are *not* address-calc: they are memory instructions
    and remain offloadable; the slice simply stops at them.
    """
    needed: set[int] = set()
    for ins in instrs:
        if ins.is_mem and ins.addr_src is not None:
            needed.add(ins.addr_src)
    marked: set[int] = set()
    for idx in range(len(instrs) - 1, -1, -1):
        ins = instrs[idx]
        if ins.dst is None or ins.dst not in needed:
            continue
        if ins.op is Opcode.ALU:
            marked.add(idx)
            needed.update(ins.srcs)
        # A LD producing an address value terminates the slice: the load
        # itself is a memory instruction, not address arithmetic.
    return frozenset(marked)


def _nsu_side_indices(instrs: tuple[Instr, ...],
                      addr_calc: frozenset[int]) -> tuple[int, ...]:
    """Region indices executed on the NSU: LD, ST and non-address ALUs."""
    out = []
    for idx, ins in enumerate(instrs):
        if idx in addr_calc:
            continue
        if ins.op in (Opcode.LD, Opcode.ST, Opcode.ALU):
            out.append(idx)
    return tuple(out)


def live_in_regs(instrs: tuple[Instr, ...],
                 addr_calc: frozenset[int]) -> frozenset[int]:
    """Registers the GPU must ship to the NSU in the offload command packet.

    A register is live-in if an NSU-side instruction reads it before any
    NSU-side definition.  Address registers are excluded (addresses travel
    in RDF/WTA packets, not as register context); loaded values are defined
    by the read-data buffer.
    """
    defined: set[int] = set()
    live: set[int] = set()
    for idx in _nsu_side_indices(instrs, addr_calc):
        ins = instrs[idx]
        if ins.op is Opcode.LD:
            defined.add(ins.dst)
            continue
        reads = ins.srcs  # excludes addr_src for ST by construction
        for r in sorted(reads):
            if r not in defined:
                live.add(r)
        if ins.dst is not None:
            defined.add(ins.dst)
    return frozenset(live)


def live_out_regs(instrs: tuple[Instr, ...],
                  addr_calc: frozenset[int],
                  later_reads: frozenset[int]) -> frozenset[int]:
    """Registers produced on the NSU that the GPU needs back in the ACK.

    ``later_reads`` is the set of registers read by any instruction after
    the region (plus the kernel's declared live-outs).
    """
    produced: set[int] = set()
    for idx in _nsu_side_indices(instrs, addr_calc):
        ins = instrs[idx]
        if ins.dst is not None:
            produced.add(ins.dst)
    return frozenset(produced & later_reads)


def score_block(instrs: tuple[Instr, ...],
                addr_calc: frozenset[int],
                later_reads: frozenset[int]) -> float:
    """Eq. (1) per-thread score in bytes.

    GPUTrafficReduction: bytes of data the GPU avoids moving over its
    off-chip links (one access per LD/ST per thread; address bytes are not
    counted -- they are sent either way).  OffloadOverhead: register context
    shipped to and from the NSU.
    """
    reduction = sum(ins.dtype_bytes for ins in instrs if ins.is_mem)
    n_regs = len(live_in_regs(instrs, addr_calc)) + len(
        live_out_regs(instrs, addr_calc, later_reads))
    return float(reduction - n_regs * REG_SIZE)


@dataclass(frozen=True)
class CandidateBlock:
    """A candidate offload region inside one basic block."""

    block_index: int            # index of the basic block in the kernel
    start: int                  # first instruction index within the block
    stop: int                   # one-past-last instruction index
    instrs: tuple[Instr, ...]
    addr_calc: frozenset[int]   # indices *within the region*
    score: float
    reason: str                 # "score" or "indirect"

    @property
    def num_loads(self) -> int:
        return sum(1 for i in self.instrs if i.op is Opcode.LD)

    @property
    def num_stores(self) -> int:
        return sum(1 for i in self.instrs if i.op is Opcode.ST)

    @property
    def num_mem(self) -> int:
        return self.num_loads + self.num_stores


def _later_reads(kernel: Kernel, block_index: int, stop: int) -> frozenset[int]:
    """Registers read after position ``stop`` of basic block ``block_index``."""
    reads: set[int] = set(kernel.live_out)
    blocks = kernel.blocks
    for ins in blocks[block_index].instrs[stop:]:
        reads.update(ins.reads)
    for b in blocks[block_index + 1:]:
        for ins in b.instrs:
            reads.update(ins.reads)
    return frozenset(reads)


def _runs(block: BasicBlock):
    """Yield (start, stop) of maximal offloadable runs in a basic block."""
    start = None
    for idx, ins in enumerate(block.instrs):
        if ins.op in OFFLOADABLE:
            if start is None:
                start = idx
        else:
            if start is not None:
                yield start, idx
                start = None
    if start is not None:
        yield start, len(block.instrs)


def _split_at_indirect_producers(instrs: list[Instr],
                                 start: int) -> list[tuple[int, int]]:
    """Split a run after every load whose value feeds a later address.

    Under partitioned execution the GPU generates *all* addresses, but a
    load's data lands in the NSU's read-data buffer -- so a region where an
    address computation consumes an in-region load's value is not
    executable as one offload block.  Splitting after the producer load
    makes its value a live-out: the GPU receives it in the ACK and can
    address the dependent (indirect) load of the next block, which is
    exactly the two-step ``x = B[A[i]]`` flow of Section 4.4.
    """
    cuts: set[int] = set()
    for idx, ins in enumerate(instrs):
        if not ins.is_mem or ins.addr_src is None:
            continue
        # Chase the address chain backwards through in-region ALUs.
        frontier = {ins.addr_src}
        seen: set[int] = set()
        for j in range(idx - 1, -1, -1):
            prod = instrs[j]
            if prod.dst is None or prod.dst not in frontier:
                continue
            frontier.discard(prod.dst)
            seen.add(prod.dst)
            if prod.op is Opcode.LD:
                cuts.add(j)          # cut after the producer load
            elif prod.op is Opcode.ALU:
                frontier.update(r for r in prod.srcs if r not in seen)
    pieces: list[tuple[int, int]] = []
    piece_start = 0
    for c in sorted(cuts):
        if c + 1 > piece_start:
            pieces.append((start + piece_start, start + c + 1))
            piece_start = c + 1
    if piece_start < len(instrs):
        pieces.append((start + piece_start, start + len(instrs)))
    return pieces


def _split_by_mem_limit(instrs: list[Instr], start: int,
                        max_mem: int) -> list[tuple[int, int]]:
    """Split a run so no piece exceeds ``max_mem`` memory instructions.

    The sequence-number field width bounds the number of LD/ST per offload
    block (Section 3.2 footnote); oversized runs are split greedily.
    """
    pieces: list[tuple[int, int]] = []
    piece_start = start
    mem_seen = 0
    for off, ins in enumerate(instrs):
        if ins.is_mem:
            mem_seen += 1
            if mem_seen > max_mem:
                pieces.append((piece_start, start + off))
                piece_start = start + off
                mem_seen = 1
    pieces.append((piece_start, start + len(instrs)))
    return pieces


def extract_candidate_blocks(kernel: Kernel,
                             max_mem_per_block: int = 64) -> list[CandidateBlock]:
    """Extract all offload blocks from a kernel (Section 3.1 procedure)."""
    out: list[CandidateBlock] = []
    for b_idx, block in enumerate(kernel.blocks):
        for run_start, run_stop in _runs(block):
            run = block.instrs[run_start:run_stop]
            pieces = []
            for p_start, p_stop in _split_at_indirect_producers(run,
                                                                run_start):
                piece = block.instrs[p_start:p_stop]
                pieces.extend(_split_by_mem_limit(piece, p_start,
                                                  max_mem_per_block))
            for start, stop in pieces:
                instrs = tuple(block.instrs[start:stop])
                if not any(i.is_mem for i in instrs):
                    continue
                addr_calc = address_calc_indices(instrs)
                later = _later_reads(kernel, b_idx, stop)
                s = score_block(instrs, addr_calc, later)
                if s > 0:
                    out.append(CandidateBlock(b_idx, start, stop, instrs,
                                              addr_calc, s, "score"))
                else:
                    # Salvage single indirect loads (Section 4.4).
                    for off, ins in enumerate(instrs):
                        if ins.op is Opcode.LD and ins.indirect:
                            sub = (ins,)
                            sub_ac = address_calc_indices(sub)
                            sub_later = _later_reads(kernel, b_idx, start + off + 1)
                            out.append(CandidateBlock(
                                b_idx, start + off, start + off + 1, sub,
                                sub_ac,
                                score_block(sub, sub_ac, sub_later),
                                "indirect"))
    return out


@dataclass
class AnalyzedKernel:
    """A kernel together with its extracted, code-generated offload blocks."""

    kernel: Kernel
    blocks: list  # list[OffloadBlock]; typed loosely to avoid an import cycle

    @property
    def nsu_body_lengths(self) -> list[int]:
        """Per-block NSU instruction counts (the Table 1 column)."""
        return [b.nsu_body_len for b in self.blocks]


def analyze_kernel(kernel: Kernel,
                   max_mem_per_block: int = 64) -> AnalyzedKernel:
    """Run extraction + code generation over a kernel."""
    from repro.isa.codegen import generate_offload_block

    candidates = extract_candidate_blocks(kernel, max_mem_per_block)
    blocks = [
        generate_offload_block(kernel, cand, block_id=i)
        for i, cand in enumerate(candidates)
    ]
    return AnalyzedKernel(kernel, blocks)
