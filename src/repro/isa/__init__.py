"""Kernel IR, offload-block static analysis, and partitioned code generation.

This package plays the role of the PTX-level static analyzer of Section 3:
workloads are authored in a small PTX-like IR (:mod:`repro.isa.instructions`),
the analyzer (:mod:`repro.isa.analyzer`) extracts offload blocks using the
score of Eq. (1), and the code generator (:mod:`repro.isa.codegen`) splits
each block into the GPU-side and NSU-side instruction streams of Figure 3.
"""

from repro.isa.instructions import (
    Opcode,
    Instr,
    ld,
    st,
    alu,
    sfu,
    shmem_ld,
    shmem_st,
    sync,
    branch,
)
from repro.isa.kernel import BasicBlock, Kernel
from repro.isa.analyzer import (
    AnalyzedKernel,
    CandidateBlock,
    address_calc_indices,
    extract_candidate_blocks,
    live_in_regs,
    live_out_regs,
    score_block,
    analyze_kernel,
)
from repro.isa.codegen import OffloadBlock, generate_offload_block, GPUInstr, NSUInstr

__all__ = [
    "Opcode",
    "Instr",
    "ld",
    "st",
    "alu",
    "sfu",
    "shmem_ld",
    "shmem_st",
    "sync",
    "branch",
    "BasicBlock",
    "Kernel",
    "AnalyzedKernel",
    "CandidateBlock",
    "address_calc_indices",
    "extract_candidate_blocks",
    "live_in_regs",
    "live_out_regs",
    "score_block",
    "analyze_kernel",
    "OffloadBlock",
    "generate_offload_block",
    "GPUInstr",
    "NSUInstr",
]
