"""Kernel and basic-block containers for the workload IR."""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instr, Opcode


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions.

    Control flow (``BRANCH``) may only appear as the last instruction; the
    analyzer never extends an offload block across a basic-block boundary
    (Section 3.1: "an offload block needs to avoid spanning multiple basic
    blocks").
    """

    instrs: list[Instr]
    label: str = ""

    def __post_init__(self) -> None:
        for i, ins in enumerate(self.instrs[:-1]):
            if ins.op is Opcode.BRANCH:
                raise ValueError(
                    f"BRANCH at position {i} of block {self.label!r} is not "
                    "terminal; split the basic block"
                )

    def __len__(self) -> int:
        return len(self.instrs)

    def __iter__(self):
        return iter(self.instrs)


@dataclass
class Kernel:
    """A GPU kernel: an ordered list of basic blocks.

    ``live_out`` lists registers that are consumed after the kernel body
    (e.g. accumulators carried across loop iterations); the analyzer treats
    them as used-after for live-out computation.
    """

    name: str
    blocks: list[BasicBlock]
    live_out: frozenset[int] = frozenset()

    def all_instrs(self) -> list[Instr]:
        return [ins for b in self.blocks for ins in b.instrs]

    @property
    def num_instrs(self) -> int:
        return sum(len(b) for b in self.blocks)

    def registers(self) -> set[int]:
        regs: set[int] = set()
        for ins in self.all_instrs():
            if ins.dst is not None:
                regs.add(ins.dst)
            regs.update(ins.reads)
        return regs

    def __str__(self) -> str:  # pragma: no cover - debug aid
        lines = [f"kernel {self.name}:"]
        for b in self.blocks:
            lines.append(f" block {b.label}:")
            lines.extend(f"  {ins}" for ins in b.instrs)
        return "\n".join(lines)
