"""Physical address mapping: random 4 KB page -> HMC, vault/bank/row decode.

The paper evaluates "unrestricted data placement" by mapping pages to HMCs at
random in 4 KB granularity (Section 5).  We implement that with a stateless
mixing hash (splitmix64) over the page number, so the mapping is reproducible
from the seed, needs no table, and is vectorizable with numpy for the trace
generators.

Within a stack, cache lines interleave across the 16 vaults (low line bits),
then across the 16 banks per vault, with a 4 KB row holding 32 consecutive
lines of the same (vault, bank):

    addr bits:  [0:7) line offset | [7:11) vault | [11:15) bank
                | [15:20) column (line-in-row) | [20:) row
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import LINE_SIZE, PAGE_SIZE, SystemConfig

_U64 = np.uint64


def _splitmix64_np(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over uint64 arrays."""
    z = x.astype(_U64, copy=True)
    with np.errstate(over="ignore"):
        z = (z + _U64(0x9E3779B97F4A7C15))
        z = (z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)
        z = z ^ (z >> _U64(31))
    return z


def _splitmix64(x: int) -> int:
    z = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


@dataclass(frozen=True)
class Location:
    """Decoded physical location of a cache line."""

    hmc: int
    vault: int
    bank: int
    row: int


class AddressMap:
    """Address decoding for a multi-stack system.

    The within-device geometry defaults to the HMC stack layout; memory
    backends with a different internal organization (e.g. the CXL
    expander's DDR channels) pass explicit ``num_vaults`` /
    ``banks_per_vault`` / ``row_bytes`` overrides.  The page->device
    interleaving is geometry-independent so placement studies compare
    like-for-like across substrates.
    """

    def __init__(self, cfg: SystemConfig, *,
                 num_vaults: int | None = None,
                 banks_per_vault: int | None = None,
                 row_bytes: int | None = None) -> None:
        self.cfg = cfg
        self.num_hmcs = cfg.num_hmcs
        self.num_vaults = num_vaults if num_vaults is not None \
            else cfg.hmc.num_vaults
        self.banks_per_vault = banks_per_vault if banks_per_vault is not None \
            else cfg.hmc.banks_per_vault
        self.lines_per_row = (row_bytes if row_bytes is not None
                              else cfg.hmc.row_bytes) // LINE_SIZE
        self.seed = cfg.seed
        # The working sets span a few thousand pages; memoizing the hash
        # turns the per-access page lookup into a dict hit.
        self._page_cache: dict[int, int] = {}
        # Bit widths (vault/bank counts are powers of two in the HMC spec).
        self._vault_bits = self.num_vaults.bit_length() - 1
        self._bank_bits = self.banks_per_vault.bit_length() - 1
        self._col_bits = self.lines_per_row.bit_length() - 1
        if 2 ** self._vault_bits != self.num_vaults:
            raise ValueError("num_vaults must be a power of two")
        if 2 ** self._bank_bits != self.banks_per_vault:
            raise ValueError("banks_per_vault must be a power of two")

    # -- page -> HMC --------------------------------------------------------

    def hmc_of(self, addr: int) -> int:
        """HMC holding ``addr`` (random 4 KB page interleaving)."""
        page = addr // PAGE_SIZE
        cached = self._page_cache.get(page)
        if cached is not None:
            return cached
        hmc = _splitmix64(page ^ (self.seed << 32)) % self.num_hmcs
        self._page_cache[page] = hmc
        return hmc

    def hmc_of_lines(self, line_addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`hmc_of` over an array of line addresses."""
        pages = (line_addrs.astype(_U64) * _U64(LINE_SIZE)) // _U64(PAGE_SIZE)
        mixed = _splitmix64_np(pages ^ (_U64(self.seed) << _U64(32)))
        return (mixed % _U64(self.num_hmcs)).astype(np.int64)

    # -- within-stack decode ------------------------------------------------

    def decode_line(self, line_addr: int) -> Location:
        """Decode a line address (``addr // LINE_SIZE``) to its location."""
        vault = line_addr & (self.num_vaults - 1)
        rest = line_addr >> self._vault_bits
        bank = rest & (self.banks_per_vault - 1)
        rest >>= self._bank_bits
        row = rest >> self._col_bits
        hmc = self.hmc_of(line_addr * LINE_SIZE)
        return Location(hmc=hmc, vault=vault, bank=bank, row=row)

    def decode(self, addr: int) -> Location:
        return self.decode_line(addr // LINE_SIZE)

    def vault_of_line(self, line_addr: int) -> int:
        return line_addr & (self.num_vaults - 1)

    def bank_row_of_line(self, line_addr: int) -> tuple[int, int]:
        rest = line_addr >> self._vault_bits
        bank = rest & (self.banks_per_vault - 1)
        row = (rest >> self._bank_bits) >> self._col_bits
        return bank, row
