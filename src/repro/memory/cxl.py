"""One CXL memory expander: DDR channel controllers behind a CXL port.

The expander models the CXL-NDP design point (see PAPERS.md): a type-3
memory device whose controller fronts a handful of DDR channels and
hosts the NDP unit next to them.  Three structural departures from the
HMC stack (docs/backends.md has the full table):

* **no internal NoC** -- requests go port -> channel controller
  directly, so nothing is charged to the ``intra_hmc`` counter and the
  traversal cost is the flat :attr:`~repro.config.CXLConfig.port_latency`
  instead of the HMC's logic-layer hop;
* **asymmetric host link** -- the CXL.mem link the backend installs via
  ``gpu_link_kwargs`` (handled in :mod:`repro.network.fabric`, not
  here);
* **expander-side NDP queue** -- a shallower device command queue
  (``cfg.cxl.ndp_cmd_queue``) surfaced through the backend's
  ``ndp_cmd_entries`` hook.

The class mirrors :class:`~repro.memory.hmc.HMCStack`'s interface
exactly -- ``access_line`` / ``vaults`` / ``nsu`` / ``stats`` /
``queue_occupancy`` / ``metrics_snapshot`` /
``peak_bandwidth_bytes_per_cycle`` -- so the system, the GPU memory
path, and the fault-arming loop treat both substrates uniformly.  The
``vaults`` attribute holds the *channel* controllers (same
:class:`~repro.memory.vault.VaultController` machinery, DDR5-class
timing), which keeps the ``vault_read`` fault site armable on this
substrate too.
"""

from __future__ import annotations

from typing import Callable

from repro.config import LINE_SIZE, SystemConfig
from repro.memory.address import AddressMap
from repro.memory.dram import DRAMTimingSM
from repro.memory.vault import DRAMRequest, DRAMStats, VaultController, make_vaults
from repro.sim.engine import Engine, LinkCounters


class CXLExpander:
    """DDR channels + CXL front-end controller for one expander."""

    def __init__(self, engine: Engine, cfg: SystemConfig, hmc_id: int,
                 amap: AddressMap, counters: LinkCounters) -> None:
        self.engine = engine
        self.cfg = cfg
        self.hmc_id = hmc_id
        self.amap = amap
        self.counters = counters
        self.stats = DRAMStats()
        timing = DRAMTimingSM.from_config(
            cfg.cxl.timing, cfg.gpu.sm_clock_mhz,
            cfg.cxl.channel_bus_bytes_per_dram_cycle)
        self.timing = timing
        self.vaults: list[VaultController] = make_vaults(
            engine, timing, cfg.cxl.num_channels, cfg.cxl.banks_per_channel,
            self.stats, cfg.cxl.channel_queue_size, f"cxl{hmc_id}")
        # Attached by the system after construction:
        self.nsu = None

    # -- DRAM access --------------------------------------------------------

    def access_line(self, line_addr: int, is_write: bool,
                    on_done: Callable[[DRAMRequest], None],
                    meta: object = None,
                    noc_bytes: int = LINE_SIZE,
                    on_lost: Callable[[DRAMRequest], None] | None = None,
                    ) -> None:
        """Access one cache line in this expander's DRAM.

        Same contract as :meth:`repro.memory.hmc.HMCStack.access_line`;
        ``noc_bytes`` is accepted for interface compatibility but never
        charged -- there is no internal NoC on this substrate.
        """
        if self.amap.hmc_of(line_addr * LINE_SIZE) != self.hmc_id:
            raise ValueError(
                f"line {line_addr:#x} does not belong to expander "
                f"{self.hmc_id}")
        channel_idx = self.amap.vault_of_line(line_addr)
        bank, row = self.amap.bank_row_of_line(line_addr)
        req = DRAMRequest(line_addr=line_addr, is_write=is_write,
                          on_done=on_done, bank=bank, row=row,
                          extra_latency=self.cfg.cxl.port_latency, meta=meta,
                          on_lost=on_lost)
        self.vaults[channel_idx].submit(req)

    # -- convenience --------------------------------------------------------

    @property
    def queue_occupancy(self) -> int:
        return sum(len(v.queue) for v in self.vaults)

    def metrics_snapshot(self) -> dict:
        """Counters/gauges published into the metrics registry."""
        snap = self.stats.metrics_snapshot()
        snap["queue_occupancy"] = self.queue_occupancy
        snap["max_vault_queue"] = max(
            (len(v.queue) for v in self.vaults), default=0)
        return snap

    def peak_bandwidth_bytes_per_cycle(self) -> float:
        """Aggregate channel-bus bandwidth (the expander's peak DRAM
        bandwidth -- fewer, wider channels than the HMC's 16 vaults)."""
        per_channel = LINE_SIZE / max(self.timing.tCCD, self.timing.burst)
        return per_channel * len(self.vaults)
