"""One HMC stack: 16 vault controllers behind a logic-layer NoC.

The logic layer receives packets from the stack's off-chip links (from the
GPU or from peer stacks over the memory network), routes memory requests to
the owning vault, and forwards responses.  The intra-HMC NoC hop is modelled
as a small fixed latency plus byte accounting (it is generously provisioned
in the HMC and never the bottleneck, but its traffic costs energy --
Figure 10 has an "Intra-HMC NoC" component).
"""

from __future__ import annotations

from typing import Callable

from repro.config import LINE_SIZE, SystemConfig
from repro.memory.address import AddressMap
from repro.memory.dram import DRAMTimingSM
from repro.memory.vault import (DRAMRequest, DRAMRequestPool, DRAMStats,
                                VaultController, make_vaults)
from repro.sim.engine import Engine, LinkCounters

#: Fixed logic-layer NoC traversal latency (SM cycles).
NOC_LATENCY = 4


class HMCStack:
    """Vaults + logic-layer routing for one stack."""

    def __init__(self, engine: Engine, cfg: SystemConfig, hmc_id: int,
                 amap: AddressMap, counters: LinkCounters) -> None:
        self.engine = engine
        self.cfg = cfg
        self.hmc_id = hmc_id
        self.amap = amap
        self.counters = counters
        self.stats = DRAMStats()
        timing = DRAMTimingSM.from_config(
            cfg.hmc.timing, cfg.gpu.sm_clock_mhz,
            cfg.hmc.vault_bus_bytes_per_dram_cycle)
        self.timing = timing
        # Request records are pool-recycled per stack (never shared across
        # engines); vaults return them after the completion callback.
        self.pool = DRAMRequestPool()
        self.vaults: list[VaultController] = make_vaults(
            engine, timing, cfg.hmc.num_vaults, cfg.hmc.banks_per_vault,
            self.stats, cfg.hmc.vault_queue_size, f"hmc{hmc_id}",
            pool=self.pool)
        # Attached by the system after construction:
        self.nsu = None

    # -- DRAM access --------------------------------------------------------

    def access_line(self, line_addr: int, is_write: bool,
                    on_done: Callable[[DRAMRequest], None],
                    meta: object = None,
                    noc_bytes: int = LINE_SIZE,
                    on_lost: Callable[[DRAMRequest], None] | None = None,
                    ) -> None:
        """Access one cache line in this stack's DRAM.

        ``on_done`` fires when the data is available at the logic layer
        (read) or written (write).  ``noc_bytes`` is charged to the
        intra-HMC NoC for the request+response traversal.  ``on_lost``
        fires instead when an armed ``vault_read`` fault swallows the
        read response (see :class:`~repro.memory.vault.DRAMRequest`).
        """
        if self.amap.hmc_of(line_addr * LINE_SIZE) != self.hmc_id:
            raise ValueError(
                f"line {line_addr:#x} does not belong to HMC {self.hmc_id}")
        vault_idx = self.amap.vault_of_line(line_addr)
        bank, row = self.amap.bank_row_of_line(line_addr)
        self.counters.add("intra_hmc", noc_bytes)
        req = self.pool.acquire(line_addr, is_write, on_done,
                                bank=bank, row=row,
                                extra_latency=NOC_LATENCY, meta=meta,
                                on_lost=on_lost)
        self.vaults[vault_idx].submit(req)

    # -- convenience --------------------------------------------------------

    @property
    def queue_occupancy(self) -> int:
        return sum(len(v.queue) for v in self.vaults)

    def metrics_snapshot(self) -> dict:
        """Counters/gauges published into the metrics registry."""
        snap = self.stats.metrics_snapshot()
        snap["queue_occupancy"] = self.queue_occupancy
        snap["max_vault_queue"] = max(
            (len(v.queue) for v in self.vaults), default=0)
        snap["req_pool_free"] = self.pool.free
        snap["req_pool_created"] = self.pool.created
        return snap

    def peak_bandwidth_bytes_per_cycle(self) -> float:
        """Aggregate vault-bus bandwidth (the stack's peak DRAM bandwidth)."""
        per_vault = LINE_SIZE / max(self.timing.tCCD, self.timing.burst)
        return per_vault * len(self.vaults)
