"""Pluggable memory-substrate backends (ROADMAP item 4).

The simulator used to hard-wire one substrate: ``sim/system.py`` built
:class:`~repro.memory.hmc.HMCStack` objects directly and the controller
assumed their logic-layer NoC.  This module factors everything
substrate-specific behind one :class:`MemoryBackend` protocol so
alternative NDP substrates plug in without touching the system, the
controller, or the GPU memory path:

* **address map** -- how lines spread across devices and their internal
  channels (:meth:`MemoryBackend.make_address_map`);
* **device build** -- the per-device stack objects, each honouring the
  de-facto stack interface (``access_line`` / ``queue_occupancy`` /
  ``metrics_snapshot`` / ``stats`` / ``vaults`` / ``nsu``);
* **link geometry** -- host-link bandwidth/latency per direction and the
  inter-device fabric rate (:meth:`gpu_link_kwargs`,
  :meth:`mem_link_bpc`);
* **NDP hooks** -- target selection for offload blocks
  (:meth:`select_target`, dispatching the paper's first-touch policy,
  the Figure 5 oracle, and the CODA co-location variant), the
  device-side command-queue depth (:meth:`ndp_cmd_entries`) and the
  latency of a device-local RDF response hop
  (:meth:`local_response_latency`);
* **fault sites** -- the controllers a :class:`~repro.faults.FaultPlan`
  arms (:meth:`fault_controllers`);
* **energy accounting** -- the off-chip link energy constant
  (:meth:`link_energy_nj_per_byte`) and whether an intra-device NoC
  exists to burn bytes at all (:attr:`internal_noc`).

``BACKENDS`` maps :data:`repro.config.BACKEND_NAMES` to singleton
backend objects; :func:`resolve_backend` is the one lookup everybody
uses.  The ``hmc`` backend reproduces the pre-refactor wiring exactly --
the pinned digest suite holds bit-identically -- while ``cxl`` is a
genuinely different substrate (see docs/backends.md for the departure
table and how to add a third).
"""

from __future__ import annotations

from repro.config import BACKEND_NAMES, SystemConfig
from repro.core.target_select import (coda_target, first_instr_target,
                                      optimal_target)
from repro.memory.address import AddressMap

__all__ = ["BACKENDS", "CXLBackend", "HMCBackend", "MemoryBackend",
           "backend_names", "resolve_backend"]


class MemoryBackend:
    """Base class / protocol for one memory substrate.

    Subclasses override the hooks below; the defaults implement the
    HMC behaviour so a new backend only states its departures.  Backends
    are stateless singletons -- everything per-run lives in the objects
    they build.
    """

    #: Registry name (matches a :data:`repro.config.BACKEND_NAMES` entry).
    name: str = ""
    #: True when devices route local traffic over an internal NoC whose
    #: bytes are counted (the Figure 10 "Intra-HMC NoC" component).
    internal_noc: bool = True

    # -- construction hooks --------------------------------------------------

    def validate(self, cfg: SystemConfig) -> None:
        """Raise ``ValueError`` for a config this substrate cannot build."""

    def make_address_map(self, cfg: SystemConfig) -> AddressMap:
        return AddressMap(cfg)

    def build_stacks(self, engine, cfg: SystemConfig, amap: AddressMap,
                     counters) -> list:
        raise NotImplementedError

    def gpu_link_kwargs(self, cfg: SystemConfig) -> dict:
        """Keyword overrides for :class:`~repro.network.fabric.GPULinks`
        (empty = the symmetric Table 2 defaults)."""
        return {}

    def mem_link_bpc(self, cfg: SystemConfig) -> float | None:
        """Inter-device fabric bandwidth in bytes/SM-cycle per link
        direction (None = the HMC serdes default)."""
        return None

    # -- NDP hooks -----------------------------------------------------------

    def select_target(self, cfg: SystemConfig, item, amap: AddressMap) -> int:
        """The target device for one offload block instance, honouring
        ``cfg.ndp.target_policy`` ("first" / "optimal" / "coda")."""
        policy = cfg.ndp.target_policy
        if policy == "optimal":
            return optimal_target(item.mem_accesses, amap)
        if policy == "coda":
            return coda_target(item.mem_accesses, item.block, amap)
        return first_instr_target(item.mem_accesses[0], amap)

    def ndp_cmd_entries(self, cfg: SystemConfig) -> int:
        """Device-side NDP command-queue credits per device."""
        return cfg.nsu.cmd_buffer_entries

    def local_response_latency(self, cfg: SystemConfig) -> int:
        """Cycles for an RDF response whose owner == target (the
        device-local return hop)."""
        return 4

    # -- fault / energy hooks ------------------------------------------------

    def fault_controllers(self, stacks) -> list:
        """The DRAM-side controllers a fault plan arms, in a
        deterministic order (the ``vault_read`` site lives here)."""
        return [vault for stack in stacks for vault in stack.vaults]

    def link_energy_nj_per_byte(self, params) -> float:
        """Off-chip link energy constant for this substrate's links."""
        return params.offchip_link_nj_per_byte


class HMCBackend(MemoryBackend):
    """The paper's substrate: HMC stacks with a logic-layer NoC, a
    symmetric serdes host link per stack, and the NSU's own command
    buffer as the device queue.  Every hook returns exactly what the
    pre-backend simulator hard-coded, so ``backend="hmc"`` runs are
    bit-identical to the seed digests."""

    name = "hmc"
    internal_noc = True

    def build_stacks(self, engine, cfg: SystemConfig, amap: AddressMap,
                     counters) -> list:
        from repro.memory.hmc import HMCStack
        return [HMCStack(engine, cfg, i, amap, counters)
                for i in range(cfg.num_hmcs)]


class CXLBackend(MemoryBackend):
    """CXL memory expanders: asymmetric host links, no intra-device NoC,
    DDR channel controllers, and an expander-side NDP command queue.
    See :class:`repro.config.CXLConfig` and docs/backends.md."""

    name = "cxl"
    internal_noc = False

    def validate(self, cfg: SystemConfig) -> None:
        x = cfg.cxl
        if x.num_channels & (x.num_channels - 1):
            raise ValueError("cxl.num_channels must be a power of two")
        if x.banks_per_channel & (x.banks_per_channel - 1):
            raise ValueError("cxl.banks_per_channel must be a power of two")

    def make_address_map(self, cfg: SystemConfig) -> AddressMap:
        # Same random-page device interleaving (the paper's unrestricted
        # placement survives the substrate swap); channel/bank/row decode
        # follows the expander's DDR geometry instead of the HMC's.
        return AddressMap(cfg, num_vaults=cfg.cxl.num_channels,
                          banks_per_vault=cfg.cxl.banks_per_channel,
                          row_bytes=cfg.cxl.row_bytes)

    def build_stacks(self, engine, cfg: SystemConfig, amap: AddressMap,
                     counters) -> list:
        from repro.memory.cxl import CXLExpander
        return [CXLExpander(engine, cfg, i, amap, counters)
                for i in range(cfg.num_hmcs)]

    def gpu_link_kwargs(self, cfg: SystemConfig) -> dict:
        down, up = cfg.cxl.host_link_bytes_per_sm_cycle(
            cfg.gpu.sm_clock_mhz)
        return {"down_bpc": down, "up_bpc": up,
                "down_latency": cfg.cxl.link_latency_down,
                "up_latency": cfg.cxl.link_latency_up}

    def mem_link_bpc(self, cfg: SystemConfig) -> float:
        return cfg.cxl.fabric_bytes_per_sm_cycle(cfg.gpu.sm_clock_mhz)

    def ndp_cmd_entries(self, cfg: SystemConfig) -> int:
        return cfg.cxl.ndp_cmd_queue

    def local_response_latency(self, cfg: SystemConfig) -> int:
        # No NoC to traverse: the expander controller hop only.
        return cfg.cxl.port_latency

    def link_energy_nj_per_byte(self, params) -> float:
        return params.cxl_link_nj_per_byte


#: The backend registry; keys mirror :data:`repro.config.BACKEND_NAMES`.
BACKENDS: dict[str, MemoryBackend] = {
    "hmc": HMCBackend(),
    "cxl": CXLBackend(),
}

assert tuple(BACKENDS) == BACKEND_NAMES, \
    "BACKENDS registry drifted from config.BACKEND_NAMES"


def backend_names() -> tuple[str, ...]:
    return tuple(BACKENDS)


def resolve_backend(name: str | MemoryBackend | None) -> MemoryBackend:
    """Resolve a backend name (or pass an instance through; None means
    the default ``hmc``).  Raises :class:`KeyError` for unknown names."""
    if isinstance(name, MemoryBackend):
        return name
    if name is None:
        return BACKENDS["hmc"]
    try:
        return BACKENDS[name]
    except KeyError:
        raise KeyError(f"unknown memory backend {name!r}; choose from "
                       f"{', '.join(BACKENDS)}") from None
