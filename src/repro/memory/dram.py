"""DRAM bank timing in SM-cycle units.

The Table 2 timing parameters are specified in DRAM cycles (tCK = 1.5 ns);
this module converts them once into SM cycles (1.4286 ns at 700 MHz) and
tracks per-bank row-buffer state.  The model is the standard simplified
open-page model:

* row hit       : tCL + burst
* row conflict  : tRP + tRCD + tCL + burst   (precharge the open row first)
* row closed    : tRCD + tCL + burst         (bank idle, just activate)

Writes replace tCL with the write latency and hold the bank for tWR after
the burst.  tRAS lower-bounds the activate-to-precharge window; tCCD gates
back-to-back column commands on the shared vault data bus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import DRAMTiming, LINE_SIZE


@dataclass(frozen=True, slots=True)
class DRAMTimingSM:
    """Table 2 timing converted to integer SM cycles."""

    tRP: int
    tRCD: int
    tCL: int
    tWR: int
    tRAS: int
    tCCD: int
    burst: int   # cycles to move one cache line over the vault bus
    tREFI: int = 0   # refresh interval (0 = refresh disabled)
    tRFC: int = 0    # refresh cycle time (all banks blocked)

    @classmethod
    def from_config(cls, timing: DRAMTiming, sm_clock_mhz: float,
                    bus_bytes_per_dram_cycle: int) -> "DRAMTimingSM":
        scale = timing.tck_ns * sm_clock_mhz * 1e-3  # SM cycles per DRAM cycle
        conv = lambda c: max(1, math.ceil(c * scale))
        burst_dram = math.ceil(LINE_SIZE / bus_bytes_per_dram_cycle)
        return cls(
            tRP=conv(timing.tRP),
            tRCD=conv(timing.tRCD),
            tCL=conv(timing.tCL),
            tWR=conv(timing.tWR),
            tRAS=conv(timing.tRAS),
            tCCD=conv(timing.tCCD),
            burst=conv(burst_dram),
            tREFI=conv(timing.tREFI) if timing.tREFI else 0,
            tRFC=conv(timing.tRFC) if timing.tRFC else 0,
        )


class BankState:
    """Row-buffer and busy-horizon state of one DRAM bank."""

    __slots__ = ("open_row", "busy_until", "activated_at")

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.busy_until: int = 0
        self.activated_at: int = -(10 ** 9)

    def is_hit(self, row: int) -> bool:
        return self.open_row == row

    def access(self, row: int, is_write: bool, now: int,
               t: DRAMTimingSM) -> tuple[int, bool]:
        """Perform an access; returns (data_ready_cycle, activated).

        The caller guarantees ``now >= busy_until``.
        """
        start = max(now, self.busy_until)
        activated = False
        if self.open_row == row:
            latency = t.tCL
        else:
            if self.open_row is not None:
                # Respect tRAS before the implicit precharge.
                start = max(start, self.activated_at + t.tRAS)
                latency = t.tRP + t.tRCD + t.tCL
            else:
                latency = t.tRCD + t.tCL
            activated = True
            self.activated_at = start + (t.tRP if self.open_row is not None else 0)
            self.open_row = row
        ready = start + latency + t.burst
        recovery = t.tWR if is_write else 0
        self.busy_until = ready + recovery
        return ready, activated
