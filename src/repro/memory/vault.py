"""Vault controller with an FR-FCFS scheduler (Table 2: "FR-FCFS, vault
request queue size: 64").

Each of the 16 vaults of a stack owns 16 banks and a private data bus.  The
controller is event-driven: whenever a request arrives or a service slot
frees up, it picks the oldest row-hit request whose bank is free, falling
back to the oldest request with a free bank (first-ready, first-come
first-served).  The vault data bus serializes line bursts (tCCD/burst
spacing), which is what caps a stack at its peak DRAM bandwidth.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import Callable

try:                              # vectorized FR-FCFS scan (optional)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

from repro.config import LINE_SIZE
from repro.memory.dram import BankState, DRAMTimingSM
from repro.sim.engine import Engine

#: Window size at which the numpy FR-FCFS scan beats the Python loop.
#: Below this the per-call array setup dominates; the scalar scan stays.
VEC_PICK_THRESHOLD = 24


@dataclass
class DRAMStats:
    """Aggregated DRAM event counts (feeds performance + energy models)."""

    activations: int = 0
    reads: int = 0            # line reads
    writes: int = 0           # line writes
    row_hits: int = 0
    row_misses: int = 0
    queue_peak: int = 0
    refreshes: int = 0

    @property
    def read_bytes(self) -> int:
        return self.reads * LINE_SIZE

    @property
    def write_bytes(self) -> int:
        return self.writes * LINE_SIZE

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def metrics_snapshot(self) -> dict:
        """Counters published into the metrics registry."""
        return {"reads": self.reads, "writes": self.writes,
                "activations": self.activations,
                "row_hits": self.row_hits, "row_misses": self.row_misses,
                "queue_peak": self.queue_peak, "refreshes": self.refreshes}


@dataclass(slots=True)
class DRAMRequest:
    """One line-granularity DRAM access.

    Slotted and pool-recycled: the stack's ingress path acquires records
    from a :class:`DRAMRequestPool` and the vault returns them after the
    completion callback fires.  ``pooled`` marks pool-owned records;
    directly-constructed ones (tests, ad-hoc callers) are never recycled.
    """

    line_addr: int
    is_write: bool
    on_done: Callable[["DRAMRequest"], None] | None
    arrival: int = 0
    bank: int = 0
    row: int = 0
    extra_latency: int = 0   # logic-layer NoC traversal after the access
    meta: object = None
    on_lost: Callable[["DRAMRequest"], None] | None = None  # loss notify
    pooled: bool = False

    def reset(self) -> None:
        """Restore construction defaults, so a recycled record is
        field-for-field equal to ``DRAMRequest(0, False, None)`` (the
        recycle invariant, docs/performance.md)."""
        self.line_addr = 0
        self.is_write = False
        self.on_done = None
        self.arrival = 0
        self.bank = 0
        self.row = 0
        self.extra_latency = 0
        self.meta = None
        self.on_lost = None
        self.pooled = False


class DRAMRequestPool:
    """Free list of recycled :class:`DRAMRequest` records.

    One pool per stack (never shared across engines -- serve shards run
    concurrent simulations).  ``release`` resets the record before it
    re-enters the free list and rejects records it does not own, so a
    double-free on a recovery path fails loudly instead of aliasing two
    in-flight requests onto one record.
    """

    __slots__ = ("_free", "created", "reused", "released")

    def __init__(self) -> None:
        self._free: list[DRAMRequest] = []
        self.created = 0
        self.reused = 0
        self.released = 0

    def acquire(self, line_addr: int, is_write: bool,
                on_done: Callable[["DRAMRequest"], None], *,
                bank: int = 0, row: int = 0, extra_latency: int = 0,
                meta: object = None,
                on_lost: Callable[["DRAMRequest"], None] | None = None,
                ) -> DRAMRequest:
        free = self._free
        if free:
            req = free.pop()
            self.reused += 1
            req.line_addr = line_addr
            req.is_write = is_write
            req.on_done = on_done
            req.bank = bank
            req.row = row
            req.extra_latency = extra_latency
            req.meta = meta
            req.on_lost = on_lost
            req.pooled = True
            return req
        self.created += 1
        return DRAMRequest(line_addr, is_write, on_done, bank=bank, row=row,
                           extra_latency=extra_latency, meta=meta,
                           on_lost=on_lost, pooled=True)

    def release(self, req: DRAMRequest) -> None:
        if not req.pooled:
            raise ValueError(
                "release of a request the pool does not own "
                "(double-free, or a directly-constructed record)")
        req.reset()
        self.released += 1
        self._free.append(req)

    @property
    def free(self) -> int:
        return len(self._free)

    def metrics_snapshot(self) -> dict:
        return {"created": self.created, "reused": self.reused,
                "released": self.released, "free": self.free}


class VaultController:
    """One vault: request queue + FR-FCFS bank scheduler + data bus."""

    def __init__(self, engine: Engine, timing: DRAMTimingSM,
                 num_banks: int, stats: DRAMStats,
                 queue_size: int = 64, name: str = "vault",
                 pool: DRAMRequestPool | None = None) -> None:
        self.engine = engine
        self.timing = timing
        self.banks = [BankState() for _ in range(num_banks)]
        self.pool = pool
        self.stats = stats
        self.queue: deque[DRAMRequest] = deque()
        self.queue_size = queue_size
        self.name = name
        self.bus_free_at = 0
        self.faults = None   # armed by the system when a plan is active
        self._wakeup_scheduled_at: int | None = None
        # Refresh (tREFI/tRFC): all banks stall periodically; closed-page
        # after refresh (the refresh cycle precharges every bank).
        self._next_refresh = timing.tREFI if timing.tREFI else None

    # -- ingress ------------------------------------------------------------

    def submit(self, req: DRAMRequest) -> None:
        """Accept a request.

        The paper's 64-entry vault queue applies backpressure upstream; we
        accept unconditionally but record peak occupancy so saturation is
        visible in the results (the finite NDP buffers, which the paper's
        correctness argument depends on, are modelled exactly in
        ``repro.core``).
        """
        req.arrival = self.engine.now
        self.queue.append(req)
        self.stats.queue_peak = max(self.stats.queue_peak, len(self.queue))
        self._schedule_wakeup(self.engine.now)

    # -- scheduling ---------------------------------------------------------

    def _schedule_wakeup(self, time: int) -> None:
        time = max(time, self.engine.now)
        if (self._wakeup_scheduled_at is not None
                and self._wakeup_scheduled_at <= time
                and self._wakeup_scheduled_at >= self.engine.now):
            return
        self._wakeup_scheduled_at = time
        self.engine.at(time, self._service)

    def _pick_index(self, now: int) -> tuple[int | None, int]:
        """FR-FCFS over the scheduler window: oldest row-hit with a free
        bank, else oldest free-bank request.

        Only the first ``queue_size`` requests are visible to the
        scheduler -- the physical 64-entry vault queue of Table 2; later
        arrivals wait their turn (bounded-cost, age-ordered).

        Returns ``(index, horizon)``: index is None when every windowed
        bank is busy, in which case ``horizon`` is the earliest cycle a
        windowed bank frees up.

        Deep windows run a vectorized scan; shallow ones keep the Python
        loop.  Both make the identical decision (row-hit / free-bank /
        horizon all resolve by queue age), so the dispatch threshold can
        never change a simulation result -- pinned by the randomized
        equivalence test in ``tests/test_memory.py``.
        """
        n = len(self.queue)
        if n > self.queue_size:
            n = self.queue_size
        if _np is not None and n >= VEC_PICK_THRESHOLD:
            return self._pick_index_vec(now, n)
        return self._pick_index_scalar(now, n)

    def _pick_index_scalar(self, now: int, n: int) -> tuple[int | None, int]:
        fallback = None
        horizon = 1 << 62
        banks = self.banks
        for idx, req in enumerate(islice(self.queue, n)):
            bank = banks[req.bank]
            busy = bank.busy_until
            if busy > now:
                if busy < horizon:
                    horizon = busy
                continue
            if bank.open_row == req.row:
                return idx, now
            if fallback is None:
                fallback = idx
        if fallback is not None:
            return fallback, now
        return None, horizon

    def _pick_index_vec(self, now: int, n: int) -> tuple[int | None, int]:
        """Price the whole scheduler window in one numpy pass.

        Bank state is gathered fresh from the ``BankState`` objects every
        call (16 banks), so direct mutation of ``self.banks`` -- tests,
        refresh, fault paths -- is always observed.  ``argmax`` on a bool
        array yields the first True, i.e. the oldest matching request,
        which is exactly the scalar scan's age order.
        """
        banks = self.banks
        nb = len(banks)
        b_busy = _np.empty(nb, dtype=_np.int64)
        b_row = _np.empty(nb, dtype=_np.int64)
        for i, bank in enumerate(banks):
            b_busy[i] = bank.busy_until
            row = bank.open_row
            b_row[i] = -1 if row is None else row   # rows are non-negative
        req_bank = _np.empty(n, dtype=_np.intp)
        req_row = _np.empty(n, dtype=_np.int64)
        for i, req in enumerate(islice(self.queue, n)):
            req_bank[i] = req.bank
            req_row[i] = req.row
        busy = b_busy[req_bank]
        free = busy <= now
        if not free.any():
            return None, int(busy.min())
        hits = free & (b_row[req_bank] == req_row)
        if hits.any():
            return int(hits.argmax()), now
        return int(free.argmax()), now

    def _take(self, idx: int) -> DRAMRequest:
        q = self.queue
        if idx == 0:
            return q.popleft()
        q.rotate(-idx)
        req = q.popleft()
        q.rotate(idx)
        return req

    def _refresh_due(self, now: int) -> bool:
        """Perform a refresh when its interval elapsed.  Returns True if
        the vault is refreshing (caller must back off until it ends)."""
        if self._next_refresh is None or now < self._next_refresh:
            return False
        end = now + self.timing.tRFC
        for bank in self.banks:
            bank.busy_until = max(bank.busy_until, end)
            bank.open_row = None          # refresh precharges all banks
        self.stats.refreshes += 1
        self._next_refresh += self.timing.tREFI
        # Refreshes that would have happened while the vault sat idle
        # already fit in the idle time; don't replay the backlog.
        if self._next_refresh <= now:
            self._next_refresh = now + self.timing.tREFI
        return True

    def _service(self) -> None:
        self._wakeup_scheduled_at = None
        now = self.engine.now
        if self._refresh_due(now):
            if self.queue:
                self._schedule_wakeup(now + self.timing.tRFC)
            return
        while self.queue:
            if self.bus_free_at > now:
                self._schedule_wakeup(self.bus_free_at)
                return
            idx, horizon = self._pick_index(now)
            if idx is None:
                self._schedule_wakeup(max(horizon, now + 1))
                return
            req = self._take(idx)
            bank = self.banks[req.bank]
            ready, activated = bank.access(req.row, req.is_write, now,
                                           self.timing)
            # Data bus occupied for the burst around the ready time.
            self.bus_free_at = max(self.bus_free_at, now) + max(
                self.timing.tCCD, self.timing.burst)
            if activated:
                self.stats.activations += 1
                self.stats.row_misses += 1
            else:
                self.stats.row_hits += 1
            if req.is_write:
                self.stats.writes += 1
            else:
                self.stats.reads += 1
            if (self.faults is not None and not req.is_write
                    and self.faults.decide("vault_read") is not None):
                # Read-response loss: the access happened (timing, stats,
                # row state) but its response never reaches the requester.
                # Requesters that registered ``on_lost`` (the recoverable
                # baseline fill path) learn of the loss at the cycle the
                # response would have arrived and may reissue; the rest
                # rely on their own watchdogs.
                if req.on_lost is not None:
                    self.engine.call_at(ready + req.extra_latency,
                                        self._lost, req)
                elif req.pooled:
                    # Nobody will hear about this request again; recycle.
                    self.pool.release(req)
                continue
            self.engine.call_at(ready + req.extra_latency,
                                self._complete, req)
            now = self.engine.now  # unchanged; loop to try the next request
        # queue drained; nothing to schedule

    # -- completion ----------------------------------------------------------

    def _complete(self, req: DRAMRequest) -> None:
        req.on_done(req)
        if req.pooled:
            self.pool.release(req)

    def _lost(self, req: DRAMRequest) -> None:
        req.on_lost(req)
        if req.pooled:
            self.pool.release(req)


def make_vaults(engine: Engine, timing: DRAMTimingSM, num_vaults: int,
                num_banks: int, stats: DRAMStats, queue_size: int,
                name_prefix: str,
                pool: DRAMRequestPool | None = None) -> list[VaultController]:
    return [
        VaultController(engine, timing, num_banks, stats, queue_size,
                        name=f"{name_prefix}.v{v}", pool=pool)
        for v in range(num_vaults)
    ]
