"""HMC-like 3D-stacked memory substrate: address mapping, DRAM timing,
FR-FCFS vault controllers, and the stack container."""

from repro.memory.address import AddressMap, Location
from repro.memory.dram import BankState, DRAMTimingSM
from repro.memory.vault import DRAMRequest, VaultController, DRAMStats
from repro.memory.hmc import HMCStack

__all__ = [
    "AddressMap",
    "Location",
    "BankState",
    "DRAMTimingSM",
    "DRAMRequest",
    "VaultController",
    "DRAMStats",
    "HMCStack",
]
