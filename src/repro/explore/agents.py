"""Search agents: pluggable candidate proposers behind one contract.

An agent is anything with ``propose(history) -> [point]`` -- the driver
(:mod:`repro.explore.driver`) owns evaluation, validity enforcement and
dedup; the agent only decides *where to look next*.  Three built-ins:

* ``random``    -- uniform rejection-sampled exploration, the ArchGym
  baseline every other agent must beat.
* ``hillclimb`` -- the paper's Algorithm 1 (Section 7.2) generalized
  from one scalar offload ratio to the whole knob vector: batched
  steepest-ascent over single-knob neighbors, with seeded random
  restarts at local optima.  ``docs/paper-mapping.md`` spells out
  exactly where this departs from the paper.
* ``genetic``   -- tournament selection + uniform knob crossover +
  per-knob mutation, the classic architecture-DSE workhorse.

Determinism contract: every agent draws only from its own
``np.random.default_rng((seed, crc32(name)))`` stream, so a fixed seed
reproduces the exact proposal sequence -- which is what makes
trajectories replayable and ``--resume`` bit-identical (see
``docs/design-space.md``).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.explore.space import SearchSpace

__all__ = ["AGENTS", "Agent", "Evaluation", "GeneticAgent", "HillClimbAgent",
           "History", "RandomAgent", "make_agent"]


@dataclass
class Evaluation:
    """One scored candidate: the point, what it materialized to, and the
    fitness the driver computed (``math.inf`` for a fatal cell)."""

    gen: int
    point: dict
    key: tuple
    config_name: str
    fitness: float
    cycles: int | None = None
    energy_nj: float | None = None
    outcome: str = "ok"              # "ok" | "fatal"

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"


class History:
    """Everything evaluated so far, in evaluation order, with O(1)
    point-key lookup.  Agents receive the same instance every
    generation; they must treat it as read-only."""

    def __init__(self) -> None:
        self.evaluations: list[Evaluation] = []
        self.by_key: dict[tuple, Evaluation] = {}

    def add(self, ev: Evaluation) -> None:
        self.evaluations.append(ev)
        self.by_key[ev.key] = ev

    def __len__(self) -> int:
        return len(self.evaluations)

    def __contains__(self, key: tuple) -> bool:
        return key in self.by_key

    def best(self) -> Evaluation | None:
        """The best (lowest-fitness) non-fatal evaluation; ties break on
        the point key so the answer is order-independent."""
        ok = [ev for ev in self.evaluations if ev.ok]
        if not ok:
            return None
        return min(ok, key=lambda ev: (ev.fitness, ev.key))


def _name_salt(name: str) -> int:
    # Content-derived (not hash()): identical across processes and runs.
    return zlib.crc32(name.encode())


class Agent:
    """Base class: a seeded RNG stream plus the propose() contract.

    ``propose(history)`` returns a list of candidate points -- possibly
    empty (the driver stops early), possibly invalid or already seen
    (the driver rejects/dedupes and counts them).  Implementations must
    draw randomness only from ``self.rng``.
    """

    name = "agent"

    def __init__(self, space: SearchSpace, *, seed: int = 0,
                 population: int = 8) -> None:
        self.space = space
        self.seed = seed
        self.population = max(1, int(population))
        self.rng = np.random.default_rng((seed, _name_salt(self.name)))

    def propose(self, history: History) -> list[dict]:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------

    def _fresh_random(self, history: History, want: int,
                      taken: dict | None = None) -> list[dict]:
        """Up to ``want`` valid random points not in history (or in
        ``taken``, the batch built so far).  Bounded, so an exhausted
        space yields fewer -- or zero -- points instead of spinning."""
        taken = dict(taken or {})
        out: list[dict] = []
        for _ in range(64 * max(1, want)):
            if len(out) >= want:
                break
            try:
                p = self.space.random_point(self.rng)
            except ValueError:
                break
            k = self.space.point_key(p)
            if k in history or k in taken:
                continue
            taken[k] = p
            out.append(p)
        return out


class RandomAgent(Agent):
    """Uniform exploration: ``population`` fresh valid points per
    generation."""

    name = "random"

    def propose(self, history: History) -> list[dict]:
        return self._fresh_random(history, self.population)


class HillClimbAgent(Agent):
    """Algorithm 1, generalized from the offload ratio to every knob.

    The paper climbs one scalar (the offload ratio) in-situ, one
    adaptive step per epoch, using epoch IPC as the signal.  Offline we
    can afford a *batch* of probes per round, so each generation
    proposes every unseen valid single-knob neighbor (value index +/-1)
    of the best point so far -- steepest-ascent with the move budget
    capped at ``population``.  When the neighborhood is exhausted (a
    local optimum), the agent restarts from seeded random points
    instead of freezing, mirroring the boundary nudge the repro added
    to ``HillClimbingController``.
    """

    name = "hillclimb"

    def propose(self, history: History) -> list[dict]:
        best = history.best()
        if best is None:
            # Cold start (or nothing but fatal cells): random probes.
            return self._fresh_random(history, self.population)
        taken: dict[tuple, dict] = {}
        out: list[dict] = []
        for p in self.space.neighbors(best.point):
            if len(out) >= self.population:
                break
            k = self.space.point_key(p)
            if k in history or k in taken:
                continue
            taken[k] = p
            out.append(p)
        if not out:
            out = self._fresh_random(history, self.population)
        return out


class GeneticAgent(Agent):
    """Tournament selection + uniform knob crossover + mutation.

    Parents come from the whole evaluated history (elitism for free:
    good early points stay in the gene pool); children that are invalid
    or already evaluated are redrawn, bounded, so late generations
    shrink instead of looping.
    """

    name = "genetic"

    def __init__(self, space: SearchSpace, *, seed: int = 0,
                 population: int = 8, tournament: int = 3,
                 mutation: float = 0.25) -> None:
        super().__init__(space, seed=seed, population=population)
        self.tournament = max(2, int(tournament))
        self.mutation = float(mutation)

    def _select(self, pool: list[Evaluation]) -> Evaluation:
        picks = [pool[int(i)] for i in
                 self.rng.integers(len(pool), size=self.tournament)]
        return min(picks, key=lambda ev: (ev.fitness, ev.key))

    def propose(self, history: History) -> list[dict]:
        pool = [ev for ev in history.evaluations if ev.ok]
        if not pool:
            return self._fresh_random(history, self.population)
        taken: dict[tuple, dict] = {}
        out: list[dict] = []
        for _ in range(64 * self.population):
            if len(out) >= self.population:
                break
            a, b = self._select(pool), self._select(pool)
            child: dict = {}
            for knob in self.space.knobs:
                parent = a if self.rng.random() < 0.5 else b
                child[knob.name] = parent.point[knob.name]
                if self.rng.random() < self.mutation:
                    child[knob.name] = knob.values[
                        int(self.rng.integers(len(knob.values)))]
            k = self.space.point_key(child)
            if k in history or k in taken or not self.space.valid(child):
                continue
            taken[k] = child
            out.append(child)
        return out


#: Agent registry (the CLI's ``--agent`` choices).
AGENTS: dict[str, type[Agent]] = {
    RandomAgent.name: RandomAgent,
    HillClimbAgent.name: HillClimbAgent,
    GeneticAgent.name: GeneticAgent,
}


def make_agent(name: str, space: SearchSpace, *, seed: int = 0,
               population: int = 8, **kwargs) -> Agent:
    """Instantiate a registered agent; raises :class:`KeyError` naming
    the valid choices for an unknown agent."""
    try:
        cls = AGENTS[name]
    except (KeyError, TypeError):
        raise KeyError(f"unknown search agent {name!r}; choose from "
                       f"{sorted(AGENTS)}") from None
    return cls(space, seed=seed, population=population, **kwargs)


def best_of(evaluations, top_k: int = 5) -> list[Evaluation]:
    """The ``top_k`` best non-fatal evaluations, fitness ascending with
    point-key tiebreaks (deterministic regardless of evaluation order)."""
    ok = [ev for ev in evaluations if ev.ok]
    ok.sort(key=lambda ev: (ev.fitness, ev.key))
    return ok[:max(1, int(top_k))]
