"""The exploration driver: generations of propose -> validate -> evaluate.

One :func:`explore` call runs a search agent over a
:class:`~repro.explore.space.SearchSpace` for a fixed number of
generations, evaluating every candidate through
:meth:`~repro.analysis.figures.ExperimentRunner.eval_cells` -- the same
hardened parallel pool and content-addressed store every sweep and
figure uses.  Because candidates materialize to plain ``(config name,
base config)`` store cells (no explore-specific salt), re-visited
configurations are served from the store across runs *and* across
agents: a second seeded run proposes the identical candidate sequence
and completes with zero fresh simulations.

Artifacts (under ``out/``):

* ``trajectory.jsonl``   -- one meta record, then every evaluation and a
  per-generation summary row, in evaluation order.  Records carry no
  timestamps and no cache provenance, so two seeded runs (and a
  ``resume`` of a truncated file) produce byte-identical trajectories.
* ``best_configs.json``  -- the ``top_k`` best candidates with their
  store keys (see :mod:`repro.explore.report`).

``resume`` replays the agent loop from generation 0 with evaluations
served from the prior trajectory: the agent's RNG stream re-advances
through the identical proposal sequence, reconstructing its exact state
before the first genuinely new generation runs.  Nothing about agent
internals is ever serialized.  See ``docs/design-space.md``.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field

from repro.explore.agents import Evaluation, History, best_of, make_agent
from repro.explore.space import resolve_space

__all__ = ["FITNESS", "ExploreOutcome", "ExploreStats", "explore"]

#: Trajectory schema version; bump on incompatible record changes.
TRAJECTORY_SCHEMA = 1


# -- fitness functions --------------------------------------------------------

def _fitness_cycles(result, cfg) -> float:
    return float(result.cycles)


def _fitness_energy(result, cfg) -> float:
    from repro.energy import compute_energy
    return float(compute_energy(result, cfg).total)


def _fitness_edp(result, cfg) -> float:
    # Energy-delay product, the classic single-number architecture merit.
    return _fitness_cycles(result, cfg) * _fitness_energy(result, cfg)


#: Fitness registry: name -> fn(RunResult, full SystemConfig) -> float,
#: lower is better.  ``cfg`` is the *materialized* configuration of the
#: candidate (offload mode applied), as the energy model requires.
FITNESS = {
    "cycles": _fitness_cycles,
    "energy": _fitness_energy,
    "edp": _fitness_edp,
}


# -- outcome ------------------------------------------------------------------

@dataclass
class ExploreStats:
    """Where the evaluations of one :func:`explore` call came from."""

    evaluated: int = 0      # evaluations recorded (all sources)
    cache_hits: int = 0     # served from the persistent result store
    fresh: int = 0          # actually simulated this run
    replayed: int = 0       # served from the resume trajectory
    rejected: int = 0       # proposals failing space validity
    revisits: int = 0       # proposals of already-evaluated points
    generations: int = 0    # generation loops executed

    def as_dict(self) -> dict:
        return {"evaluated": self.evaluated, "cache_hits": self.cache_hits,
                "fresh": self.fresh, "replayed": self.replayed,
                "rejected": self.rejected, "revisits": self.revisits,
                "generations": self.generations}

    @property
    def hit_pct(self) -> float:
        return 100.0 * self.cache_hits / max(1, self.evaluated)


@dataclass
class ExploreOutcome:
    """Everything one :func:`explore` call produced."""

    workload: str
    space: object                  # the resolved SearchSpace
    agent: str
    seed: int
    fitness: str
    scale: str
    max_cycles: int
    history: History
    best: list[Evaluation]         # top_k, fitness ascending
    best_entries: list[dict]       # the best_configs.json entries
    generation_rows: list[dict]    # the per-generation fitness table
    stats: ExploreStats
    trajectory_path: str | None = None
    best_path: str | None = None
    store_root: str | None = None
    fatal_points: list[tuple] = field(default_factory=list)


# -- trajectory records -------------------------------------------------------

def _dump(rec: dict) -> str:
    """Canonical bytes for one trajectory record: sorted keys, no
    whitespace variance, so byte identity falls out of value identity."""
    return json.dumps(rec, sort_keys=True)


def _meta_record(workload, sp, agent, fitness, scale, max_cycles) -> dict:
    return {
        "kind": "explore-meta",
        "schema": TRAJECTORY_SCHEMA,
        "workload": workload,
        "agent": agent.name,
        "seed": agent.seed,
        "population": agent.population,
        "fitness": fitness,
        "scale": scale if isinstance(scale, str) else repr(scale),
        "max_cycles": max_cycles,
        "space": {"name": sp.name, "fingerprint": sp.fingerprint(),
                  "knobs": {k.name: list(k.values) for k in sp.knobs}},
    }


#: Meta fields that must match for a resume to be sound (``generations``
#: is deliberately absent: resuming with more generations extends a run).
_IDENTITY_FIELDS = ("workload", "agent", "seed", "population", "fitness",
                    "scale", "max_cycles")


def _load_trajectory(path: str) -> list[dict]:
    """Parse a trajectory file, tolerating a truncated final line (a
    killed run tears at most the tail)."""
    records: list[dict] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                break
    return records


def _check_resume_meta(prior: dict, meta: dict, path: str) -> None:
    if prior.get("kind") != "explore-meta":
        raise ValueError(f"{path} does not start with an explore-meta "
                         "record; not a trajectory file")
    if prior.get("schema") != meta["schema"]:
        raise ValueError(f"{path}: trajectory schema {prior.get('schema')} "
                         f"!= {meta['schema']}")
    for f in _IDENTITY_FIELDS:
        if prior.get(f) != meta[f]:
            raise ValueError(
                f"cannot resume from {path}: {f} was {prior.get(f)!r}, "
                f"this run has {meta[f]!r}")
    fp = (prior.get("space") or {}).get("fingerprint")
    if fp != meta["space"]["fingerprint"]:
        raise ValueError(
            f"cannot resume from {path}: search-space fingerprint changed "
            f"({fp} -> {meta['space']['fingerprint']})")


def _evaluation_record(ev: Evaluation) -> dict:
    return {"kind": "evaluation", "gen": ev.gen, "point": ev.point,
            "config": ev.config_name,
            "fitness": ev.fitness if ev.ok else None,
            "cycles": ev.cycles, "energy_nj": ev.energy_nj,
            "outcome": ev.outcome}


def _replayed_evaluation(sp, gen: int, point: dict, rec: dict) -> Evaluation:
    fatal = rec.get("outcome") == "fatal"
    return Evaluation(
        gen=gen, point=dict(point), key=sp.point_key(point),
        config_name=rec["config"],
        fitness=math.inf if fatal else float(rec["fitness"]),
        cycles=rec.get("cycles"), energy_nj=rec.get("energy_nj"),
        outcome="fatal" if fatal else "ok")


# -- the driver ---------------------------------------------------------------

def explore(*, workload: str = "VADD", space=None, agent: str = "hillclimb",
            generations: int = 5, population: int = 8, seed: int = 0,
            fitness: str = "cycles", top_k: int = 5,
            out: str = "explore-out", resume: str | None = None,
            base=None, scale: str = "bench", store=None,
            use_store: bool = True, parallel: int = 1,
            max_cycles: int = 20_000_000, sched: str = "active",
            metrics=None, progress=None) -> ExploreOutcome:
    """Run ``agent`` over ``space`` for ``generations`` and return an
    :class:`ExploreOutcome`.  See :func:`repro.api.explore` for the
    parameter catalogue and ``docs/design-space.md`` for the contract."""
    from repro.analysis.figures import ExperimentRunner
    from repro.api import resolve_store
    from repro.sim.runner import make_config
    from repro.sim.store import cell_key

    sp = resolve_space(space, base)
    if fitness not in FITNESS:
        raise KeyError(f"unknown fitness {fitness!r}; choose from "
                       f"{sorted(FITNESS)}")
    fitness_fn = FITNESS[fitness]
    ag = make_agent(agent, sp, seed=seed, population=population)
    meta = _meta_record(workload, sp, ag, fitness, scale, max_cycles)

    # Resume: preload the prior trajectory's evaluations by point key.
    # The loop below replays from generation 0, serving these instead of
    # simulating, which re-advances the agent RNG to its exact pre-crash
    # state -- continuation is then bit-identical by construction.
    preloaded: dict[tuple, dict] = {}
    if resume:
        prior = _load_trajectory(resume)
        if not prior:
            raise ValueError(f"{resume} has no usable trajectory records")
        _check_resume_meta(prior[0], meta, resume)
        for rec in prior[1:]:
            if rec.get("kind") == "evaluation":
                preloaded[sp.point_key(rec["point"])] = rec

    runner = ExperimentRunner(
        base=sp.base, scale=scale, workloads=[workload],
        max_cycles=max_cycles, parallel=max(1, parallel or 1),
        store=resolve_store(store, use_store=use_store), sched=sched)

    stats = ExploreStats()
    history = History()
    generation_rows: list[dict] = []
    fatal_points: list[tuple] = []

    traj_path = None
    traj_file = None
    if out is not None:
        os.makedirs(out, exist_ok=True)
        traj_path = os.path.join(out, "trajectory.jsonl")
        traj_file = open(traj_path, "w")
        traj_file.write(_dump(meta) + "\n")
        traj_file.flush()

    try:
        for gen in range(max(0, generations)):
            proposals = ag.propose(history)
            if not proposals:
                break
            stats.generations += 1

            # Validate and dedupe, preserving proposal order.
            batch: list[tuple[tuple, dict]] = []
            batch_keys = set()
            rejected = revisits = 0
            for p in proposals:
                if not sp.valid(p):
                    rejected += 1
                    continue
                k = sp.point_key(p)
                if k in history or k in batch_keys:
                    revisits += 1
                    continue
                batch_keys.add(k)
                batch.append((k, p))
            stats.rejected += rejected
            stats.revisits += revisits

            # Materialize the cells that need evaluating (not replayed).
            pending: dict[tuple, tuple[str, str, object]] = {}
            for k, p in batch:
                if k in preloaded:
                    continue
                config_name, cfg = sp.materialize(p)
                skey = cell_key(workload, config_name, cfg, scale,
                                max_cycles)
                pending[k] = (skey, config_name, cfg)

            before_hits = runner.stats.store_hits
            before_sims = runner.stats.sim_runs
            results = (runner.eval_cells(
                [(workload, c, cfg) for _s, c, cfg in
                 [pending[k] for k, _p in batch if k in pending]])
                if pending else {})
            stats.cache_hits += runner.stats.store_hits - before_hits
            stats.fresh += runner.stats.sim_runs - before_sims

            # Record evaluations in proposal order.
            for k, p in batch:
                if k in preloaded:
                    ev = _replayed_evaluation(sp, gen, p, preloaded[k])
                    stats.replayed += 1
                else:
                    skey, config_name, cfg = pending[k]
                    res = results[skey]
                    if res is None:
                        ev = Evaluation(gen=gen, point=dict(p), key=k,
                                        config_name=config_name,
                                        fitness=math.inf, outcome="fatal")
                    else:
                        full = make_config(config_name, cfg)
                        from repro.energy import compute_energy
                        ev = Evaluation(
                            gen=gen, point=dict(p), key=k,
                            config_name=config_name,
                            fitness=float(fitness_fn(res, full)),
                            cycles=res.cycles,
                            energy_nj=float(compute_energy(res, full).total),
                            outcome="ok")
                history.add(ev)
                stats.evaluated += 1
                if not ev.ok:
                    fatal_points.append(k)
                if traj_file is not None:
                    traj_file.write(_dump(_evaluation_record(ev)) + "\n")

            best = history.best()
            row = {"kind": "generation", "gen": gen,
                   "proposed": len(proposals), "evaluated": len(batch),
                   "rejected": rejected, "revisits": revisits,
                   "best_fitness": best.fitness if best else None,
                   "best_point": dict(best.point) if best else None}
            generation_rows.append(row)
            if traj_file is not None:
                traj_file.write(_dump(row) + "\n")
                traj_file.flush()
            if progress is not None:
                bf = (f"{row['best_fitness']:,.0f}"
                      if row["best_fitness"] is not None else "n/a")
                progress(f"gen {gen}: evaluated {len(batch)} "
                         f"(rejected {rejected}, revisits {revisits}), "
                         f"best {fitness} {bf}")
    finally:
        if traj_file is not None:
            traj_file.close()

    best = best_of(history.evaluations, top_k)
    best_entries = []
    for rank, ev in enumerate(best, start=1):
        config_name, cfg = sp.materialize(ev.point)
        best_entries.append({
            "rank": rank, "point": dict(ev.point), "config": config_name,
            "fitness": ev.fitness, "cycles": ev.cycles,
            "energy_nj": ev.energy_nj,
            "store_key": cell_key(workload, config_name, cfg, scale,
                                  max_cycles)})

    outcome = ExploreOutcome(
        workload=workload, space=sp, agent=ag.name, seed=seed,
        fitness=fitness, scale=meta["scale"], max_cycles=max_cycles,
        history=history, best=best, best_entries=best_entries,
        generation_rows=generation_rows, stats=stats,
        trajectory_path=traj_path,
        store_root=(str(runner.store.root) if runner.store is not None
                    else None),
        fatal_points=fatal_points)

    if out is not None:
        from repro.explore.report import write_best_configs
        outcome.best_path = write_best_configs(
            outcome, os.path.join(out, "best_configs.json"))

    if metrics is not None:
        metrics.meta.update({"workload": workload, "explore_space": sp.name,
                             "explore_agent": ag.name,
                             "explore_fitness": fitness})
        metrics.counter("explore.evaluated").add(stats.evaluated)
        metrics.counter("explore.cache_hits").add(stats.cache_hits)
        metrics.counter("explore.fresh").add(stats.fresh)
        metrics.counter("explore.replayed").add(stats.replayed)
        metrics.counter("explore.rejected").add(stats.rejected)
        metrics.counter("explore.revisits").add(stats.revisits)
        metrics.counter("explore.generations").add(stats.generations)
        if best:
            metrics.counter("explore.best_fitness").set(best[0].fitness)
    return outcome
