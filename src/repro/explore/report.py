"""Exploration artifacts: ``best_configs.json`` and text tables.

``best_configs.json`` is the durable hand-off between an exploration run
and everything downstream (``repro bench --explore-best``, a follow-up
sweep, a human).  It carries the run's provenance (space name +
fingerprint, workload, scale, fitness, agent, seed) and the ``top_k``
entries with their content-addressed store keys, so a consumer can both
rebuild the winning configuration *and* pull its cached result without
re-simulating.  Deliberately timestamp-free: two seeded runs write
byte-identical files.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = ["best_bench_cell", "format_best", "format_generations",
           "load_best_configs", "write_best_configs"]

BEST_KIND = "repro-explore-best"
BEST_VERSION = 1


def write_best_configs(outcome, path: str) -> str:
    """Atomically write the ``best_configs.json`` of an
    :class:`~repro.explore.driver.ExploreOutcome`; returns the path."""
    sp = outcome.space
    payload = {
        "kind": BEST_KIND,
        "version": BEST_VERSION,
        "space": {"name": sp.name, "fingerprint": sp.fingerprint()},
        "workload": outcome.workload,
        "scale": outcome.scale,
        "fitness": outcome.fitness,
        "agent": outcome.agent,
        "seed": outcome.seed,
        "max_cycles": outcome.max_cycles,
        "evaluated": outcome.stats.evaluated,
        "entries": outcome.best_entries,
    }
    out_dir = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(out_dir, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=out_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_best_configs(path: str) -> dict:
    with open(path) as f:
        payload = json.load(f)
    if payload.get("kind") != BEST_KIND:
        raise ValueError(f"{path} is not a {BEST_KIND} file")
    return payload


def best_bench_cell(path: str):
    """Resolve a ``best_configs.json`` into the ``(workload, config_name,
    base_config, label)`` of its rank-1 entry, for ``repro bench
    --explore-best``.  Refuses when the named space's current definition
    no longer matches the file's fingerprint (the point would silently
    materialize differently)."""
    from repro.explore.space import resolve_space

    payload = load_best_configs(path)
    entries = payload.get("entries") or []
    if not entries:
        raise ValueError(f"{path} has no best entries to benchmark")
    sp = resolve_space(payload["space"]["name"])
    if sp.fingerprint() != payload["space"]["fingerprint"]:
        raise ValueError(
            f"{path}: search space {sp.name!r} has changed since this "
            "exploration ran (fingerprint mismatch); re-run repro explore")
    best = entries[0]
    config_name, cfg = sp.materialize(best["point"])
    label = f"explore[{payload['fitness']}]:{config_name}"
    return payload["workload"], config_name, cfg, label


def format_generations(outcome) -> str:
    """The per-generation fitness table ``repro explore`` prints."""
    lines = [f"{'gen':>4}  {'proposed':>8}  {'evaluated':>9}  "
             f"{'rejected':>8}  {'revisits':>8}  best " + outcome.fitness]
    for row in outcome.generation_rows:
        bf = (f"{row['best_fitness']:,.0f}"
              if row["best_fitness"] is not None else "n/a")
        lines.append(f"{row['gen']:>4}  {row['proposed']:>8}  "
                     f"{row['evaluated']:>9}  {row['rejected']:>8}  "
                     f"{row['revisits']:>8}  {bf}")
    return "\n".join(lines)


def format_best(outcome) -> str:
    """The top-k table: rank, config, fitness, and the knob settings."""
    lines = []
    for e in outcome.best_entries:
        knobs = ", ".join(f"{k}={v}" for k, v in sorted(e["point"].items()))
        lines.append(f"#{e['rank']}  {e['config']:<16} "
                     f"{outcome.fitness}={e['fitness']:,.0f}  ({knobs})")
    if not lines:
        lines.append("(no completed candidates -- every cell was fatal?)")
    return "\n".join(lines)
