"""Design-space exploration: declarative search spaces over
:class:`~repro.config.SystemConfig` knobs, pluggable search agents, and
a driver that evaluates candidates through the content-addressed result
store.  Entry points: :func:`repro.api.explore` / ``repro explore``.
The full contract lives in ``docs/design-space.md``.
"""

from repro.explore.agents import (AGENTS, Agent, Evaluation, GeneticAgent,
                                  HillClimbAgent, History, RandomAgent,
                                  best_of, make_agent)
from repro.explore.space import (SPACES, Constraint, Knob, SearchSpace,
                                 default_space, resolve_space, tiny_space)

__all__ = ["AGENTS", "Agent", "Constraint", "Evaluation", "ExploreOutcome",
           "ExploreStats", "FITNESS", "GeneticAgent", "HillClimbAgent",
           "History", "Knob", "RandomAgent", "SPACES", "SearchSpace",
           "best_of", "default_space", "explore", "make_agent",
           "resolve_space", "tiny_space"]

_DRIVER_NAMES = {"ExploreOutcome", "ExploreStats", "FITNESS", "explore"}


def __getattr__(name: str):
    # The driver pulls in the runner/store stack; keep space/agent imports
    # light by loading it lazily.
    if name in _DRIVER_NAMES:
        from repro.explore import driver
        return getattr(driver, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
