"""Declarative search spaces over :class:`~repro.config.SystemConfig`.

A :class:`SearchSpace` names the architecture knobs the paper opens up
(NSU frequency, NDP buffer/credit sizes, link widths, stack count,
offload policy/threshold), the discrete values each may take, and the
validity constraints between them.  Search agents
(:mod:`repro.explore.agents`) operate on *points* -- plain
``{knob_name: value}`` dicts -- and the space turns a valid point into
the ``(config_name, SystemConfig)`` pair the simulator understands.

Two kinds of knob exist:

* **config knobs** carry an ``apply(cfg, value) -> SystemConfig``
  callable and rewrite the base configuration (frozen dataclasses, so
  appliers are ``dataclasses.replace`` chains);
* at most one **offload knob** (``apply=None``) selects the *named*
  configuration variant (``"NDP(Dyn)"``, ``"NDP(0.8)"``, ...) so a
  candidate's offload policy/threshold rides the same
  :func:`~repro.sim.runner.make_config` path as every sweep -- and
  therefore the same store keys (see ``docs/design-space.md``).

The full contract (point encoding, constraint semantics, fingerprint
stability) is documented in ``docs/design-space.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable

from repro.config import SystemConfig, paper_config
from repro.sim.runner import make_config

__all__ = ["Constraint", "Knob", "SPACES", "SearchSpace", "backends_space",
           "default_space", "resolve_space", "tiny_space"]


@dataclass(frozen=True)
class Knob:
    """One discrete design axis: a name, its legal values, and how a
    value rewrites the base config (``apply=None`` marks the offload
    knob, whose values are named configuration variants)."""

    name: str
    values: tuple
    apply: Callable[[SystemConfig, object], SystemConfig] | None = None
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"knob {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"knob {self.name!r} has duplicate values")


@dataclass(frozen=True)
class Constraint:
    """A validity predicate over a full point.  ``check`` returns True
    when the point is legal; violated constraints are reported by name
    so trajectories record *why* a candidate was rejected."""

    name: str
    check: Callable[[dict], bool]
    description: str = ""


@dataclass(frozen=True)
class SearchSpace:
    """An ordered set of knobs plus cross-knob constraints over a base
    :class:`SystemConfig`."""

    knobs: tuple[Knob, ...]
    constraints: tuple[Constraint, ...] = ()
    base: SystemConfig = field(default_factory=paper_config)
    name: str = "custom"

    def __post_init__(self) -> None:
        names = [k.name for k in self.knobs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate knob names in {names}")
        offload = [k for k in self.knobs if k.apply is None]
        if len(offload) > 1:
            raise ValueError("at most one offload (config-name) knob")

    # -- shape ---------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(k.name for k in self.knobs)

    @property
    def size(self) -> int:
        """Number of raw points (valid and invalid)."""
        n = 1
        for k in self.knobs:
            n *= len(k.values)
        return n

    def knob(self, name: str) -> Knob:
        for k in self.knobs:
            if k.name == name:
                return k
        raise KeyError(f"unknown knob {name!r}; choose from {self.names}")

    # -- points --------------------------------------------------------------

    def point_key(self, point: dict) -> tuple:
        """Canonical identity of a point: its values in knob order."""
        return tuple(point[k.name] for k in self.knobs)

    def point_from_indices(self, indices) -> dict:
        return {k.name: k.values[i] for k, i in zip(self.knobs, indices)}

    def indices(self, point: dict) -> tuple[int, ...]:
        return tuple(k.values.index(point[k.name]) for k in self.knobs)

    def violations(self, point: dict) -> list[str]:
        """Names of everything wrong with ``point``: missing/unknown
        knobs, off-menu values, then failed constraints."""
        out: list[str] = []
        for k in self.knobs:
            if k.name not in point:
                out.append(f"missing:{k.name}")
            elif point[k.name] not in k.values:
                out.append(f"off-menu:{k.name}")
        if out:
            return out
        extra = sorted(set(point) - set(self.names))
        if extra:
            return [f"unknown:{n}" for n in extra]
        for c in self.constraints:
            if not c.check(point):
                out.append(f"constraint:{c.name}")
        return out

    def valid(self, point: dict) -> bool:
        return not self.violations(point)

    def random_point(self, rng, max_tries: int = 64) -> dict:
        """A uniformly drawn *valid* point (bounded rejection sampling;
        raises if the constraints reject every try)."""
        for _ in range(max_tries):
            point = {k.name: k.values[int(rng.integers(len(k.values)))]
                     for k in self.knobs}
            if self.valid(point):
                return point
        raise ValueError(
            f"no valid point found in {max_tries} draws; are the "
            f"constraints of space {self.name!r} satisfiable?")

    def neighbors(self, point: dict) -> list[dict]:
        """All valid single-knob steps (value index +/-1), in knob
        order, minus-step first -- the hill climber's move set."""
        out: list[dict] = []
        idx = self.indices(point)
        for pos, k in enumerate(self.knobs):
            for delta in (-1, +1):
                j = idx[pos] + delta
                if not 0 <= j < len(k.values):
                    continue
                cand = dict(point)
                cand[k.name] = k.values[j]
                if self.valid(cand):
                    out.append(cand)
        return out

    # -- materialization -----------------------------------------------------

    def materialize(self, point: dict) -> tuple[str, SystemConfig]:
        """Turn a valid point into ``(config_name, base_config)`` -- the
        pair :func:`repro.sim.runner.build_system` (and the store key)
        consumes.  The offload knob picks the named variant; every other
        knob rewrites the base."""
        viol = self.violations(point)
        if viol:
            raise ValueError(f"invalid point {point}: {viol}")
        cfg = self.base
        config_name = "NDP(Dyn)"
        for k in self.knobs:
            if k.apply is None:
                config_name = point[k.name]
            else:
                cfg = k.apply(cfg, point[k.name])
        make_config(config_name, cfg)  # fail fast on an unknown variant
        return config_name, cfg

    # -- identity ------------------------------------------------------------

    def spec(self) -> dict:
        """The JSON-able description stamped into trajectory metadata."""
        return {
            "name": self.name,
            "knobs": {k.name: list(k.values) for k in self.knobs},
            "constraints": [c.name for c in self.constraints],
            "base": dataclasses.asdict(self.base),
        }

    def fingerprint(self) -> str:
        """SHA-256 of the spec: knob names+values, constraint names and
        the full base config.  Appliers are assumed to be determined by
        the knob name (true for the named spaces below); ``--resume``
        and ``bench --explore-best`` refuse on a fingerprint mismatch."""
        payload = json.dumps(self.spec(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Named spaces
# ---------------------------------------------------------------------------

def _set_nsu(cfg: SystemConfig, **kw) -> SystemConfig:
    return dataclasses.replace(cfg, nsu=dataclasses.replace(cfg.nsu, **kw))


def _knob_nsu_mhz() -> Knob:
    return Knob("nsu_mhz", (175.0, 350.0, 700.0),
                lambda cfg, v: cfg.with_nsu_clock(v), unit="MHz")


def _knob_read_buf(values: tuple) -> Knob:
    # Read-data and write-address buffers are sized together, as in the
    # paper's Table 2 (256 entries each).
    return Knob("nsu_read_buf", values,
                lambda cfg, v: _set_nsu(cfg, read_data_entries=v,
                                        write_addr_entries=v),
                unit="entries")


def _knob_gpu_link(values: tuple) -> Knob:
    return Knob("gpu_link_gbps", values,
                lambda cfg, v: dataclasses.replace(
                    cfg, gpu=dataclasses.replace(cfg.gpu,
                                                 link_gbps_per_dir=v)),
                unit="GB/s")


def default_space(base: SystemConfig | None = None) -> SearchSpace:
    """The ROADMAP item-1 space: every axis the paper's Section 7
    sensitivity studies touch, swept jointly.  5832 raw points."""
    return SearchSpace(
        name="default",
        base=base or paper_config(),
        knobs=(
            Knob("offload", ("NDP(Dyn)", "NDP(Dyn)_Cache",
                             "NDP(0.4)", "NDP(0.8)")),
            _knob_nsu_mhz(),
            _knob_read_buf((128, 256, 512)),
            Knob("nsu_cmd_buf", (5, 10, 20),
                 lambda cfg, v: _set_nsu(cfg, cmd_buffer_entries=v),
                 unit="entries"),
            Knob("sm_pending", (150, 300, 600),
                 lambda cfg, v: dataclasses.replace(
                     cfg, sm_buffers=dataclasses.replace(
                         cfg.sm_buffers, pending_entries=v)),
                 unit="entries"),
            _knob_gpu_link((10.0, 20.0, 40.0)),
            Knob("mem_link_gbps", (10.0, 20.0, 40.0),
                 lambda cfg, v: dataclasses.replace(
                     cfg, hmc=dataclasses.replace(cfg.hmc,
                                                  link_gbps_per_dir=v)),
                 unit="GB/s"),
            Knob("num_hmcs", (4, 8),
                 lambda cfg, v: dataclasses.replace(cfg, num_hmcs=v)),
        ),
        constraints=(
            Constraint(
                "link-balance",
                lambda p: p["gpu_link_gbps"] <= 2 * p["mem_link_gbps"],
                "GPU off-chip links must not outrun the memory network "
                "by more than 2x: such cells only measure the injection "
                "queue, not the design"),
        ),
    )


def tiny_space(base: SystemConfig | None = None) -> SearchSpace:
    """A 16-point space for CI smoke and the test suite: small enough to
    exhaust in two generations, with one real constraint."""
    return SearchSpace(
        name="tiny",
        base=base or paper_config(),
        knobs=(
            Knob("offload", ("NDP(Dyn)", "NDP(0.8)")),
            Knob("nsu_mhz", (350.0, 700.0),
                 lambda cfg, v: cfg.with_nsu_clock(v), unit="MHz"),
            _knob_read_buf((128, 256)),
            _knob_gpu_link((20.0, 40.0)),
        ),
        constraints=(
            Constraint(
                "fast-links-need-buffers",
                lambda p: not (p["gpu_link_gbps"] >= 40.0
                               and p["nsu_read_buf"] <= 128),
                "doubled GPU links need the deeper RDF buffer or the "
                "NSU just back-pressures them"),
        ),
    )


def backends_space(base: SystemConfig | None = None) -> SearchSpace:
    """The comparative-substrate space (ISSUE 8): memory backend x
    target-selection policy x offload variant x NSU clock.  36 raw
    points -- small enough for an exhaustive sweep, wide enough to rank
    hmc-vs-cxl under each placement policy (docs/backends.md)."""
    return SearchSpace(
        name="backends",
        base=base or paper_config(),
        knobs=(
            Knob("offload", ("NDP(Dyn)", "NDP(Dyn)_Cache")),
            Knob("backend", ("hmc", "cxl"),
                 lambda cfg, v: cfg.with_backend(v)),
            Knob("target_policy", ("first", "optimal", "coda"),
                 lambda cfg, v: cfg.with_target_policy(v)),
            Knob("nsu_mhz", (350.0, 700.0, 1400.0),
                 lambda cfg, v: cfg.with_nsu_clock(v), unit="MHz"),
        ),
    )


#: Named space registry (the CLI's ``--space`` choices).
SPACES: dict[str, Callable[..., SearchSpace]] = {
    "default": default_space,
    "tiny": tiny_space,
    "backends": backends_space,
}


def resolve_space(space=None, base: SystemConfig | None = None) -> SearchSpace:
    """Resolve ``space`` -- a :class:`SearchSpace`, a registry name, or
    None for the default -- against an optional base config override."""
    if isinstance(space, SearchSpace):
        return space
    if space is None:
        return default_space(base)
    try:
        factory = SPACES[space]
    except (KeyError, TypeError):
        raise KeyError(f"unknown search space {space!r}; choose from "
                       f"{sorted(SPACES)}") from None
    return factory(base)
