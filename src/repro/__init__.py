"""repro -- reproduction of "Toward Standardized Near-Data Processing with
Unrestricted Data Placement for GPUs" (Kim, Chatterjee, O'Connor, Hsieh;
SC 2017).

Public API quick reference
--------------------------

Configuration::

    from repro.config import paper_config, ci_config, OffloadMode

Run a workload under a named configuration::

    from repro.sim.runner import run_workload
    result = run_workload("KMN", "NDP(Dyn)_Cache", scale="bench")

Regenerate a paper artifact::

    from repro.analysis import ExperimentRunner, figure9
    data = figure9(ExperimentRunner(scale="bench"))

Author a new workload: subclass :class:`repro.workloads.WorkloadModel`
(see ``examples/custom_workload.py``).
"""

__version__ = "1.0.0"

from repro.config import (
    OffloadMode,
    SystemConfig,
    ci_config,
    paper_config,
)

__all__ = [
    "OffloadMode",
    "SystemConfig",
    "ci_config",
    "paper_config",
    "__version__",
]
