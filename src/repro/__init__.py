"""repro -- reproduction of "Toward Standardized Near-Data Processing with
Unrestricted Data Placement for GPUs" (Kim, Chatterjee, O'Connor, Hsieh;
SC 2017).

Public API quick reference
--------------------------

Configuration::

    from repro.config import paper_config, ci_config, OffloadMode

Run a workload under a named configuration (the facade handles config
presets, fault plans, the result store, and post-run audits)::

    from repro import api
    out = api.run(workload="KMN", config="NDP(Dyn)_Cache", scale="bench")
    print(out.result.total_cycles, out.outcome)

Sweep one workload across the paper's configurations, or stress the
recovery path under injected faults::

    sweep = api.sweep("KMN")
    report = api.chaos(scenario="vault-read-loss", workloads=("VADD",))

Regenerate a paper artifact::

    from repro.analysis import figure9
    data = figure9(api.make_runner(scale="bench"))

The low-level primitives (``repro.sim.runner.run_workload`` /
``build_system``) remain available for single uncached simulations and
custom harnesses.

Author a new workload: subclass :class:`repro.workloads.WorkloadModel`
(see ``examples/custom_workload.py``).
"""

__version__ = "1.0.0"

from repro.config import (
    OffloadMode,
    SystemConfig,
    ci_config,
    paper_config,
)

__all__ = [
    "OffloadMode",
    "RunRequest",
    "SystemConfig",
    "api",
    "chaos",
    "ci_config",
    "explore",
    "make_runner",
    "paper_config",
    "run",
    "sweep",
    "__version__",
]

_API_NAMES = ("RunRequest", "run", "sweep", "chaos", "make_runner",
              "explore")


def __getattr__(name):
    # Lazy facade re-export: ``import repro`` stays cheap (no simulator /
    # analysis imports) until someone actually touches the api surface.
    if name == "api" or name in _API_NAMES:
        import importlib

        api = importlib.import_module("repro.api")
        if name == "api":
            return api
        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
