"""Memory-access coalescing (Section 4.1.1: addresses are "generated and
coalesced" on the GPU in both execution modes).

The coalescer turns the 32 per-thread addresses of a warp memory instruction
into unique cache-line accesses, remembering how many distinct words each
line actually provides.  The word count is what lets the NDP path send only
touched data in RDF response packets (Section 4.4) while the baseline always
moves whole 128 B lines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import LINE_SIZE, WORD_SIZE


@dataclass(frozen=True, slots=True)
class MemAccess:
    """One coalesced line access of a warp memory instruction."""

    line_addr: int      # address // LINE_SIZE
    words: int          # distinct words touched by active threads
    irregular: bool     # True when per-thread offsets must ride the packet

    @property
    def bytes_touched(self) -> int:
        return self.words * WORD_SIZE


def coalesce(addrs: np.ndarray, active: np.ndarray | None = None,
             word_size: int = WORD_SIZE) -> tuple[MemAccess, ...]:
    """Coalesce per-thread byte addresses into line accesses.

    Parameters
    ----------
    addrs:
        int64 array of per-thread byte addresses (one per lane).
    active:
        optional boolean mask of active lanes.
    word_size:
        per-thread access size in bytes.

    An access is *aligned* (regular) when the active lanes touch a single
    line with ``offset(i) = i * word_size`` (the Section 4.1.1 aligned
    test); anything else carries per-thread offsets in its packet.
    """
    addrs = np.asarray(addrs, dtype=np.int64)
    if active is not None:
        addrs = addrs[np.asarray(active, dtype=bool)]
    if addrs.size == 0:
        return ()
    lines = addrs // LINE_SIZE
    offsets = addrs % LINE_SIZE
    out: list[MemAccess] = []
    order = np.argsort(lines, kind="stable")
    lines_sorted = lines[order]
    offs_sorted = offsets[order]
    boundaries = np.flatnonzero(np.diff(lines_sorted)) + 1
    starts = np.concatenate(([0], boundaries))
    stops = np.concatenate((boundaries, [lines_sorted.size]))
    single_line = len(starts) == 1
    for s, t in zip(starts, stops):
        line = int(lines_sorted[s])
        offs = offs_sorted[s:t]
        words = int(np.unique(offs // word_size).size)
        # Aligned iff the whole warp hits one line with lane-ordered offsets.
        aligned = (
            single_line
            and offs.size == t - s
            and np.array_equal(offs, np.arange(offs.size) * word_size)
        )
        out.append(MemAccess(line, words, irregular=not aligned))
    return tuple(out)


def access_stats(accesses: tuple[MemAccess, ...]) -> tuple[int, int]:
    """(number of lines, total words touched) for a coalesced instruction."""
    return len(accesses), sum(a.words for a in accesses)
