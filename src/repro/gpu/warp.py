"""Warp execution state.

A warp walks its dynamic trace one instruction per issue slot.  Offload
block instances (:class:`~repro.gpu.trace.DynBlock`) expand on the fly into
either the original instruction sequence ("inline") or the partitioned
GPU-side sequence ("offload", Figure 3(a)); in the latter case the warp
blocks at ``OFLD.END`` until the NSU's acknowledgment arrives (the SM keeps
issuing other warps meanwhile -- Section 4.1.1).

Register dependencies use a scoreboard-style map ``reg -> ready_cycle``;
in-flight loads use an "infinite" sentinel resolved by the memory response
callback.
"""

from __future__ import annotations

import enum

from repro.gpu.trace import WarpTrace

#: Sentinel ready-cycle for registers whose producer completion time is
#: unknown (outstanding loads, offload ACKs).
INFLIGHT = 1 << 60


class WarpState(enum.Enum):
    READY = "ready"        # has an issuable instruction (may still be
                           # rejected structurally this cycle)
    DEP = "dep"            # waiting on a source register
    ACK = "ack"            # blocked at OFLD.END for the NSU acknowledgment
    DONE = "done"          # trace exhausted


class Warp:
    """Dynamic state of one warp resident on an SM."""

    __slots__ = (
        "sm", "wid", "trace", "pc", "state",
        "mode", "sub_pc", "mem_seq",
        "reg_ready", "inflight_loads", "waiting_reg",
        "offload_instance", "force_inline", "launch_cycle",
        "instrs_retired", "block_instrs_retired",
    )

    def __init__(self, sm, wid: int, trace: WarpTrace) -> None:
        self.sm = sm
        self.wid = wid
        self.trace = trace
        self.pc = 0
        self.state = WarpState.READY
        # Block-expansion state: mode is None (between items), "inline",
        # or "offload"; sub_pc indexes the expanded sequence; mem_seq
        # counts memory instructions seen inside the current block.
        self.mode: str | None = None
        self.sub_pc = 0
        self.mem_seq = 0
        self.reg_ready: dict[int, int] = {}
        self.inflight_loads = 0
        self.waiting_reg: int | None = None
        self.offload_instance = None
        # One-shot recovery flag: the next block decision is forced inline
        # (set by SM.fallback_inline after an offload is abandoned).
        self.force_inline = False
        self.launch_cycle = 0
        self.instrs_retired = 0
        self.block_instrs_retired = 0

    # -- trace navigation ---------------------------------------------------

    def current_item(self):
        if self.pc >= len(self.trace):
            return None
        return self.trace[self.pc]

    def enter_block(self, mode: str) -> None:
        assert self.mode is None
        self.mode = mode
        self.sub_pc = 0
        self.mem_seq = 0

    def exit_block(self) -> None:
        self.mode = None
        self.sub_pc = 0
        self.mem_seq = 0
        self.offload_instance = None
        self.pc += 1

    def advance(self) -> None:
        """Step past the current non-block instruction."""
        self.pc += 1

    # -- register scoreboard --------------------------------------------------

    def srcs_ready_at(self, regs) -> int:
        """Latest ready cycle among source registers (0 if all initial)."""
        rr = self.reg_ready
        worst = 0
        for r in regs:
            t = rr.get(r, 0)
            if t > worst:
                worst = t
        return worst

    def set_reg_ready(self, reg: int, cycle: int) -> None:
        self.reg_ready[reg] = cycle

    def mark_inflight(self, reg: int) -> None:
        self.reg_ready[reg] = INFLIGHT

    def resolve_reg(self, reg: int, now: int) -> None:
        """A pending producer (load / ACK) delivered register ``reg``."""
        self.reg_ready[reg] = now
        if self.state is WarpState.DEP and self.waiting_reg == reg:
            self.waiting_reg = None
            self.sm.wake_warp(self)

    def block_on_reg(self, reg: int) -> None:
        self.state = WarpState.DEP
        self.waiting_reg = reg

    # -- progress accounting --------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.state is WarpState.DONE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Warp(sm={getattr(self.sm, 'sm_id', '?')}, wid={self.wid}, "
                f"pc={self.pc}/{len(self.trace)}, state={self.state.value}, "
                f"mode={self.mode})")
