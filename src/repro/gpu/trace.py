"""Dynamic warp traces consumed by the SM.

A workload model unrolls its kernel IR into, per warp, a flat list of trace
items.  Two kinds exist:

* :class:`DynInstr` -- one ordinary dynamic instruction: the static
  :class:`~repro.isa.instructions.Instr` plus, for LD/ST, its coalesced
  line accesses.
* :class:`DynBlock` -- one *offload block instance*: the code-generated
  :class:`~repro.isa.codegen.OffloadBlock` plus per-memory-instruction
  coalesced accesses.  At runtime the offload decision logic picks between
  inline (original code) and offloaded (partitioned) execution of the
  instance.

Traces deliberately carry *post-coalescing* accesses: address generation and
coalescing happen on the GPU in both execution modes (Section 4.1), so the
coalescer runs once, in the trace generator.
"""

from __future__ import annotations

from repro.gpu.coalescer import MemAccess
from repro.isa.codegen import OffloadBlock
from repro.isa.instructions import Instr


class DynInstr:
    """One dynamic (non-offloadable) instruction."""

    __slots__ = ("instr", "accesses")

    def __init__(self, instr: Instr,
                 accesses: tuple[MemAccess, ...] = ()) -> None:
        self.instr = instr
        self.accesses = accesses

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DynInstr({self.instr.op.value}, {len(self.accesses)} lines)"


class DynBlock:
    """One dynamic instance of an offload block."""

    __slots__ = ("block", "mem_accesses", "active_threads")

    def __init__(self, block: OffloadBlock,
                 mem_accesses: tuple[tuple[MemAccess, ...], ...],
                 active_threads: int = 32) -> None:
        n_mem = block.num_loads + block.num_stores
        if len(mem_accesses) != n_mem:
            raise ValueError(
                f"block {block.block_id} has {n_mem} memory instructions "
                f"but {len(mem_accesses)} access groups were provided")
        self.block = block
        self.mem_accesses = mem_accesses
        self.active_threads = active_threads

    @property
    def total_lines(self) -> int:
        return sum(len(g) for g in self.mem_accesses)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DynBlock(id={self.block.block_id}, "
                f"{self.total_lines} lines)")


#: A warp's full dynamic instruction stream.
WarpTrace = list  # list[DynInstr | DynBlock]


def trace_instruction_count(trace: WarpTrace) -> int:
    """Baseline dynamic instruction count of a trace (for IPC accounting):
    every DynInstr is one warp-instruction; a block instance counts its
    original (unpartitioned) body."""
    n = 0
    for item in trace:
        if isinstance(item, DynBlock):
            n += len(item.block.instrs)
        else:
            n += 1
    return n
