"""Set-associative caches with MSHRs.

The paper assumes write-through GPU caches (Section 5), which simplifies
coherence: NDP writes only need an invalidation message, never a writeback.
We model tag state exactly (true LRU within a set) and use MSHRs to merge
outstanding misses to the same line; a full MSHR file rejects the access,
which surfaces as an ExecUnitBusy structural stall at the SM.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    mshr_merges: int = 0
    mshr_rejects: int = 0
    invalidations: int = 0
    accesses_probe: int = 0     # RDF tag probes (no fill)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """Tag array with true-LRU replacement; write-through, no write-allocate.

    The cache stores *line addresses* (already divided by the line size).
    """

    def __init__(self, size_bytes: int, assoc: int, line_size: int,
                 stats: CacheStats | None = None) -> None:
        self.assoc = assoc
        self.num_sets = size_bytes // (assoc * line_size)
        if self.num_sets < 1:
            raise ValueError("cache smaller than one set")
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self._set_mask = self.num_sets - 1
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)]
        self.stats = stats if stats is not None else CacheStats()

    def _set_of(self, line_addr: int) -> OrderedDict:
        return self._sets[line_addr & self._set_mask]

    def lookup(self, line_addr: int) -> bool:
        """Demand lookup: updates LRU and hit/miss statistics."""
        s = self._set_of(line_addr)
        if line_addr in s:
            s.move_to_end(line_addr)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def probe(self, line_addr: int) -> bool:
        """RDF-style tag probe: checks presence, refreshes LRU on hit, but
        records under the probe counter rather than demand hits/misses."""
        s = self._set_of(line_addr)
        self.stats.accesses_probe += 1
        if line_addr in s:
            s.move_to_end(line_addr)
            return True
        return False

    def contains(self, line_addr: int) -> bool:
        """Pure presence check: no LRU update, no stats."""
        return line_addr in self._set_of(line_addr)

    def insert(self, line_addr: int) -> int | None:
        """Fill a line; returns the evicted line address, if any.

        With write-through caches the victim is always clean, so eviction
        costs no traffic; the return value exists for tests/diagnostics.
        """
        s = self._set_of(line_addr)
        if line_addr in s:
            s.move_to_end(line_addr)
            return None
        victim = None
        if len(s) >= self.assoc:
            victim, _ = s.popitem(last=False)
        s[line_addr] = None
        return victim

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line (NDP-write coherence, Section 4.2)."""
        s = self._set_of(line_addr)
        if line_addr in s:
            del s[line_addr]
            self.stats.invalidations += 1
            return True
        return False

    def touch_write(self, line_addr: int) -> None:
        """Write-through store: update the line if present (no allocate)."""
        s = self._set_of(line_addr)
        if line_addr in s:
            s.move_to_end(line_addr)

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


class MSHRFile:
    """Miss-status holding registers: merge misses to the same line.

    ``allocate`` returns:

    * ``"new"``   -- primary miss, the caller must send the fill request;
    * ``"merged"``-- secondary miss, the callback rides the existing entry;
    * ``"full"``  -- no entry available (structural stall).
    """

    def __init__(self, num_entries: int, stats: CacheStats) -> None:
        self.num_entries = num_entries
        self._entries: dict[int, list[Callable[[], None]]] = {}
        self.stats = stats
        self.peak = 0

    def allocate(self, line_addr: int, on_fill: Callable[[], None]) -> str:
        entry = self._entries.get(line_addr)
        if entry is not None:
            entry.append(on_fill)
            self.stats.mshr_merges += 1
            return "merged"
        if len(self._entries) >= self.num_entries:
            self.stats.mshr_rejects += 1
            return "full"
        self._entries[line_addr] = [on_fill]
        self.peak = max(self.peak, len(self._entries))
        return "new"

    def fill(self, line_addr: int) -> int:
        """Complete a miss: fire all merged callbacks.  Returns the number
        of waiters served."""
        waiters = self._entries.pop(line_addr, [])
        for cb in waiters:
            cb()
        return len(waiters)

    def outstanding(self, line_addr: int) -> bool:
        return line_addr in self._entries

    def __len__(self) -> int:
        return len(self._entries)
