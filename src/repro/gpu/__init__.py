"""GPU substrate: caches, coalescer, warps, SMs, stall accounting."""

from repro.gpu.cache import Cache, MSHRFile, CacheStats
from repro.gpu.coalescer import MemAccess, coalesce
from repro.gpu.trace import DynInstr, DynBlock, WarpTrace
from repro.gpu.warp import Warp, WarpState
from repro.gpu.sm import SM

__all__ = [
    "Cache",
    "MSHRFile",
    "CacheStats",
    "MemAccess",
    "coalesce",
    "DynInstr",
    "DynBlock",
    "WarpTrace",
    "Warp",
    "WarpState",
    "SM",
]
