"""Streaming Multiprocessor model: warp slots, greedy-then-oldest issue,
scoreboard dependency tracking, and Figure 8 no-issue-cycle accounting.

The SM issues at most one warp-instruction per cycle.  Offload block
instances expand into either their original code (inline) or the
partitioned GPU-side code (Figure 3(a)); the NDP controller object wired in
by the system performs packet generation, buffer reservation and cache
probing for the offload path.

Interfaces expected from the system:

* ``memsys.load(sm, access, on_done) -> bool`` and
  ``memsys.store(sm, access) -> bool`` -- baseline/inline memory path;
  ``False`` means a structural reject (MSHR full) and the instruction
  retries next cycle.
* ``ndp.start_block / rdf / wta / end_block`` -- partitioned execution
  (absent in pure-baseline systems).
* ``decider.decide(sm_id, dynblock) -> bool`` -- the offload decision.
"""

from __future__ import annotations

from collections import deque

from repro.gpu.trace import DynBlock
from repro.gpu.warp import INFLIGHT, Warp, WarpState
from repro.isa.instructions import Opcode
from repro.sim.engine import Engine
from repro.sim.results import StallBreakdown

#: Maximum scheduler attempts per cycle before declaring a no-issue cycle.
MAX_ISSUE_ATTEMPTS = 4

#: SFU (transcendental) latency in SM cycles.
SFU_LATENCY = 16
#: Scratchpad access latency in SM cycles.
SHMEM_LATENCY = 24


class SM:
    """One streaming multiprocessor."""

    def __init__(self, engine: Engine, sm_id: int, *, warps_per_sm: int,
                 alu_latency: int, max_inflight_loads: int,
                 memsys, ndp=None, decider=None,
                 scheduler: str = "gto") -> None:
        self.engine = engine
        self.sm_id = sm_id
        self.warps_per_sm = warps_per_sm
        self.alu_latency = alu_latency
        self.max_inflight_loads = max_inflight_loads
        self.memsys = memsys
        self.ndp = ndp
        self.decider = decider
        if scheduler not in ("gto", "lrr"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        self.scheduler = scheduler

        # Active-set scheduling hook: the system's active scheduler installs
        # a callback here and every external wake path (fill, timed dep
        # release, offload ACK, recovery fallback) reports through it BEFORE
        # mutating warp state, so lazily-deferred idle accounting is settled
        # against the still-frozen pre-wake state (invariant I1 in
        # docs/performance.md).  ``None`` under the legacy scheduler.
        self.waker = None

        self.pending_traces: deque = deque()
        self.warps: list[Warp] = []
        self._next_wid = 0
        # Ready "set": insertion-ordered dict wid -> Warp.  Warps here have
        # an issuable (or structurally-rejected) instruction.
        self.ready: dict[int, Warp] = {}
        self.dep_count = 0
        self.current: Warp | None = None    # greedy-then-oldest anchor

        # Per-memory-instruction replay state (partial structural rejects).
        self._acc_cursor: dict[int, int] = {}
        self._replays: dict[int, "_MemReplay"] = {}

        # Statistics.
        self.stalls = StallBreakdown()
        self.instructions = 0            # baseline-equivalent work retired
        self.block_instrs_retired = 0    # offload-block work (Algorithm 1)
        self.issue_slots_used = 0        # raw issue slots (incl. NDP code)
        self.alu_ops = 0
        self.warps_completed = 0
        self.offloads = 0
        self.inlines = 0

    # -- workload assignment --------------------------------------------------

    def assign(self, traces) -> None:
        self.pending_traces.extend(traces)

    def _launch(self) -> None:
        while (len(self.warps) < self.warps_per_sm and self.pending_traces):
            trace = self.pending_traces.popleft()
            warp = Warp(self, self._next_wid, trace)
            warp.launch_cycle = self.engine.now
            self._next_wid += 1
            self.warps.append(warp)
            self.ready[warp.wid] = warp

    @property
    def live_warps(self) -> int:
        return len(self.warps)

    @property
    def done(self) -> bool:
        return not self.warps and not self.pending_traces

    # -- wake/block plumbing --------------------------------------------------

    def wake_warp(self, warp: Warp) -> None:
        if self.waker is not None:
            self.waker(self)
        if warp.state is WarpState.DEP:
            self.dep_count -= 1
        warp.state = WarpState.READY
        self.ready.setdefault(warp.wid, warp)

    def _block_dep(self, warp: Warp, reg: int, ready_at: int) -> None:
        self.ready.pop(warp.wid, None)
        warp.block_on_reg(reg)
        self.dep_count += 1
        if ready_at != INFLIGHT:
            self.engine.call_at(ready_at, self._timed_wake, warp, reg)

    def _timed_wake(self, warp: Warp, reg: int) -> None:
        if warp.state is WarpState.DEP and warp.waiting_reg == reg:
            warp.waiting_reg = None
            self.wake_warp(warp)

    def _finish_warp(self, warp: Warp) -> None:
        self.ready.pop(warp.wid, None)
        warp.state = WarpState.DONE
        self.warps.remove(warp)
        self.warps_completed += 1
        if self.current is warp:
            self.current = None

    # -- per-cycle tick ---------------------------------------------------------

    def tick(self) -> bool:
        """Attempt one issue slot; returns True if an instruction issued."""
        if self.pending_traces and len(self.warps) < self.warps_per_sm:
            self._launch()
        issued = self._issue()
        if not issued:
            self._classify_no_issue(1)
        return issued

    def _issue(self) -> bool:
        attempts = 0
        cur = self.current
        # GTO: stick with the current warp while it can issue.
        if (self.scheduler == "gto" and cur is not None
                and cur.wid in self.ready):
            status = self._try_issue(cur)
            if status == "issued":
                return True
            attempts += 1
        for wid in list(self.ready):
            if attempts >= MAX_ISSUE_ATTEMPTS:
                break
            warp = self.ready.get(wid)
            if warp is None or (self.scheduler == "gto" and warp is cur):
                continue
            status = self._try_issue(warp)
            attempts += 1
            if status == "issued":
                self.current = warp
                if self.scheduler == "lrr" and warp.wid in self.ready:
                    # Rotate the issuing warp to the back of the order.
                    self.ready.pop(warp.wid)
                    self.ready[warp.wid] = warp
                return True
        return False

    def _classify_no_issue(self, cycles: int) -> None:
        """Attribute ``cycles`` no-issue cycles to one Figure 8 category."""
        if self.ready:
            self.stalls.exec_unit_busy += cycles
        elif self.dep_count > 0:
            self.stalls.dependency_stall += cycles
        elif self.warps or self.pending_traces:
            self.stalls.warp_idle += cycles
        # A fully drained SM contributes no no-issue cycles.

    def classify_idle_bulk(self, cycles: int) -> None:
        """Used by the system when fast-forwarding over quiet regions."""
        self._classify_no_issue(cycles)

    @property
    def pending_replays(self) -> int:
        """Number of loads currently mid-replay (line requests spanning
        several issue attempts).  Must be zero at end of simulation."""
        return len(self._replays)

    @property
    def can_issue_now(self) -> bool:
        return bool(self.ready) or (
            bool(self.pending_traces) and len(self.warps) < self.warps_per_sm)

    # -- structural-reject parking (active scheduler) -------------------------

    def _probe_struct(self, warp: Warp, now: int) -> int | None:
        """Would ``_try_issue(warp)`` be a pure structural load reject
        this cycle?  Returns ``None`` if the attempt could make progress
        or have any side effect, else the attempt's per-cycle counter
        cost: ``1`` for an MSHR-full retry (one L1 miss + one MSHR
        reject), ``0`` for an inflight-cap spin (no counters touched).
        Strictly side-effect-free -- a shadow of the issue path."""
        item = warp.current_item()
        if item is None:
            return None                    # would finish the warp
        if isinstance(item, DynBlock):
            if warp.mode != "inline":
                # Offload decision / packet-generation paths have side
                # effects (decider state, NDP credits); never elide them.
                return None
            instr = item.block.instrs[warp.sub_pc]
            accesses = (item.mem_accesses[warp.mem_seq]
                        if instr.is_mem else ())
        else:
            instr = item.instr
            accesses = item.accesses
        reads = instr.reads
        if reads and warp.srcs_ready_at(reads) > now:
            return None                    # would block on a dependency
        if instr.op is not Opcode.LD or not accesses:
            return None                    # would issue
        replay = self._replays.get(warp.wid)
        if replay is None:
            if warp.inflight_loads >= self.max_inflight_loads:
                return 0                   # cap spin: rejected pre-counters
            return None                    # would create a replay and pump
        if self.memsys.l1_would_reject(self.sm_id,
                                       replay.remaining[0].line_addr):
            return 1                       # MSHR-full retry: miss + reject
        return None                        # pump would make progress

    def struct_park_probe(self) -> int | None:
        """Shadow-walk this cycle's issue attempt order: if *every* warp
        the scheduler would try is a pure structural load reject, return
        the summed per-cycle counter cost (the active scheduler parks the
        SM and replays ``cost`` L1 misses + MSHR rejects per elided cycle
        on wake); otherwise return ``None``.

        Mirrors :meth:`_issue` exactly -- GTO current-warp-first, ready
        insertion order, the ``MAX_ISSUE_ATTEMPTS`` cap -- because the
        elided cycles must be bit-identical to the legacy scheduler's
        real retry cycles (docs/performance.md).
        """
        if self.pending_traces and len(self.warps) < self.warps_per_sm:
            return None                    # _launch would make progress
        ready = self.ready
        if not ready:
            return None                    # ordinary idle-park path applies
        now = self.engine.now
        cost = 0
        attempts = 0
        cur = self.current
        gto = self.scheduler == "gto"
        if gto and cur is not None and cur.wid in ready:
            c = self._probe_struct(cur, now)
            if c is None:
                return None
            cost += c
            attempts += 1
        for wid in ready:
            if attempts >= MAX_ISSUE_ATTEMPTS:
                break
            warp = ready[wid]
            if gto and warp is cur:
                continue
            c = self._probe_struct(warp, now)
            if c is None:
                return None
            cost += c
            attempts += 1
        return cost

    def next_wake(self) -> int | None:
        """Earliest cycle this SM can make progress on its own: ``now + 1``
        while it holds issuable (or structurally-rejected, hence retrying)
        work, else ``None`` -- only an external event (fill, ACK, timed
        dependency release, recovery fallback) can change that, and every
        such path reports through :attr:`waker`."""
        return self.engine.now + 1 if self.can_issue_now else None

    def metrics_snapshot(self) -> dict:
        """Counters/gauges published into the metrics registry."""
        return {
            "live_warps": len(self.warps),
            "ready_warps": len(self.ready),
            "pending_traces": len(self.pending_traces),
            "instructions": self.instructions,
            "offloads": self.offloads,
            "inlines": self.inlines,
            "stall_exec_unit_busy": self.stalls.exec_unit_busy,
            "stall_dependency": self.stalls.dependency_stall,
            "stall_warp_idle": self.stalls.warp_idle,
        }

    # -- instruction execution ---------------------------------------------------

    def _try_issue(self, warp: Warp) -> str:
        item = warp.current_item()
        if item is None:
            self._finish_warp(warp)
            return "done"
        if isinstance(item, DynBlock):
            return self._issue_block(warp, item)
        return self._issue_normal(warp, item.instr, item.accesses)

    # ............ offload block handling ............

    def _issue_block(self, warp: Warp, item: DynBlock) -> str:
        if warp.mode is None:
            offload = (self.ndp is not None and self.decider is not None
                       and self.decider.decide(self.sm_id, item))
            if warp.force_inline:
                # Recovery fallback: re-execute this block inline once.
                warp.force_inline = False
                offload = False
            if offload:
                inst = self.ndp.start_block(self, warp, item)
                if inst is None:
                    return "struct"        # pending buffer / credits
                warp.offload_instance = inst
                warp.enter_block("offload")
                warp.sub_pc = 1            # OFLD.BEG consumed this slot
                self.offloads += 1
                self.issue_slots_used += 1
                return "issued"
            warp.enter_block("inline")
            self.inlines += 1
            # Fall through: the first inline instruction issues this cycle.
        if warp.mode == "inline":
            return self._issue_inline(warp, item)
        return self._issue_offload(warp, item)

    def _issue_inline(self, warp: Warp, item: DynBlock) -> str:
        instrs = item.block.instrs
        instr = instrs[warp.sub_pc]
        accesses = (item.mem_accesses[warp.mem_seq]
                    if instr.is_mem else ())
        status = self._exec_instr(warp, instr, accesses)
        if status != "issued":
            return status
        if instr.is_mem:
            warp.mem_seq += 1
        warp.sub_pc += 1
        if warp.sub_pc >= len(instrs):
            warp.block_instrs_retired += len(instrs)
            self.block_instrs_retired += len(instrs)
            warp.exit_block()
        return "issued"

    def _issue_offload(self, warp: Warp, item: DynBlock) -> str:
        gpu_code = item.block.gpu_code
        g = gpu_code[warp.sub_pc]
        inst = warp.offload_instance
        if g.kind == "rdf" or g.kind == "wta":
            # Only the address register gates packet generation; the data
            # register (for stores) lives on the NSU.
            addr_reg = g.instr.addr_src
            if addr_reg is not None:
                ready_at = warp.reg_ready.get(addr_reg, 0)
                if ready_at > self.engine.now:
                    self._block_dep(warp, addr_reg, ready_at)
                    return "blocked"
            accesses = item.mem_accesses[warp.mem_seq]
            ok = (self.ndp.rdf(inst, accesses) if g.kind == "rdf"
                  else self.ndp.wta(inst, accesses))
            if not ok:
                return "struct"
            warp.mem_seq += 1
        elif g.kind == "addr_alu":
            ready_at = warp.srcs_ready_at(g.instr.reads)
            if ready_at > self.engine.now:
                self._block_dep(warp, self._unready_reg(warp, g.instr.reads),
                                ready_at)
                return "blocked"
            warp.set_reg_ready(g.instr.dst, self.engine.now + self.alu_latency)
            self.alu_ops += 1
        elif g.kind == "nop":
            pass
        elif g.kind == "end":
            self.ndp.end_block(inst)
            self.ready.pop(warp.wid, None)
            warp.state = WarpState.ACK
            self.issue_slots_used += 1
            return "issued"
        else:  # pragma: no cover - beg handled in _issue_block
            raise AssertionError(f"unexpected GPU-side op {g.kind}")
        warp.sub_pc += 1
        self.issue_slots_used += 1
        return "issued"

    def fallback_inline(self, warp: Warp) -> None:
        """Recovery gave up on the warp's current offload block: rewind
        the block-expansion state and re-issue it inline.  The warp may be
        parked in ACK (at OFLD.END) or still mid-emission; either way the
        block restarts from its first instruction."""
        if self.waker is not None:
            self.waker(self)
        item = warp.current_item()
        assert isinstance(item, DynBlock) and warp.mode == "offload"
        warp.offload_instance = None
        warp.mode = None
        warp.sub_pc = 0
        warp.mem_seq = 0
        warp.force_inline = True
        if warp.state is WarpState.ACK:
            warp.state = WarpState.READY
            self.ready.setdefault(warp.wid, warp)

    def complete_offload(self, warp: Warp) -> None:
        """ACK arrived: live-out registers are in, the warp resumes."""
        if self.waker is not None:
            self.waker(self)
        item = warp.current_item()
        assert isinstance(item, DynBlock) and warp.state is WarpState.ACK
        now = self.engine.now
        for reg in item.block.ret_regs:
            warp.set_reg_ready(reg, now)
        n = len(item.block.instrs)
        warp.block_instrs_retired += n
        self.block_instrs_retired += n
        self.instructions += n
        warp.exit_block()
        warp.state = WarpState.READY
        self.ready.setdefault(warp.wid, warp)

    # ............ ordinary instructions ............

    @staticmethod
    def _unready_reg(warp: Warp, regs) -> int:
        now_ready = warp.reg_ready
        worst_reg, worst_t = regs[0], -1
        for r in regs:
            t = now_ready.get(r, 0)
            if t > worst_t:
                worst_reg, worst_t = r, t
        return worst_reg

    def _issue_normal(self, warp: Warp, instr, accesses) -> str:
        status = self._exec_instr(warp, instr, accesses)
        if status == "issued":
            warp.advance()
        return status

    def _exec_instr(self, warp: Warp, instr, accesses) -> str:
        now = self.engine.now
        op = instr.op
        reads = instr.reads
        if reads:
            ready_at = warp.srcs_ready_at(reads)
            if ready_at > now:
                self._block_dep(warp, self._unready_reg(warp, reads), ready_at)
                return "blocked"

        if op is Opcode.LD:
            return self._exec_load(warp, instr, accesses)
        if op is Opcode.ST:
            return self._exec_store(warp, instr, accesses)

        if op is Opcode.ALU:
            lat = self.alu_latency
            self.alu_ops += 1
        elif op is Opcode.SFU:
            lat = SFU_LATENCY
            self.alu_ops += 1
        elif op in (Opcode.SHMEM_LD, Opcode.SHMEM_ST):
            lat = SHMEM_LATENCY
        else:   # SYNC, BRANCH, NOP: single-slot, no register effect
            lat = 0
        if instr.dst is not None and lat:
            warp.set_reg_ready(instr.dst, now + lat)
        self.instructions += 1
        warp.instrs_retired += 1
        self.issue_slots_used += 1
        return "issued"

    def _exec_load(self, warp: Warp, instr, accesses) -> str:
        if not accesses:
            # Fully-masked access degenerates to a register write.
            warp.set_reg_ready(instr.dst, self.engine.now + self.alu_latency)
            self._retire(warp)
            return "issued"
        replay = self._replays.get(warp.wid)
        if replay is None:
            if warp.inflight_loads >= self.max_inflight_loads:
                return "struct"
            replay = _MemReplay(warp, instr.dst, accesses)
            self._replays[warp.wid] = replay
            warp.inflight_loads += 1
        sent_all = replay.pump(self)
        if not sent_all:
            return "struct"
        # All line requests of this load are out.
        del self._replays[warp.wid]
        replay.commit(self)
        self._retire(warp)
        return "issued"

    def _exec_store(self, warp: Warp, instr, accesses) -> str:
        cursor = self._acc_cursor.get(warp.wid, 0)
        sent = cursor
        for acc in accesses[cursor:]:
            if not self.memsys.store(self, acc):
                break
            sent += 1
        if sent < len(accesses):
            self._acc_cursor[warp.wid] = sent
            return "struct"
        self._acc_cursor.pop(warp.wid, None)
        self._retire(warp)
        return "issued"

    def _retire(self, warp: Warp) -> None:
        self.instructions += 1
        warp.instrs_retired += 1
        self.issue_slots_used += 1


class _MemReplay:
    """Replay state of one load whose line requests span several attempts.

    Structural rejects (MSHR full) can interrupt a divergent load midway;
    the replay object keeps the not-yet-sent accesses and the completion
    count so retries neither duplicate requests nor lose responses.
    """

    __slots__ = ("warp", "dst", "remaining", "outstanding", "committed")

    def __init__(self, warp: Warp, dst: int, accesses) -> None:
        self.warp = warp
        self.dst = dst
        self.remaining = list(accesses)
        self.outstanding = 0
        self.committed = False

    def pump(self, sm: SM) -> bool:
        """Send as many line requests as the hierarchy accepts."""
        while self.remaining:
            acc = self.remaining[0]
            if not sm.memsys.load(sm, acc, self._on_done):
                return False
            self.remaining.pop(0)
            self.outstanding += 1
        return True

    def commit(self, sm: SM) -> None:
        self.committed = True
        if self.outstanding == 0:
            self._finish()
        else:
            self.warp.mark_inflight(self.dst)

    def _on_done(self) -> None:
        self.outstanding -= 1
        if self.committed and self.outstanding == 0:
            self._finish()

    def _finish(self) -> None:
        warp = self.warp
        sm = warp.sm
        # Wake the SM before any mutation (invariant I1): an inflight-cap
        # slot is about to free, and a warp spinning on the cap sits in
        # READY state -- its release does NOT funnel through wake_warp
        # (resolve_reg only wakes DEP-blocked warps), so a struct-parked
        # SM would otherwise sleep through it.  Spurious wakes (own-tick
        # commit path, active SM) are no-ops by design.
        if sm.waker is not None:
            sm.waker(sm)
        warp.inflight_loads -= 1
        warp.resolve_reg(self.dst, sm.engine.now)
