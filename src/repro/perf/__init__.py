"""Simulator performance harness: pinned benchmark grid + baselines.

See :mod:`repro.perf.bench` and docs/performance.md.
"""

from repro.perf.bench import (QUICK, SUITES, BenchCell, compare,
                              format_cell, format_compare, git_rev,
                              load_report, run_bench, write_report)

__all__ = ["QUICK", "SUITES", "BenchCell", "compare", "format_cell",
           "format_compare", "git_rev", "load_report", "run_bench",
           "write_report"]
