"""Wall-clock benchmark harness with regression baselines.

``repro bench`` (and :func:`repro.api.bench`) runs a *pinned* grid of
simulation cells, times each one, and writes the measurements to
``BENCH_<rev>.json`` so a later revision can ``--compare`` against it.
Unlike the result store this measures the *simulator*, not the simulated
machine: every cell is built and run fresh (never served from the store),
and the recorded digest doubles as a correctness check -- a speedup that
changes the digest is a bug, not an optimization.

Suites
------

* ``sparse`` (default) -- wide-GPU (128 SM) bench-scale cells in the
  active scheduler's target regime: long idle/drain phases where most
  SMs have nothing to issue.  This is where active-set scheduling pays.
* ``dense`` -- cells that keep most SMs issuing every cycle; the hot
  loop is event- and issue-bound, so these track the simulator's
  absolute floor rather than scheduler wins.

The grid is deliberately small and fixed so numbers are comparable
across revisions; see docs/performance.md for methodology and the
measured legacy-vs-active speedups.
"""

from __future__ import annotations

import cProfile
import json
import math
import os
import pstats
import re
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict, dataclass, field

from repro.config import paper_config
from repro.sim.runner import build_system
from repro.sim.serialize import result_digest

REPORT_VERSION = 1

#: The wide-GPU regime the active scheduler targets (the paper's 64-SM
#: GPU scaled 2x, matching the ``bigger_gpu`` sensitivity experiment).
SPARSE_NUM_SMS = 128

#: Pinned benchmark suites: tuples of (workload, config, num_sms).
#: ``num_sms=None`` keeps the paper_config default (64 SMs).
SUITES: dict[str, tuple[tuple[str, str, int | None], ...]] = {
    "sparse": (
        ("VADD", "Baseline", SPARSE_NUM_SMS),
        ("VADD", "NDP(Dyn)", SPARSE_NUM_SMS),
        ("KMN", "Baseline", SPARSE_NUM_SMS),
        ("SP", "Baseline", SPARSE_NUM_SMS),
        ("SP", "NDP(Dyn)", SPARSE_NUM_SMS),
    ),
    "dense": (
        ("BFS", "NDP(Dyn)", None),
        ("STCL", "Baseline", None),
        ("MiniFE", "Baseline", None),
    ),
}

#: The CI smoke subset (``--quick``): one Baseline + one NDP cell, small
#: enough to stay inside a tight wall-clock budget on shared runners.
QUICK: tuple[tuple[str, str, int | None], ...] = (
    ("VADD", "Baseline", SPARSE_NUM_SMS),
    ("SP", "NDP(Dyn)", SPARSE_NUM_SMS),
)

BENCH_SCALE = "bench"


@dataclass
class BenchCell:
    """One timed simulation cell."""

    workload: str
    config: str
    scale: str
    num_sms: int
    sched: str
    wall_s: float                    # best of ``repeats`` runs
    wall_all: list[float] = field(default_factory=list)
    cycles: int = 0
    cycles_per_sec: float = 0.0
    sm_ticks: int = 0
    ticks_per_cycle: float = 0.0     # sm_ticks / total simulated cycles
    events_processed: int = 0
    instructions: int = 0
    digest: str = ""
    profile: list[dict] = field(default_factory=list)   # --profile top-N
    profile_path: str = ""                              # pstats artifact

    def key(self) -> tuple:
        """Identity for cross-revision comparison (sched-independent:
        the whole point is comparing schedulers/revisions on one cell)."""
        return (self.workload, self.config, self.scale, self.num_sms)


def git_rev() -> str:
    """Short git revision for the report filename ("local" outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)))
        rev = out.stdout.strip()
        return rev if out.returncode == 0 and rev else "local"
    except OSError:
        return "local"


def _profile_cell(workload: str, config: str, base, *, sched: str,
                  max_cycles: int, label: str, profile_dir: str,
                  top: int) -> tuple[list[dict], str]:
    """Run one *extra* instrumented repeat of a cell under cProfile.

    Kept out of the timed region entirely: interpreter tracing skews
    wall clock by 2-4x, so profiled samples must never feed ``wall_s``
    (and thereby ``--compare``).  Returns the top-``top`` functions by
    cumulative time plus the path of the dumped pstats artifact, which
    holds the full call graph for ``python -m pstats`` / snakeviz.
    """
    system = build_system(workload, config, base=base,
                          scale=BENCH_SCALE, sched=sched)
    prof = cProfile.Profile()
    prof.enable()
    system.run(max_cycles=max_cycles)
    prof.disable()
    stats = pstats.Stats(prof)
    slug = re.sub(r"[^A-Za-z0-9]+", "_",
                  f"{workload}_{label}_{base.gpu.num_sms}_{sched}").strip("_")
    os.makedirs(profile_dir, exist_ok=True)
    path = os.path.join(profile_dir, f"PROF_{git_rev()}_{slug}.pstats")
    stats.dump_stats(path)
    rows = []
    entries = sorted(stats.stats.items(), key=lambda kv: kv[1][3],
                     reverse=True)
    for (fname, line, func), (cc, nc, tt, ct, _callers) in entries[:top]:
        rows.append({
            "func": f"{os.path.basename(fname)}:{line}({func})",
            "ncalls": nc,
            "tottime": round(tt, 4),
            "cumtime": round(ct, 4),
        })
    return rows, path


def _run_cell(workload: str, config: str, num_sms: int | None, *,
              sched: str, repeats: int, max_cycles: int,
              base=None, label: str | None = None,
              profile_dir: str | None = None,
              profile_top: int = 15) -> BenchCell:
    """Time one cell.  ``base`` overrides the paper configuration (the
    explore-best cell carries its own); ``label`` overrides the recorded
    config name so extra cells never collide with pinned-grid identities
    in ``--compare``.  ``profile_dir`` adds one untimed cProfile repeat
    per cell (see :func:`_profile_cell`)."""
    if base is None:
        base = paper_config()
    if num_sms:
        base = base.scaled_gpu(num_sms=num_sms)
    walls: list[float] = []
    result = None
    sched_stats: dict = {}
    events = 0
    for _ in range(max(1, repeats)):
        # Fresh build every repeat: the run mutates the system, and build
        # cost (trace generation) must stay outside the timed region.
        system = build_system(workload, config, base=base,
                              scale=BENCH_SCALE, sched=sched)
        t0 = time.perf_counter()
        result = system.run(max_cycles=max_cycles)
        walls.append(time.perf_counter() - t0)
        sched_stats = dict(system.sched_stats)
        events = system.engine.events_processed
    wall = min(walls)
    total_cycles = result.cycles
    sm_ticks = int(sched_stats.get("sm_ticks", 0))
    prof_rows: list[dict] = []
    prof_path = ""
    if profile_dir is not None:
        prof_rows, prof_path = _profile_cell(
            workload, config, base, sched=sched, max_cycles=max_cycles,
            label=label or config, profile_dir=profile_dir,
            top=profile_top)
    return BenchCell(
        workload=workload, config=label or config, scale=BENCH_SCALE,
        num_sms=base.gpu.num_sms, sched=sched,
        wall_s=round(wall, 6), wall_all=[round(w, 6) for w in walls],
        cycles=total_cycles,
        cycles_per_sec=round(total_cycles / wall, 1) if wall > 0 else 0.0,
        sm_ticks=sm_ticks,
        ticks_per_cycle=(round(sm_ticks / total_cycles, 4)
                         if total_cycles else 0.0),
        events_processed=events,
        instructions=result.instructions,
        digest=result_digest(result),
        profile=prof_rows,
        profile_path=prof_path)


def run_bench(*, sched: str = "active", suites=("sparse",),
              quick: bool = False, repeats: int = 2,
              max_cycles: int = 20_000_000, backend: str | None = None,
              explore_best: str | None = None,
              profile_dir: str | None = None, profile_top: int = 15,
              progress=None) -> dict:
    """Run the pinned grid and return a report dict (see ``write_report``).

    ``progress`` is an optional callable taking one formatted line per
    completed cell (the CLI passes ``print``).  ``backend`` swaps the
    memory substrate (docs/backends.md); non-default backends record
    their cells as ``<config>@<backend>`` so they never alias the pinned
    hmc identities in ``--compare``.  ``explore_best`` names a
    ``best_configs.json`` written by ``repro explore``: its rank-1
    configuration is timed as one extra cell, labelled
    ``explore[<fitness>]:<config>`` so it never aliases a pinned cell.
    ``profile_dir`` enables ``--profile``: one extra untimed cProfile
    repeat per cell, with the top-``profile_top`` cumulative-time rows
    recorded in the cell and the full pstats dumped as an artifact.
    """
    backend = backend or "hmc"
    if quick:
        cells_spec = QUICK
        suites = ("quick",)
    else:
        cells_spec = []
        for name in suites:
            if name not in SUITES:
                raise KeyError(f"unknown bench suite {name!r}; choose from "
                               f"{sorted(SUITES)}")
            cells_spec.extend(SUITES[name])
    base = (paper_config() if backend == "hmc"
            else paper_config().with_backend(backend))
    suffix = "" if backend == "hmc" else f"@{backend}"
    cells: list[BenchCell] = []
    for workload, config, num_sms in cells_spec:
        cell = _run_cell(workload, config, num_sms, sched=sched,
                         repeats=repeats, max_cycles=max_cycles,
                         base=base,
                         label=(config + suffix) if suffix else None,
                         profile_dir=profile_dir, profile_top=profile_top)
        cells.append(cell)
        if progress is not None:
            progress(format_cell(cell))
    if explore_best:
        from repro.explore.report import best_bench_cell
        workload, config, base, label = best_bench_cell(explore_best)
        cell = _run_cell(workload, config, None, sched=sched,
                         repeats=repeats, max_cycles=max_cycles,
                         base=base, label=label,
                         profile_dir=profile_dir, profile_top=profile_top)
        cells.append(cell)
        if progress is not None:
            progress(format_cell(cell))
    return {
        "kind": "repro-bench",
        "version": REPORT_VERSION,
        "rev": git_rev(),
        "sched": sched,
        "backend": backend,
        "suites": list(suites),
        "explore_best": os.path.basename(explore_best) if explore_best
                        else None,
        "repeats": repeats,
        "profiled": profile_dir is not None,
        "unix_time": int(time.time()),
        "python": sys.version.split()[0],
        "cells": [asdict(c) for c in cells],
    }


def format_cell(cell: BenchCell | dict) -> str:
    c = cell if isinstance(cell, dict) else asdict(cell)
    return (f"{c['workload']:>7}/{c['config']:<14} sms={c['num_sms']:<4} "
            f"{c['wall_s']:7.3f}s  {c['cycles_per_sec']:>12,.0f} cyc/s  "
            f"ticks/cyc={c['ticks_per_cycle']:<7.3f} "
            f"events={c['events_processed']}")


def write_report(report: dict, out_dir: str = ".") -> str:
    """Atomically write ``BENCH_<rev>.json`` into ``out_dir``; returns
    the path.  Deliberately *not* the result store root: bench reports
    are host-dependent artifacts, not simulation results."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{report['rev']}.json")
    fd, tmp = tempfile.mkstemp(dir=out_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_report(path: str) -> dict:
    with open(path) as f:
        report = json.load(f)
    if report.get("kind") != "repro-bench":
        raise ValueError(f"{path} is not a repro bench report")
    return report


def compare(new: dict, baseline: dict) -> dict:
    """Match cells by identity (workload/config/scale/num_sms) and compute
    per-cell and geomean speedup of ``new`` over ``baseline``
    (speedup = baseline wall / new wall, so > 1 means faster)."""
    def key(c):
        return (c["workload"], c["config"], c["scale"], c["num_sms"])

    base_by_key = {key(c): c for c in baseline["cells"]}
    rows = []
    digests_match = True
    for cell in new["cells"]:
        ref = base_by_key.get(key(cell))
        if ref is None:
            continue
        same_digest = (cell["digest"] == ref["digest"]
                       if cell["digest"] and ref["digest"] else None)
        if same_digest is False:
            digests_match = False
        rows.append({
            "workload": cell["workload"], "config": cell["config"],
            "num_sms": cell["num_sms"],
            "base_wall_s": ref["wall_s"], "new_wall_s": cell["wall_s"],
            "speedup": (ref["wall_s"] / cell["wall_s"]
                        if cell["wall_s"] > 0 else 0.0),
            "digests_match": same_digest,
        })
    speedups = [r["speedup"] for r in rows if r["speedup"] > 0]
    geomean = (math.exp(sum(math.log(s) for s in speedups) / len(speedups))
               if speedups else 0.0)
    return {
        "baseline_rev": baseline.get("rev"), "new_rev": new.get("rev"),
        "baseline_sched": baseline.get("sched"), "new_sched": new.get("sched"),
        "rows": rows, "geomean": geomean, "digests_match": digests_match,
        "unmatched": max(0, len(new["cells"]) - len(rows)),
    }


def format_compare(cmp: dict) -> list[str]:
    lines = [f"baseline: rev {cmp['baseline_rev']} "
             f"(sched={cmp['baseline_sched']})  vs  "
             f"new: rev {cmp['new_rev']} (sched={cmp['new_sched']})"]
    for r in cmp["rows"]:
        digest = {True: "digest ok", False: "DIGEST MISMATCH",
                  None: "digest n/a"}[r["digests_match"]]
        lines.append(
            f"{r['workload']:>7}/{r['config']:<14} sms={r['num_sms']:<4} "
            f"{r['base_wall_s']:7.3f}s -> {r['new_wall_s']:7.3f}s  "
            f"x{r['speedup']:.2f}  [{digest}]")
    lines.append(f"geomean speedup: x{cmp['geomean']:.2f} "
                 f"over {len(cmp['rows'])} cells")
    if cmp["unmatched"]:
        lines.append(f"note: {cmp['unmatched']} cell(s) had no baseline "
                     "counterpart and were skipped")
    if not cmp["digests_match"]:
        lines.append("WARNING: result digests differ between revisions -- "
                     "the speedup is not apples-to-apples")
    return lines
