"""Auto-fixes for lint meta findings: ``repro lint --fix-stale``.

LINT002 marks a suppression that no finding matched -- dead weight that
hides future regressions at the same site.  :func:`fix_stale` rewrites
the reported files to drop exactly those markers:

* a **trailing** suppression is cut from the ``#`` of its marker to the
  end of the line (the code before it is untouched);
* a **standalone** suppression line is deleted together with the
  comment-only continuation lines between it and its target statement
  (they are part of the suppression block per the grammar in
  :mod:`repro.lint.core`).

With ``dry_run=True`` nothing is written; the result carries a unified
diff per file so ``repro lint --fix-stale --dry-run`` can show what
would change.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.core import parse_suppressions
from repro.lint.runner import LintReport

__all__ = ["StaleFixResult", "fix_stale"]

_MARKER_RE = re.compile(r"#\s*lint:\s*ignore\[")


@dataclass
class StaleFixResult:
    """What :func:`fix_stale` removed (or would remove)."""

    removed: int = 0                 # suppression markers dropped
    applied: bool = False            # False under dry_run
    #: display path -> unified diff of the rewrite
    diffs: dict[str, str] = field(default_factory=dict)

    @property
    def files(self) -> int:
        return len(self.diffs)


def _drop_suppression(lines: list[str], sup) -> list[str]:
    """Return ``lines`` with one parsed suppression removed.  Line
    numbers are 1-based; ``lines`` keep their terminators stripped."""
    if sup.standalone:
        # Marker line plus its comment-only continuation block
        # (everything up to, excluding, the target statement line).
        return lines[:sup.line - 1] + lines[sup.target - 1:]
    text = lines[sup.line - 1]
    m = _MARKER_RE.search(text)
    if m is None:                    # already edited away
        return lines
    kept = text[:m.start()].rstrip()
    out = list(lines)
    if kept:
        out[sup.line - 1] = kept
    else:
        del out[sup.line - 1]
    return out


def fix_stale(report: LintReport, *, dry_run: bool = False) -> StaleFixResult:
    """Remove every suppression behind a LINT002 finding in ``report``.

    Files are re-read and re-parsed at fix time, so the rewrite targets
    the suppression *as it exists on disk*; stale line numbers from an
    outdated report are skipped rather than guessed at.
    """
    result = StaleFixResult()
    by_path: dict[str, list[int]] = {}
    for f in report.findings:
        if f.rule == "LINT002":
            by_path.setdefault(f.path, []).append(f.line)

    for shown, marker_lines in sorted(by_path.items()):
        real = Path(report.real_paths.get(shown, shown))
        if not real.is_file():
            continue
        original = real.read_text()
        lines = original.splitlines()
        # Re-parse and drop bottom-up so earlier markers keep their
        # line numbers while later ones are excised.
        sups = [s for s in parse_suppressions(original)
                if s.line in set(marker_lines)]
        for sup in sorted(sups, key=lambda s: s.line, reverse=True):
            lines = _drop_suppression(lines, sup)
            result.removed += 1
        fixed = "\n".join(lines)
        if original.endswith("\n"):
            fixed += "\n"
        if fixed == original:
            continue
        result.diffs[shown] = "".join(difflib.unified_diff(
            original.splitlines(keepends=True),
            fixed.splitlines(keepends=True),
            fromfile=f"a/{shown}", tofile=f"b/{shown}"))
        if not dry_run:
            real.write_text(fixed)
    result.applied = not dry_run and bool(result.diffs)
    return result
