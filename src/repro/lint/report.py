"""Reporters: pretty terminal output and machine-readable JSON."""

from __future__ import annotations

import json

from repro.lint.core import Finding, severity_rank

__all__ = ["render_json", "render_pretty", "summary_line"]


def _sorted(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def summary_line(findings: list[Finding], files: int) -> str:
    live = [f for f in findings if not f.baselined]
    counts: dict[str, int] = {}
    for f in live:
        counts[f.severity] = counts.get(f.severity, 0) + 1
    parts = [f"{counts[s]} {s}{'s' if counts[s] != 1 else ''}"
             for s in sorted(counts, key=severity_rank)]
    baselined = sum(1 for f in findings if f.baselined)
    tail = f" ({baselined} baselined)" if baselined else ""
    body = ", ".join(parts) if parts else "clean"
    return f"lint: {files} files, {body}{tail}"


def render_pretty(findings: list[Finding], files: int,
                  show_baselined: bool = False) -> str:
    lines = []
    for f in _sorted(findings):
        if f.baselined and not show_baselined:
            continue
        lines.append(f.format())
    lines.append(summary_line(findings, files))
    return "\n".join(lines)


def render_json(findings: list[Finding], files: int) -> str:
    live = [f for f in findings if not f.baselined]
    payload = {
        "files": files,
        "findings": [f.as_dict() for f in _sorted(findings)],
        "counts": {s: sum(1 for f in live if f.severity == s)
                   for s in ("error", "warning", "info")},
        "baselined": sum(1 for f in findings if f.baselined),
        "clean": not live,
    }
    return json.dumps(payload, indent=2)
