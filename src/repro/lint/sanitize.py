"""Runtime lock sanitizer: the dynamic half of the CONC rule family.

Armed via ``REPRO_SANITIZE=1`` (or ``--sanitize`` on ``repro serve`` /
``repro loadtest``), :func:`install` instruments the serve stack's
lock-owning classes using the same per-class lock models the static
analyzer extracts (:func:`repro.lint.concurrency.build_manifest`):

* every ``threading.Lock``/``RLock`` attribute is wrapped in a
  :class:`SanitizedLock` proxy that tracks the owning thread, counts
  contended acquisitions, and checks every acquisition against the
  declared :data:`LOCK_ORDER` (outermost first) -- an out-of-order
  acquire raises :class:`LockOrderError` at the exact site a deadlock
  could form;
* every **guarded attribute** from the manifest gets a
  held-by-current-thread assertion on each read and write
  (:class:`GuardViolation` names the attribute, the lock and the
  thread).  This is what turns the static pass's ``*_locked`` and
  cross-object blind spots into checked behavior: a ``_pop_locked``
  called without the lock, or another object reaching into guarded
  state, fails the armed run immediately.

Checks are disabled inside ``__init__`` (no other thread can hold a
reference yet) and the whole shim is a no-op unless armed --- unarmed
runs execute the original classes untouched, keeping the pinned
bit-identical digests.

Counters are exposed via :func:`counters` as ``sanitize.*`` metrics
(``sanitize.guard_checks``, ``sanitize.acquires``,
``sanitize.contended``); the serve daemon folds them into its
``MetricsRegistry`` on shutdown.
"""

from __future__ import annotations

import os
import threading

__all__ = ["GuardViolation", "LockOrderError", "SanitizedLock", "armed",
           "counters", "install", "installed", "maybe_install", "reset",
           "uninstall", "LOCK_ORDER"]


class GuardViolation(AssertionError):
    """A guarded attribute was touched without its lock held."""


class LockOrderError(AssertionError):
    """A lock was acquired against the declared :data:`LOCK_ORDER`."""


#: The declared acquisition order, outermost first.  Production code
#: never nests these locks (admission acquires them strictly one at a
#: time), so any nesting that *does* appear is checked against this
#: order and an inversion raises rather than waiting to deadlock.
LOCK_ORDER = (
    "ServeDaemon._stop_lock",
    "JobQueue._lock",
    "Coalescer._lock",
    "TokenBucket._lock",
    "_HotSet._lock",
    "ShardPool._lock",
)

#: Modules whose lock-owning classes are instrumented when armed.
TARGET_MODULES = ("repro.serve.jobs", "repro.serve.limiter",
                  "repro.serve.pool", "repro.serve.daemon")

_tls = threading.local()
_count_lock = threading.Lock()
_counts = {"sanitize.guard_checks": 0, "sanitize.acquires": 0,
           "sanitize.contended": 0}
#: (cls, attr, original) triples for uninstall().
_patched: list[tuple[type, str, object]] = []
_installed = False


def armed() -> bool:
    """True when ``REPRO_SANITIZE=1`` is in the environment."""
    return os.environ.get("REPRO_SANITIZE", "") == "1"


def installed() -> bool:
    return _installed


def counters() -> dict[str, int]:
    """A snapshot of the ``sanitize.*`` counters."""
    with _count_lock:
        return dict(_counts)


def reset() -> None:
    """Zero the counters (test isolation)."""
    with _count_lock:
        for k in _counts:
            _counts[k] = 0


def _bump(name: str, n: int = 1) -> None:
    with _count_lock:
        _counts[name] += n


def _held_stack() -> list:
    stack = getattr(_tls, "held", None)
    if stack is None:
        stack = _tls.held = []
    return stack


class SanitizedLock:
    """Owner-tracking proxy over a ``threading.Lock``/``RLock``.

    Implements the private ``_is_owned`` hook, so a
    ``threading.Condition`` built over the proxy gets correct
    per-thread ownership semantics for ``wait``/``notify``."""

    __slots__ = ("_inner", "label", "_order", "_owner", "_depth",
                 "_reentrant")

    def __init__(self, inner, label: str, order: int | None = None,
                 reentrant: bool = False) -> None:
        self._inner = inner
        self.label = label
        self._order = order
        self._owner: int | None = None
        self._depth = 0
        self._reentrant = reentrant

    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()

    def locked(self) -> bool:
        return self._inner.locked()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if self._reentrant and self._is_owned():
            self._inner.acquire(blocking, timeout)
            self._depth += 1
            return True
        self._check_order()
        _bump("sanitize.acquires")
        got = self._inner.acquire(False)
        if not got:
            _bump("sanitize.contended")
            if not blocking:
                return False
            got = self._inner.acquire(True, timeout)
            if not got:
                return False
        self._owner = threading.get_ident()
        self._depth = 1
        _held_stack().append(self)
        return True

    def release(self) -> None:
        if self._reentrant and self._depth > 1:
            self._depth -= 1
            self._inner.release()
            return
        self._depth = 0
        self._owner = None
        stack = _held_stack()
        if self in stack:
            stack.remove(self)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def _check_order(self) -> None:
        if self._order is None:
            return
        for held in _held_stack():
            if held._order is not None and self._order < held._order:
                raise LockOrderError(
                    f"lock-order inversion: acquiring {self.label} "
                    f"(rank {self._order}) while holding {held.label} "
                    f"(rank {held._order}); declared order is "
                    f"{' < '.join(LOCK_ORDER)}")

    def __repr__(self) -> str:  # pragma: no cover - debug only
        return f"<SanitizedLock {self.label} owner={self._owner}>"


def _held_by_current(obj, lock_attrs) -> bool:
    """Does the current thread own any of ``obj``'s listed lock
    attributes?  Conditions answer through ``_is_owned`` (which, over a
    wrapped lock, resolves to the proxy's owner check)."""
    for name in lock_attrs:
        try:
            lk = object.__getattribute__(obj, name)
        except AttributeError:
            continue
        is_owned = getattr(lk, "_is_owned", None)
        if is_owned is not None and is_owned():
            return True
    return False


def _instrument(cls: type, contract: dict) -> None:
    lock_kinds: dict[str, str] = contract["locks"]
    guard_groups: dict[str, list] = contract["guard_groups"]
    guard_names = frozenset(guard_groups)
    wrap_names = frozenset(a for a, k in lock_kinds.items()
                           if k in ("lock", "rlock"))
    order = {label: i for i, label in enumerate(LOCK_ORDER)}

    orig_init = cls.__init__
    orig_setattr = cls.__setattr__
    orig_getattribute = cls.__getattribute__

    def __init__(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        object.__setattr__(self, "_snt_ready", True)

    def _checks_on(self) -> bool:
        try:
            return object.__getattribute__(self, "_snt_ready")
        except AttributeError:
            return False

    def __setattr__(self, name, value):
        if (name in wrap_names and value is not None
                and not isinstance(value, SanitizedLock)):
            label = f"{cls.__name__}.{name}"
            value = SanitizedLock(value, label, order.get(label),
                                  reentrant=lock_kinds[name] == "rlock")
        elif name in guard_names and _checks_on(self):
            _bump("sanitize.guard_checks")
            if not _held_by_current(self, guard_groups[name]):
                raise GuardViolation(
                    f"write to {cls.__name__}.{name} without holding "
                    f"{'/'.join(guard_groups[name])} "
                    f"(thread {threading.current_thread().name})")
        orig_setattr(self, name, value)

    def __getattribute__(self, name):
        if name in guard_names and _checks_on(self):
            _bump("sanitize.guard_checks")
            if not _held_by_current(self, guard_groups[name]):
                raise GuardViolation(
                    f"read of {cls.__name__}.{name} without holding "
                    f"{'/'.join(guard_groups[name])} "
                    f"(thread {threading.current_thread().name})")
        return orig_getattribute(self, name)

    for attr, wrapped in (("__init__", __init__),
                          ("__setattr__", __setattr__),
                          ("__getattribute__", __getattribute__)):
        _patched.append((cls, attr, getattr(cls, attr)))
        setattr(cls, attr, wrapped)


def install() -> dict[str, dict]:
    """Instrument every lock-owning class in :data:`TARGET_MODULES` from
    the statically extracted manifest.  Idempotent; returns the manifest.
    Already-constructed instances keep their raw locks -- arm the
    sanitizer before building a daemon."""
    global _installed
    import importlib
    import inspect

    from repro.lint.concurrency import build_manifest

    sources: dict[str, str] = {}
    modules: dict[str, object] = {}
    for name in TARGET_MODULES:
        mod = importlib.import_module(name)
        modules[name] = mod
        sources[name] = inspect.getsource(mod)
    manifest = build_manifest(sources)
    if _installed:
        return manifest
    for qualname, contract in manifest.items():
        module, _, clsname = qualname.rpartition(".")
        cls = getattr(modules[module], clsname, None)
        if isinstance(cls, type):
            _instrument(cls, contract)
    _installed = True
    return manifest


def uninstall() -> None:
    """Restore every patched class (test isolation)."""
    global _installed
    while _patched:
        cls, attr, original = _patched.pop()
        setattr(cls, attr, original)
    _installed = False


def maybe_install(force: bool = False) -> bool:
    """Install iff armed (or forced); the no-op path costs one getenv."""
    if force or armed():
        install()
        return True
    return False
