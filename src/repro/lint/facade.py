"""Facade rule: the CLI and the ``repro.api`` facade must not drift.

Every ``cli.py`` flag must round-trip through the facade -- either it
maps 1:1 onto a :class:`repro.api.RunRequest` field / facade function
parameter, it is a declared alias (``--no-store`` becomes
``use_store=False``; the recovery flags fold into one
``RecoveryPolicy``), or it is presentation-only (output shaping that
never reaches a simulation).  Conversely, a facade parameter with no CLI
spelling and no programmatic-only justification is a gap users will hit.
"""

from __future__ import annotations

from repro.lint.core import FileContext, Rule
from repro.lint.project import Project

__all__ = ["FacadeDriftRule", "FACADE_RULES"]


class FacadeDriftRule(Rule):
    id = "FAC001"
    severity = "error"
    description = "cli.py flags must round-trip through the repro.api facade"

    #: CLI dest -> the facade parameter it folds into.
    FLAG_ALIASES = {
        "no_store": "use_store",
        "ack_timeout": "recovery",
        "mshr_timeout": "recovery",
        "max_retries": "recovery",
        "adaptive_recovery": "recovery",
        "no_baseline": "use_baseline",
    }
    #: Dests that shape terminal output / subcommand routing only and
    #: deliberately never reach a simulation.
    PRESENTATION_ONLY = frozenset({
        "command", "stats", "output", "number", "action", "format",
        # bench: exit-code threshold on the printed comparison only.
        "min_speedup",
        # explore: render the already-written trajectory.jsonl.
        "plot",
        # loadtest: exit-code shaping when probing rate limits.
        "expect_rejections",
    })
    #: Facade parameters with no CLI spelling by design: they only make
    #: sense with live Python objects in hand.
    PROGRAMMATIC_ONLY = frozenset({
        "base", "request", "runner", "verbose", "rate", "seed",
        # bench: a per-cell progress callback (the CLI passes print).
        "progress",
        # serve: foreground vs. background is a calling-convention choice
        # (the CLI always serves in the foreground).
        "block",
    })

    def check_project(self, project: Project,
                      contexts: list[FileContext]) -> None:
        if not project.cli_dests or not project.facade_params:
            return
        cli_ctx = next((c for c in contexts
                        if c.real_path == project.cli_path), None)
        api_ctx = next((c for c in contexts
                        if c.real_path == project.api_path), None)
        facade = set(project.facade_params)
        covered = set(self.FLAG_ALIASES.values())
        if cli_ctx is not None:
            for dest, (flag, line) in sorted(project.cli_dests.items()):
                if dest in self.PRESENTATION_ONLY:
                    continue
                mapped = self.FLAG_ALIASES.get(dest, dest)
                if mapped not in facade:
                    cli_ctx.report(
                        self.id, "error", line,
                        f"CLI flag {flag!r} (dest {dest!r}) has no "
                        "matching repro.api parameter: facade drift -- "
                        "add it to RunRequest/make_runner or declare an "
                        "alias in the lint facade rule")
        if api_ctx is not None:
            spellable = ({self.FLAG_ALIASES.get(d, d)
                          for d in project.cli_dests} | covered
                         | self.PROGRAMMATIC_ONLY)
            for param in sorted(facade):
                if param not in spellable:
                    api_ctx.report(
                        self.id, "warning", 1,
                        f"facade parameter {param!r} has no CLI spelling; "
                        "expose a flag or mark it programmatic-only in "
                        "the lint facade rule")


FACADE_RULES = (FacadeDriftRule,)
