"""Lint driver: collect files, run every rule, apply the baseline.

:func:`run_lint` is the single entry point used by both ``repro lint``
and :func:`repro.api.lint`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.baseline import (DEFAULT_BASELINE, apply_baseline,
                                 load_baseline, write_baseline)
from repro.lint.concurrency import CONCURRENCY_RULES
from repro.lint.core import Finding, FileContext, Rule
from repro.lint.determinism import DETERMINISM_RULES
from repro.lint.facade import FACADE_RULES
from repro.lint.perf import PERF_RULES
from repro.lint.project import Project, discover_project
from repro.lint.protocol import PROTOCOL_RULES

__all__ = ["ALL_RULES", "LintReport", "run_lint"]

#: Every shipped rule class, in reporting-id order.
ALL_RULES: tuple[type[Rule], ...] = (
    DETERMINISM_RULES + PROTOCOL_RULES + FACADE_RULES + CONCURRENCY_RULES
    + PERF_RULES)


@dataclass
class LintReport:
    """What one lint invocation produced."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    project_root: str | None = None
    baseline_path: str | None = None
    baseline_entries: int = 0
    updated_baseline: bool = False
    #: display path -> absolute path for every linted file (``--fix-stale``
    #: rewrites through this map).
    real_paths: dict[str, str] = field(default_factory=dict)
    #: the StaleFixResult when api.lint ran with ``fix_stale``.
    stale_fix: object | None = None

    @property
    def live(self) -> list[Finding]:
        return [f for f in self.findings if not f.baselined]

    @property
    def clean(self) -> bool:
        return not self.live

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1


def _collect_files(paths) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(f for f in sorted(p.rglob("*.py"))
                         if "__pycache__" not in f.parts)
        elif p.suffix == ".py":
            files.append(p)
    # resolve + de-duplicate while keeping a stable order
    seen: set[Path] = set()
    out = []
    for f in files:
        r = f.resolve()
        if r not in seen:
            seen.add(r)
            out.append(r)
    return out


def _module_name(path: Path) -> str:
    """Dotted module for scope checks: .../src/repro/sim/store.py ->
    'repro.sim.store'.  Files outside a repro package use their stem."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return ".".join(parts[i:])
    return parts[-1] if parts else str(path)


def _changed_files(ref: str) -> set[Path]:
    """Absolute paths touched vs ``ref`` (committed diff + worktree +
    untracked), for ``repro lint --changed``.  Raises ``ValueError``
    outside a git checkout or for an unresolvable ref."""
    import subprocess

    def git(*args: str, cwd=None) -> str:
        proc = subprocess.run(["git", *args], cwd=cwd, capture_output=True,
                              text=True)
        if proc.returncode != 0:
            raise ValueError(
                f"--changed {ref}: git {' '.join(args)} failed: "
                f"{proc.stderr.strip() or proc.stdout.strip()}")
        return proc.stdout

    top = Path(git("rev-parse", "--show-toplevel").strip())
    names = git("diff", "--name-only", ref, "--", cwd=top)
    names += git("ls-files", "--others", "--exclude-standard", cwd=top)
    return {(top / line.strip()).resolve()
            for line in names.splitlines() if line.strip()}


def _default_baseline(project: Project | None) -> Path | None:
    """<repo-root>/.repro-lint-baseline.json, when the package root is
    a conventional src/repro checkout."""
    if project is None or not project.root:
        return None
    pkg = Path(project.root)
    root = pkg.parent.parent if pkg.parent.name == "src" else pkg.parent
    return root / DEFAULT_BASELINE


def run_lint(paths, *, project: Project | None = None,
             baseline: Path | str | None = None, use_baseline: bool = True,
             update_baseline: bool = False,
             rules=None, changed: str | None = None) -> LintReport:
    """Lint ``paths`` (files or directories).

    ``project`` overrides contract discovery (tests);  ``baseline``
    overrides the default ``<repo-root>/.repro-lint-baseline.json``;
    ``use_baseline=False`` ignores any baseline; ``update_baseline``
    rewrites the baseline from the current findings and reports clean.
    ``rules`` restricts to an iterable of rule ids.  ``changed`` is a git
    ref: only files touched vs that ref are linted (contract discovery
    still sees the full set, so project-wide rules keep their context).
    """
    files = _collect_files(paths)
    if project is None:
        project = discover_project(files)
    if changed is not None:
        touched = _changed_files(changed)
        files = [f for f in files if f in touched]
    bpath = Path(baseline) if baseline else _default_baseline(project)
    # Display (and baseline-key) paths are repo-root-relative so a lint
    # run from anywhere produces identical keys.
    display_root = (bpath.parent.resolve() if bpath is not None
                    else Path.cwd().resolve())

    contexts: list[FileContext] = []
    findings: list[Finding] = []
    for f in files:
        try:
            shown = str(f.relative_to(display_root))
        except ValueError:
            shown = str(f)
        source = f.read_text()
        try:
            contexts.append(FileContext(shown, source, _module_name(f),
                                        real_path=str(f)))
        except SyntaxError as e:
            findings.append(Finding(
                rule="LINT003", severity="error", path=shown,
                line=e.lineno or 1, col=(e.offset or 1) - 1,
                message=f"syntax error: {e.msg}", snippet=(e.text or "").strip()))

    wanted = set(rules) if rules is not None else None
    active = [cls() for cls in ALL_RULES
              if wanted is None or cls.id in wanted]
    for rule in active:
        for ctx in contexts:
            if rule.applies_to(ctx.module):
                rule.check_file(ctx, project)
    if project is not None:
        scoped = [c for c in contexts
                  if not c.module.startswith("repro.lint")]
        for rule in active:
            rule.check_project(project, scoped)
    checked = None if wanted is None else {r.id for r in active}
    for ctx in contexts:
        ctx.finish(checked)
        findings.extend(ctx.findings)

    report = LintReport(findings=findings, files=len(files),
                        project_root=project.root if project else None,
                        real_paths={c.path: c.real_path for c in contexts
                                    if c.real_path})
    if bpath is not None and use_baseline:
        report.baseline_path = str(bpath)
        if update_baseline:
            report.baseline_entries = write_baseline(findings, bpath)
            report.updated_baseline = True
            report.findings = apply_baseline(
                findings, load_baseline(bpath))
        else:
            entries = load_baseline(bpath)
            report.baseline_entries = len(entries)
            report.findings = apply_baseline(findings, entries)
    return report
