"""Rule framework for ``repro.lint``: findings, suppressions, file context.

The analyzer is purely static: every checked file is parsed with
:mod:`ast`, never imported, so linting cannot execute simulator code and
works on broken trees.  Two rule shapes exist:

* **file rules** visit one module's AST at a time
  (:meth:`Rule.check_file`), optionally consulting the cross-file
  :class:`~repro.lint.project.Project` registries;
* **project rules** run once per lint invocation over the project model
  itself (:meth:`Rule.check_project`) -- packet/fault-site coverage,
  CLI/facade drift.

Suppressions are in-source comments::

    x = hash(name)  # lint: ignore[DET004] -- stable across runs by construction

or, as a standalone comment block, applying to the statement that follows
it.  The reason after
``--`` is mandatory: a suppression without one is itself a finding
(``LINT001``), and a suppression that never matches a finding is reported
as stale (``LINT002``).
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field, replace

__all__ = ["Finding", "FileContext", "Rule", "SEVERITIES", "attach_parents",
           "severity_rank"]

#: Severities in decreasing order of importance.
SEVERITIES = ("error", "warning", "info")


def severity_rank(severity: str) -> int:
    return SEVERITIES.index(severity) if severity in SEVERITIES else len(SEVERITIES)


@dataclass(frozen=True)
class Finding:
    """One reported violation, anchored at ``path:line:col``."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""        # stripped source line, feeds the baseline key
    baselined: bool = False

    def key(self) -> str:
        """Baseline identity: path + rule + a hash of the line *content*,
        so entries survive unrelated edits that shift line numbers."""
        digest = hashlib.sha256(self.snippet.encode()).hexdigest()[:12]
        return f"{self.path}:{self.rule}:{digest}"

    def format(self) -> str:
        tag = " (baselined)" if self.baselined else ""
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"[{self.severity}] {self.message}{tag}")

    def as_dict(self) -> dict:
        return {"rule": self.rule, "severity": self.severity,
                "path": self.path, "line": self.line, "col": self.col,
                "message": self.message, "key": self.key(),
                "baselined": self.baselined}


_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*ignore\[([A-Za-z0-9_,\s]+)\]\s*(?:--\s*(\S.*))?")


@dataclass
class Suppression:
    """One ``# lint: ignore[...]`` comment."""

    line: int                # line the comment sits on (1-based)
    rules: tuple[str, ...]
    reason: str | None
    standalone: bool         # comment-only line: applies to the next
    #                          statement line (skipping the rest of the
    #                          comment block)
    target: int = 0          # the line the suppression applies to
    used: bool = field(default=False, compare=False)

    def covers(self, rule: str, line: int) -> bool:
        return line == self.target and rule in self.rules


def parse_suppressions(source: str) -> list[Suppression]:
    # Tokenize so the marker only counts inside real comments -- the same
    # text in a docstring (e.g. documentation of this very syntax) is not
    # a suppression.
    out = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _SUPPRESS_RE.search(tok.string)
        if m is None:
            continue
        rules = tuple(r.strip() for r in m.group(1).split(",") if r.strip())
        standalone = tok.line[:tok.start[1]].strip() == ""
        line = tok.start[0]
        target = line
        if standalone:
            # Applies to the first code line after the comment block.
            target = line + 1
            while (target <= len(lines)
                   and lines[target - 1].lstrip().startswith("#")):
                target += 1
        out.append(Suppression(line=line, rules=rules, reason=m.group(2),
                               standalone=standalone, target=target))
    return out


def attach_parents(tree: ast.AST) -> None:
    """Stamp a ``.lint_parent`` backlink on every node (used by rules to
    ask "is this expression directly consumed by sorted()/sum()?")."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child.lint_parent = parent  # type: ignore[attr-defined]


class FileContext:
    """One parsed module plus its suppression table and finding sink."""

    def __init__(self, path: str, source: str, module: str,
                 real_path: str | None = None) -> None:
        self.path = path                      # display/baseline path
        self.real_path = real_path or path    # for contract-file matching
        self.source = source
        self.module = module
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        attach_parents(self.tree)
        self.suppressions = parse_suppressions(source)
        self.findings: list[Finding] = []

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def report(self, rule: str, severity: str, node: ast.AST | int,
               message: str) -> None:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        col = 0 if isinstance(node, int) else getattr(node, "col_offset", 0)
        for sup in self.suppressions:
            if sup.covers(rule, line):
                sup.used = True
                return
        self.findings.append(Finding(
            rule=rule, severity=severity, path=self.path, line=line,
            col=col, message=message, snippet=self.snippet(line)))

    def finish(self, checked_rules: set[str] | None = None) -> None:
        """Emit the meta findings: malformed and stale suppressions.

        ``checked_rules`` names the rule ids that actually ran; a
        suppression whose rules were all filtered out (``--rules``) is
        not stale -- nothing could have matched it.
        """
        for sup in self.suppressions:
            ran = (checked_rules is None
                   or any(r in checked_rules for r in sup.rules))
            if sup.reason is None:
                self.findings.append(Finding(
                    rule="LINT001", severity="error", path=self.path,
                    line=sup.line, col=0,
                    message="suppression without a reason: write "
                            "'# lint: ignore[RULE] -- why order/state "
                            "cannot leak'",
                    snippet=self.snippet(sup.line)))
            elif not sup.used and ran:
                self.findings.append(Finding(
                    rule="LINT002", severity="warning", path=self.path,
                    line=sup.line, col=0,
                    message=f"stale suppression for "
                            f"{', '.join(sup.rules)}: no finding matched",
                    snippet=self.snippet(sup.line)))


class Rule:
    """Base class.  Subclasses set ``id``, ``severity``, ``description``
    and override :meth:`check_file` and/or :meth:`check_project`.

    ``scope``/``exclude`` are dotted-module prefixes limiting where the
    rule applies (``None`` scope = everywhere).  ``repro.lint`` itself is
    excluded by default: the analyzer is host-side tooling, not sim-path
    code.
    """

    id: str = ""
    severity: str = "error"
    description: str = ""
    scope: tuple[str, ...] | None = None
    exclude: tuple[str, ...] = ("repro.lint",)

    def applies_to(self, module: str) -> bool:
        def match(prefix: str) -> bool:
            return module == prefix or module.startswith(prefix + ".")
        if any(match(p) for p in self.exclude):
            return False
        if self.scope is None:
            return True
        return any(match(p) for p in self.scope)

    def check_file(self, ctx: FileContext, project) -> None:
        """Visit one module (default: nothing)."""

    def check_project(self, project, contexts: list[FileContext]) -> None:
        """Run once over the cross-file model (default: nothing)."""


def unbaselined(findings: list[Finding]) -> list[Finding]:
    return [f for f in findings if not f.baselined]


def mark_baselined(finding: Finding) -> Finding:
    return replace(finding, baselined=True)
