"""Concurrency rules: lock discipline for the thread-shared serve stack.

The serve daemon is the one place in the tree where many threads mutate
shared state (admission threads, the dispatcher, shard loops, the stop
thread), so its lock discipline is a checked contract, not a convention.
The analyzer builds a per-class **lock model** for every class that owns
a ``threading.Lock``/``RLock``/``Condition`` attribute:

* **locks** -- attributes assigned a ``threading.Lock()``/``RLock()``/
  ``Condition()`` in any method of the class.  A condition constructed
  over one of the class's own locks (``self._ready =
  threading.Condition(self._lock)``) is recorded as an **alias**:
  holding either name is holding the same underlying lock.
* **guarded attributes** -- declared with a ``# guarded-by: <lock>``
  comment on the attribute's assignment line (or a standalone comment
  directly above it), or *inferred* from writes that only happen inside
  ``with self.<lock>:`` blocks.  ``# guarded-by: none -- <why>`` opts an
  attribute out of inference (advisory counters with benign races).

Rules (``docs/static-analysis.md`` has the annotated catalogue):

* **CONC001** -- a guarded attribute is read or written outside a
  ``with <lock>:`` block in a thread-visible method.  ``__init__`` and
  ``*_locked``-suffixed helpers are exempt statically (the runtime
  sanitizer, :mod:`repro.lint.sanitize`, verifies the ``_locked``
  convention dynamically).
* **CONC002** -- a blocking call (``time.sleep``, ``Future.result``,
  ``queue.get``, ``subprocess``/HTTP/socket clients, ``api.*`` facade
  calls, ``.join``/``.wait``) made while a lock is held.
* **CONC003** -- ``Condition.wait``/``notify`` without holding the
  condition, or ``wait`` outside a predicate loop.
* **CONC004** -- a ``threading.Thread`` created without an explicit
  ``daemon=`` choice.
* **CONC005** -- serve-layer modules importing simulation-core state
  (``repro.sim``/``core``/``gpu``/``memory``/``network``) beyond the
  sanctioned store/metrics/serialize seam, or executor workers passed
  as lambdas (state capture across the pool boundary) in serve/analysis.

The same class models feed :func:`build_manifest`, which the runtime
sanitizer uses to wrap locks in owner-tracking proxies.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.core import FileContext, Rule

__all__ = ["CONCURRENCY_RULES", "ClassModel", "GuardedAttributeRule",
           "BlockingUnderLockRule", "ConditionDisciplineRule",
           "ThreadLifecycleRule", "SimStateIsolationRule",
           "build_manifest", "class_models", "parse_guard_annotations"]

#: ``threading.<name>`` factories that make an attribute a lock.
_LOCK_KINDS = {"Lock": "lock", "RLock": "rlock", "Condition": "condition"}

_GUARD_RE = re.compile(
    r"#\s*guarded-by:\s*(?:self\.)?(none|[A-Za-z_][A-Za-z0-9_]*)"
    r"\s*(?:--\s*(\S.*))?")


@dataclass(frozen=True)
class GuardAnnotation:
    """One ``# guarded-by: <lock>`` comment, resolved to the code line it
    annotates (the comment's own line, or the first code line below a
    standalone comment block -- same targeting as lint suppressions)."""

    line: int
    target: int
    lock: str                   # lock attribute name, or "none"
    reason: str | None


def parse_guard_annotations(source: str) -> list[GuardAnnotation]:
    out: list[GuardAnnotation] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _GUARD_RE.search(tok.string)
        if m is None:
            continue
        standalone = tok.line[:tok.start[1]].strip() == ""
        line = tok.start[0]
        target = line
        if standalone:
            target = line + 1
            while (target <= len(lines)
                   and lines[target - 1].lstrip().startswith("#")):
                target += 1
        out.append(GuardAnnotation(line=line, target=target,
                                   lock=m.group(1), reason=m.group(2)))
    return out


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``"X"``; anything else -> None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _dotted(node: ast.AST) -> str:
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _threading_names(tree: ast.AST) -> set[str]:
    """Names imported straight off ``threading`` (``from threading import
    Thread``), so bare ``Thread(...)`` calls resolve like dotted ones."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "threading":
            names.update(a.asname or a.name for a in node.names)
    return names


def _threading_kind(node: ast.AST, bare: set[str]) -> str | None:
    """``threading.Lock()`` / imported ``Lock()`` -> "lock"; also
    recognizes ``Event`` (self-synchronizing, never a guard)."""
    if not isinstance(node, ast.Call):
        return None
    name = _dotted(node.func)
    if name.startswith("threading."):
        name = name[len("threading."):]
    elif name not in bare:
        return None
    if name in _LOCK_KINDS:
        return _LOCK_KINDS[name]
    if name == "Event":
        return "event"
    return None


@dataclass
class ClassModel:
    """The lock contract of one class, extracted from its AST."""

    name: str
    node: ast.ClassDef
    locks: dict[str, str] = field(default_factory=dict)   # attr -> kind
    events: set[str] = field(default_factory=set)
    aliases: dict[str, str] = field(default_factory=dict)  # cond -> lock
    explicit: dict[str, tuple[str, int]] = field(default_factory=dict)
    inferred: dict[str, str] = field(default_factory=dict)
    unguarded: set[str] = field(default_factory=set)       # guarded-by: none

    @property
    def guards(self) -> dict[str, str]:
        """attr -> guarding lock attr (explicit beats inferred)."""
        out = dict(self.inferred)
        for attr, (lock, _line) in self.explicit.items():
            out[attr] = lock
        for attr in (self.unguarded | set(self.locks) | self.events):
            out.pop(attr, None)
        return out

    def group(self, lock_attr: str) -> frozenset[str]:
        """Every attribute name whose acquisition is the same underlying
        lock: the lock itself, a condition wrapping it, or the lock a
        condition wraps."""
        names = {lock_attr}
        names.update(c for c, l in self.aliases.items() if l == lock_attr)
        if lock_attr in self.aliases:
            names.add(self.aliases[lock_attr])
            names.update(c for c, l in self.aliases.items()
                         if l == self.aliases[lock_attr])
        return frozenset(names)

    def methods(self):
        for item in self.node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield item


#: Methods CONC001 does not police: construction (no other thread can
#: hold a reference yet), repr/str (debug surfaces), and the
#: ``*_locked`` helper convention (callers hold the lock; the runtime
#: sanitizer verifies that assumption on every armed run).
_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__del__", "__repr__",
                             "__str__"})


def _exempt_method(fn) -> bool:
    return fn.name in _EXEMPT_METHODS or fn.name.endswith("_locked")


def _write_targets(node: ast.AST):
    """Attribute names of ``self`` written by an Assign/AugAssign/Delete:
    plain stores, subscript stores (``self._d[k] = v``) and deletions all
    count as mutations of the attribute's object."""
    targets = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = node.targets
    for t in targets:
        attr = _self_attr(t)
        if attr is not None:
            yield attr
        elif isinstance(t, ast.Subscript):
            attr = _self_attr(t.value)
            if attr is not None:
                yield attr


def _walk_held(model: ClassModel, fn, callback) -> None:
    """Walk a method body tracking the lexically held lock-attribute set
    and enclosing-loop depth; ``callback(node, held, loop_depth)`` fires
    for every node.  Nested function/lambda bodies are skipped -- they
    run later, under unknown lock state."""

    def visit(node, held, loops):
        callback(node, held, loops)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return
        if isinstance(node, ast.With):
            add: set[str] = set()
            for item in node.items:
                visit(item.context_expr, held, loops)
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in model.locks:
                    add |= model.group(attr)
            for stmt in node.body:
                visit(stmt, held | add, loops)
            return
        bump = 1 if isinstance(node, (ast.While, ast.For)) else 0
        for child in ast.iter_child_nodes(node):
            visit(child, held, loops + bump)

    for stmt in fn.body:
        visit(stmt, frozenset(), 0)


def class_models(tree: ast.AST, source: str) -> list[ClassModel]:
    """Extract a :class:`ClassModel` for every class in the module that
    owns at least one threading lock attribute."""
    bare = _threading_names(tree)
    anns = {a.target: a for a in parse_guard_annotations(source)}
    out: list[ClassModel] = []
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        model = ClassModel(name=cls.name, node=cls)
        # Pass 1: locks, events, explicit annotations (assignment sites).
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for t in targets:
                    attr = _self_attr(t)
                    if attr is None:
                        continue
                    kind = (_threading_kind(node.value, bare)
                            if node.value is not None else None)
                    if kind == "event":
                        model.events.add(attr)
                    elif kind is not None:
                        model.locks[attr] = kind
                        if (kind == "condition"
                                and isinstance(node.value, ast.Call)
                                and node.value.args):
                            wrapped = _self_attr(node.value.args[0])
                            if wrapped is not None:
                                model.aliases[attr] = wrapped
                    ann = anns.get(node.lineno)
                    if ann is not None:
                        if ann.lock == "none":
                            model.unguarded.add(attr)
                        else:
                            model.explicit[attr] = (ann.lock, node.lineno)
        if not model.locks:
            continue
        # Pass 2: infer guards from writes inside ``with self.<lock>:``.
        for fn in model.methods():
            def infer(node, held, loops):
                if not held:
                    return
                canon = min(held)
                for attr in _write_targets(node):
                    if (attr not in model.locks and attr not in model.events
                            and attr not in model.unguarded
                            and attr not in model.explicit):
                        model.inferred.setdefault(attr, canon)
            _walk_held(model, fn, infer)
        out.append(model)
    return out


def build_manifest(sources: dict[str, str]) -> dict[str, dict]:
    """``{module: source}`` -> the sanitizer manifest:
    ``{"module.Class": {"locks", "aliases", "guards", "guard_groups"}}``.
    ``guard_groups`` maps each guarded attribute to every lock-attribute
    name whose ownership satisfies the guard (alias closure), which is
    exactly what the runtime held-by-current-thread check consumes."""
    manifest: dict[str, dict] = {}
    for module, source in sorted(sources.items()):
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        for model in class_models(tree, source):
            guards = model.guards
            manifest[f"{module}.{model.name}"] = {
                "locks": dict(model.locks),
                "aliases": dict(model.aliases),
                "guards": guards,
                "guard_groups": {attr: sorted(model.group(lock))
                                 for attr, lock in guards.items()},
            }
    return manifest


# ---------------------------------------------------------------------------
# the rules
# ---------------------------------------------------------------------------

class GuardedAttributeRule(Rule):
    """CONC001: guarded attributes may only be touched under their lock."""

    id = "CONC001"
    severity = "error"
    description = ("guarded attribute accessed outside its 'with <lock>' "
                   "block in a thread-visible method")

    def check_file(self, ctx: FileContext, project) -> None:
        for model in class_models(ctx.tree, ctx.source):
            for attr, (lock, line) in sorted(model.explicit.items()):
                if lock not in model.locks:
                    ctx.report(self.id, self.severity, line,
                               f"{model.name}.{attr} is annotated "
                               f"guarded-by: {lock}, but {lock!r} is not "
                               f"a lock attribute of {model.name} "
                               f"({sorted(model.locks) or 'none'})")
            guards = model.guards
            if not guards:
                continue
            for fn in model.methods():
                if _exempt_method(fn):
                    continue
                self._scan(ctx, model, guards, fn)

    def _scan(self, ctx, model, guards, fn) -> None:
        def check(node, held, loops):
            attr = _self_attr(node)
            if attr is None or attr not in guards:
                return
            needed = model.group(guards[attr])
            if not (needed & held):
                ctx.report(self.id, self.severity, node,
                           f"{model.name}.{attr} is guarded by "
                           f"{guards[attr]!r} but accessed without it in "
                           f"{fn.name}(); wrap in 'with self."
                           f"{guards[attr]}:' or annotate the attribute "
                           "'# guarded-by: none -- <why the race is "
                           "benign>'")
        _walk_held(model, fn, check)


#: Dotted calls that block the calling thread outright.
_BLOCKING_EXACT = frozenset({"time.sleep"})
_BLOCKING_PREFIXES = ("subprocess.", "urllib.", "requests.", "socket.",
                      "http.client.")
#: Receiver names that mark ``.get()`` as a blocking queue read rather
#: than a dict lookup.
_QUEUEISH = frozenset({"q", "queue"})
_QUEUEISH_SUFFIXES = ("_q", "_queue")


def _receiver_tail(func: ast.Attribute) -> str:
    v = func.value
    if isinstance(v, ast.Attribute):
        return v.attr
    if isinstance(v, ast.Name):
        return v.id
    return ""


class BlockingUnderLockRule(Rule):
    """CONC002: no blocking calls while holding a lock -- a lock held
    across a sleep, a worker-pool wait or a facade simulation stalls
    every thread behind it (and a ``Future.result`` under a lock the
    completer needs is a deadlock)."""

    id = "CONC002"
    severity = "error"
    description = "blocking call while holding a lock"

    def check_file(self, ctx: FileContext, project) -> None:
        for model in class_models(ctx.tree, ctx.source):
            for fn in model.methods():
                self._scan(ctx, model, fn)

    def _scan(self, ctx, model, fn) -> None:
        def check(node, held, loops):
            if not held or not isinstance(node, ast.Call):
                return
            what = self._blocking(model, node, held)
            if what is not None:
                ctx.report(self.id, self.severity, node,
                           f"{what} while holding "
                           f"{'/'.join(sorted(held))} in {model.name}."
                           f"{fn.name}(); move the blocking call outside "
                           "the lock")
        _walk_held(model, fn, check)

    def _blocking(self, model, node: ast.Call, held) -> str | None:
        dotted = _dotted(node.func)
        if dotted in _BLOCKING_EXACT:
            return f"{dotted}()"
        if dotted.startswith(_BLOCKING_PREFIXES):
            return f"{dotted}()"
        root = dotted.partition(".")[0]
        if root == "api" and "." in dotted:
            return f"facade call {dotted}()"
        if not isinstance(node.func, ast.Attribute):
            return None
        attr = node.func.attr
        recv = _receiver_tail(node.func)
        if attr == "result":
            return f"Future {recv or '<expr>'}.result()"
        if attr == "join":
            return f"{recv or '<expr>'}.join()"
        if attr == "get" and (recv in _QUEUEISH
                              or recv.endswith(_QUEUEISH_SUFFIXES)):
            return f"queue read {recv}.get()"
        if attr == "wait":
            self_attr = _self_attr(node.func.value)
            if (self_attr is not None and self_attr in model.locks
                    and model.locks[self_attr] == "condition"
                    and model.group(self_attr) & held):
                return None          # held Condition.wait: CONC003's turf
            return f"{recv or '<expr>'}.wait()"
        return None


class ConditionDisciplineRule(Rule):
    """CONC003: ``Condition.wait``/``notify`` only under the condition,
    and ``wait`` only inside a predicate loop (a bare wait misses
    spurious wakeups and lost notifies)."""

    id = "CONC003"
    severity = "error"
    description = ("Condition.wait/notify without holding the condition, "
                   "or wait outside a predicate loop")

    def check_file(self, ctx: FileContext, project) -> None:
        for model in class_models(ctx.tree, ctx.source):
            conds = {a for a, k in model.locks.items() if k == "condition"}
            if not conds:
                continue
            for fn in model.methods():
                self._scan(ctx, model, conds, fn)

    def _scan(self, ctx, model, conds, fn) -> None:
        def check(node, held, loops):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("wait", "wait_for", "notify",
                                           "notify_all")):
                return
            attr = _self_attr(node.func.value)
            if attr is None or attr not in conds:
                return
            if not (model.group(attr) & held):
                ctx.report(self.id, self.severity, node,
                           f"{model.name}.{attr}.{node.func.attr}() "
                           f"without holding {attr!r}; Condition methods "
                           "require the lock ('with self." + attr + ":')")
            elif node.func.attr == "wait" and loops == 0:
                ctx.report(self.id, self.severity, node,
                           f"{model.name}.{attr}.wait() outside a "
                           "predicate loop; re-check the condition in a "
                           "'while' (spurious wakeups, lost notifies)")
        _walk_held(model, fn, check)


class ThreadLifecycleRule(Rule):
    """CONC004: every thread states its lifecycle: ``daemon=True`` (dies
    with the process) or ``daemon=False`` (someone joins it).  An
    implicit default inherits the spawner's flag -- a silent leak when a
    worker thread outlives the daemon that started it."""

    id = "CONC004"
    severity = "error"
    description = "threading.Thread(...) without an explicit daemon= choice"

    def check_file(self, ctx: FileContext, project) -> None:
        bare = _threading_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name != "threading.Thread" and not (
                    name == "Thread" and "Thread" in bare):
                continue
            if not any(kw.arg == "daemon" for kw in node.keywords):
                ctx.report(self.id, self.severity, node,
                           "threading.Thread(...) without daemon=; pass "
                           "daemon=True (dies with the process) or "
                           "daemon=False and join() it")


#: Simulation-core prefixes the serve layer must not import directly.
_RESTRICTED = ("repro.sim", "repro.core", "repro.gpu", "repro.memory",
               "repro.network")
#: The sanctioned seam: content-addressed results, metric vocabulary and
#: wire serialization are shared infrastructure, not mutable sim state.
_SANCTIONED = frozenset({"repro.sim.store", "repro.sim.metrics",
                         "repro.sim.serialize"})


class SimStateIsolationRule(Rule):
    """CONC005: serve threads must reach simulation state only through
    the ``repro.api`` facade or the sanctioned store/metrics/serialize
    seam, and executor workers must be module-level functions -- a
    lambda handed to a pool captures live objects and mutates shared
    state from worker context."""

    id = "CONC005"
    severity = "error"
    description = ("serve/analysis code mutating simulation-core state "
                   "outside the api facade")
    scope = ("repro.serve", "repro.analysis")

    def check_file(self, ctx: FileContext, project) -> None:
        if ctx.module.startswith("repro.serve"):
            self._check_imports(ctx)
        self._check_workers(ctx)

    def _check_imports(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._check_module(ctx, node, alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module:
                self._check_module(ctx, node, node.module)

    def _check_module(self, ctx: FileContext, node, module: str) -> None:
        restricted = any(module == p or module.startswith(p + ".")
                         for p in _RESTRICTED)
        if restricted and module not in _SANCTIONED:
            ctx.report(self.id, self.severity, node,
                       f"serve-layer import of {module!r}: reach "
                       "simulation state through repro.api (or the "
                       f"sanctioned seam {sorted(_SANCTIONED)}) so no "
                       "daemon thread mutates sim-core state directly")

    def _check_workers(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            worker = None
            if node.func.attr == "submit" and node.args:
                worker = node.args[0]
            elif node.func.attr == "_parallel_map" and len(node.args) >= 3:
                worker = node.args[2]
            if isinstance(worker, ast.Lambda):
                ctx.report(self.id, self.severity, worker,
                           "lambda submitted as an executor worker "
                           "captures live state across the pool "
                           "boundary; pass a module-level function")


CONCURRENCY_RULES = (GuardedAttributeRule, BlockingUnderLockRule,
                     ConditionDisciplineRule, ThreadLifecycleRule,
                     SimStateIsolationRule)
