"""Performance rules: allocation discipline on the simulator hot path.

The dense-suite optimization work (docs/performance.md, "Allocation-rate
engineering") replaced per-event closures with pooled event records that
carry at most two bound arguments (``Engine.call_at``/``call_after``,
``Link.send``'s argument form).  A closure or nested function created on
the hot path re-introduces exactly the per-event allocation the slab
removed -- and nothing but a lint rule would notice, because the code
still behaves identically.  This module makes the discipline checked
instead of conventional.

Rule:

* **PERF001** -- a ``lambda``, nested ``def`` or ``functools.partial``
  constructed inside a hot-path function: any method of ``Engine`` or
  ``Link`` in :mod:`repro.sim.engine` (the event loop and the per-packet
  send path), or any method named ``tick`` on the simulation path.
  Cold-path exceptions are **allow-listed via annotation**::

      self.waiters.append(lambda: self._fill(sm, line))  # perf: alloc-ok -- one per L2 miss, not per event

  The reason after ``--`` is mandatory, mirroring the ``guarded-by``
  and suppression syntaxes; an ``alloc-ok`` without a reason is reported
  (PERF001 on the annotation line).  Standard
  ``# lint: ignore[PERF001] -- why`` suppressions work as everywhere
  else; the annotation form exists so the allowance reads as a
  documented contract at the allocation site.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass

from repro.lint.core import FileContext, Rule

__all__ = ["PERF_RULES", "HotPathAllocationRule", "parse_alloc_annotations"]

#: Classes in ``repro.sim.engine`` whose every method is hot-path: the
#: event loop itself and the per-packet link send.
_HOT_ENGINE_CLASSES = {"Engine", "Link"}

#: Method name treated as hot-path wherever it appears on the sim path.
_HOT_METHOD = "tick"

_ALLOC_OK_RE = re.compile(r"#\s*perf:\s*alloc-ok\s*(?:--\s*(\S.*))?")


@dataclass(frozen=True)
class AllocAnnotation:
    """One ``# perf: alloc-ok`` comment, resolved to the code line it
    annotates (same targeting as suppressions: its own line, or the
    first code line after a standalone comment block)."""

    line: int
    target: int
    reason: str | None


def parse_alloc_annotations(source: str) -> list[AllocAnnotation]:
    out: list[AllocAnnotation] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _ALLOC_OK_RE.search(tok.string)
        if m is None:
            continue
        standalone = tok.line[:tok.start[1]].strip() == ""
        line = tok.start[0]
        target = line
        if standalone:
            target = line + 1
            while (target <= len(lines)
                   and lines[target - 1].lstrip().startswith("#")):
                target += 1
        out.append(AllocAnnotation(line=line, target=target,
                                   reason=m.group(1)))
    return out


def _is_partial(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "partial"
    return (isinstance(func, ast.Attribute) and func.attr == "partial"
            and isinstance(func.value, ast.Name)
            and func.value.id == "functools")


class HotPathAllocationRule(Rule):
    id = "PERF001"
    severity = "error"
    description = ("closure/lambda/partial constructed on the simulator "
                   "hot path (engine event loop, Link.send, tick() "
                   "methods); bind arguments into the pooled event "
                   "record (call_at/call_after/Link.send arg) or "
                   "annotate the site '# perf: alloc-ok -- why'")
    scope = ("repro.sim", "repro.gpu", "repro.memory", "repro.network",
             "repro.core")

    def check_file(self, ctx: FileContext, project) -> None:
        annotations = parse_alloc_annotations(ctx.source)
        allowed = {a.target for a in annotations if a.reason}
        for a in annotations:
            if a.reason is None:
                ctx.report(self.id, self.severity, a.line,
                           "alloc-ok annotation without a reason: write "
                           "'# perf: alloc-ok -- why this allocation is "
                           "off the hot path'")
        for fn in self._hot_functions(ctx):
            self._check_body(ctx, fn, allowed)

    def _hot_functions(self, ctx: FileContext):
        engine_module = ctx.module == "repro.sim.engine"
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            hot_class = engine_module and node.name in _HOT_ENGINE_CLASSES
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                if hot_class or item.name == _HOT_METHOD:
                    yield item

    def _check_body(self, ctx: FileContext, fn, allowed: set[int]) -> None:
        for node in ast.walk(fn):
            if isinstance(node, ast.Lambda):
                kind = "lambda"
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)) and node is not fn:
                kind = f"nested function '{node.name}'"
            elif isinstance(node, ast.Call) and _is_partial(node):
                kind = "functools.partial"
            else:
                continue
            if node.lineno in allowed:
                continue
            ctx.report(self.id, self.severity, node,
                       f"{kind} allocated in hot-path function "
                       f"'{fn.name}': every construction here is a "
                       "per-event allocation the record pool exists to "
                       "avoid; bind arguments into the event record, or "
                       "annotate '# perf: alloc-ok -- why'")


PERF_RULES: tuple[type[Rule], ...] = (HotPathAllocationRule,)
