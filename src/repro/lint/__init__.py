"""``repro.lint``: AST-based determinism & protocol-consistency analyzer.

Rules (see ``docs/static-analysis.md``):

========  ========  ==============================================
DET001    error     iteration over a set (hash order)
DET002    warning   iteration over dict views (insertion order)
DET003    error     unseeded / global RNG use
DET004    error     hash()/id() values leaking across processes
DET005    warning   wall-clock reads on the simulated path
PROTO001  error     packet kinds vs PACKET_FAULT_SITES coverage
PROTO002  error     emitted metric names vs KNOWN_METRICS
PROTO003  error     fault-site literals vs faults/plan.py
FAC001    error     cli.py flags vs the repro.api facade
CONC001   error     guarded attribute touched without its lock
CONC002   error     blocking call while holding a lock
CONC003   error     Condition misuse (unheld wait/notify, no loop)
CONC004   error     thread without daemon=/join discipline
CONC005   error     serve/analysis bypassing the api facade
LINT001   error     suppression without a reason
LINT002   warning   stale suppression
LINT003   error     file does not parse
========  ========  ==============================================

Suppress one finding with a trailing (or preceding standalone) comment::

    # lint: ignore[DET004] -- identity map keyed per-process only

The CONC rules additionally read lock-contract annotations on
attributes of lock-owning classes (same trailing/standalone placement)::

    # guarded-by: _lock
    # guarded-by: none -- monotonic counter, torn reads acceptable

Stale suppressions (LINT002) can be auto-removed with
``repro lint --fix-stale`` (:mod:`repro.lint.fixes`), and the guarded-by
contracts are enforced *at runtime* when ``REPRO_SANITIZE=1`` arms
:mod:`repro.lint.sanitize`.
"""

from repro.lint.baseline import (DEFAULT_BASELINE, apply_baseline,
                                 load_baseline, write_baseline)
from repro.lint.concurrency import (CONCURRENCY_RULES, build_manifest,
                                    parse_guard_annotations)
from repro.lint.core import Finding, FileContext, Rule, severity_rank
from repro.lint.fixes import StaleFixResult, fix_stale
from repro.lint.project import Project, discover_project
from repro.lint.report import render_json, render_pretty, summary_line
from repro.lint.runner import ALL_RULES, LintReport, run_lint

__all__ = ["ALL_RULES", "CONCURRENCY_RULES", "DEFAULT_BASELINE", "Finding",
           "FileContext", "LintReport", "Project", "Rule", "StaleFixResult",
           "apply_baseline", "build_manifest", "discover_project",
           "fix_stale", "load_baseline", "parse_guard_annotations",
           "render_json", "render_pretty", "run_lint", "severity_rank",
           "summary_line", "write_baseline"]
