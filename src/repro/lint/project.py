"""Cross-file project model: the registries the protocol and facade rules
check call sites against.

Everything is recovered from the AST of five contract-bearing modules --
``core/packets.py``, ``faults/plan.py``, ``sim/metrics.py``, ``cli.py``
and ``api.py`` -- never by importing them, so the linter stays static and
works on a broken tree.  Tests build synthetic projects from in-memory
sources via :meth:`Project.from_sources`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Project", "discover_project"]

#: Role -> path of each contract-bearing module, relative to the package.
CONTRACT_FILES = {
    "packets": "core/packets.py",
    "plan": "faults/plan.py",
    "metrics": "sim/metrics.py",
    "cli": "cli.py",
    "api": "api.py",
}


@dataclass
class Project:
    """Parsed contracts of one ``repro`` package tree."""

    root: str = ""                      # package directory, for diagnostics
    #: PacketSizes wire-size methods: name -> definition line.
    packet_kinds: dict[str, int] = field(default_factory=dict)
    #: PacketSizes class constants (MASK, PC): legal non-kind attributes.
    packet_consts: frozenset[str] = frozenset()
    #: PACKET_FAULT_SITES entries: kind -> (site-or-None, line).
    packet_fault_sites: dict[str, tuple[str | None, int]] = field(
        default_factory=dict)
    packets_path: str = ""
    #: Injectable fault sites (faults/plan.py SITES) and the subset
    #: packets flow through (PACKET_SITES).
    sites: tuple[str, ...] = ()
    packet_sites: tuple[str, ...] = ()
    watchdog_sites: tuple[str, ...] = ()
    #: KNOWN_METRICS entries: exact dotted names, or "prefix.*" patterns.
    known_metrics: frozenset[str] = frozenset()
    #: RunRequest dataclass field names.
    run_request_fields: tuple[str, ...] = ()
    #: Parameter names across the facade entry points.
    facade_params: frozenset[str] = frozenset()
    #: CLI argparse destinations: dest -> (flag string, line).
    cli_dests: dict[str, tuple[str, int]] = field(default_factory=dict)
    cli_path: str = ""
    api_path: str = ""

    # -- metric-name matching -------------------------------------------------

    def metric_known(self, name: str) -> bool:
        """Exact names match exactly; patterns match by prefix."""
        if name in self.known_metrics:
            return True
        return any(p.endswith(".*") and name.startswith(p[:-1])
                   for p in sorted(self.known_metrics))

    def metric_prefix_known(self, prefix: str) -> bool:
        """Can an f-string starting with ``prefix`` name a known metric?"""
        for entry in sorted(self.known_metrics):
            if entry.endswith(".*"):
                stem = entry[:-1]
                if prefix.startswith(stem) or stem.startswith(prefix):
                    return True
            elif entry.startswith(prefix):
                return True
        return False

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_sources(cls, sources: dict[str, str],
                     paths: dict[str, str] | None = None,
                     root: str = "") -> "Project":
        """Build from role -> source text (roles: packets, plan, metrics,
        cli, api; all optional).  ``paths`` supplies the reported path per
        role for finding anchors."""
        paths = paths or {}
        proj = cls(root=root)
        if "packets" in sources:
            proj.packets_path = paths.get("packets", "core/packets.py")
            _parse_packets(ast.parse(sources["packets"]), proj)
        if "plan" in sources:
            _parse_plan(ast.parse(sources["plan"]), proj)
        if "metrics" in sources:
            _parse_metrics(ast.parse(sources["metrics"]), proj)
        if "api" in sources:
            proj.api_path = paths.get("api", "api.py")
            _parse_api(ast.parse(sources["api"]), proj)
        if "cli" in sources:
            proj.cli_path = paths.get("cli", "cli.py")
            _parse_cli(ast.parse(sources["cli"]), proj)
        return proj

    @classmethod
    def from_package(cls, package_root: Path) -> "Project":
        """Parse the contract files under a ``repro`` package directory."""
        sources, paths = {}, {}
        for role, rel in sorted(CONTRACT_FILES.items()):
            p = package_root / rel
            if p.is_file():
                sources[role] = p.read_text()
                paths[role] = str(p)
        return cls.from_sources(sources, paths, root=str(package_root))


def discover_project(files: list[Path]) -> Project | None:
    """Locate the ``repro`` package enclosing (or contained in) the linted
    files and parse its contracts; None when no package is found."""
    candidates: list[Path] = []
    for f in files:
        if f.as_posix().endswith("repro/core/packets.py"):
            candidates.append(f.parent.parent)
    if not candidates:
        seen = set()
        for f in files:
            d = f.parent
            while (d / "__init__.py").is_file():
                if d.name == "repro" and d not in seen:
                    seen.add(d)
                    candidates.append(d)
                d = d.parent
    for root in candidates:
        if (root / CONTRACT_FILES["packets"]).is_file():
            return Project.from_package(root)
    return None


# -- per-module parsers -------------------------------------------------------

def _const_str(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _parse_packets(tree: ast.Module, proj: Project) -> None:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "PacketSizes":
            consts = set()
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    proj.packet_kinds[item.name] = item.lineno
                elif isinstance(item, ast.Assign):
                    consts.update(t.id for t in item.targets
                                  if isinstance(t, ast.Name))
                elif (isinstance(item, ast.AnnAssign)
                      and isinstance(item.target, ast.Name)):
                    consts.add(item.target.id)
            proj.packet_consts = frozenset(consts)
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if "PACKET_FAULT_SITES" in names and isinstance(
                    node.value, ast.Dict):
                for k, v in zip(node.value.keys, node.value.values):
                    kind = _const_str(k)
                    if kind is None:
                        continue
                    site = _const_str(v)  # None for Constant(None) too
                    proj.packet_fault_sites[kind] = (site, k.lineno)


def _tuple_of_strs(node: ast.AST, env: dict[str, tuple[str, ...]]
                   ) -> tuple[str, ...] | None:
    """Fold a literal tuple of strings, following Name references and
    ``+`` concatenation (SITES = PACKET_SITES + (...))."""
    if isinstance(node, ast.Tuple):
        out = []
        for elt in node.elts:
            s = _const_str(elt)
            if s is None:
                return None
            out.append(s)
        return tuple(out)
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _tuple_of_strs(node.left, env)
        right = _tuple_of_strs(node.right, env)
        if left is not None and right is not None:
            return left + right
    return None


def _parse_plan(tree: ast.Module, proj: Project) -> None:
    env: dict[str, tuple[str, ...]] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    folded = _tuple_of_strs(node.value, env)
                    if folded is not None:
                        env[t.id] = folded
    proj.packet_sites = env.get("PACKET_SITES", ())
    proj.sites = env.get("SITES", ())
    proj.watchdog_sites = env.get("WATCHDOG_SITES", ())


def _parse_metrics(tree: ast.Module, proj: Project) -> None:
    for node in tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            if not any(isinstance(t, ast.Name) and t.id == "KNOWN_METRICS"
                       for t in targets):
                continue
            value = node.value
            if (isinstance(value, ast.Call) and value.args
                    and isinstance(value.args[0], (ast.Set, ast.Tuple,
                                                   ast.List))):
                value = value.args[0]
            if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
                names = [_const_str(e) for e in value.elts]
                proj.known_metrics = frozenset(
                    n for n in names if n is not None)


def _parse_api(tree: ast.Module, proj: Project) -> None:
    params: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "RunRequest":
            fields = [item.target.id for item in node.body
                      if isinstance(item, ast.AnnAssign)
                      and isinstance(item.target, ast.Name)]
            proj.run_request_fields = tuple(fields)
            params.update(fields)
        if isinstance(node, ast.FunctionDef) and not node.name.startswith("_"):
            a = node.args
            for arg in (list(a.posonlyargs) + list(a.args)
                        + list(a.kwonlyargs)):
                params.add(arg.arg)
    proj.facade_params = frozenset(params)


def _parse_cli(tree: ast.Module, proj: Project) -> None:
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument" and node.args):
            continue
        flag = _const_str(node.args[0])
        if flag is None:
            continue
        dest = flag
        for kw in node.keywords:
            if kw.arg == "dest":
                explicit = _const_str(kw.value)
                if explicit:
                    dest = explicit
        if dest.startswith("-"):
            # prefer the long option for the dest, argparse-style
            longs = [_const_str(a) for a in node.args
                     if (_const_str(a) or "").startswith("--")]
            dest = (longs[0] if longs and longs[0] else flag)
        dest = dest.lstrip("-").replace("-", "_")
        proj.cli_dests.setdefault(dest, (flag, node.lineno))
