"""Protocol rules: packet/fault-site coverage, metric-name hygiene, and
fault-site literals.

These rules check call sites against the cross-file contracts parsed by
:mod:`repro.lint.project`: the ``PacketSizes``/``PACKET_FAULT_SITES``
registry in ``core/packets.py``, the ``SITES``/``WATCHDOG_SITES`` tuples
in ``faults/plan.py`` and the ``KNOWN_METRICS`` registry in
``sim/metrics.py``.  A rule silently stands down when its contract source
was not found (synthetic test projects may carry only one of them).
"""

from __future__ import annotations

import ast

from repro.lint.core import FileContext, Rule
from repro.lint.project import Project

__all__ = ["PROTOCOL_RULES", "PacketCoverageRule", "MetricNameRule",
           "MetricReceiverNamingRule", "FaultSiteRule"]

#: The enforced receiver-naming convention for MetricsRegistry bindings:
#: one of these exact names, or a ``*_metrics`` / ``*_registry`` suffix.
#: PROTO002 resolves emission sites through this convention (plus any
#: explicit ``MetricsRegistry`` annotations/constructions it can see in
#: the file); PROTO004 enforces the convention at every binding site, so
#: a registry can never hide behind a name the metric-name check would
#: miss.
METRIC_RECEIVER_NAMES = frozenset({"m", "metrics", "registry"})
METRIC_RECEIVER_SUFFIXES = ("_metrics", "_registry")


def conventional_receiver(name: str) -> bool:
    return (name in METRIC_RECEIVER_NAMES
            or name.endswith(METRIC_RECEIVER_SUFFIXES))


def _bound_name(node: ast.AST) -> str:
    """The bare name a binding target answers to at call sites:
    ``self.run_metrics`` and ``run_metrics`` both resolve to
    ``run_metrics`` (the receiver-chain tail PROTO002 sees)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _is_registry_annotation(ann: ast.AST | None) -> bool:
    """Does an annotation name MetricsRegistry (bare, dotted, optional,
    or a string forward reference)?"""
    if ann is None:
        return False
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return "MetricsRegistry" in ann.value
    if isinstance(ann, ast.Name):
        return ann.id == "MetricsRegistry"
    if isinstance(ann, ast.Attribute):
        return ann.attr == "MetricsRegistry"
    if isinstance(ann, ast.Subscript):        # Optional[...] etc.
        return any(_is_registry_annotation(n) for n in ast.walk(ann.slice))
    if isinstance(ann, ast.BinOp):            # MetricsRegistry | None
        return (_is_registry_annotation(ann.left)
                or _is_registry_annotation(ann.right))
    return False


def _is_registry_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and _bound_name(node.func) == "MetricsRegistry")


def _registry_bindings(tree: ast.AST):
    """Yield ``(name, node)`` for every binding of a MetricsRegistry in
    the file: annotated parameters, annotated assignments, and direct
    ``x = MetricsRegistry(...)`` constructions."""
    for node in ast.walk(tree):
        if isinstance(node, ast.arg):
            if _is_registry_annotation(node.annotation):
                yield node.arg, node
        elif isinstance(node, ast.AnnAssign):
            if (_is_registry_annotation(node.annotation)
                    or (node.value is not None
                        and _is_registry_call(node.value))):
                yield _bound_name(node.target), node
        elif isinstance(node, ast.Assign) and _is_registry_call(node.value):
            for t in node.targets:
                yield _bound_name(t), node


def _receiver_name(func: ast.Attribute) -> str:
    """Last identifier of the receiver chain: 'self.faults.packet' -> 'faults'."""
    v = func.value
    if isinstance(v, ast.Attribute):
        return v.attr
    if isinstance(v, ast.Name):
        return v.id
    return ""


def _str_arg(call: ast.Call, index: int = 0,
             keyword: str | None = None) -> ast.Constant | None:
    """The call's argument at ``index`` (or ``keyword``) iff a string literal."""
    node = None
    if len(call.args) > index:
        node = call.args[index]
    elif keyword is not None:
        for kw in call.keywords:
            if kw.arg == keyword:
                node = kw.value
    if (isinstance(node, ast.Constant) and isinstance(node.value, str)):
        return node
    return None


def _fstring_prefix(node: ast.AST) -> str | None:
    """Leading literal of an f-string ('f"packets.{k}"' -> 'packets.')."""
    if (isinstance(node, ast.JoinedStr) and node.values
            and isinstance(node.values[0], ast.Constant)
            and isinstance(node.values[0].value, str)):
        return node.values[0].value
    return None


class PacketCoverageRule(Rule):
    """PROTO001: every ``PacketSizes`` wire-size method must carry a fault-
    site mapping in ``PACKET_FAULT_SITES``, every mapping must name a real
    method and a real packet fault site, and only declared kinds/constants
    may be referenced as ``PacketSizes.<x>``."""

    id = "PROTO001"
    severity = "error"
    description = ("packet kinds, PACKET_FAULT_SITES and PacketSizes uses "
                   "must agree")

    #: The module that emits the NDP packet kinds; the never-emitted check
    #: only makes sense when it is part of the scanned set.
    EMITTER = "repro.core.offload"

    def check_project(self, project: Project,
                      contexts: list[FileContext]) -> None:
        if not project.packet_kinds:
            return
        anchor = next((c for c in contexts
                       if c.real_path == project.packets_path), None)
        if anchor is not None:
            for kind, line in sorted(project.packet_kinds.items()):
                if kind not in project.packet_fault_sites:
                    anchor.report(self.id, self.severity, line,
                                  f"packet kind {kind!r} has no entry in "
                                  "PACKET_FAULT_SITES: which fault site "
                                  "does it traverse?")
            for kind, (site, line) in sorted(
                    project.packet_fault_sites.items()):
                if kind not in project.packet_kinds:
                    anchor.report(self.id, self.severity, line,
                                  f"PACKET_FAULT_SITES names {kind!r}, "
                                  "which is not a PacketSizes method")
                elif (project.packet_sites
                      and site not in project.packet_sites):
                    anchor.report(self.id, self.severity, line,
                                  f"packet kind {kind!r} maps to "
                                  f"{site!r}, not a packet fault site "
                                  f"{project.packet_sites}")
        # Uses: PacketSizes.<attr> anywhere in the scanned files.
        legal = set(project.packet_kinds) | set(project.packet_consts)
        used: set[str] = set()
        scanned = {c.module for c in contexts}
        for ctx in contexts:
            if ctx.real_path == project.packets_path:
                continue
            for node in ast.walk(ctx.tree):
                if (isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "PacketSizes"):
                    used.add(node.attr)
                    if node.attr not in legal:
                        ctx.report(self.id, self.severity, node,
                                   f"PacketSizes.{node.attr} is not a "
                                   "declared packet kind or constant")
        if anchor is not None and self.EMITTER in scanned:
            for kind, line in sorted(project.packet_kinds.items()):
                if kind not in used:
                    anchor.report(self.id, self.severity, line,
                                  f"packet kind {kind!r} is never emitted "
                                  "by any scanned module: dead protocol "
                                  "surface or missing dispatch")


class MetricNameRule(Rule):
    """PROTO002: every metric name published into a MetricsRegistry must
    exist in the ``KNOWN_METRICS`` registry -- no typo'd dotted names.

    Emission sites are resolved through the **enforced naming
    convention** (:func:`conventional_receiver`: ``m``, ``metrics``,
    ``registry``, or a ``*_metrics``/``*_registry`` suffix) plus an
    annotation-aware pass that picks up any name the file explicitly
    binds to a ``MetricsRegistry`` (annotated parameter, annotated
    attribute, or direct construction).  PROTO004 guarantees the
    convention holds at every binding site, so the union is exhaustive:
    a registry cannot be smuggled past this rule under an arbitrary
    name.  ``.observe`` also exists on TimeoutTracker (a watchdog site,
    PROTO003); the receiver gate is what keeps the two rules from
    crossing."""

    id = "PROTO002"
    severity = "error"
    description = "emitted metric names must exist in sim/metrics.py KNOWN_METRICS"
    # the registry module defines the vocabulary, it does not emit into it
    exclude = Rule.exclude + ("repro.sim.metrics",)

    #: Dict-building variables whose keys are metric names.
    METRIC_DICTS = frozenset({"gauges", "counters"})

    def check_file(self, ctx: FileContext, project) -> None:
        if project is None or not project.known_metrics:
            return
        self._annotated = {name for name, _ in _registry_bindings(ctx.tree)
                           if name}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                self._check_call(ctx, project, node)
            elif isinstance(node, ast.Assign):
                self._check_assign(ctx, project, node)
        for fn in ast.walk(ctx.tree):
            if (isinstance(fn, ast.FunctionDef)
                    and fn.name == "metrics_counters"):
                self._check_counters_fn(ctx, project, fn)

    def _is_receiver(self, name: str) -> bool:
        return conventional_receiver(name) or name in self._annotated

    def _check_name(self, ctx: FileContext, project, node: ast.AST) -> None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if not project.metric_known(node.value):
                ctx.report(self.id, self.severity, node,
                           f"metric name {node.value!r} is not in the "
                           "KNOWN_METRICS registry (sim/metrics.py); "
                           "typo, or register it")
            return
        prefix = _fstring_prefix(node)
        if prefix is not None and not project.metric_prefix_known(prefix):
            ctx.report(self.id, self.severity, node,
                       f"no KNOWN_METRICS entry can match an f-string "
                       f"metric name starting with {prefix!r}")

    def _check_dict(self, ctx: FileContext, project, node: ast.AST) -> None:
        if isinstance(node, ast.Dict):
            for k in node.keys:
                if k is not None:
                    self._check_name(ctx, project, k)
        elif isinstance(node, ast.DictComp):
            self._check_name(ctx, project, node.key)

    def _check_call(self, ctx: FileContext, project, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        recv = _receiver_name(func)
        if (func.attr in ("counter", "histogram", "observe")
                and self._is_receiver(recv) and node.args):
            self._check_name(ctx, project, node.args[0])
        elif func.attr == "set_counters" and node.args:
            self._check_dict(ctx, project, node.args[0])
        elif func.attr == "heartbeat" and self._is_receiver(recv):
            for arg in node.args[1:]:
                self._check_dict(ctx, project, arg)

    def _check_assign(self, ctx: FileContext, project,
                      node: ast.Assign) -> None:
        for t in node.targets:
            if (isinstance(t, ast.Name) and t.id in self.METRIC_DICTS):
                self._check_dict(ctx, project, node.value)
            elif (isinstance(t, ast.Subscript)
                  and isinstance(t.value, ast.Name)
                  and t.value.id in self.METRIC_DICTS):
                self._check_name(ctx, project, t.slice)

    def _check_counters_fn(self, ctx: FileContext, project,
                           fn: ast.FunctionDef) -> None:
        """metrics_counters() bodies publish their dict keys verbatim."""
        for node in ast.walk(fn):
            if isinstance(node, (ast.Dict, ast.DictComp)):
                self._check_dict(ctx, project, node)
            elif (isinstance(node, ast.Assign)
                  and isinstance(node.targets[0], ast.Subscript)):
                self._check_name(ctx, project, node.targets[0].slice)


class MetricReceiverNamingRule(Rule):
    """PROTO004: every binding of a ``MetricsRegistry`` -- annotated
    parameter, annotated attribute, or ``x = MetricsRegistry(...)`` --
    must use a conventional receiver name (``m``, ``metrics``,
    ``registry``, or a ``*_metrics``/``*_registry`` suffix).

    This is what turns PROTO002's receiver gate from a heuristic into a
    contract: PROTO002 only sees emissions through receivers it can
    recognize, and this rule makes unrecognizable receivers illegal, so
    a typo'd metric name can never hide behind a creatively named
    registry variable."""

    id = "PROTO004"
    severity = "error"
    description = ("MetricsRegistry bindings must use a conventional "
                   "receiver name (m/metrics/registry or *_metrics/"
                   "*_registry)")
    # the registry module itself (self.x inside the class is not a
    # receiver anyone emits through externally)
    exclude = Rule.exclude + ("repro.sim.metrics",)

    def check_file(self, ctx: FileContext, project) -> None:
        for name, node in _registry_bindings(ctx.tree):
            if name and not conventional_receiver(name):
                ctx.report(
                    self.id, self.severity, node,
                    f"MetricsRegistry bound to {name!r}, which the "
                    "PROTO002 metric-name check cannot recognize; "
                    "rename it to m/metrics/registry or give it a "
                    "_metrics/_registry suffix")


class FaultSiteRule(Rule):
    """PROTO003: fault-site string literals at injection and watchdog call
    sites must be declared in ``faults/plan.py``."""

    id = "PROTO003"
    severity = "error"
    description = ("fault-site literals must be declared in faults/plan.py "
                   "SITES / PACKET_SITES / WATCHDOG_SITES")

    INJECTOR_RECEIVERS = frozenset({"faults", "fault_injector", "injector"})
    WATCHDOG_RECEIVERS = frozenset({"timeouts"})

    def check_file(self, ctx: FileContext, project) -> None:
        if project is None or not project.sites:
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, (ast.Attribute, ast.Name))):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id == "FaultSpec":
                    arg = _str_arg(node, 0, keyword="site")
                    self._expect(ctx, arg, project.sites, "SITES")
                continue
            recv = _receiver_name(func)
            if (func.attr == "packet"
                    and recv in self.INJECTOR_RECEIVERS):
                self._expect(ctx, _str_arg(node, 0),
                             project.packet_sites or project.sites,
                             "PACKET_SITES")
            elif func.attr == "decide" and recv in self.INJECTOR_RECEIVERS:
                self._expect(ctx, _str_arg(node, 0), project.sites, "SITES")
            elif func.attr in ("with_site_timeout", "timeout_for"):
                self._expect(ctx, _str_arg(node, 0),
                             project.watchdog_sites, "WATCHDOG_SITES")
            elif (func.attr in ("observe", "timeout")
                  and recv in self.WATCHDOG_RECEIVERS):
                self._expect(ctx, _str_arg(node, 0),
                             project.watchdog_sites, "WATCHDOG_SITES")

    def _expect(self, ctx: FileContext, arg: ast.Constant | None,
                declared: tuple[str, ...], registry: str) -> None:
        if arg is None or not declared:
            return
        if arg.value not in declared:
            ctx.report(self.id, self.severity, arg,
                       f"fault site {arg.value!r} is not declared in "
                       f"{registry} {declared} (faults/plan.py)")


PROTOCOL_RULES = (PacketCoverageRule, MetricNameRule,
                  MetricReceiverNamingRule, FaultSiteRule)
