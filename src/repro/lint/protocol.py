"""Protocol rules: packet/fault-site coverage, metric-name hygiene, and
fault-site literals.

These rules check call sites against the cross-file contracts parsed by
:mod:`repro.lint.project`: the ``PacketSizes``/``PACKET_FAULT_SITES``
registry in ``core/packets.py``, the ``SITES``/``WATCHDOG_SITES`` tuples
in ``faults/plan.py`` and the ``KNOWN_METRICS`` registry in
``sim/metrics.py``.  A rule silently stands down when its contract source
was not found (synthetic test projects may carry only one of them).
"""

from __future__ import annotations

import ast

from repro.lint.core import FileContext, Rule
from repro.lint.project import Project

__all__ = ["PROTOCOL_RULES", "PacketCoverageRule", "MetricNameRule",
           "FaultSiteRule"]


def _receiver_name(func: ast.Attribute) -> str:
    """Last identifier of the receiver chain: 'self.faults.packet' -> 'faults'."""
    v = func.value
    if isinstance(v, ast.Attribute):
        return v.attr
    if isinstance(v, ast.Name):
        return v.id
    return ""


def _str_arg(call: ast.Call, index: int = 0,
             keyword: str | None = None) -> ast.Constant | None:
    """The call's argument at ``index`` (or ``keyword``) iff a string literal."""
    node = None
    if len(call.args) > index:
        node = call.args[index]
    elif keyword is not None:
        for kw in call.keywords:
            if kw.arg == keyword:
                node = kw.value
    if (isinstance(node, ast.Constant) and isinstance(node.value, str)):
        return node
    return None


def _fstring_prefix(node: ast.AST) -> str | None:
    """Leading literal of an f-string ('f"packets.{k}"' -> 'packets.')."""
    if (isinstance(node, ast.JoinedStr) and node.values
            and isinstance(node.values[0], ast.Constant)
            and isinstance(node.values[0].value, str)):
        return node.values[0].value
    return None


class PacketCoverageRule(Rule):
    """PROTO001: every ``PacketSizes`` wire-size method must carry a fault-
    site mapping in ``PACKET_FAULT_SITES``, every mapping must name a real
    method and a real packet fault site, and only declared kinds/constants
    may be referenced as ``PacketSizes.<x>``."""

    id = "PROTO001"
    severity = "error"
    description = ("packet kinds, PACKET_FAULT_SITES and PacketSizes uses "
                   "must agree")

    #: The module that emits the NDP packet kinds; the never-emitted check
    #: only makes sense when it is part of the scanned set.
    EMITTER = "repro.core.offload"

    def check_project(self, project: Project,
                      contexts: list[FileContext]) -> None:
        if not project.packet_kinds:
            return
        anchor = next((c for c in contexts
                       if c.real_path == project.packets_path), None)
        if anchor is not None:
            for kind, line in sorted(project.packet_kinds.items()):
                if kind not in project.packet_fault_sites:
                    anchor.report(self.id, self.severity, line,
                                  f"packet kind {kind!r} has no entry in "
                                  "PACKET_FAULT_SITES: which fault site "
                                  "does it traverse?")
            for kind, (site, line) in sorted(
                    project.packet_fault_sites.items()):
                if kind not in project.packet_kinds:
                    anchor.report(self.id, self.severity, line,
                                  f"PACKET_FAULT_SITES names {kind!r}, "
                                  "which is not a PacketSizes method")
                elif (project.packet_sites
                      and site not in project.packet_sites):
                    anchor.report(self.id, self.severity, line,
                                  f"packet kind {kind!r} maps to "
                                  f"{site!r}, not a packet fault site "
                                  f"{project.packet_sites}")
        # Uses: PacketSizes.<attr> anywhere in the scanned files.
        legal = set(project.packet_kinds) | set(project.packet_consts)
        used: set[str] = set()
        scanned = {c.module for c in contexts}
        for ctx in contexts:
            if ctx.real_path == project.packets_path:
                continue
            for node in ast.walk(ctx.tree):
                if (isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "PacketSizes"):
                    used.add(node.attr)
                    if node.attr not in legal:
                        ctx.report(self.id, self.severity, node,
                                   f"PacketSizes.{node.attr} is not a "
                                   "declared packet kind or constant")
        if anchor is not None and self.EMITTER in scanned:
            for kind, line in sorted(project.packet_kinds.items()):
                if kind not in used:
                    anchor.report(self.id, self.severity, line,
                                  f"packet kind {kind!r} is never emitted "
                                  "by any scanned module: dead protocol "
                                  "surface or missing dispatch")


class MetricNameRule(Rule):
    """PROTO002: every metric name published into a MetricsRegistry must
    exist in the ``KNOWN_METRICS`` registry -- no typo'd dotted names."""

    id = "PROTO002"
    severity = "error"
    description = "emitted metric names must exist in sim/metrics.py KNOWN_METRICS"
    # the registry module defines the vocabulary, it does not emit into it
    exclude = Rule.exclude + ("repro.sim.metrics",)

    #: Receivers that look like a MetricsRegistry.  `.observe` also exists
    #: on TimeoutTracker (a watchdog site, PROTO003), so the receiver
    #: gate is what keeps the two rules from crossing.
    METRIC_RECEIVERS = frozenset({"m", "metrics", "registry"})
    #: Dict-building variables whose keys are metric names.
    METRIC_DICTS = frozenset({"gauges", "counters"})

    def check_file(self, ctx: FileContext, project) -> None:
        if project is None or not project.known_metrics:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                self._check_call(ctx, project, node)
            elif isinstance(node, ast.Assign):
                self._check_assign(ctx, project, node)
        for fn in ast.walk(ctx.tree):
            if (isinstance(fn, ast.FunctionDef)
                    and fn.name == "metrics_counters"):
                self._check_counters_fn(ctx, project, fn)

    def _check_name(self, ctx: FileContext, project, node: ast.AST) -> None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if not project.metric_known(node.value):
                ctx.report(self.id, self.severity, node,
                           f"metric name {node.value!r} is not in the "
                           "KNOWN_METRICS registry (sim/metrics.py); "
                           "typo, or register it")
            return
        prefix = _fstring_prefix(node)
        if prefix is not None and not project.metric_prefix_known(prefix):
            ctx.report(self.id, self.severity, node,
                       f"no KNOWN_METRICS entry can match an f-string "
                       f"metric name starting with {prefix!r}")

    def _check_dict(self, ctx: FileContext, project, node: ast.AST) -> None:
        if isinstance(node, ast.Dict):
            for k in node.keys:
                if k is not None:
                    self._check_name(ctx, project, k)
        elif isinstance(node, ast.DictComp):
            self._check_name(ctx, project, node.key)

    def _check_call(self, ctx: FileContext, project, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        recv = _receiver_name(func)
        if (func.attr in ("counter", "histogram", "observe")
                and recv in self.METRIC_RECEIVERS and node.args):
            self._check_name(ctx, project, node.args[0])
        elif func.attr == "set_counters" and node.args:
            self._check_dict(ctx, project, node.args[0])
        elif func.attr == "heartbeat" and recv in self.METRIC_RECEIVERS:
            for arg in node.args[1:]:
                self._check_dict(ctx, project, arg)

    def _check_assign(self, ctx: FileContext, project,
                      node: ast.Assign) -> None:
        for t in node.targets:
            if (isinstance(t, ast.Name) and t.id in self.METRIC_DICTS):
                self._check_dict(ctx, project, node.value)
            elif (isinstance(t, ast.Subscript)
                  and isinstance(t.value, ast.Name)
                  and t.value.id in self.METRIC_DICTS):
                self._check_name(ctx, project, t.slice)

    def _check_counters_fn(self, ctx: FileContext, project,
                           fn: ast.FunctionDef) -> None:
        """metrics_counters() bodies publish their dict keys verbatim."""
        for node in ast.walk(fn):
            if isinstance(node, (ast.Dict, ast.DictComp)):
                self._check_dict(ctx, project, node)
            elif (isinstance(node, ast.Assign)
                  and isinstance(node.targets[0], ast.Subscript)):
                self._check_name(ctx, project, node.targets[0].slice)


class FaultSiteRule(Rule):
    """PROTO003: fault-site string literals at injection and watchdog call
    sites must be declared in ``faults/plan.py``."""

    id = "PROTO003"
    severity = "error"
    description = ("fault-site literals must be declared in faults/plan.py "
                   "SITES / PACKET_SITES / WATCHDOG_SITES")

    INJECTOR_RECEIVERS = frozenset({"faults", "fault_injector", "injector"})
    WATCHDOG_RECEIVERS = frozenset({"timeouts"})

    def check_file(self, ctx: FileContext, project) -> None:
        if project is None or not project.sites:
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, (ast.Attribute, ast.Name))):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id == "FaultSpec":
                    arg = _str_arg(node, 0, keyword="site")
                    self._expect(ctx, arg, project.sites, "SITES")
                continue
            recv = _receiver_name(func)
            if (func.attr == "packet"
                    and recv in self.INJECTOR_RECEIVERS):
                self._expect(ctx, _str_arg(node, 0),
                             project.packet_sites or project.sites,
                             "PACKET_SITES")
            elif func.attr == "decide" and recv in self.INJECTOR_RECEIVERS:
                self._expect(ctx, _str_arg(node, 0), project.sites, "SITES")
            elif func.attr in ("with_site_timeout", "timeout_for"):
                self._expect(ctx, _str_arg(node, 0),
                             project.watchdog_sites, "WATCHDOG_SITES")
            elif (func.attr in ("observe", "timeout")
                  and recv in self.WATCHDOG_RECEIVERS):
                self._expect(ctx, _str_arg(node, 0),
                             project.watchdog_sites, "WATCHDOG_SITES")

    def _expect(self, ctx: FileContext, arg: ast.Constant | None,
                declared: tuple[str, ...], registry: str) -> None:
        if arg is None or not declared:
            return
        if arg.value not in declared:
            ctx.report(self.id, self.severity, arg,
                       f"fault site {arg.value!r} is not declared in "
                       f"{registry} {declared} (faults/plan.py)")


PROTOCOL_RULES = (PacketCoverageRule, MetricNameRule, FaultSiteRule)
